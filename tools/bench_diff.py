#!/usr/bin/env python3
"""Diff two bench documents and emit a markdown regression report.

Standalone front door to :func:`repro.exec.bench.compare_bench` for CI
and local use when the fresh measurements already exist on disk::

    python tools/bench_diff.py benchmarks/BENCH_baseline.json \
        BENCH_exec.json -o bench_diff.md

Exits 1 when any experiment's serial path regressed past the threshold,
2 when either input cannot be read, 0 otherwise.  ``python -m repro
bench --compare BASELINE`` measures *and* diffs in one step; this script
only diffs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        here = os.path.dirname(os.path.abspath(__file__))
        sys.path.insert(0, os.path.join(os.path.dirname(here), "src"))


def _load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"cannot read bench file {path}: {reason}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"cannot parse bench file {path}: {exc}; expected a "
              "BENCH_exec.json written by 'python -m repro bench'",
              file=sys.stderr)
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Markdown regression report between two bench runs "
                    "(serial-path wall clock).")
    parser.add_argument("baseline", help="baseline BENCH_exec.json")
    parser.add_argument("current", help="fresh BENCH_exec.json to check")
    parser.add_argument("-o", "--out", metavar="PATH", default=None,
                        help="write the markdown report to PATH "
                             "(default: stdout)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        metavar="FRAC",
                        help="normalized slowdown ratio that counts as a "
                             "regression (default: 0.25 = 25%%)")
    parser.add_argument("--ledger", metavar="PATH", default=None,
                        help="also append the current document to the "
                             "longitudinal performance ledger at PATH "
                             "(see 'python -m repro ledger')")
    args = parser.parse_args(argv)

    _ensure_importable()
    from repro.exec.bench import (compare_bench, markdown_compare,
                                  render_compare)

    baseline = _load(args.baseline)
    current = _load(args.current)
    if baseline is None or current is None:
        return 2
    report = compare_bench(current, baseline, threshold=args.threshold)
    md = markdown_compare(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(md)
        print(render_compare(report))
        print(f"\nregression report written to {args.out}")
    else:
        print(md)
    if args.ledger:
        from repro.obs.ledger import Ledger, LedgerError, fold_document

        try:
            record = Ledger(args.ledger).append(
                fold_document(current, source="bench_diff"))
            print(f"ledger record appended to {args.ledger} "
                  f"(sha256 {record['sha256'][:12]}…)")
        except (LedgerError, OSError) as exc:
            print(f"ledger: could not append to {args.ledger}: {exc}",
                  file=sys.stderr)
    return 1 if report["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
