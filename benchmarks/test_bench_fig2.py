"""Benchmark: regenerate Figure 2 (fork-join cost)."""

from repro.experiments import run_experiment

THREADS = [2, 4, 6, 8, 10, 12, 16]


def test_bench_fig2_forkjoin(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("fig2",),
        kwargs={"config": config, "thread_counts": THREADS, "repeats": 1},
        rounds=3, iterations=1)
    high = dict(zip(result.data["thread_counts"],
                    result.data["high_locality_us"]))
    uniform = dict(zip(result.data["thread_counts"],
                       result.data["uniform_us"]))
    # headline shapes: ~10us/pair locally, ~2x under uniform placement,
    # large one-time step when the fork first crosses hypernodes
    local_pair = (high[8] - high[4]) / 2
    assert 5.0 <= local_pair <= 20.0
    assert 1.3 <= ((uniform[8] - uniform[4]) / 2) / local_pair <= 3.5
    assert (high[10] - high[8]) - local_pair > 25.0
