"""Benchmark: the §6 ablation suite."""

from repro.experiments import run_experiment


def test_bench_ablations(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("ablations",), kwargs={"config": config},
        rounds=3, iterations=1)
    assert 5.0 <= result.data["remote_local_miss_ratio"] <= 12.0
    assert 2.0 <= result.data["cache_residency_ratio"] <= 6.0
    assert result.data["os_interference_overhead"] > 0.0
    effs = dict(result.data["ring_sensitivity"])
    assert effs[0.5] > effs[2.0]   # cheaper SCI -> better efficiency
