"""Benchmarks: the beyond-the-paper experiments (scale128, memclass)."""

from repro.experiments import run_experiment


def test_bench_scale128(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("scale128",), rounds=2, iterations=1)
    at_128 = {s.label: s.y[-1] for s in result.series}
    assert at_128["PPM 480x960"] > 90.0
    assert all(speedup > 10.0 for speedup in at_128.values())


def test_bench_contention(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("contention",), kwargs={"config": config},
        rounds=2, iterations=1)
    # paper [24]: little degradation as traffic increases
    assert result.data["local_degradation"] < 0.40
    assert result.data["cross_degradation"] < 0.40


def test_bench_memclass(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("memclass",), kwargs={"config": config},
        rounds=2, iterations=1)
    i16 = result.data["processors"].index(16)
    assert result.data["block_shared"][i16] > \
        result.data["far_shared"][i16] > result.data["near_shared"][i16]
