"""Benchmark: regenerate Figure 3 (barrier synchronisation cost)."""

from repro.experiments import run_experiment

THREADS = [2, 4, 8, 10, 16]


def test_bench_fig3_barrier(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("fig3",),
        kwargs={"config": config, "thread_counts": THREADS, "rounds": 6},
        rounds=3, iterations=1)
    lifo = dict(zip(THREADS, result.data["lifo_high_locality_us"]))
    lilo = dict(zip(THREADS, result.data["lilo_high_locality_us"]))
    # LIFO is a few microseconds on one hypernode, with a jump at the
    # second; LILO release is roughly linear per thread
    assert 1.0 <= lifo[8] <= 8.0
    assert lifo[10] > lifo[8]
    slope = (lilo[16] - lilo[8]) / 8
    assert 0.8 <= slope <= 4.0
