"""Benchmark: regenerate Figure 4 (message round-trip cost)."""

from repro.experiments import run_experiment

SIZES = [64, 1024, 4096, 8192, 16384, 65536]


def test_bench_fig4_message(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("fig4",),
        kwargs={"config": config, "sizes": SIZES, "repeats": 2},
        rounds=3, iterations=1)
    ratio = result.data["small_message_global_local_ratio"]
    local = dict(zip(SIZES, result.data["local_us"]))
    # global/local ~ 2.3, flat below the 8 KB fast-buffer knee,
    # super-linear beyond
    assert 1.7 <= ratio <= 3.2
    assert local[8192] / local[64] < 2.6
    assert local[16384] / local[8192] > 1.8
