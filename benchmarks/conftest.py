"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper
(reduced repetition counts keep wall time reasonable) and asserts its
headline qualitative result, so ``pytest benchmarks/ --benchmark-only``
re-derives every published artifact in one run.
"""

import pytest

from repro.core import spp1000


@pytest.fixture(scope="session")
def config():
    """The machine the paper measured: 2 hypernodes, 16 CPUs."""
    return spp1000(n_hypernodes=2)
