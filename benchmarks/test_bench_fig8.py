"""Benchmark: regenerate Figure 8 (N-body tree code scaling)."""

from repro.experiments import run_experiment


def test_bench_fig8_nbody(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("fig8",), kwargs={"config": config},
        rounds=3, iterations=1)
    for label, d in result.data.items():
        for p, degradation in d["degradation"].items():
            assert 0.0 <= degradation <= 0.09, f"{label} p={p}"
    d32 = result.data["32K"]
    assert 20.0 <= d32["single_cpu_mflops"] <= 40.0    # paper: 27.5
    assert 300.0 <= d32["mflops_16"] <= 500.0          # paper: 384
