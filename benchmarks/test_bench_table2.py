"""Benchmark: regenerate Table 2 (PPM performance)."""

from repro.experiments import run_experiment


def test_bench_table2_ppm(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("table2",), kwargs={"config": config},
        rounds=3, iterations=1)
    for row in result.data["rows"]:
        rel = abs(row["mflops"] - row["paper_mflops"]) / row["paper_mflops"]
        assert rel < 0.25, row
