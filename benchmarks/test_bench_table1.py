"""Benchmark: regenerate Table 1 (PIC on one C90 head)."""

from repro.experiments import run_experiment


def test_bench_table1_pic_c90(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("table1",), kwargs={"config": config},
        rounds=3, iterations=1)
    for label, paper_rate in (("32x32x32", 355.0), ("64x64x32", 369.0)):
        rate = result.data[label]["mflops"]
        assert abs(rate - paper_rate) / paper_rate < 0.25
    assert result.data["64x64x32"]["seconds"] > \
        result.data["32x32x32"]["seconds"]
