"""Benchmark: regenerate Figure 6 (PIC time to solution, shared vs PVM)."""

from repro.experiments import run_experiment

PROCS = [1, 2, 4, 8, 16]


def test_bench_fig6_pic(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("fig6",),
        kwargs={"config": config, "processor_counts": PROCS},
        rounds=3, iterations=1)
    for label in ("32x32x32", "64x64x32"):
        d = result.data[label]
        # shared memory consistently outperforms PVM ...
        for i, p in enumerate(PROCS):
            if p >= 2:
                assert d["pvm_seconds"][i] > d["shared_seconds"][i]
        # ... and both scale to 16 processors
        assert d["shared_speedup"][-1] > 6.0
        assert d["pvm_speedup"][-1] > 4.0
