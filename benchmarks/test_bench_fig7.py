"""Benchmark: regenerate Figure 7 (FEM scaling, with the 8->9 dip)."""

from repro.experiments import run_experiment

PROCS = [1, 2, 4, 8, 9, 12, 16]


def test_bench_fig7_fem(benchmark, config):
    result = benchmark.pedantic(
        run_experiment, args=("fig7",),
        kwargs={"config": config, "processor_counts": PROCS},
        rounds=3, iterations=1)
    i8, i9 = PROCS.index(8), PROCS.index(9)
    for label in ("small1", "small2", "large"):
        rates = result.data[label]["mflops"]
        assert rates[i9] < rates[i8], f"{label}: missing 8->9 dip"
    assert 200.0 <= result.data["c90_mflops"] <= 310.0
