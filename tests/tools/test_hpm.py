"""Tests for the hpm-style counter reports."""

from repro.core import spp1000
from repro.machine import Machine, MemClass
from repro.tools import hpm


def run_traffic(machine):
    region = machine.alloc(8 * 4096, MemClass.FAR_SHARED)

    def prog():
        for i in range(50):
            yield machine.load(0, region.addr((i * 64) % region.size))
        yield machine.store(0, region.addr(0), 1)
        yield machine.load(8, region.addr(0))

    machine.sim.run(until=machine.sim.process(prog()))


def test_collect_counts_activity():
    machine = Machine(spp1000(2))
    before = hpm.collect(machine)
    assert before.total("cache_misses") == 0
    run_traffic(machine)
    after = hpm.collect(machine)
    assert after.total("cache_misses") > 0
    assert after.total("tlb_misses") > 0
    assert after.bank_accesses > 0
    assert sum(after.ring_transfers) > 0        # the remote load
    assert 0.0 < after.cache_miss_rate <= 1.0


def test_diff_isolates_a_region():
    machine = Machine(spp1000(2))
    run_traffic(machine)
    mid = hpm.collect(machine)
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)

    def prog():
        yield machine.load(1, region.addr(0))

    machine.sim.run(until=machine.sim.process(prog()))
    delta = hpm.diff(mid, hpm.collect(machine))
    assert delta.per_cpu[1]["cache_misses"] == 1
    assert delta.per_cpu[0]["cache_misses"] == 0
    assert delta.time_ns > 0


def test_render_mentions_key_counters():
    machine = Machine(spp1000(2))
    run_traffic(machine)
    text = hpm.render(hpm.collect(machine), per_cpu=True)
    assert "cache_misses" in text
    assert "per-CPU counters" in text
    assert "ring transfers" in text
