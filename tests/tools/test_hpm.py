"""Tests for the hpm-style counter reports."""

from repro.core import spp1000
from repro.machine import Machine, MemClass
from repro.tools import hpm


def run_traffic(machine):
    region = machine.alloc(8 * 4096, MemClass.FAR_SHARED)

    def prog():
        for i in range(50):
            yield machine.load(0, region.addr((i * 64) % region.size))
        yield machine.store(0, region.addr(0), 1)
        yield machine.load(8, region.addr(0))

    machine.sim.run(until=machine.sim.process(prog()))


def test_collect_counts_activity():
    machine = Machine(spp1000(2))
    before = hpm.collect(machine)
    assert before.total("cache_misses") == 0
    run_traffic(machine)
    after = hpm.collect(machine)
    assert after.total("cache_misses") > 0
    assert after.total("tlb_misses") > 0
    assert after.bank_accesses > 0
    assert sum(after.ring_transfers) > 0        # the remote load
    assert 0.0 < after.cache_miss_rate <= 1.0


def test_diff_isolates_a_region():
    machine = Machine(spp1000(2))
    run_traffic(machine)
    mid = hpm.collect(machine)
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)

    def prog():
        yield machine.load(1, region.addr(0))

    machine.sim.run(until=machine.sim.process(prog()))
    delta = hpm.diff(mid, hpm.collect(machine))
    assert delta.per_cpu[1]["cache_misses"] == 1
    assert delta.per_cpu[0]["cache_misses"] == 0
    assert delta.time_ns > 0


def test_render_mentions_key_counters():
    machine = Machine(spp1000(2))
    run_traffic(machine)
    text = hpm.render(hpm.collect(machine), per_cpu=True)
    assert "cache_misses" in text
    assert "per-CPU counters" in text
    assert "ring transfers" in text


def make_snapshot(time_ns, misses_cpu0, ring0, events=None, bank=0):
    per_cpu = []
    for cpu in range(2):
        per_cpu.append({
            "cache_hits": 10 * (cpu + 1),
            "cache_misses": misses_cpu0 if cpu == 0 else 0,
            "cache_evictions": 0,
            "cache_invalidations": 0,
            "tlb_hits": 5,
            "tlb_misses": 1,
        })
    return hpm.HpmSnapshot(
        time_ns=time_ns, per_cpu=tuple(per_cpu), events=dict(events or {}),
        ring_transfers=(ring0, 0, 0, 0), bank_accesses=bank)


def test_diff_math_is_exact():
    """Golden assertions on the counter-delta arithmetic."""
    before = make_snapshot(1000.0, misses_cpu0=3, ring0=2,
                           events={"load.miss.remote": 4}, bank=7)
    after = make_snapshot(4000.0, misses_cpu0=10, ring0=9,
                          events={"load.miss.remote": 6, "tlb.miss": 2},
                          bank=11)
    delta = hpm.diff(before, after)
    assert delta.time_ns == 3000.0
    assert delta.per_cpu[0]["cache_misses"] == 7
    assert delta.per_cpu[1]["cache_misses"] == 0
    assert delta.ring_transfers == (7, 0, 0, 0)
    assert delta.bank_accesses == 4
    # unchanged events are dropped; new and changed ones kept
    assert delta.events == {"load.miss.remote": 2, "tlb.miss": 2}


def test_total_and_miss_rate_math():
    snap = make_snapshot(0.0, misses_cpu0=10, ring0=0)
    assert snap.total("cache_misses") == 10
    assert snap.total("cache_hits") == 30
    # 10 misses out of 40 accesses
    assert snap.cache_miss_rate == 10 / 40


def test_render_reports_elapsed_microseconds():
    snap = make_snapshot(2500.0, misses_cpu0=1, ring0=0)
    text = hpm.render(snap)
    assert "2.5" in text  # 2500 ns = 2.5 us
