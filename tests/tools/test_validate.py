"""Tests for the model-vs-simulation validation tool."""

import pytest

from repro.tools import render_validation, validate_primitives


@pytest.fixture(scope="module")
def rows():
    return validate_primitives()


def test_covers_all_three_primitives(rows):
    primitives = {r.primitive for r in rows}
    assert primitives == {"barrier (LILO)", "fork-join", "pvm round trip"}


def test_every_row_is_consistent(rows):
    bad = [r for r in rows if not r.consistent]
    assert not bad, f"inconsistent: {bad}"


def test_ratios_near_unity_on_average(rows):
    mean_ratio = sum(r.ratio for r in rows) / len(rows)
    assert 0.6 <= mean_ratio <= 1.6


def test_render(rows):
    text = render_validation(rows)
    assert "ratio" in text
    assert "fork-join" in text
    assert "NO" not in text


# ---------------------------------------------------------------------------
# fault-plan file validation
# ---------------------------------------------------------------------------

def test_fault_plan_example_file_is_valid():
    import os

    from repro.tools import validate_fault_plan

    example = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                           "examples", "faults", "ring_loss.json")
    assert validate_fault_plan(example) == []


def test_fault_plan_missing_file_is_reported_not_raised(tmp_path):
    from repro.tools import validate_fault_plan

    [err] = validate_fault_plan(str(tmp_path / "absent.json"))
    assert "cannot read" in err


def test_fault_plan_bad_json_is_reported(tmp_path):
    from repro.tools import validate_fault_plan

    path = tmp_path / "broken.json"
    path.write_text("{]")
    [err] = validate_fault_plan(str(path))
    assert "not valid JSON" in err


def test_fault_plan_semantic_errors_are_actionable(tmp_path):
    import json

    from repro.tools import validate_fault_plan

    path = tmp_path / "plan.json"
    path.write_text(json.dumps({
        "events": [{"t_us": 0, "kind": "ring_fail", "ring": 9}],
        "pvm": {"timeout_us": -5}}))
    errs = validate_fault_plan(str(path))
    assert any("ring 9 out of range" in e for e in errs)
    assert any("timeout_us" in e for e in errs)
