"""Tests for the model-vs-simulation validation tool."""

import pytest

from repro.tools import render_validation, validate_primitives


@pytest.fixture(scope="module")
def rows():
    return validate_primitives()


def test_covers_all_three_primitives(rows):
    primitives = {r.primitive for r in rows}
    assert primitives == {"barrier (LILO)", "fork-join", "pvm round trip"}


def test_every_row_is_consistent(rows):
    bad = [r for r in rows if not r.consistent]
    assert not bad, f"inconsistent: {bad}"


def test_ratios_near_unity_on_average(rows):
    mean_ratio = sum(r.ratio for r in rows) / len(rows)
    assert 0.6 <= mean_ratio <= 1.6


def test_render(rows):
    text = render_validation(rows)
    assert "ratio" in text
    assert "fork-join" in text
    assert "NO" not in text
