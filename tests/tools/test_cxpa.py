"""Tests for the CXpa-style profiler."""

import pytest

from repro.apps.fem import FEMWorkload, small1_problem
from repro.core import spp1000
from repro.perfmodel import Phase, StepWork, TeamSpec
from repro.runtime import Placement
from repro.tools import CxpaProfiler

CFG = spp1000(2)


@pytest.fixture
def profiler():
    return CxpaProfiler(CFG)


def test_profile_of_balanced_step_is_balanced(profiler):
    phase = Phase("work", flops=1e6)
    step = StepWork([[phase]] * 4)
    report = profiler.profile(step, TeamSpec(CFG, 4))
    assert len(report.phases) == 1
    assert report.phases[0].imbalance == pytest.approx(1.0)
    assert report.overall_imbalance == pytest.approx(1.0)


def test_profile_exposes_imbalance(profiler):
    heavy = Phase("work", flops=4e6)
    light = Phase("work", flops=1e6)
    step = StepWork([[heavy], [light], [light], [light]])
    report = profiler.profile(step, TeamSpec(CFG, 4))
    stats = report.phases[0]
    assert stats.max_ns > 3 * stats.min_ns
    assert stats.imbalance > 1.5
    assert report.overall_imbalance > 1.5


def test_critical_path_is_slowest_thread(profiler):
    step = StepWork([[Phase("a", flops=1e6)], [Phase("a", flops=5e6)]],
                    barriers=0)
    report = profiler.profile(step, TeamSpec(CFG, 2))
    assert report.critical_path_ns == max(report.thread_totals_ns)
    assert report.step_ns == pytest.approx(report.critical_path_ns)


def test_step_time_includes_barriers(profiler):
    step = StepWork([[Phase("a", flops=1e6)]] * 2, barriers=2)
    report = profiler.profile(step, TeamSpec(CFG, 2))
    assert report.barrier_ns > 0
    assert report.step_ns == pytest.approx(
        report.critical_path_ns + report.barrier_ns)


def test_hotspots_ranked_by_mean_time(profiler):
    step = StepWork([[Phase("cheap", flops=1e4),
                      Phase("costly", flops=1e7),
                      Phase("middle", flops=1e5)]])
    report = profiler.profile(step, TeamSpec(CFG, 1))
    names = [p.name for p in report.hotspots(2)]
    assert names == ["costly", "middle"]


def test_render_on_real_application_workload(profiler):
    workload = FEMWorkload(small1_problem(), CFG)
    team = TeamSpec(CFG, 8, Placement.HIGH_LOCALITY)
    report = profiler.profile(workload.step(team), team)
    text = report.render()
    assert "CXpa profile" in text
    assert "element/gather" in text
    assert "imbalance" in text


def test_imbalance_math_is_exact():
    """Golden assertions on the PhaseStats statistics."""
    from repro.tools import PhaseStats

    stats = PhaseStats("work", (2000.0, 4000.0))
    assert stats.mean_ns == 3000.0
    assert stats.max_ns == 4000.0
    assert stats.min_ns == 2000.0
    assert stats.imbalance == pytest.approx(4000.0 / 3000.0)


def test_overall_imbalance_math_is_exact(profiler):
    step = StepWork([[Phase("w", flops=1e6)], [Phase("w", flops=3e6)]],
                    barriers=0)
    report = profiler.profile(step, TeamSpec(CFG, 2))
    t0, t1 = report.thread_totals_ns
    expected = max(t0, t1) / ((t0 + t1) / 2)
    assert report.overall_imbalance == pytest.approx(expected)
    # flops scale linearly in the pipe-bound regime: 3x work = 3x time
    assert max(t0, t1) == pytest.approx(3 * min(t0, t1), rel=0.01)


def test_hotspots_top_zero_and_overflow(profiler):
    step = StepWork([[Phase("a", flops=1e5), Phase("b", flops=2e5)]])
    report = profiler.profile(step, TeamSpec(CFG, 1))
    assert report.hotspots(0) == []
    assert [p.name for p in report.hotspots(10)] == ["b", "a"]
