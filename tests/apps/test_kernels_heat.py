"""End-to-end integration: the heat kernel on the simulated machine."""

import numpy as np
import pytest

from repro.apps.kernels import pvm_heat, serial_heat
from repro.core import spp1000
from repro.runtime import Placement


def ic(n=64, seed=30):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, n)


def test_serial_solver_conserves_heat_and_smooths():
    u0 = ic()
    u = serial_heat(u0, 50)
    assert u.sum() == pytest.approx(u0.sum())
    assert u.var() < u0.var()


def test_serial_validation():
    with pytest.raises(ValueError):
        serial_heat(ic(), 1, alpha=0.9)


@pytest.mark.parametrize("n_tasks", [1, 2, 4, 8])
def test_pvm_run_is_bit_identical_to_serial(n_tasks):
    u0 = ic()
    expected = serial_heat(u0, 20)
    result = pvm_heat(u0, 20, n_tasks)
    assert np.array_equal(result.field, expected)


def test_pvm_run_counts_messages():
    result = pvm_heat(ic(), 10, 4)
    assert result.messages == 4 * 2 * 10   # 2 sends per task per step
    assert pvm_heat(ic(), 10, 1).messages == 0


def test_cells_must_divide_over_tasks():
    with pytest.raises(ValueError):
        pvm_heat(ic(63), 5, 4)


def test_cross_hypernode_run_pays_ring_costs():
    u0 = ic()
    local = pvm_heat(u0, 15, 2, placement=Placement.HIGH_LOCALITY)
    crossed = pvm_heat(u0, 15, 2, placement=Placement.UNIFORM)
    assert np.array_equal(local.field, crossed.field)
    assert crossed.time_ns > 1.5 * local.time_ns


def test_message_time_dominates_tiny_slabs():
    """With one cell per task the run is pure communication; wall time
    still advances and the answer is still exact."""
    u0 = ic(8)
    expected = serial_heat(u0, 5)
    result = pvm_heat(u0, 5, 8)
    assert np.array_equal(result.field, expected)
    assert result.time_ns > 0


def test_compute_scales_down_with_more_tasks():
    u0 = ic(512)
    t1 = pvm_heat(u0, 10, 1).time_ns
    t8 = pvm_heat(u0, 10, 8).time_ns
    # messages add overhead, but an 8-way split of a 512-cell slab
    # must still win
    assert t8 < t1
