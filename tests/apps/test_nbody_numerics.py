"""Physics and structure tests for the N-body tree code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.nbody import (
    Bodies,
    NBodySimulation,
    build_octree,
    direct_forces,
    morton_keys_3d,
    plummer_sphere,
    tree_forces,
    uniform_cube,
)


def test_bodies_validation():
    with pytest.raises(ValueError):
        Bodies(np.zeros((3, 3)), np.zeros((2, 3)), np.ones(3))
    with pytest.raises(ValueError):
        Bodies(np.zeros((3, 3)), np.zeros((3, 3)), np.zeros(3))


def test_plummer_properties():
    b = plummer_sphere(2000, seed=3)
    assert b.n == 2000
    assert b.masses.sum() == pytest.approx(1.0)
    # centre-of-mass frame
    assert np.allclose(b.total_momentum(), 0.0, atol=1e-12)
    # near virial equilibrium: 2K + W ~ 0 (loose band for finite N)
    k = b.kinetic_energy()
    w = b.potential_energy()
    assert -0.7 <= 2 * k / abs(w) - 1.0 <= 0.7


def test_uniform_cube_cold_start():
    b = uniform_cube(100, seed=4)
    assert b.kinetic_energy() == 0.0
    assert np.all(np.abs(b.positions) <= 0.5)


# -- Morton keys and octree -----------------------------------------------------

def test_morton_keys_are_unique_for_distinct_cells():
    pos = np.array([[0.0, 0.0, 0.0], [0.9, 0.9, 0.9], [0.1, 0.8, 0.3]])
    keys = morton_keys_3d(pos, np.zeros(3), 1.0)
    assert len(set(keys.tolist())) == 3


def test_octree_invariants_plummer():
    b = plummer_sphere(1500, seed=5)
    tree = build_octree(b, leaf_size=8)
    tree.check_invariants()
    assert tree.mass[0] == pytest.approx(1.0)
    assert np.allclose(tree.com[0], (b.masses[:, None] * b.positions)
                       .sum(axis=0), atol=1e-12)


@given(n=st.integers(1, 200), leaf=st.sampled_from([1, 4, 16]))
@settings(max_examples=20, deadline=None)
def test_octree_invariants_random(n, leaf):
    rng = np.random.default_rng(n)
    b = Bodies(rng.normal(size=(n, 3)), np.zeros((n, 3)),
               rng.uniform(0.5, 2.0, n))
    tree = build_octree(b, leaf_size=leaf)
    tree.check_invariants()
    # every particle accounted for exactly once across the leaves
    total = sum(int(tree.end[i] - tree.start[i]) for i in tree.leaves())
    assert total == n


def test_octree_identical_positions_terminate():
    """Coincident particles must not recurse forever."""
    pos = np.zeros((20, 3))
    b = Bodies(pos, np.zeros_like(pos), np.ones(20))
    tree = build_octree(b, leaf_size=4)
    assert tree.mass[0] == pytest.approx(20.0)


def test_octree_leaf_size_validation():
    b = plummer_sphere(10, seed=6)
    with pytest.raises(ValueError):
        build_octree(b, leaf_size=0)


# -- forces ------------------------------------------------------------------------

def test_tree_forces_match_direct_summation():
    b = plummer_sphere(800, seed=7)
    result = tree_forces(b, theta=0.5, softening=0.02)
    reference = direct_forces(b, softening=0.02)
    num = np.linalg.norm(result.accelerations - reference, axis=1)
    den = np.linalg.norm(reference, axis=1)
    rel = num / np.maximum(den, 1e-12)
    assert rel.mean() < 0.01
    assert np.percentile(rel, 99) < 0.08


def test_smaller_theta_is_more_accurate():
    b = plummer_sphere(600, seed=8)
    reference = direct_forces(b, softening=0.02)

    def err(theta):
        res = tree_forces(b, theta=theta, softening=0.02)
        return float(np.linalg.norm(res.accelerations - reference)
                     / np.linalg.norm(reference))

    assert err(0.3) < err(0.9)


def test_theta_zero_rejected():
    b = plummer_sphere(10, seed=9)
    with pytest.raises(ValueError):
        tree_forces(b, theta=0.0)


def test_larger_theta_prunes_more():
    b = plummer_sphere(1000, seed=10)
    loose = tree_forces(b, theta=1.0)
    tight = tree_forces(b, theta=0.3)
    assert loose.total_interactions < tight.total_interactions
    assert loose.flops < tight.flops


def test_tree_forces_far_fewer_interactions_than_n_squared():
    b = plummer_sphere(2000, seed=11)
    result = tree_forces(b, theta=0.7)
    assert result.total_interactions < 0.6 * b.n * b.n


def test_two_body_force_is_newtonian():
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    b = Bodies(pos, np.zeros_like(pos), np.array([1.0, 1.0]))
    acc = direct_forces(b, softening=0.0)
    assert acc[0, 0] == pytest.approx(1.0)   # G m / r^2 toward +x
    assert acc[1, 0] == pytest.approx(-1.0)


# -- integration -------------------------------------------------------------------

def test_leapfrog_conserves_energy():
    b = plummer_sphere(400, seed=12)
    sim = NBodySimulation(b, dt=0.005, theta=0.5, softening=0.05,
                          leaf_size=8)
    e0 = sim.energies()["total"]
    sim.run(10)
    e1 = sim.energies()["total"]
    assert abs((e1 - e0) / e0) < 0.02


def test_leapfrog_conserves_momentum():
    """Barnes-Hut approximations break exact pairwise symmetry, but the
    momentum drift must stay tiny relative to the system's momentum scale
    (sum of |m v| ~ 0.3 here)."""
    b = plummer_sphere(300, seed=13)
    sim = NBodySimulation(b, dt=0.01, softening=0.05, leaf_size=8)
    sim.run(5)
    assert np.all(np.abs(b.total_momentum()) < 1e-4)


def test_simulation_records_interaction_stats():
    b = plummer_sphere(200, seed=14)
    sim = NBodySimulation(b, dt=0.01, leaf_size=8)
    sim.step()
    assert sim.last_result is not None
    assert sim.last_result.total_interactions > 0


def test_bad_dt_rejected():
    b = plummer_sphere(10, seed=15)
    with pytest.raises(ValueError):
        NBodySimulation(b, dt=-1.0)
