"""Physics tests for the FEM gas-dynamics solver."""

import numpy as np
import pytest

from repro.apps.fem import (
    GasDynamicsFEM,
    rectangle_mesh,
    sod_tube,
    uniform_flow,
)


@pytest.fixture
def periodic_solver():
    mesh = rectangle_mesh(24, 24, periodic=True)
    return GasDynamicsFEM(mesh)


def test_solver_validation():
    mesh = rectangle_mesh(4, 4)
    with pytest.raises(ValueError):
        GasDynamicsFEM(mesh, gamma=0.9)
    with pytest.raises(ValueError):
        GasDynamicsFEM(mesh, cfl=0.0)


def test_uniform_flow_is_steady(periodic_solver):
    state = uniform_flow(periodic_solver.mesh, rho=1.0, u=0.4, v=-0.3,
                         pressure=2.0)
    new, dt = periodic_solver.step(state)
    assert dt > 0
    assert np.allclose(new.u, state.u, atol=1e-12)


def test_conservation_on_periodic_mesh():
    mesh = rectangle_mesh(48, 6, periodic=True, width=1.0, height=0.125)
    solver = GasDynamicsFEM(mesh)
    state = sod_tube(mesh)
    before = solver.totals(state)
    state, _ = solver.run(state, 40)
    after = solver.totals(state)
    for key in before:
        assert after[key] == pytest.approx(before[key], abs=1e-10), key


def test_sod_tube_develops_waves():
    mesh = rectangle_mesh(128, 4, periodic=True, width=1.0, height=1 / 32)
    solver = GasDynamicsFEM(mesh)
    state = sod_tube(mesh)
    state, dts = solver.run(state, 120)
    rho = state.rho
    # density must now take intermediate values between the two initial
    # states (shock plateau and rarefaction fan)
    intermediate = np.sum((rho > 0.2) & (rho < 0.9))
    assert intermediate > mesh.n_points * 0.05
    # and remain physical
    assert rho.min() > 0
    assert state.pressure().min() > 0


def test_timestep_shrinks_with_stronger_waves(periodic_solver):
    quiet = uniform_flow(periodic_solver.mesh, pressure=1.0)
    loud = uniform_flow(periodic_solver.mesh, pressure=100.0)
    assert periodic_solver.stable_dt(loud) < periodic_solver.stable_dt(quiet)


def test_max_wavespeed_uniform_state(periodic_solver):
    state = uniform_flow(periodic_solver.mesh, rho=1.0, u=0.0, v=0.0,
                         pressure=1.0, gamma=1.4)
    # c = sqrt(gamma p / rho) = sqrt(1.4)
    assert periodic_solver.max_wavespeed(state) == \
        pytest.approx(np.sqrt(1.4), rel=1e-6)


def test_dissipation_damps_perturbations():
    mesh = rectangle_mesh(16, 16, periodic=True)
    solver = GasDynamicsFEM(mesh, dissipation=1.0)
    state = uniform_flow(mesh)
    rng = np.random.default_rng(11)
    state.u[:, 0] += 0.01 * rng.standard_normal(mesh.n_points)
    var0 = state.rho.var()
    state, _ = solver.run(state, 30)
    assert state.rho.var() < var0


def test_flops_per_step_uses_paper_constant():
    mesh = rectangle_mesh(8, 8)
    solver = GasDynamicsFEM(mesh)
    assert solver.flops_per_step() == 437.0 * mesh.n_points


def test_nonperiodic_mesh_runs():
    mesh = rectangle_mesh(16, 16)
    solver = GasDynamicsFEM(mesh)
    state = uniform_flow(mesh, u=0.1)
    state, dt = solver.step(state)
    assert np.isfinite(state.u).all()
