"""Physics tests for the PIC implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.pic import (
    Grid3D,
    PICSimulation,
    ParticleSet,
    beam_plasma,
    deposit_charge,
    gather_field,
    solve_fields,
    tsc_weights,
)


@pytest.fixture
def grid():
    return Grid3D(8, 8, 8)


def test_grid_validation():
    with pytest.raises(ValueError):
        Grid3D(2, 8, 8)


def test_grid_wrap_is_periodic(grid):
    pos = np.array([[8.5, -0.5, 16.0]])
    wrapped = grid.wrap(pos)
    assert np.allclose(wrapped, [[0.5, 7.5, 0.0]])


def test_tsc_weights_sum_to_one(grid):
    rng = np.random.default_rng(1)
    pos = rng.uniform(0, 8, size=(100, 3))
    _, w = tsc_weights(pos, grid)
    assert np.allclose(w.sum(axis=2), 1.0)


@given(x=st.floats(0.0, 7.999), y=st.floats(0.0, 7.999),
       z=st.floats(0.0, 7.999))
@settings(max_examples=50)
def test_tsc_weights_nonnegative_and_normalised(x, y, z):
    grid = Grid3D(8, 8, 8)
    _, w = tsc_weights(np.array([[x, y, z]]), grid)
    assert np.all(w >= 0)
    assert np.allclose(w.sum(axis=2), 1.0)


def test_deposit_conserves_charge(grid):
    rng = np.random.default_rng(2)
    pos = rng.uniform(0, 8, size=(500, 3))
    rho = deposit_charge(pos, charge=-1.0, grid=grid)
    assert rho.sum() == pytest.approx(-500.0)


def test_deposit_centered_particle_hits_27_points(grid):
    rho = deposit_charge(np.array([[4.25, 4.25, 4.25]]), 1.0, grid)
    assert np.count_nonzero(rho) == 27
    assert rho.sum() == pytest.approx(1.0)


def test_gather_of_uniform_field_is_exact(grid):
    rng = np.random.default_rng(3)
    pos = rng.uniform(0, 8, size=(200, 3))
    uniform = [np.full(grid.shape, 2.5), np.zeros(grid.shape),
               np.full(grid.shape, -1.0)]
    e = gather_field(uniform, pos, grid)
    assert np.allclose(e[:, 0], 2.5)
    assert np.allclose(e[:, 1], 0.0)
    assert np.allclose(e[:, 2], -1.0)


def test_poisson_solves_single_mode():
    """A single Fourier mode of rho must return phi = rho_k/k^2 exactly."""
    grid = Grid3D(16, 16, 16)
    x = np.arange(16)
    kx = 2 * np.pi / 16
    rho = np.cos(kx * x)[:, None, None] * np.ones(grid.shape)
    phi, fields = solve_fields(rho, grid)
    expected_phi = rho / kx ** 2
    assert np.allclose(phi, expected_phi, atol=1e-10)
    # E_x = -d(phi)/dx = +sin(kx x)/kx; E_y = E_z = 0
    assert np.allclose(fields[1], 0.0, atol=1e-10)
    assert np.allclose(fields[2], 0.0, atol=1e-10)
    expected_ex = np.sin(kx * x)[:, None, None] / kx * np.ones(grid.shape)
    assert np.allclose(fields[0], expected_ex, atol=1e-10)


def test_poisson_rejects_wrong_shape(grid):
    with pytest.raises(ValueError):
        solve_fields(np.zeros((4, 4, 4)), grid)


def test_neutral_uniform_plasma_stays_quiet(grid):
    """A uniform plasma has (almost) no fields and no secular heating."""
    # particles exactly on grid points, uniform density
    xs = np.arange(8)
    pos = np.stack(np.meshgrid(xs, xs, xs, indexing="ij"),
                   axis=-1).reshape(-1, 3).astype(float)
    particles = ParticleSet(pos.copy(), np.zeros_like(pos), -1.0, 1.0)
    sim = PICSimulation(grid, particles, dt=0.1)
    diag = sim.step()
    assert diag["field_energy"] == pytest.approx(0.0, abs=1e-12)
    assert diag["kinetic_energy"] == pytest.approx(0.0, abs=1e-12)


def test_momentum_conserved_by_self_forces():
    """TSC deposit/gather symmetry: total momentum change ~ 0."""
    grid = Grid3D(8, 8, 8)
    rng = np.random.default_rng(4)
    n = 400
    particles = ParticleSet(
        rng.uniform(0, 8, size=(n, 3)),
        rng.normal(0, 0.01, size=(n, 3)), -1.0, 1.0)
    sim = PICSimulation(grid, particles, dt=0.1)
    p_before = particles.momentum.copy()
    sim.step()
    p_after = particles.momentum
    # self-force cancellation: momentum drift tiny relative to thermal scale
    assert np.all(np.abs(p_after - p_before) < 1e-8 * n)


def test_two_step_charge_conservation():
    grid = Grid3D(8, 8, 8)
    particles = beam_plasma(grid, plasma_per_cell=2, beam_per_cell=1,
                            seed=5)
    sim = PICSimulation(grid, particles, dt=0.1)
    d1 = sim.step()
    d2 = sim.step()
    assert d1["total_charge"] == pytest.approx(-particles.n)
    assert d2["total_charge"] == pytest.approx(-particles.n)


def test_beam_plasma_initial_condition():
    grid = Grid3D(8, 8, 8)
    p = beam_plasma(grid, plasma_per_cell=8, beam_per_cell=1,
                    beam_velocity=0.5, seed=6)
    assert p.n == 9 * grid.n_cells
    n_beam = grid.n_cells
    beam_v = p.velocities[-n_beam:]
    assert np.allclose(beam_v[:, 0], 0.5)
    assert np.allclose(beam_v[:, 1:], 0.0)
    # plasma is roughly thermal, zero-mean
    plasma_v = p.velocities[:-n_beam]
    assert abs(plasma_v.mean()) < 0.01


def test_beam_instability_grows_field_energy():
    """The paper's test problem is a two-stream-unstable configuration:
    electrostatic field energy must grow from the noise level."""
    grid = Grid3D(8, 8, 8)
    particles = beam_plasma(grid, plasma_per_cell=8, beam_per_cell=1,
                            thermal_velocity=0.01, beam_velocity=1.5,
                            seed=7)
    sim = PICSimulation(grid, particles, dt=0.3)
    history = sim.run(60)
    early = history[1]["field_energy"]
    late = max(h["field_energy"] for h in history[30:])
    assert late > 1.8 * early


def test_flops_per_step_positive_and_scales():
    grid_small, grid_big = Grid3D(8, 8, 8), Grid3D(16, 16, 16)
    p_small = beam_plasma(grid_small, 2, 1, seed=8)
    p_big = beam_plasma(grid_big, 2, 1, seed=8)
    f_small = PICSimulation(grid_small, p_small).flops_per_step()
    f_big = PICSimulation(grid_big, p_big).flops_per_step()
    assert f_small > 0
    assert f_big > 7 * f_small  # 8x particles/cells


def test_particleset_validation():
    with pytest.raises(ValueError):
        ParticleSet(np.zeros((5, 3)), np.zeros((4, 3)), -1.0, 1.0)
    with pytest.raises(ValueError):
        ParticleSet(np.zeros((5, 3)), np.zeros((5, 3)), -1.0, 0.0)


def test_simulation_rejects_bad_dt():
    grid = Grid3D(8, 8, 8)
    p = beam_plasma(grid, 1, 0, seed=9)
    with pytest.raises(ValueError):
        PICSimulation(grid, p, dt=0.0)
