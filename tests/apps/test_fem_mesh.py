"""Tests for mesh generation and Morton ordering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps.fem import (
    TriMesh,
    element_permutation,
    large_mesh,
    morton_decode,
    morton_encode,
    morton_order_mesh,
    point_permutation,
    rectangle_mesh,
    small_mesh,
)


def test_paper_mesh_sizes_exact():
    small = small_mesh()
    assert small.n_points == 46545
    assert small.n_elements == 92160
    large = large_mesh()
    assert large.n_points == 263169
    assert large.n_elements == 524288


def test_two_elements_per_point_ratio():
    mesh = small_mesh()
    assert 1.9 <= mesh.n_elements / mesh.n_points <= 2.05


def test_average_six_elements_per_point():
    mesh = rectangle_mesh(32, 32, periodic=True)
    counts = mesh.elements_per_point()
    assert counts.mean() == pytest.approx(6.0)
    assert counts.max() <= 7


def test_areas_positive_and_sum_to_domain():
    mesh = rectangle_mesh(8, 8, width=2.0, height=1.0)
    areas = mesh.areas()
    assert np.all(areas > 0)
    assert areas.sum() == pytest.approx(2.0)


def test_periodic_areas_positive_and_sum_to_domain():
    mesh = rectangle_mesh(8, 8, periodic=True, width=1.0, height=1.0)
    areas = mesh.areas()
    assert np.all(areas > 0)
    assert areas.sum() == pytest.approx(1.0)


def test_shape_gradients_sum_to_zero():
    """Partition of unity: shape-function gradients cancel per element."""
    for periodic in (False, True):
        mesh = rectangle_mesh(6, 5, periodic=periodic)
        bx, by = mesh.shape_gradients()
        assert np.allclose(bx.sum(axis=1), 0.0, atol=1e-12)
        assert np.allclose(by.sum(axis=1), 0.0, atol=1e-12)


def test_shape_gradients_reproduce_linear_function():
    """grad(N) applied to nodal values of f = 2x + 3y gives (2, 3)."""
    mesh = rectangle_mesh(5, 7)
    f = 2.0 * mesh.points[:, 0] + 3.0 * mesh.points[:, 1]
    bx, by = mesh.shape_gradients()
    fe = f[mesh.triangles]
    assert np.allclose((bx * fe).sum(axis=1), 2.0)
    assert np.allclose((by * fe).sum(axis=1), 3.0)


def test_lumped_mass_sums_to_total_area():
    mesh = rectangle_mesh(9, 4, width=3.0, height=2.0)
    assert mesh.lumped_mass().sum() == pytest.approx(6.0)


def test_mesh_validation():
    with pytest.raises(ValueError):
        TriMesh(np.zeros((4, 3)), np.zeros((1, 3), dtype=int))
    with pytest.raises(ValueError):
        TriMesh(np.zeros((4, 2)), np.array([[0, 1, 9]]))
    with pytest.raises(ValueError):
        rectangle_mesh(0, 5)


# -- Morton ordering -----------------------------------------------------------

@given(i=st.integers(0, 2**21 - 1), j=st.integers(0, 2**21 - 1))
def test_morton_roundtrip(i, j):
    code = morton_encode(np.array([i]), np.array([j]))
    i2, j2 = morton_decode(code)
    assert (i2[0], j2[0]) == (i, j)


def test_morton_encode_rejects_bad_coords():
    with pytest.raises(ValueError):
        morton_encode(np.array([-1]), np.array([0]))
    with pytest.raises(ValueError):
        morton_encode(np.array([2**21]), np.array([0]))


def test_morton_is_strictly_monotonic_on_grid_diagonal():
    n = np.arange(100)
    codes = morton_encode(n, n)
    assert np.all(np.diff(codes) > 0)


def test_point_permutation_is_a_permutation():
    mesh = rectangle_mesh(13, 7)
    perm = point_permutation(mesh)
    assert sorted(perm) == list(range(mesh.n_points))
    eperm = element_permutation(mesh)
    assert sorted(eperm) == list(range(mesh.n_elements))


def test_morton_ordering_preserves_geometry():
    mesh = rectangle_mesh(10, 10)
    ordered = morton_order_mesh(mesh)
    assert ordered.n_points == mesh.n_points
    assert ordered.n_elements == mesh.n_elements
    assert ordered.areas().sum() == pytest.approx(mesh.areas().sum())
    assert np.all(ordered.areas() > 0)
    # same point set, different order
    assert np.allclose(np.sort(ordered.points.view("f8"), axis=0),
                       np.sort(mesh.points.view("f8"), axis=0))


def test_morton_ordering_improves_index_locality():
    """Successive elements reference nearby point indices after ordering
    — far closer than a random element order would."""
    mesh = rectangle_mesh(64, 64)
    ordered = morton_order_mesh(mesh)

    def mean_jump(m):
        mins = m.triangles.min(axis=1)
        return float(np.abs(np.diff(mins)).mean())

    rng = np.random.default_rng(13)
    shuffled = TriMesh(ordered.points,
                       ordered.triangles[rng.permutation(mesh.n_elements)])
    assert mean_jump(ordered) < 0.1 * mean_jump(shuffled)
