"""PPM validation against the exact Riemann solution."""

import numpy as np
import pytest

from repro.apps.ppm import (
    PPMSolver2D,
    RiemannState,
    exact_riemann,
    sample_riemann,
    sod_exact,
    sod_state,
)


def test_sod_star_region_matches_literature():
    """Toro's book quotes p* = 0.30313, u* = 0.92745 for Sod."""
    p, u = exact_riemann(RiemannState(1.0, 0.0, 1.0),
                         RiemannState(0.125, 0.0, 0.1))
    assert p == pytest.approx(0.30313, abs=2e-5)
    assert u == pytest.approx(0.92745, abs=2e-5)


def test_symmetric_collision_has_zero_star_velocity():
    p, u = exact_riemann(RiemannState(1.0, 1.0, 1.0),
                         RiemannState(1.0, -1.0, 1.0))
    assert u == pytest.approx(0.0, abs=1e-12)
    assert p > 1.0   # two shocks compress the middle


def test_vacuum_generation_detected():
    with pytest.raises(ValueError):
        exact_riemann(RiemannState(1.0, -10.0, 1.0),
                      RiemannState(1.0, 10.0, 1.0))


def test_state_validation():
    with pytest.raises(ValueError):
        RiemannState(-1.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        sod_exact(np.array([0.5]), t=0.0)


def test_sampled_solution_limits():
    """Far left/right of the fan the initial states are untouched."""
    left = RiemannState(1.0, 0.0, 1.0)
    right = RiemannState(0.125, 0.0, 0.1)
    rho, u, p = sample_riemann(left, right, np.array([-10.0, 10.0]))
    assert (rho[0], u[0], p[0]) == pytest.approx((1.0, 0.0, 1.0))
    assert (rho[1], u[1], p[1]) == pytest.approx((0.125, 0.0, 0.1))


def test_sampled_solution_monotone_density_through_rarefaction():
    rho, _u, _p = sod_exact(np.linspace(0.2, 0.45, 50), t=0.15)
    assert np.all(np.diff(rho) <= 1e-12)


def _run_sod(nx, t_end=0.15):
    solver = PPMSolver2D(sod_state(nx, 8), dx=1.0 / nx, dy=1.0 / 8)
    t = 0.0
    while t < t_end:
        dt = min(solver.stable_dt(), t_end - t)
        solver.u = solver._padded_sweep(solver.u, dt, axis=1)
        solver.u = solver._padded_sweep(solver.u, dt, axis=2)
        t += dt
    return solver, t


def test_ppm_matches_exact_sod_in_clean_region():
    nx = 256
    solver, t = _run_sod(nx)
    x = (np.arange(nx) + 0.5) / nx
    rho_exact, u_exact, p_exact = sod_exact(x, t)
    # the periodic wrap launches its own waves from x=0/1; compare the
    # region only the x=0.5 fan has reached
    mask = np.abs(x - 0.5) < 0.22
    rho_num = solver.u[0][:, 0]
    err = np.abs(rho_num - rho_exact)[mask].mean()
    assert err < 0.03, f"L1 density error {err:.4f}"


def test_ppm_sod_error_decreases_with_resolution():
    def error(nx):
        solver, t = _run_sod(nx)
        x = (np.arange(nx) + 0.5) / nx
        rho_exact, _u, _p = sod_exact(x, t)
        mask = np.abs(x - 0.5) < 0.22
        return float(np.abs(solver.u[0][:, 0] - rho_exact)[mask].mean())

    assert error(256) < 0.75 * error(64)
