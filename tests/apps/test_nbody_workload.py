"""Tests for the N-body performance workload (paper Fig 8 shapes)."""

import pytest

from repro.apps.nbody import (
    NBodyWorkload,
    problem_2m,
    problem_32k,
    problem_256k,
)
from repro.core import spp1000
from repro.core.units import to_seconds
from repro.runtime import Placement

CFG = spp1000(2)


@pytest.fixture(scope="module")
def w32():
    return NBodyWorkload(problem_32k(), CFG)


def test_problem_sizes():
    assert problem_32k().n_bodies == 32768
    assert problem_256k().n_bodies == 262144
    assert problem_2m().n_bodies == 2097152


def test_interactions_grow_logarithmically():
    assert problem_2m().interactions_per_body() > \
        problem_32k().interactions_per_body()
    ratio = (problem_2m().interactions_per_body()
             / problem_32k().interactions_per_body())
    assert ratio < 2.0  # log, not linear


def test_single_cpu_rate_near_27_5(w32):
    r = w32.run_shared(1)
    assert 20.0 <= r.mflops <= 40.0


def test_hypernode_crossing_degradation_2_to_7_percent(w32):
    w = NBodyWorkload(problem_256k(), CFG)
    for p in (2, 4, 8):
        t1 = w.run_shared(p, Placement.HIGH_LOCALITY).time_ns
        t2 = w.run_shared(p, Placement.UNIFORM).time_ns
        degradation = (t2 - t1) / t1
        assert 0.002 <= degradation <= 0.09, (
            f"p={p}: degradation {degradation:.1%}")


def test_16_processor_rate_near_384(w32):
    r = w32.run_shared(16, Placement.UNIFORM)
    assert 300.0 <= r.mflops <= 500.0


def test_speedup_at_16_depends_on_problem_size():
    speedups = {}
    for prob in (problem_32k(), problem_2m()):
        w = NBodyWorkload(prob, CFG)
        base = w.run_shared(1).time_ns
        speedups[prob.label] = base / w.run_shared(
            16, Placement.UNIFORM).time_ns
    assert abs(speedups["32K"] - speedups["2M"]) > 0.5


def test_c90_tree_code_rate_near_120(w32):
    total = w32.flops_per_step() * w32.problem.n_steps
    rate = total / to_seconds(w32.run_c90()) / 1e6
    assert 95.0 <= rate <= 175.0


def test_16_processors_beat_the_c90(w32):
    """Paper: 384 MFLOP/s at 16 compares favourably to the 120 MFLOP/s
    vectorised C90 tree code."""
    r16 = w32.run_shared(16, Placement.UNIFORM)
    total = w32.flops_per_step() * w32.problem.n_steps
    c90 = total / to_seconds(w32.run_c90()) / 1e6
    assert r16.mflops > 2.0 * c90


def test_pvm_single_task_at_least_as_fast_as_shared(w32):
    """Paper §5.3.2: the PVM code's single-processor performance is
    somewhat faster than the shared-memory version (private data)."""
    assert w32.run_pvm(1).time_ns <= 1.02 * w32.run_shared(1).time_ns


def test_pvm_overheads_prohibitive_at_scale(w32):
    """Paper: packing/sending overheads degrade PVM below shared."""
    assert w32.run_pvm(16, Placement.UNIFORM).time_ns > \
        w32.run_shared(16, Placement.UNIFORM).time_ns
