"""End-to-end integration: shared-memory heat on the simulated machine."""

import numpy as np
import pytest

from repro.apps.kernels import pvm_heat, serial_heat, shared_heat
from repro.runtime import Placement


def ic(n=32, seed=31):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, n)


@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_shared_memory_run_matches_serial_exactly(n_threads):
    u0 = ic()
    expected = serial_heat(u0, 6)
    result = shared_heat(u0, 6, n_threads)
    assert np.array_equal(result.field, expected)


def test_shared_memory_and_pvm_agree():
    u0 = ic()
    shared = shared_heat(u0, 4, 2)
    pvm = pvm_heat(u0, 4, 2)
    assert np.array_equal(shared.field, pvm.field)


def test_cross_hypernode_threads_produce_remote_traffic():
    u0 = ic()
    local = shared_heat(u0, 3, 2, placement=Placement.HIGH_LOCALITY)
    crossed = shared_heat(u0, 3, 2, placement=Placement.UNIFORM)
    assert np.array_equal(local.field, crossed.field)
    assert crossed.remote_misses > local.remote_misses
    assert crossed.time_ns > local.time_ns


def test_counters_show_real_memory_activity():
    result = shared_heat(ic(), 3, 2)
    assert result.cache_misses > 0


def test_validation():
    with pytest.raises(ValueError):
        shared_heat(ic(30), 1, 4)   # 30 cells over 4 threads
    with pytest.raises(ValueError):
        shared_heat(ic(), 1, 2, alpha=0.7)
