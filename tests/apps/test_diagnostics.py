"""Tests for the application diagnostics modules."""

import math

import numpy as np
import pytest

from repro.apps.fem import FEMSimulation, rectangle_mesh, sod_tube, uniform_flow
from repro.apps.nbody import (
    lagrangian_radius,
    plummer_density,
    plummer_sphere,
    radial_density_profile,
    uniform_cube,
    virial_ratio,
)
from repro.apps.pic import (
    Grid3D,
    PICSimulation,
    beam_plasma,
    density_spectrum,
    energy_budget,
    field_energy_growth_rate,
    velocity_histogram,
)


# -- PIC -----------------------------------------------------------------

def test_growth_rate_of_synthetic_exponential():
    dt = 0.5
    gamma = 0.3
    history = [{"field_energy": math.exp(2 * gamma * dt * k)}
               for k in range(20)]
    est = field_energy_growth_rate(history, dt, (2, 18))
    assert est == pytest.approx(gamma, rel=1e-9)


def test_growth_rate_window_validation():
    history = [{"field_energy": 1.0}] * 5
    with pytest.raises(ValueError):
        field_energy_growth_rate(history, 0.1, (3, 3))
    with pytest.raises(ValueError):
        field_energy_growth_rate(history, 0.1, (0, 10))


def test_velocity_histogram_of_beam_plasma_is_bimodal():
    grid = Grid3D(8, 8, 8)
    particles = beam_plasma(grid, 8, 1, thermal_velocity=0.05,
                            beam_velocity=1.0, seed=40)
    centres, counts = velocity_histogram(particles, component=0)
    # the plasma peak near 0 and the beam near 1.0 both populated
    near_zero = counts[np.abs(centres) < 0.2].sum()
    near_beam = counts[np.abs(centres - 1.0) < 0.2].sum()
    assert near_zero > 8 * near_beam / 2  # plasma is 8x denser
    assert near_beam > 0
    with pytest.raises(ValueError):
        velocity_histogram(particles, component=5)


def test_density_spectrum_peaks_at_seeded_mode():
    rho = np.zeros((16, 8, 8))
    x = np.arange(16)
    rho += np.cos(2 * np.pi * 3 * x / 16)[:, None, None]
    power = density_spectrum(rho, axis=0)
    assert int(np.argmax(power[1:9])) + 1 == 3


def test_energy_budget_reports_drift():
    grid = Grid3D(8, 8, 8)
    particles = beam_plasma(grid, 4, 0, seed=41)
    sim = PICSimulation(grid, particles, dt=0.1)
    sim.run(5)
    budget = energy_budget(sim.history)
    assert budget["initial_total"] > 0
    assert budget["relative_drift"] < 0.5
    with pytest.raises(ValueError):
        energy_budget([])


# -- N-body --------------------------------------------------------------

def test_plummer_profile_matches_analytic():
    bodies = plummer_sphere(20000, seed=42)
    radii, density = radial_density_profile(bodies, bins=10, r_max=2.0)
    expected = plummer_density(radii)
    # inner bins have plenty of particles: within 30%
    ratio = density[:5] / expected[:5]
    assert np.all((0.7 < ratio) & (ratio < 1.3)), ratio


def test_uniform_cube_profile_is_flat_inside():
    bodies = uniform_cube(50000, seed=43)
    radii, density = radial_density_profile(bodies, bins=8, r_max=0.4)
    inner = density[1:5]
    assert inner.max() / inner.min() < 1.3


def test_half_mass_radius_of_plummer():
    bodies = plummer_sphere(20000, seed=44)
    r_half = lagrangian_radius(bodies, 0.5)
    # analytic Plummer half-mass radius: a/sqrt(2^(2/3)-1) ~ 1.30 a
    assert 1.0 <= r_half <= 1.7
    with pytest.raises(ValueError):
        lagrangian_radius(bodies, 1.5)


def test_virial_ratio_near_unity_for_plummer():
    bodies = plummer_sphere(3000, seed=45)
    q = virial_ratio(bodies)
    assert 0.7 <= q <= 1.3


def test_virial_ratio_zero_for_cold_system():
    bodies = uniform_cube(100, seed=46)
    assert virial_ratio(bodies) == 0.0


# -- FEM ------------------------------------------------------------------

def test_fem_simulation_history_and_conservation():
    mesh = rectangle_mesh(24, 6, periodic=True, width=1.0, height=0.25)
    sim = FEMSimulation(mesh, sod_tube(mesh))
    sim.run(n_steps=10)
    assert len(sim.history) == 10
    assert sim.is_physical()
    first, last = sim.history[0], sim.history[-1]
    assert last["mass"] == pytest.approx(first["mass"], abs=1e-12)
    assert last["time"] > first["time"] > 0


def test_fem_simulation_run_until_time():
    mesh = rectangle_mesh(16, 16, periodic=True)
    sim = FEMSimulation(mesh, uniform_flow(mesh, u=0.2))
    sim.run(until_time=0.05)
    assert sim.time >= 0.05
    with pytest.raises(ValueError):
        sim.run()
    with pytest.raises(ValueError):
        sim.run(n_steps=1, until_time=1.0)


def test_fem_mach_number_uniform_flow():
    mesh = rectangle_mesh(8, 8, periodic=True)
    # rho=1, p=1, gamma=1.4 -> c=sqrt(1.4); u=0.5 -> M=0.4226
    sim = FEMSimulation(mesh, uniform_flow(mesh, u=0.5))
    mach = sim.mach_number()
    assert np.allclose(mach, 0.5 / np.sqrt(1.4))
