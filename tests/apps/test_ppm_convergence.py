"""Convergence and accuracy tests for the PPM scheme."""

import numpy as np
import pytest

from repro.apps.ppm import GammaLawEOS, PPMSolver2D, uniform_state


def advecting_wave(nx, amplitude=1e-3, velocity=1.0):
    """A smooth acoustic-free density wave advected by uniform flow."""
    u = uniform_state(nx, 8, rho=1.0, ux=velocity, p=1.0)
    x = (np.arange(nx) + 0.5) / nx
    perturbation = amplitude * np.sin(2 * np.pi * x)[:, None]
    rho = 1.0 + perturbation
    # entropy wave: pressure constant, velocity constant
    gamma = 1.4
    u[0] = rho
    u[1] = rho * velocity
    u[2] = 0.0
    u[3] = 1.0 / (gamma - 1.0) + 0.5 * rho * velocity ** 2
    return u


def advection_error(nx, n_periods=0.25):
    solver = PPMSolver2D(advecting_wave(nx), dx=1.0 / nx, dy=1.0 / 8,
                         cfl=0.4)
    t_end = n_periods  # domain length 1, velocity 1
    t = 0.0
    while t < t_end:
        dt = min(solver.stable_dt(), t_end - t)
        solver.u = solver._padded_sweep(solver.u, dt, axis=1)
        solver.u = solver._padded_sweep(solver.u, dt, axis=2)
        t += dt
    # exact solution: the initial profile shifted by t_end
    x = (np.arange(nx) + 0.5) / nx
    exact = 1.0 + 1e-3 * np.sin(2 * np.pi * (x - t_end))
    return float(np.abs(solver.u[0][:, 0] - exact).mean())


def test_smooth_advection_converges_with_resolution():
    """Error decreases with resolution (the first-order-in-time update
    bounds the rate; PROMETHEUS's characteristic tracing would steepen
    it — documented substitution, see DESIGN.md)."""
    e_coarse = advection_error(32)
    e_mid = advection_error(64)
    e_fine = advection_error(128)
    assert e_mid < e_coarse
    assert e_fine < 0.55 * e_coarse, (e_coarse, e_fine)


def test_advected_wave_keeps_pressure_uniform():
    solver = PPMSolver2D(advecting_wave(64), dx=1 / 64, dy=1 / 8, cfl=0.4)
    solver.run(20)
    _rho, _ux, _uy, p = solver.primitive_fields()
    assert np.abs(p - 1.0).max() < 5e-3


def test_wave_amplitude_not_amplified():
    """Monotone schemes may damp but never amplify a smooth wave."""
    solver = PPMSolver2D(advecting_wave(64), dx=1 / 64, dy=1 / 8, cfl=0.4)
    solver.run(30)
    rho = solver.u[0][:, 0]
    assert rho.max() <= 1.0 + 1e-3 + 1e-9
    assert rho.min() >= 1.0 - 1e-3 - 1e-9
