"""Tests for the PPM tile decomposition (paper §5.4)."""

import numpy as np
import pytest

from repro.apps.ppm import GHOST, PPMSolver2D, TiledPPM, blast_state, sod_state


def test_tiling_must_divide_grid():
    with pytest.raises(ValueError):
        TiledPPM(blast_state(50, 50), 4, 4)


def test_tiles_narrower_than_ghost_frame_rejected():
    with pytest.raises(ValueError):
        TiledPPM(blast_state(48, 48), 24, 24)  # 2x2 tiles < 4 ghosts


def test_tile_count_and_geometry():
    tiled = TiledPPM(blast_state(48, 24), 4, 2)
    assert len(tiled.tiles) == 8
    for tile in tiled.tiles:
        assert tile.data.shape == (4, 12 + 2 * GHOST, 12 + 2 * GHOST)


def test_gather_roundtrips_initial_state():
    u0 = blast_state(48, 48)
    tiled = TiledPPM(u0, 4, 4)
    assert np.array_equal(tiled.gather(), u0)


def test_tiled_is_bit_identical_to_monolithic():
    """The paper's decomposition argument: tiles + one exchange per step
    reproduce the global solution exactly."""
    u0 = blast_state(48, 48)
    mono = PPMSolver2D(u0, dx=1 / 48, dy=1 / 48)
    tiled = TiledPPM(u0, 4, 4, dx=1 / 48, dy=1 / 48)
    for _ in range(8):
        dt_m = mono.step()
        dt_t = tiled.step()
        assert dt_m == dt_t
    assert np.array_equal(mono.u, tiled.gather())


def test_tiled_matches_for_asymmetric_tiles():
    u0 = sod_state(60, 24)
    mono = PPMSolver2D(u0, dx=1 / 60, dy=1 / 24)
    tiled = TiledPPM(u0, 5, 2, dx=1 / 60, dy=1 / 24)
    for _ in range(5):
        mono.step()
        tiled.step()
    assert np.array_equal(mono.u, tiled.gather())


def test_conservation_of_tiled_run():
    tiled = TiledPPM(sod_state(48, 8), 4, 1, dx=1 / 48, dy=1 / 8)
    before = tiled.totals()
    tiled.run(20)
    after = tiled.totals()
    for key in before:
        assert after[key] == pytest.approx(before[key], abs=1e-12)


def test_exchange_byte_accounting():
    tiled = TiledPPM(blast_state(48, 48), 4, 4)
    start = tiled.exchanged_bytes
    tiled.step()
    per_step = tiled.exchanged_bytes - start
    expected_per_tile = tiled.tiles[0].ghost_cells * 4 * 8
    assert per_step == 16 * expected_per_tile
