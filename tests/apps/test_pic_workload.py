"""Tests for the PIC performance workload (paper Fig 6 / Table 1 shapes)."""

import pytest

from repro.apps.pic import (
    PICWorkload,
    large_problem,
    small_problem,
)
from repro.core import spp1000
from repro.core.units import to_seconds
from repro.perfmodel import TeamSpec
from repro.runtime import Placement

CFG = spp1000(2)


@pytest.fixture(scope="module")
def small():
    return PICWorkload(small_problem(), CFG)


@pytest.fixture(scope="module")
def large():
    return PICWorkload(large_problem(), CFG)


def test_problem_sizes_match_table1():
    assert small_problem().n_particles == 294912
    assert large_problem().n_particles == 1179648
    assert small_problem().n_steps == 500


def test_flops_per_step_scale_with_particles(small, large):
    ratio = large.flops_per_step() / small.flops_per_step()
    assert 3.5 <= ratio <= 4.5  # 4x the particles dominate


def test_shared_step_has_four_barriers(small):
    team = TeamSpec(CFG, 4)
    assert small.shared_step(team).barriers == 4


def test_pvm_step_has_no_barriers_but_messages(small):
    team = TeamSpec(CFG, 4)
    step = small.pvm_step(team)
    assert step.barriers == 0
    msgs = [m for phases in step.thread_phases
            for p in phases for m in p.messages]
    assert msgs  # the all-reduce communicates


def test_pvm_single_task_sends_nothing(small):
    team = TeamSpec(CFG, 1)
    step = small.pvm_step(team)
    msgs = [m for phases in step.thread_phases
            for p in phases for m in p.messages]
    assert msgs == []


def test_shared_speedup_monotone_to_16(small):
    times = [small.run_shared(n).time_ns for n in (1, 2, 4, 8, 16)]
    assert times == sorted(times, reverse=True)


def test_shared_outperforms_pvm_at_scale(small):
    """Paper §3.1/Fig 6: the shared-memory version consistently
    outperforms the PVM version; PVM reaches roughly half to
    three-quarters of shared performance."""
    for n in (4, 8, 16):
        t_shared = small.run_shared(n).time_ns
        t_pvm = small.run_pvm(n).time_ns
        assert t_pvm > t_shared, f"PVM beat shared at {n} threads"
    ratio16 = small.run_pvm(16).time_ns / small.run_shared(16).time_ns
    assert 1.1 <= ratio16 <= 2.6, f"pvm/shared time ratio {ratio16:.2f}"


def test_single_cpu_rate_matches_paper_order(small):
    """Paper-era single-CPU PIC rates on the SPP were tens of MFLOP/s."""
    r = small.run_shared(1)
    assert 10.0 <= r.mflops <= 45.0


def test_c90_reference_rate_in_paper_band(small, large):
    for w, paper_mflops in [(small, 355.0), (large, 369.0)]:
        t_ns = w.run_c90()
        rate = (w.flops_per_step() * w.problem.n_steps) / to_seconds(t_ns) / 1e6
        assert 0.75 * paper_mflops <= rate <= 1.25 * paper_mflops


def test_large_problem_runs_slower_per_particle(small, large):
    """The large problem spills the caches harder (Fig 6's two heights)."""
    r_small = small.run_shared(8)
    r_large = large.run_shared(8)
    per_part_small = r_small.time_ns / small.problem.n_particles
    per_part_large = r_large.time_ns / large.problem.n_particles
    assert per_part_large >= 0.95 * per_part_small


def test_uniform_placement_slower_than_high_locality_at_8(small):
    t_local = small.run_shared(8, Placement.HIGH_LOCALITY).time_ns
    t_uniform = small.run_shared(8, Placement.UNIFORM).time_ns
    assert t_uniform > t_local


def test_pic_workload_single_hypernode_config(small):
    """The workloads run on any machine size, including one hypernode."""
    from repro.apps.pic import PICWorkload, small_problem

    w = PICWorkload(small_problem(), spp1000(1))
    r8 = w.run_shared(8)
    assert r8.mflops > 0
    with pytest.raises(ValueError):
        w.run_shared(9)   # does not fit one hypernode
