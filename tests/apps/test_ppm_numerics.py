"""Physics tests for the PPM hydrodynamics code."""

import numpy as np
import pytest

from repro.apps.ppm import (
    GammaLawEOS,
    PPMSolver2D,
    blast_state,
    hllc_flux,
    ppm_reconstruct,
    sod_state,
    sweep,
    uniform_state,
    vanleer_slopes,
)


# -- reconstruction ---------------------------------------------------------

def test_reconstruction_exact_for_linear_data():
    x = np.linspace(0, 1, 20)[:, None]
    a = 2.0 + 3.0 * x
    left, right = ppm_reconstruct(a)
    # interior parabola edges of linear data sit mid-way between cells
    assert np.allclose(right[2:-3, 0], 0.5 * (a[2:-3, 0] + a[3:-2, 0]))
    assert np.allclose(left[3:-2, 0], 0.5 * (a[2:-3, 0] + a[3:-2, 0]))


def test_reconstruction_is_monotone_at_a_jump():
    a = np.where(np.arange(20) < 10, 1.0, 0.125)[:, None]
    left, right = ppm_reconstruct(a)
    lo, hi = a.min(), a.max()
    assert np.all(left >= lo - 1e-12) and np.all(left <= hi + 1e-12)
    assert np.all(right >= lo - 1e-12) and np.all(right <= hi + 1e-12)


def test_reconstruction_flattens_extrema():
    a = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])[:, None]
    left, right = ppm_reconstruct(a)
    # every interior cell is a local extremum -> piecewise constant
    assert np.allclose(left[2:-2], a[2:-2])
    assert np.allclose(right[2:-2], a[2:-2])


def test_reconstruction_needs_five_cells():
    with pytest.raises(ValueError):
        ppm_reconstruct(np.zeros((4, 1)))


def test_vanleer_slopes_zero_at_extrema_and_edges():
    a = np.array([0.0, 2.0, 1.0, 3.0, 3.5])[:, None]
    d = vanleer_slopes(a)
    assert d[0, 0] == 0.0 and d[-1, 0] == 0.0
    assert d[1, 0] == 0.0  # local max at index 1


# -- Riemann solver ------------------------------------------------------------

def test_hllc_flux_of_identical_states_is_exact():
    eos = GammaLawEOS(1.4)
    state = (np.array([1.0]), np.array([0.5]), np.array([0.1]),
             np.array([2.0]))
    flux = hllc_flux(state, state, eos)
    rho, u, v, p = (s[0] for s in state)
    e = p / 0.4 + 0.5 * rho * (u * u + v * v)
    assert flux[0, 0] == pytest.approx(rho * u)
    assert flux[1, 0] == pytest.approx(rho * u * u + p)
    assert flux[2, 0] == pytest.approx(rho * u * v)
    assert flux[3, 0] == pytest.approx((e + p) * u)


def test_hllc_flux_upwinds_supersonic_flow():
    eos = GammaLawEOS(1.4)
    left = (np.array([1.0]), np.array([10.0]), np.array([0.0]),
            np.array([1.0]))
    right = (np.array([0.5]), np.array([10.0]), np.array([0.0]),
             np.array([0.5]))
    flux = hllc_flux(left, right, eos)
    # flow is supersonic to the right: flux must be the left flux
    assert flux[0, 0] == pytest.approx(10.0)


def test_hllc_symmetric_states_have_zero_mass_flux():
    eos = GammaLawEOS(1.4)
    left = (np.array([1.0]), np.array([1.0]), np.array([0.0]),
            np.array([1.0]))
    right = (np.array([1.0]), np.array([-1.0]), np.array([0.0]),
             np.array([1.0]))
    flux = hllc_flux(left, right, eos)
    assert flux[0, 0] == pytest.approx(0.0, abs=1e-12)


# -- solver ------------------------------------------------------------------------

def test_uniform_state_is_steady():
    solver = PPMSolver2D(uniform_state(24, 16, ux=0.5, uy=-0.25))
    u0 = solver.u.copy()
    solver.run(3)
    assert np.allclose(solver.u, u0, atol=1e-12)


def test_conservation_exact_on_periodic_grid():
    solver = PPMSolver2D(sod_state(64, 8), dx=1 / 64, dy=1 / 8)
    before = solver.totals()
    solver.run(30)
    after = solver.totals()
    for key in before:
        assert after[key] == pytest.approx(before[key], abs=1e-12), key


def test_sod_shock_structure():
    solver = PPMSolver2D(sod_state(256, 8), dx=1 / 256, dy=1 / 8)
    t = 0.0
    while t < 0.15:
        t += solver.step()
    rho = solver.u[0][:, 0]
    # the four-state structure: left state, rarefaction/contact plateau
    # values, right state must all be present
    assert rho.max() <= 1.0 + 1e-6
    assert rho.min() >= 0.125 - 1e-6
    plateau = np.sum((rho > 0.25) & (rho < 0.45))   # post-shock ~0.27-0.43
    assert plateau > 10
    # solution stays y-independent
    assert np.allclose(solver.u[0], solver.u[0][:, :1])


def test_blast_wave_stays_positive_and_symmetric():
    solver = PPMSolver2D(blast_state(40, 40), dx=1 / 40, dy=1 / 40,
                         cfl=0.3)
    solver.run(20)
    rho, ux, uy, p = solver.primitive_fields()
    assert rho.min() > 0 and p.min() > 0
    # mirror symmetries of the centred blast survive exactly; x<->y
    # (transpose) symmetry is only approximate under x-then-y splitting
    assert np.allclose(rho, rho[::-1, :], atol=1e-8)
    assert np.allclose(rho, rho[:, ::-1], atol=1e-8)
    assert np.abs(rho - rho.T).max() < 0.25 * rho.max()


def test_sweep_validation():
    u = uniform_state(16, 16)
    with pytest.raises(ValueError):
        sweep(u, 0.1, 1.0, GammaLawEOS(), axis=0)
    with pytest.raises(ValueError):
        sweep(uniform_state(6, 16), 0.1, 1.0, GammaLawEOS(), axis=1)


def test_solver_validation():
    with pytest.raises(ValueError):
        PPMSolver2D(np.zeros((3, 8, 8)))
    with pytest.raises(ValueError):
        PPMSolver2D(uniform_state(8, 8), cfl=0.0)


def test_ppm_workload_tile_divisibility():
    from repro.apps.ppm import PPMProblem, PPMWorkload
    from repro.core import spp1000

    with pytest.raises(ValueError):
        PPMProblem(100, 480, 7, 16)     # tiles don't divide the grid
    workload = PPMWorkload(PPMProblem(120, 480, 4, 16), spp1000())
    with pytest.raises(ValueError):
        workload.run(5)                 # 64 tiles don't divide over 5
