"""Tests for node quadrupole moments (the paper's 'high order moments')."""

import numpy as np
import pytest

from repro.apps.nbody import (
    Bodies,
    build_octree,
    compute_quadrupoles,
    direct_forces,
    plummer_sphere,
    tree_forces,
)


def test_quadrupoles_are_traceless_and_symmetric():
    b = plummer_sphere(500, seed=21)
    tree = build_octree(b, leaf_size=8)
    quads = compute_quadrupoles(tree)
    traces = np.trace(quads, axis1=1, axis2=2)
    assert np.allclose(traces, 0.0, atol=1e-9)
    assert np.allclose(quads, np.transpose(quads, (0, 2, 1)), atol=1e-9)


def test_quadrupole_of_symmetric_pair():
    """Two equal masses at +/-d on x: Q = m (3 diag(2d^2) - ...) exactly."""
    pos = np.array([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
    b = Bodies(pos, np.zeros_like(pos), np.array([1.0, 1.0]))
    tree = build_octree(b, leaf_size=2)
    quads = compute_quadrupoles(tree)
    # about the COM (origin): sum m (3 x x^T - r^2 I)
    expected = np.diag([2 * (3 - 1.0), -2.0, -2.0])
    assert np.allclose(quads[0], expected, atol=1e-12)


def test_parallel_axis_combination_matches_direct():
    """Internal-node quadrupoles equal the direct particle sum."""
    b = plummer_sphere(300, seed=22)
    tree = build_octree(b, leaf_size=4)
    quads = compute_quadrupoles(tree)
    # check the root directly against all particles
    delta = tree.positions - tree.com[0]
    outer = np.einsum("p,pi,pj->ij", tree.masses, delta, delta)
    r2 = np.sum(tree.masses * np.sum(delta * delta, axis=1))
    expected = 3.0 * outer - r2 * np.eye(3)
    assert np.allclose(quads[0], expected, atol=1e-9)


def test_quadrupole_improves_force_accuracy():
    b = plummer_sphere(800, seed=23)
    ref = direct_forces(b, softening=0.02)

    def rel_err(**kwargs):
        res = tree_forces(b, theta=0.8, softening=0.02, **kwargs)
        return float(np.linalg.norm(res.accelerations - ref)
                     / np.linalg.norm(ref))

    mono = rel_err()
    quad = rel_err(use_quadrupole=True)
    assert quad < 0.6 * mono, f"mono {mono:.4f}, quad {quad:.4f}"


def test_quadrupole_computed_lazily_by_tree_forces():
    b = plummer_sphere(200, seed=24)
    tree = build_octree(b, leaf_size=8)
    assert tree.quadrupole is None
    tree_forces(b, tree=tree, use_quadrupole=True)
    assert tree.quadrupole is not None


def test_quadrupole_of_single_particle_leaf_is_zero():
    pos = np.array([[0.3, 0.2, 0.1], [5.0, 5.0, 5.0]])
    b = Bodies(pos, np.zeros_like(pos), np.array([1.0, 2.0]))
    tree = build_octree(b, leaf_size=1)
    quads = compute_quadrupoles(tree)
    for node in tree.leaves():
        if tree.end[node] - tree.start[node] == 1:
            assert np.allclose(quads[node], 0.0, atol=1e-12)
