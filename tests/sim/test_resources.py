"""Unit tests for sim-time resources and stores."""

import pytest

from repro.sim import PriorityStore, Resource, SimulationError, Simulator, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    assert res.acquire().triggered
    assert res.acquire().triggered
    third = res.acquire()
    assert not third.triggered
    assert res.queue_length == 1
    res.release()
    assert third.triggered


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_serialises_contending_processes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    finish_times = []

    def worker(sim, res):
        yield res.acquire()
        try:
            yield sim.timeout(10.0)
        finally:
            res.release()
        finish_times.append(sim.now)

    for _ in range(3):
        sim.process(worker(sim, res))
    sim.run()
    assert finish_times == [10.0, 20.0, 30.0]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, name):
        yield res.acquire()
        order.append(name)
        res.release()

    hold = res.acquire()
    for name in "abc":
        sim.process(worker(sim, res, name))
    sim.run()
    assert order == []
    res.release()  # release the initial hold
    sim.run()
    assert order == ["a", "b", "c"]
    assert hold.triggered


def test_resource_use_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    p1 = res.use(5.0)
    p2 = res.use(5.0)
    sim.run()
    assert p1.triggered and p2.triggered
    assert sim.now == 10.0


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    ev = store.get()
    assert ev.triggered and ev.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer(sim, store))
    sim.schedule_callback(8.0, lambda: store.put("late"))
    sim.run()
    assert got == [(8.0, "late")]


def test_store_is_fifo_for_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.get().value == 1
    assert store.get().value == 2
    order = []

    def consumer(sim, store, name):
        item = yield store.get()
        order.append((name, item))

    sim.process(consumer(sim, store, "first"))
    sim.process(consumer(sim, store, "second"))
    sim.run()
    store.put("a")
    store.put("b")
    sim.run()
    assert order == [("first", "a"), ("second", "b")]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(5)
    assert store.try_get() == 5
    assert len(store) == 0


def test_priority_store_orders_items():
    sim = Simulator()
    ps = PriorityStore(sim)
    for item in [5, 1, 3]:
        ps.put(item)
    assert ps.get().value == 1
    assert ps.try_get() == 3
    assert ps.get().value == 5
