"""Tests for DeadlockError diagnostics and live-process accounting."""

import pytest

from repro.sim import DeadlockError, Simulator


def test_deadlock_error_carries_context():
    sim = Simulator()
    never = sim.event()

    def waiter():
        yield never

    sim.process(waiter())
    with pytest.raises(DeadlockError) as ei:
        sim.run(until=never)
    err = ei.value
    assert err.now == 0.0
    assert err.pending == 1
    assert "1 live process(es)" in str(err)


def test_plain_deadlock_error_still_works():
    err = DeadlockError("deadlock")
    assert str(err) == "deadlock"
    assert err.now is None and err.pending is None and err.report is None


def test_report_is_appended_to_message():
    err = DeadlockError("wedged", now=1500.0, pending=3,
                        report="3 blocked waiter(s)")
    text = str(err)
    assert "wedged at t=1.500 us with 3 live process(es)" in text
    assert text.endswith("3 blocked waiter(s)")


def test_alive_processes_tracks_completion():
    sim = Simulator()
    assert sim.alive_processes == 0

    def worker():
        yield sim.timeout(10.0)

    proc = sim.process(worker())
    assert sim.alive_processes == 1
    sim.run(until=proc)
    assert sim.alive_processes == 0


def test_alive_processes_decrements_on_failure():
    sim = Simulator()

    def doomed():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    sim.process(doomed())
    with pytest.raises(RuntimeError):
        sim.run()
    assert sim.alive_processes == 0
