"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    DeadlockError,
    Event,
    EventAlreadyTriggered,
    SimulationError,
    Simulator,
)


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(42.0)
    sim.run()
    assert sim.now == 42.0


def test_timeout_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_stops_exactly():
    sim = Simulator()
    fired = []
    sim.schedule_callback(10.0, lambda: fired.append(10))
    sim.schedule_callback(30.0, lambda: fired.append(30))
    sim.run(until=20.0)
    assert fired == [10]
    assert sim.now == 20.0
    sim.run()
    assert fired == [10, 30]


def test_run_until_time_in_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_events_at_same_time_fire_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule_callback(7.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim, ev):
        value = yield ev
        got.append(value)

    sim.process(waiter(sim, ev))
    sim.schedule_callback(3.0, lambda: ev.succeed("payload"))
    sim.run()
    assert got == ["payload"]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(RuntimeError("x"))


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_unhandled_failed_event_raises_from_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_defused_failed_event_is_silent():
    sim = Simulator()
    ev = sim.event()
    ev.defused = True
    ev.fail(RuntimeError("boom"))
    sim.run()  # no raise


def test_run_until_event_returns_value():
    sim = Simulator()

    def producer(sim):
        yield sim.timeout(9.0)
        return "done"

    proc = sim.process(producer(sim))
    assert sim.run(until=proc) == "done"
    assert sim.now == 9.0


def test_run_until_untriggerable_event_deadlocks():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(DeadlockError):
        sim.run(until=ev)


def test_all_of_waits_for_every_event():
    sim = Simulator()
    t1 = sim.timeout(5.0, value="a")
    t2 = sim.timeout(15.0, value="b")
    cond = sim.all_of([t1, t2])
    result = sim.run(until=cond)
    assert sim.now == 15.0
    assert set(result.values()) == {"a", "b"}


def test_any_of_fires_on_first_event():
    sim = Simulator()
    t1 = sim.timeout(5.0, value="fast")
    sim.timeout(500.0, value="slow")
    cond = sim.any_of([t1, sim.timeout(500.0)])
    result = sim.run(until=cond)
    assert sim.now == 5.0
    assert "fast" in result.values()


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    cond = sim.all_of([])
    assert cond.triggered


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        sim1.all_of([sim2.timeout(1.0)])


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_clock_is_monotonic_across_many_events():
    sim = Simulator()
    times = []
    for delay in [3.0, 1.0, 2.0, 1.0, 0.0]:
        sim.schedule_callback(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert sim.now == 3.0
