"""Edge-case and property tests for the simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Condition,
    Event,
    PriorityStore,
    SimulationError,
    Simulator,
)


def test_condition_propagates_child_failure():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(5.0)
        raise RuntimeError("child failed")

    def waiting(sim):
        ok = sim.timeout(100.0)
        bad = sim.process(failing(sim))
        try:
            yield sim.all_of([ok, bad])
        except RuntimeError as exc:
            return f"caught: {exc}"

    proc = sim.process(waiting(sim))
    assert sim.run(until=proc) == "caught: child failed"


def test_any_of_with_already_processed_event():
    sim = Simulator()
    done = sim.timeout(1.0, value="early")
    sim.run()           # 'done' is processed
    cond = sim.any_of([done, sim.timeout(50.0)])
    result = sim.run(until=cond)
    assert "early" in result.values()


def test_all_of_value_preserves_event_identity():
    sim = Simulator()
    t1 = sim.timeout(1.0, value="a")
    t2 = sim.timeout(2.0, value="b")
    result = sim.run(until=sim.all_of([t1, t2]))
    assert result[t1] == "a" and result[t2] == "b"


def test_priority_store_with_blocking_getters():
    sim = Simulator()
    store = PriorityStore(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append(item)

    sim.process(consumer(sim, store))
    sim.run()
    store.put(9)   # handed straight to the blocked getter
    sim.run()
    assert got == [9]


def test_schedule_callback_returns_event():
    sim = Simulator()
    fired = []
    ev = sim.schedule_callback(3.0, lambda: fired.append(True))
    assert not ev.processed
    sim.run()
    assert fired == [True]
    assert ev.processed


@given(delays=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100))
def test_events_always_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule_callback(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(0.1, 1000.0), min_size=2, max_size=30))
def test_all_of_fires_at_max_any_of_at_min(delays):
    sim = Simulator()
    events = [sim.timeout(d) for d in delays]
    any_cond = sim.any_of(events)
    all_cond = sim.all_of(events)
    sim.run(until=any_cond)
    assert sim.now == pytest.approx(min(delays))
    sim.run(until=all_cond)
    assert sim.now == pytest.approx(max(delays))


def test_process_return_none_by_default():
    sim = Simulator()

    def quiet(sim):
        yield sim.timeout(1.0)

    assert sim.run(until=sim.process(quiet(sim))) is None


def test_event_repr_is_stable():
    sim = Simulator()
    ev = Event(sim)
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
