"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return 99

    proc = sim.process(p(sim))
    assert proc.is_alive
    assert sim.run(until=proc) == 99
    assert not proc.is_alive
    assert sim.now == 3.0


def test_process_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 1

    with pytest.raises(SimulationError):
        sim.process(not_a_generator())


def test_processes_interleave_in_time_order():
    sim = Simulator()
    log = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(worker(sim, "a", 10.0))
    sim.process(worker(sim, "b", 3.0))
    sim.run()
    assert log == [(3.0, "b"), (6.0, "b"), (10.0, "a"), (20.0, "a")]


def test_process_can_wait_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(5.0)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return result + "!"

    proc = sim.process(parent(sim))
    assert sim.run(until=proc) == "child-result!"


def test_waiting_on_already_finished_process_resumes():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return 7

    def parent(sim, child_proc):
        yield sim.timeout(10.0)  # child long done by now
        value = yield child_proc
        return value

    child_proc = sim.process(child(sim))
    parent_proc = sim.process(parent(sim, child_proc))
    assert sim.run(until=parent_proc) == 7
    assert sim.now == 10.0


def test_exception_in_process_propagates_to_waiter():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError as exc:
            return f"caught {exc}"

    proc = sim.process(parent(sim))
    assert sim.run(until=proc) == "caught inner"


def test_uncaught_process_exception_surfaces_in_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_yielding_non_event_fails_the_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    proc = sim.process(bad(sim))
    proc.defused = True
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_yielding_foreign_event_fails_the_process():
    sim, other = Simulator(), Simulator()

    def bad(sim, other):
        yield other.timeout(1.0)

    proc = sim.process(bad(sim, other))
    proc.defused = True
    sim.run()
    assert proc.triggered and not proc.ok


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(1000.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    proc = sim.process(sleeper(sim))
    sim.schedule_callback(5.0, lambda: proc.interrupt("wake up"))
    sim.run()
    assert log == [(5.0, "wake up")]


def test_interrupt_terminated_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def worker(sim, i):
        yield sim.timeout(float(i % 7))
        done.append(i)

    for i in range(200):
        sim.process(worker(sim, i))
    sim.run()
    assert sorted(done) == list(range(200))
