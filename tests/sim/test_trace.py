"""Unit tests for the tracer."""

from repro.sim import Tracer


def test_counters_work_even_when_disabled():
    t = Tracer(enabled=False)
    t.emit(1.0, "miss")
    t.emit(2.0, "miss")
    t.emit(3.0, "hit")
    assert t.count("miss") == 2
    assert t.count("hit") == 1
    assert t.count("absent") == 0
    assert t.records == []


def test_records_collected_when_enabled():
    t = Tracer(enabled=True)
    t.emit(1.0, "miss", 0xdead, "fu0")
    recs = t.select("miss")
    assert len(recs) == 1
    assert recs[0].time == 1.0
    assert recs[0].payload == (0xdead, "fu0")


def test_category_filter():
    t = Tracer(enabled=True, categories=["ring"])
    t.emit(1.0, "ring")
    t.emit(2.0, "miss")
    assert len(t.records) == 1
    assert t.count("miss") == 1  # counted but not recorded


def test_clear_resets_everything():
    t = Tracer(enabled=True)
    t.emit(1.0, "x")
    t.clear()
    assert t.records == [] and t.counters == {}
