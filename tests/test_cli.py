"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
                   "table1", "table2", "ablations", "scale128"):
        assert exp_id in out


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["not-an-experiment"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_run_single_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "4x16" in out


def test_hypernode_option_is_honoured(capsys):
    # the one-hypernode machine cannot cross hypernodes: fig3's uniform
    # placement then equals high locality
    assert main(["table1", "--hypernodes", "4"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_invalid_hypernode_count_raises():
    with pytest.raises(ValueError):
        main(["table1", "--hypernodes", "99"])
