"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path_factory, monkeypatch):
    """Keep CLI runs out of the user's real ~/.cache/repro."""
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("repro-cache")))


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
                   "table1", "table2", "ablations", "scale128"):
        assert exp_id in out


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["not-an-experiment"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_run_single_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "4x16" in out


def test_hypernode_option_is_honoured(capsys):
    # the one-hypernode machine cannot cross hypernodes: fig3's uniform
    # placement then equals high locality
    assert main(["table1", "--hypernodes", "4"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_invalid_hypernode_count_raises():
    with pytest.raises(ValueError):
        main(["table1", "--hypernodes", "99"])


def test_unknown_experiment_lists_valid_ids(capsys):
    assert main(["not-an-experiment"]) == 2
    err = capsys.readouterr().err
    assert "valid experiments" in err
    for exp_id in ("fig2", "fig3", "table2", "timeline"):
        assert exp_id in err


def test_parser_has_observability_flags():
    from repro.cli import build_parser

    text = build_parser().format_help()
    for flag in ("--seed", "--trace", "--metrics", "--profile"):
        assert flag in text


def test_seed_flag_is_accepted(capsys):
    assert main(["fig2", "--seed", "7", "--quick"]) == 0
    assert "fig2" in capsys.readouterr().out


def test_trace_and_metrics_outputs(tmp_path, capsys):
    """Acceptance criterion: fig3 --trace --metrics produces a valid
    Chrome trace (one track per CPU) and a manifest with per-phase
    counter deltas."""
    import json

    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.json"
    assert main(["fig3", "--trace", str(trace),
                 "--metrics", str(metrics)]) == 0
    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    assert events
    for ev in events:
        for key in ("ph", "ts", "pid", "tid"):
            assert key in ev
    cpu_tracks = [e for e in events
                  if e["ph"] == "M" and e["name"] == "thread_name"
                  and e["args"]["name"].startswith("cpu ")]
    assert len(cpu_tracks) == 16  # one per simulated CPU
    manifest = json.loads(metrics.read_text())
    assert manifest["experiment"]["id"] == "fig3"
    assert manifest["phases"]["fork_join"]["counters"]
    assert manifest["instrumentation"]["tracer_simulated_cost_ns"] == 0.0


def test_profile_flag_prints_counters(capsys):
    assert main(["fig2", "--quick", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "protocol counters" in out
    assert "span summary" in out
    assert "fork_join" in out


def test_timeline_demo_renders(capsys):
    assert main(["timeline"]) == 0
    out = capsys.readouterr().out
    assert "hn0/cpu0" in out
    assert "barrier.arrive" in out


def test_timeline_from_trace_file(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["fig2", "--quick", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["timeline", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "spans:" in out


def test_run_prefix_is_accepted(capsys):
    assert main(["run", "list"]) == 0
    assert "fig3" in capsys.readouterr().out


def test_parser_has_robustness_flags():
    from repro.cli import build_parser

    text = build_parser().format_help()
    for flag in ("--faults", "--checkpoint", "--resume"):
        assert flag in text


def test_resume_requires_checkpoint(capsys):
    assert main(["degraded", "--resume"]) == 2
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_missing_fault_plan_fails_cleanly(capsys):
    assert main(["degraded", "--faults", "/nonexistent/plan.json"]) == 2
    assert "cannot read fault plan" in capsys.readouterr().err


def test_invalid_fault_plan_lists_problems(tmp_path, capsys):
    plan = tmp_path / "bad.json"
    plan.write_text('{"events": [{"t_us": 0, "kind": "ring_fail",'
                    ' "ring": 9}], "bogus": 1}')
    assert main(["degraded", "--faults", str(plan)]) == 2
    err = capsys.readouterr().err
    assert "invalid fault plan" in err
    assert "ring 9 out of range" in err
    assert "bogus" in err


def test_corrupt_checkpoint_fails_cleanly(tmp_path, capsys):
    ck = tmp_path / "ck.json"
    ck.write_text("{broken")
    assert main(["degraded", "--checkpoint", str(ck), "--resume"]) == 2
    assert "cannot resume" in capsys.readouterr().err


def test_checkpoint_note_for_unsupported_experiment(tmp_path, capsys):
    ck = tmp_path / "ck.json"
    assert main(["ablations", "--checkpoint", str(ck)]) == 0
    captured = capsys.readouterr()
    assert "does not support checkpointing" in captured.err
    assert "ablations" in captured.out


def test_metrics_directory_output(tmp_path, capsys):
    import json

    out_dir = tmp_path / "out"
    assert main(["fig2", "--quick", "--metrics",
                 str(out_dir) + "/"]) == 0
    manifest = json.loads((out_dir / "metrics.json").read_text())
    assert manifest["experiment"]["id"] == "fig2"


def test_parser_has_exec_flags():
    from repro.cli import build_parser

    text = build_parser().format_help()
    for flag in ("--jobs", "--cache-dir", "--no-cache", "--cache-stats"):
        assert flag in text


def test_jobs_zero_fails_with_actionable_message(capsys):
    assert main(["fig3", "--jobs", "0"]) == 2
    err = capsys.readouterr().err
    assert "--jobs must be >= 1" in err
    assert "--jobs 1" in err  # tells the user what to type instead


def test_list_shows_unit_counts(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for line in out.splitlines():
        if line.startswith("ablations"):
            assert "in-process" in line
        else:
            assert "units" in line


def test_dashdash_list_alias(capsys):
    assert main(["--list"]) == 0
    assert "fig3" in capsys.readouterr().out


def test_cache_stats_line(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["table1", "--cache-dir", str(cache),
                 "--cache-stats"]) == 0
    out = capsys.readouterr().out
    assert "[exec table1]" in out
    assert "2 units" in out
    # second run: every unit served from the cache, nothing recomputed
    assert main(["table1", "--cache-dir", str(cache),
                 "--cache-stats"]) == 0
    out = capsys.readouterr().out
    assert "0 computed" in out
    assert "2 hits" in out


def test_no_cache_disables_caching(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["table1", "--cache-dir", str(cache), "--no-cache",
                 "--cache-stats"]) == 0
    out = capsys.readouterr().out
    assert "cache" not in out.split("[exec table1]")[1].split("\n")[0] \
        or "hits" not in out
    assert not cache.exists()


def test_cache_stats_notes_in_process_experiments(capsys):
    assert main(["ablations", "--cache-stats"]) == 0
    assert "ran in-process" in capsys.readouterr().out


def test_jobs_note_for_in_process_experiment(capsys):
    assert main(["ablations", "--jobs", "4"]) == 0
    assert "no work-unit planner" in capsys.readouterr().err


def test_parallel_run_matches_serial(capsys):
    assert main(["table2", "--no-cache", "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert main(["table2", "--no-cache"]) == 0
    serial_out = capsys.readouterr().out
    assert parallel_out == serial_out


def test_bench_quick_writes_json(tmp_path, capsys):
    import json

    out = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--jobs", "2", "--bench-out",
                 str(out), "--bench-experiments", "table1,table2"]) == 0
    stdout = capsys.readouterr().out
    assert "Execution trajectory" in stdout
    doc = json.loads(out.read_text())
    assert doc["schema_version"] == 2
    assert doc["jobs"] == 2
    rows = doc["experiments"]
    assert rows
    for exp_id, row in rows.items():
        assert row["identical"], exp_id
        assert row["units_resimulated_warm"] == 0, exp_id


def test_cache_stats_report_fields_are_pinned(tmp_path):
    """The --cache-stats contract: to_dict keys and the render() shape.

    Downstream tooling (manifests' ``execution`` block, the bench
    observatory) reads these fields by name; renames are breaking.
    """
    from repro.core import spp1000
    from repro.exec import ResultCache, execute

    cache = ResultCache(str(tmp_path / "cache"))
    _result, report = execute("table1", spp1000(), jobs=1, cache=cache)
    d = report.to_dict()
    assert set(d) == {
        "experiment_id", "jobs", "units_planned", "from_checkpoint",
        "cache_hits", "cache_misses", "cache_stores", "cache_hit_rate",
        "computed", "retried_in_process", "fallback_points",
        "wall_seconds", "cache_root", "host_timing", "unit_timings",
    }
    assert d["experiment_id"] == "table1"
    assert d["cache_stores"] == d["units_planned"] == 2
    line = report.render()
    assert line.startswith("[exec table1] ")
    assert "2 units" in line
    assert "2 computed (1 jobs)" in line
    assert "2 stored" in line
    assert "s wall" in line


def test_cache_stats_line_warm_run_shows_hits(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["table1", "--cache-dir", str(cache),
                 "--cache-stats"]) == 0
    capsys.readouterr()
    assert main(["table1", "--cache-dir", str(cache),
                 "--cache-stats"]) == 0
    line = [ln for ln in capsys.readouterr().out.splitlines()
            if ln.startswith("[exec table1]")][0]
    assert "cache 2 hits / 0 misses (100% hit rate)" in line


# ---------------------------------------------------------------------------
# resilience flags: --unit-timeout / --retries / --chaos / --journal
# ---------------------------------------------------------------------------

def test_parser_has_resilience_flags():
    from repro.cli import build_parser

    text = build_parser().format_help()
    for flag in ("--unit-timeout", "--retries", "--chaos", "--journal"):
        assert flag in text


def test_unit_timeout_must_be_positive(capsys):
    assert main(["fig3", "--unit-timeout", "0"]) == 2
    assert "--unit-timeout must be > 0" in capsys.readouterr().err


def test_retries_must_be_non_negative(capsys):
    assert main(["fig3", "--retries", "-1"]) == 2
    assert "--retries must be >= 0" in capsys.readouterr().err


def test_missing_chaos_plan_fails_cleanly(capsys):
    assert main(["fig3", "--chaos", "/nonexistent/chaos.json"]) == 2
    assert "cannot read chaos plan" in capsys.readouterr().err


def test_invalid_chaos_plan_lists_problems(tmp_path, capsys):
    plan = tmp_path / "bad.json"
    plan.write_text('{"faults": [{"kind": "explode", "unit": 0},'
                    ' {"kind": "kill_worker"}], "bogus": 1}')
    assert main(["fig3", "--chaos", str(plan)]) == 2
    err = capsys.readouterr().err
    assert "invalid chaos plan" in err
    assert "'explode'" in err
    assert "bogus" in err
    assert "neither" in err


def test_chaos_env_var_activates_plan(tmp_path, capsys, monkeypatch):
    plan = tmp_path / "bad.json"
    plan.write_text('{"faults": [{"kind": "explode", "unit": 0}]}')
    monkeypatch.setenv("REPRO_CHAOS", str(plan))
    assert main(["fig3", "--quick"]) == 2
    assert "invalid chaos plan" in capsys.readouterr().err


def test_resume_accepts_journal_without_checkpoint(tmp_path, capsys):
    journal = tmp_path / "j.jsonl"
    assert main(["fig3", "--quick", "--no-cache", "--journal",
                 str(journal), "--resume"]) == 0
    assert journal.exists()


def test_journal_run_then_resume_replays(tmp_path, capsys):
    journal = tmp_path / "j.jsonl"
    assert main(["fig3", "--quick", "--no-cache", "--jobs", "2",
                 "--journal", str(journal), "--cache-stats"]) == 0
    capsys.readouterr()
    assert main(["fig3", "--quick", "--no-cache", "--journal",
                 str(journal), "--resume", "--cache-stats"]) == 0
    out = capsys.readouterr().out
    assert "replayed from journal" in out
    assert "0 computed" in out


def test_journal_without_resume_starts_fresh(tmp_path, capsys):
    journal = tmp_path / "j.jsonl"
    journal.write_text("stale bytes that would be refused on replay\n")
    assert main(["fig3", "--quick", "--no-cache", "--journal",
                 str(journal)]) == 0
    # the stale file was reset, then rewritten with a valid header
    import json as _json

    header = _json.loads(journal.read_text().splitlines()[0])
    assert header["experiment_id"] == "fig3"


def test_cache_dir_pointing_at_file_is_actionable(tmp_path, capsys):
    target = tmp_path / "afile"
    target.write_text("x")
    assert main(["fig3", "--quick", "--cache-dir", str(target)]) == 2
    err = capsys.readouterr().err
    assert "is a file, not a directory" in err
    assert str(target) in err


def test_cache_dir_with_foreign_files_is_actionable(tmp_path, capsys):
    target = tmp_path / "docs"
    target.mkdir()
    (target / "notes.txt").write_text("x")
    assert main(["fig3", "--quick", "--cache-dir", str(target)]) == 2
    err = capsys.readouterr().err
    assert "non-cache files" in err and "notes.txt" in err


def test_chaos_run_is_bit_identical_to_clean_serial(tmp_path, capsys):
    """The CLI-level pin of the chaos contract: kill two workers,
    corrupt cache entries, delay a unit -- same bytes out."""
    import json as _json

    chaos = tmp_path / "chaos.json"
    chaos.write_text(_json.dumps({"faults": [
        {"kind": "kill_worker", "unit": 0},
        {"kind": "kill_worker", "unit": 1},
        {"kind": "delay_unit", "unit": 2, "seconds": 0.02},
    ]}))
    clean_ck = tmp_path / "clean.ckpt"
    chaos_ck = tmp_path / "chaos.ckpt"
    assert main(["fig3", "--quick", "--no-cache",
                 "--checkpoint", str(clean_ck)]) == 0
    assert main(["fig3", "--quick", "--no-cache", "--jobs", "2",
                 "--chaos", str(chaos), "--checkpoint", str(chaos_ck),
                 "--cache-stats"]) == 0
    assert clean_ck.read_bytes() == chaos_ck.read_bytes()
    out = capsys.readouterr().out
    assert "survived" in out
    assert "chaos faults injected" in out


# -- the longitudinal ledger (python -m repro ledger / bench --ledger) ----


def test_bench_ledger_flag_appends_record(tmp_path, capsys, monkeypatch):
    from repro.obs.ledger import Ledger

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "bench.json"
    ledger = tmp_path / "LEDGER.jsonl"
    assert main(["bench", "--quick", "--jobs", "2",
                 "--bench-out", str(out),
                 "--bench-experiments", "table1,table2",
                 "--ledger", str(ledger)]) == 0
    stdout = capsys.readouterr().out
    assert "ledger record appended to" in stdout
    records, skipped = Ledger(str(ledger)).read()
    assert (len(records), skipped) == (1, 0)
    rec = records[0]
    assert rec["kind"] == "bench"
    assert set(rec["experiments"]) == {"table1", "table2"}
    assert rec["git_dirty"] in (True, False, None)


def test_bench_without_ledger_flag_writes_no_ledger(tmp_path,
                                                    monkeypatch, capsys):
    """Zero-cost when off: no --ledger, no ledger file anywhere."""
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--jobs", "2",
                 "--bench-out", str(out),
                 "--bench-experiments", "table1"]) == 0
    capsys.readouterr()
    assert not list(tmp_path.rglob("*.jsonl"))
    assert not (tmp_path / "benchmarks").exists()


def test_bench_warns_when_existing_artifact_is_stale(tmp_path, capsys):
    import json as _json

    out = tmp_path / "bench.json"
    out.write_text(_json.dumps({
        "schema_version": 2, "generator": "repro.exec.bench",
        "code_fingerprint": "f" * 16, "git_sha": "c" * 40,
        "experiments": {}, "totals": {}}))
    assert main(["bench", "--quick", "--jobs", "2",
                 "--bench-out", str(out),
                 "--bench-experiments", "table1"]) == 0
    err = capsys.readouterr().err
    assert "stale" in err and str(out) in err and "regenerate" in err


def test_ledger_verb_dispatches(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    # empty ledger: actionable error, exit 2, names the feeder commands
    assert main(["ledger", "show"]) == 2
    err = capsys.readouterr().err
    assert "bench --quick --ledger" in err

    out = tmp_path / "bench.json"
    ledger = tmp_path / "LEDGER.jsonl"
    assert main(["bench", "--quick", "--jobs", "2",
                 "--bench-out", str(out),
                 "--bench-experiments", "table1,table2",
                 "--ledger", str(ledger)]) == 0
    capsys.readouterr()
    assert main(["ledger", "show", "--ledger", str(ledger)]) == 0
    assert "kind=bench" in capsys.readouterr().out
    assert main(["ledger", "trend", "--ledger", str(ledger),
                 "--metric", "serial_s"]) == 0
    assert "serial_s" in capsys.readouterr().out
    # one record: gate has no history -> trivial pass
    assert main(["ledger", "gate", "--ledger", str(ledger),
                 "--window", "5"]) == 0
    assert "insufficient history" in capsys.readouterr().out


def test_ledger_record_verb_folds_bench_json(tmp_path, capsys):
    out = tmp_path / "bench.json"
    ledger = tmp_path / "LEDGER.jsonl"
    assert main(["bench", "--quick", "--jobs", "2",
                 "--bench-out", str(out),
                 "--bench-experiments", "table1"]) == 0
    capsys.readouterr()
    assert main(["ledger", "record", str(out),
                 "--ledger", str(ledger)]) == 0
    assert "appended bench record" in capsys.readouterr().out
    assert main(["ledger", "record", str(out),
                 "--ledger", str(ledger)]) == 0
    assert "#2" in capsys.readouterr().out
