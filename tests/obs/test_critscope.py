"""The critical-path & wait-state analyzer: attribution, path, what-ifs.

The three acceptance properties of docs/critpath.md:

1. zero-cost: with no analyzer installed, results and final simulated
   clocks are bit-identical to an instrumented run;
2. exactness: per-thread category cycles sum exactly to the thread's
   total simulated cycles (idle is the constructed remainder);
3. honesty: what-if projections agree with actual re-runs under the
   correspondingly scaled config parameters (within 10%).
"""

import pytest

from repro.core import spp1000
from repro.experiments.fig2_forkjoin import forkjoin_time_us
from repro.experiments.fig3_barrier import barrier_metrics_us
from repro.machine import Machine
from repro.obs.critscope import (CATEGORIES, CritScope, critscope_from_trace,
                                 render_trace_summary, scaled_config,
                                 use_critscope)
from repro.runtime import Barrier, Placement, Runtime


def barrier_workload(config, n=8, rounds=2):
    """A barrier loop returning (result, final sim clock)."""
    machine = Machine(config)
    runtime = Runtime(machine)
    barrier = Barrier(runtime, n)

    def body(env, tid):
        for _ in range(rounds):
            yield env.compute(100 * (tid + 1))
            yield from barrier.wait(env)
        return tid * 2

    def main(env):
        results = yield from env.fork_join(n, body, Placement.UNIFORM)
        return results

    result = runtime.run(main)
    machine.sim.run()  # drain
    return result, machine.sim.now


# ---------------------------------------------------------------------------
# zero-cost contract
# ---------------------------------------------------------------------------

def test_results_and_clocks_bit_identical_with_analyzer():
    cfg = spp1000(2)
    bare_result, bare_clock = barrier_workload(cfg)
    cs = CritScope(cfg)
    with use_critscope(cs):
        observed_result, observed_clock = barrier_workload(cfg)
    assert observed_result == bare_result
    assert observed_clock == bare_clock          # bit-identical, not approx
    assert cs.run_of_interest() is not None      # ... and it did observe


def test_no_analyzer_means_no_recording():
    cfg = spp1000(1)
    machine = Machine(cfg)
    assert machine.critscope is None
    runtime = Runtime(machine)
    assert Runtime(machine).machine.critscope is None
    del runtime


# ---------------------------------------------------------------------------
# exact per-thread attribution
# ---------------------------------------------------------------------------

def test_per_thread_category_cycles_sum_exactly_to_total():
    cfg = spp1000(2)
    cs = CritScope(cfg)
    with use_critscope(cs):
        barrier_workload(cfg, n=8, rounds=3)
    rows = cs.thread_totals()
    assert len(rows) == 9                        # parent + 8 team threads
    for row in rows:
        total = sum(row["categories_ns"].values())
        assert total == pytest.approx(row["total_ns"], abs=1e-6), row
        assert row["categories_ns"]["idle"] >= -1e-9


def test_wait_states_land_in_their_categories():
    cfg = spp1000(2)
    cs = CritScope(cfg)
    with use_critscope(cs):
        barrier_workload(cfg, n=8, rounds=2)
    agg = cs.aggregate_totals()
    assert agg["forkjoin"] > 0
    assert agg["barrier_wait"] > 0
    assert agg["barrier_release"] > 0
    assert agg["compute"] > 0
    assert agg["msg_send"] == 0 and agg["msg_recv"] == 0


def test_pvm_traffic_lands_in_message_categories():
    from repro.pvm import PvmSystem

    cfg = spp1000(2)
    cs = CritScope(cfg)
    with use_critscope(cs):
        pvm = PvmSystem(Runtime(Machine(cfg)))

        def body(task, tid):
            if tid == 0:
                yield from task.send(1, "ping", 64)
                return None
            return (yield from task.recv(0))

        results = pvm.run_tasks(2, body)
    assert results[1] == "ping"
    agg = cs.aggregate_totals()
    assert agg["msg_send"] > 0
    assert agg["msg_recv"] > 0


# ---------------------------------------------------------------------------
# the critical path
# ---------------------------------------------------------------------------

def test_critical_path_partitions_the_makespan():
    cfg = spp1000(2)
    cs = CritScope(cfg)
    with use_critscope(cs):
        barrier_workload(cfg, n=8, rounds=2)
    cp = cs.critical_path()
    run = cs.run_of_interest()
    assert cp["total_ns"] == pytest.approx(run.makespan)
    attributed = sum(cp["categories_ns"].values())
    assert attributed == pytest.approx(cp["total_ns"], rel=1e-9)
    # a barrier loop's path must cross threads via release edges
    tids_on_path = {s["tid"] for s in cp["steps"]}
    assert len(tids_on_path) > 1


def test_critical_path_of_pure_compute_is_all_compute():
    cfg = spp1000(1)
    cs = CritScope(cfg)
    with use_critscope(cs):
        machine = Machine(cfg)
        runtime = Runtime(machine)

        def main(env):
            yield env.compute(10_000)
            return "done"

        assert runtime.run(main) == "done"
    cp = cs.critical_path()
    assert cp["categories_ns"]["compute"] == pytest.approx(cp["total_ns"])


# ---------------------------------------------------------------------------
# golden: the paper's two linear laws (Fig 2, §4.2)
# ---------------------------------------------------------------------------

def test_fig2_forkjoin_per_thread_slope_golden():
    # Paper §4.1: ~10 us per additional thread *pair* within one
    # hypernode.  The parent's attributed forkjoin time must reproduce
    # that slope (~5 us/thread: spawn 3.8 us + join/desc writes).
    cfg = spp1000(2)
    parent_fj = {}
    for n in (2, 8):
        cs = CritScope(cfg)
        with use_critscope(cs):
            forkjoin_time_us(n, Placement.HIGH_LOCALITY, cfg, repeats=1)
        rows = cs.thread_totals()
        parent_fj[n] = next(
            r for r in rows if r["tid"] == 0)["categories_ns"]["forkjoin"]
    slope_us = (parent_fj[8] - parent_fj[2]) / 6 / 1e3
    per_pair = 2 * slope_us
    assert 8.0 <= per_pair <= 12.0, per_pair    # the paper's ~10 us/pair
    # and the spawn cost itself is the dominant part of the slope
    spawn_us = cfg.cycles(cfg.spawn_local_cycles) / 1e3
    assert slope_us >= spawn_us


def test_barrier_release_linear_term_golden():
    # §4.2: the last-in/last-out gap grows linearly because the releaser
    # walks every waiter.  The critical path's barrier_release time must
    # carry that linear term: slope at least the per-thread release cost.
    cfg = spp1000(2)
    rel = {}
    for n in (4, 16):
        cs = CritScope(cfg)
        with use_critscope(cs):
            barrier_metrics_us(n, Placement.UNIFORM, cfg, rounds=1)
        rel[n] = cs.critical_path()["categories_ns"]["barrier_release"]
    slope_us = (rel[16] - rel[4]) / 12 / 1e3
    per_thread_us = cfg.cycles(cfg.barrier_release_per_thread_cycles) / 1e3
    assert slope_us >= per_thread_us            # 1.4 us/thread floor
    assert slope_us <= 2.0                      # fig3's ~2 us/thread ceiling


# ---------------------------------------------------------------------------
# what-if projections and their validation protocol
# ---------------------------------------------------------------------------

def _observed_barrier_makespan(config, n=16, rounds=3):
    cs = CritScope(config)
    with use_critscope(cs):
        barrier_metrics_us(n, Placement.UNIFORM, config, rounds=rounds)
    return cs, cs.run_of_interest().makespan


def test_what_if_barrier_release_within_10pct_of_actual_rerun():
    cfg = spp1000(2)
    cs, _base = _observed_barrier_makespan(cfg)
    projection = cs.what_if("barrier_release", 2.0)
    _, actual = _observed_barrier_makespan(
        scaled_config(cfg, "barrier_release", 2.0))
    error = abs(projection["projected_total_ns"] - actual) / actual
    assert error <= 0.10, (projection["projected_total_ns"], actual)


def test_what_if_idle_category_projects_nothing():
    cfg = spp1000(2)
    cs, base = _observed_barrier_makespan(cfg, n=4, rounds=1)
    projection = cs.what_if("idle", 4.0)
    # idle is never on the walked path of a live run end-thread
    assert projection["projected_total_ns"] <= base + 1e-6
    with pytest.raises(KeyError):
        cs.what_if("quantum_tunneling", 2.0)
    with pytest.raises(ValueError):
        cs.what_if("compute", 0.0)


def test_scaled_config_maps_categories_to_cost_knobs():
    cfg = spp1000(2)
    half = scaled_config(cfg, "barrier_release", 2.0)
    assert half.barrier_release_per_thread_cycles == pytest.approx(
        cfg.barrier_release_per_thread_cycles / 2)
    assert half.remote_release_extra_cycles == pytest.approx(
        cfg.remote_release_extra_cycles / 2)
    assert half.spawn_local_cycles == cfg.spawn_local_cycles  # untouched
    with pytest.raises(KeyError) as ei:
        scaled_config(cfg, "idle", 2.0)
    assert "scalable categories" in str(ei.value)
    with pytest.raises(ValueError):
        scaled_config(cfg, "forkjoin", -1.0)


# ---------------------------------------------------------------------------
# reporting surfaces
# ---------------------------------------------------------------------------

def test_to_dict_schema_and_render():
    cfg = spp1000(2)
    cs = CritScope(cfg)
    with use_critscope(cs):
        barrier_workload(cfg, n=8, rounds=2)
    doc = cs.to_dict(top=5, what_if=[("barrier_release", 2.0)])
    assert doc["schema_version"] == 1
    assert doc["clock_ns"] == cfg.clock_ns
    for row in doc["threads"]:
        assert set(row["categories_cycles"]) == set(CATEGORIES)
    assert doc["teams"] and doc["teams"][0]["n_threads"] == 8
    assert doc["teams"][0]["threads_per_hypernode"]
    assert len(doc["critical_path"]["longest_steps"]) <= 5
    assert [p["category"] for p in doc["what_if"]] == ["barrier_release"]
    text = cs.render(title="critscope: test", top=5)
    assert "per-thread cycle attribution" in text
    assert "wait states" in text and "legend:" in text
    assert "critical path" in text
    assert "what-if projections" in text


def test_render_empty_scope_is_graceful():
    cs = CritScope(spp1000(1))
    assert "no machine-level thread activity" in cs.render()
    assert cs.thread_totals() == []
    assert cs.critical_path()["total_ns"] == 0.0


def test_manifest_folds_critscope_block():
    from repro.obs.metrics import build_manifest

    cfg = spp1000(2)
    cs = CritScope(cfg)
    with use_critscope(cs):
        barrier_workload(cfg, n=4, rounds=1)
    manifest = build_manifest(config=cfg, critscope=cs)
    block = manifest["critscope"]
    assert block["schema_version"] == 1
    assert block["threads"]
    # pre-rendered dicts pass through unchanged too
    manifest2 = build_manifest(critscope=cs.to_dict(top=3))
    assert manifest2["critscope"]["critical_path"]


# ---------------------------------------------------------------------------
# trace-based coarse summaries
# ---------------------------------------------------------------------------

def test_critscope_from_trace_roundtrip():
    from repro.obs import chrome_trace, use_tracer
    from repro.sim import Tracer

    cfg = spp1000(2)
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        barrier_metrics_us(8, Placement.UNIFORM, cfg, rounds=2)
    events = chrome_trace(tracer, cfg)["traceEvents"]
    doc = critscope_from_trace(events)
    assert doc["source"] == "trace"
    assert doc["categories_us"]["forkjoin"] > 0
    assert doc["sync_markers"]["barrier.arrive"] > 0
    text = render_trace_summary(doc, title="t.json")
    assert "span time by name" in text
    assert "need a live run" in text


def test_trace_summary_of_empty_trace_is_actionable():
    doc = critscope_from_trace([])
    text = render_trace_summary(doc)
    assert "no runtime/pvm span" in text
