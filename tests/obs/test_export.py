"""Tests for the Chrome trace / JSONL exporters."""

import json

from repro.core import spp1000
from repro.obs import (
    chrome_trace,
    jsonl_lines,
    load_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import Tracer

CFG = spp1000(2)


def traced_activity() -> Tracer:
    t = Tracer(enabled=True)
    t.begin(100.0, "thread", "runtime", pid=0, tid=3)
    t.emit(120.0, "load.miss.local", 3)
    t.instant(150.0, "barrier.arrive", "runtime", pid=0, tid=3)
    t.end(200.0, "thread", "runtime", pid=0, tid=3)
    t.complete(0.0, 500.0, "push", "perfmodel", pid=1, tid=8,
               args={"pipe_ns": 400.0, "stall_ns": 100.0})
    t.counter(200.0, "misses", {"local": 1})
    return t


def test_chrome_trace_is_valid_json_with_required_fields():
    doc = chrome_trace(traced_activity(), CFG)
    text = json.dumps(doc)  # must serialize
    doc2 = json.loads(text)
    events = doc2["traceEvents"]
    assert events, "no events exported"
    for ev in events:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in ev, f"{key} missing from {ev}"
    assert {e["ph"] for e in events} >= {"M", "B", "E", "i", "X", "C"}


def test_chrome_trace_has_one_track_per_cpu():
    doc = chrome_trace(traced_activity(), CFG)
    thread_meta = [e for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"]
    assert len(thread_meta) == CFG.n_cpus
    # CPUs grouped into their hypernodes
    per_hn = CFG.n_cpus // CFG.n_hypernodes
    for meta in thread_meta:
        assert meta["pid"] == meta["tid"] // per_hn


def test_chrome_trace_timestamps_are_microseconds():
    doc = chrome_trace(traced_activity(), CFG)
    begin = next(e for e in doc["traceEvents"] if e["ph"] == "B")
    assert begin["ts"] == 0.1  # 100 ns
    complete = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert complete["dur"] == 0.5  # 500 ns


def test_legacy_records_ride_along_as_machine_instants():
    doc = chrome_trace(traced_activity(), CFG)
    machine_pid = CFG.n_hypernodes
    recs = [e for e in doc["traceEvents"]
            if e["pid"] == machine_pid and e["ph"] == "i"]
    assert any(e["name"] == "load.miss.local" for e in recs)


def test_jsonl_every_line_parses(tmp_path):
    tracer = traced_activity()
    lines = list(jsonl_lines(tracer))
    assert len(lines) == len(tracer.events)
    for line in lines:
        ev = json.loads(line)
        assert "ph" in ev and "ts" in ev
    path = tmp_path / "events.jsonl"
    write_jsonl(tracer, str(path))
    assert len(path.read_text().splitlines()) == len(lines)


def test_load_trace_round_trips_both_formats(tmp_path):
    tracer = traced_activity()
    chrome_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "trace.jsonl"
    write_chrome_trace(tracer, str(chrome_path), CFG)
    write_jsonl(tracer, str(jsonl_path))
    chrome_events = load_trace(str(chrome_path))
    jsonl_events = load_trace(str(jsonl_path))
    assert len(jsonl_events) == len(tracer.events)
    # chrome doc adds metadata on top of the structured events
    assert len(chrome_events) > len(jsonl_events)
    names = {e["name"] for e in jsonl_events}
    assert {"thread", "push", "barrier.arrive"} <= names
