"""The service metrics registry: counters/gauges/histograms + exposition.

The load-bearing property is the consistency contract: every read and
write goes through one registry lock, so ``snapshot()`` and
``render_prometheus()`` observe a single point in time — asserted here
under concurrent writer threads.
"""

import re
import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKETS


# -- basics ---------------------------------------------------------------


def test_counter_counts_and_rejects_decrements():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_total", "a test counter")
    assert c.value == 0.0  # exists from birth, explicit zero
    c.inc()
    c.inc(4)
    assert c.value == 5.0
    with pytest.raises(ValueError, match="only go up"):
        c.inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("repro_test_depth")
    g.set(7)
    g.dec(2)
    g.inc()
    assert g.value == 6.0


def test_histogram_buckets_are_cumulative_on_render():
    reg = MetricsRegistry()
    h = reg.histogram("repro_test_seconds", "latency",
                      buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    snap = reg.snapshot()["repro_test_seconds"]["series"][0]
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(56.05)
    # snapshot buckets are per-bucket counts summing to count
    assert sum(snap["buckets"].values()) == snap["count"]
    text = reg.render_prometheus()
    # rendered buckets are cumulative, ending at count on +Inf
    assert 'repro_test_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_test_seconds_bucket{le="1"} 3' in text
    assert 'repro_test_seconds_bucket{le="10"} 4' in text
    assert 'repro_test_seconds_bucket{le="+Inf"} 5' in text
    assert "repro_test_seconds_count 5" in text


def test_get_or_create_is_idempotent_but_typed():
    reg = MetricsRegistry()
    a = reg.counter("repro_jobs_total", labelnames=("experiment",))
    b = reg.counter("repro_jobs_total", labelnames=("experiment",))
    assert a is b
    with pytest.raises(ValueError, match="already registered as a counter"):
        reg.gauge("repro_jobs_total")
    with pytest.raises(ValueError, match="already registered with labels"):
        reg.counter("repro_jobs_total", labelnames=("status",))


def test_invalid_names_are_one_line_actionable():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="Prometheus names"):
        reg.counter("1starts_with_digit")
    with pytest.raises(ValueError, match="Prometheus names"):
        reg.counter("has space")


# -- labels ---------------------------------------------------------------


def test_labelled_series_are_independent():
    reg = MetricsRegistry()
    c = reg.counter("repro_jobs_total", labelnames=("experiment", "status"))
    c.labels("fig3", "ok").inc()
    c.labels("fig3", "ok").inc()
    c.labels(experiment="fig7", status="error").inc()
    snap = reg.snapshot()["repro_jobs_total"]
    rows = {tuple(sorted(r["labels"].items())): r["value"]
            for r in snap["series"]}
    assert rows[(("experiment", "fig3"), ("status", "ok"))] == 2.0
    assert rows[(("experiment", "fig7"), ("status", "error"))] == 1.0


def test_label_misuse_raises():
    reg = MetricsRegistry()
    c = reg.counter("repro_jobs_total", labelnames=("experiment",))
    with pytest.raises(ValueError, match="takes 1 label"):
        c.labels("a", "b")
    with pytest.raises(ValueError, match="expected labels"):
        c.labels(wrong="x")
    with pytest.raises(ValueError, match="use .labels"):
        c.inc()  # labelled metric has no unlabelled convenience series


def test_label_values_are_escaped_in_exposition():
    reg = MetricsRegistry()
    c = reg.counter("repro_weird_total", labelnames=("path",))
    c.labels('C:\\dir\n"quoted"').inc()
    text = reg.render_prometheus()
    assert (r'repro_weird_total{path="C:\\dir\n\"quoted\""} 1'
            in text)


# -- exposition format ----------------------------------------------------


def test_prometheus_text_shape():
    reg = MetricsRegistry()
    reg.counter("repro_a_total", "counts a").inc(3)
    reg.gauge("repro_b", "gauges b").set(1.5)
    reg.histogram("repro_c_seconds", buckets=(1.0,)).observe(0.5)
    text = reg.render_prometheus()
    assert text.endswith("\n")
    assert "# HELP repro_a_total counts a" in text
    assert "# TYPE repro_a_total counter" in text
    assert "# TYPE repro_b gauge" in text
    assert "# TYPE repro_c_seconds histogram" in text
    assert "repro_a_total 3" in text
    assert "repro_b 1.5" in text
    # every non-comment line is `name{labels} value`
    sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
                        r'(\{[^}]*\})? [^ ]+$')
    for line in text.strip().splitlines():
        if not line.startswith("#"):
            assert sample.match(line), line


def test_collect_from_folds_report_dicts():
    reg = MetricsRegistry()
    reg.collect_from({"cache_hits": 4, "cache_misses": 2, "noise": 0,
                      "not_a_number": "x"},
                     prefix="repro_", labels={"experiment": "fig3"})
    reg.collect_from({"cache_hits": 1}, prefix="repro_",
                     labels={"experiment": "fig3"})
    snap = reg.snapshot()
    rows = snap["repro_cache_hits"]["series"]
    assert rows == [{"labels": {"experiment": "fig3"}, "value": 5.0}]
    assert "repro_noise" not in snap  # zero deltas register nothing


# -- the consistency contract ---------------------------------------------


def test_snapshot_is_torn_free_under_concurrent_writers():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds", buckets=DEFAULT_BUCKETS[:6])
    c = reg.counter("repro_ops_total")
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            h.observe(0.01)
            c.inc()

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        for _ in range(200):
            snap = reg.snapshot()
            row = snap["repro_lat_seconds"]["series"][0]
            # the one invariant a torn read would break
            assert sum(row["buckets"].values()) == row["count"]
            text = reg.render_prometheus()
            count = int(text.split("repro_lat_seconds_count ")[1]
                        .splitlines()[0])
            inf = int(text.split('repro_lat_seconds_bucket{le="+Inf"} ')[1]
                      .splitlines()[0])
            assert inf == count  # cumulative +Inf bucket == count
    finally:
        stop.set()
        for t in threads:
            t.join()


def test_exports_from_obs_package():
    import repro.obs as obs

    assert obs.MetricsRegistry is MetricsRegistry
    assert obs.Counter is Counter
    assert obs.Gauge is Gauge
    assert obs.Histogram is Histogram
