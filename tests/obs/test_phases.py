"""Tests for automatic per-phase hpm counter attribution."""

from repro.core import spp1000
from repro.machine import Machine, MemClass
from repro.obs import PhaseAttributor
from repro.sim import Tracer


def run(machine, gen):
    machine.sim.run(until=machine.sim.process(gen))


def test_phases_attribute_counters_to_the_right_region():
    machine = Machine(spp1000(2), tracer=Tracer(enabled=True))
    attributor = PhaseAttributor(machine)
    local = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)
    remote = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)

    def local_phase():
        for i in range(8):
            yield machine.load(0, local.addr(i * 64))

    def remote_phase():
        for i in range(8):
            yield machine.load(0, remote.addr(i * 64))

    with attributor.phase("local sweep"):
        run(machine, local_phase())
    with attributor.phase("remote sweep"):
        run(machine, remote_phase())

    by_name = {p.name: p.headline() for p in attributor.phases}
    assert by_name["local sweep"]["cache_misses"] == 8
    assert by_name["local sweep"]["remote_misses"] == 0
    assert by_name["local sweep"]["ring_transfers"] == 0
    assert by_name["remote sweep"]["remote_misses"] == 8
    assert by_name["remote sweep"]["ring_transfers"] > 0
    # the Fig-7-style diagnosis: the slow phase is slower *because* of
    # the extra remote misses, visible as elapsed time too
    assert (by_name["remote sweep"]["elapsed_ns"]
            > by_name["local sweep"]["elapsed_ns"])


def test_phases_mirrored_into_tracer_and_manifest():
    machine = Machine(spp1000(2), tracer=Tracer(enabled=True))
    attributor = PhaseAttributor(machine)
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)

    def phase():
        yield machine.load(0, region.addr(0))

    with attributor.phase("warm"):
        run(machine, phase())

    spans = machine.tracer.spans("warm")
    assert len(spans) == 1
    assert spans[0].args["counters"]["cache_misses"] == 1
    rows = attributor.manifest()
    assert rows[0]["name"] == "warm"
    assert rows[0]["cache_misses"] == 1
    assert "warm" in attributor.render()


def test_render_has_one_row_per_phase():
    machine = Machine(spp1000(2))
    attributor = PhaseAttributor(machine)
    with attributor.phase("a"):
        pass
    with attributor.phase("b"):
        pass
    text = attributor.render()
    assert "per-phase counter attribution" in text
    assert "a" in text and "b" in text
