"""Tests for the structured span API and its zero-overhead contracts."""

import pytest

from repro.core import spp1000
from repro.experiments.fig3_barrier import barrier_metrics_us
from repro.machine import Machine
from repro.runtime import Placement
from repro.sim import Tracer, active_tracer, use_tracer

CFG = spp1000(2)


def test_begin_end_records_duration_and_counter_delta():
    t = Tracer(enabled=True)
    t.begin(100.0, "phase", "app", pid=0, tid=3)
    t.emit(150.0, "load.miss.remote")
    t.emit(180.0, "load.miss.remote")
    t.emit(190.0, "load.hit")
    t.end(300.0, "phase", "app", pid=0, tid=3)
    (ev,) = t.spans("phase")
    assert ev.ph == "E"
    assert ev.args["dur_ns"] == pytest.approx(200.0)
    assert ev.args["counters"] == {"load.miss.remote": 2, "load.hit": 1}


def test_spans_nest_per_track():
    t = Tracer(enabled=True)
    t.begin(0.0, "outer", pid=0, tid=0)
    t.begin(10.0, "inner", pid=0, tid=0)
    t.begin(10.0, "other-track", pid=1, tid=8)
    t.end(20.0, "inner", pid=0, tid=0)
    t.end(50.0, "outer", pid=0, tid=0)
    t.end(60.0, "other-track", pid=1, tid=8)
    by_name = {e.name: e for e in t.spans()}
    assert by_name["inner"].args["dur_ns"] == pytest.approx(10.0)
    assert by_name["outer"].args["dur_ns"] == pytest.approx(50.0)
    assert by_name["other-track"].args["dur_ns"] == pytest.approx(50.0)


def test_instant_complete_and_counter_events():
    t = Tracer(enabled=True)
    t.instant(5.0, "barrier.arrive", pid=1, tid=9, args={"generation": 0})
    t.complete(0.0, 40.0, "push", "perfmodel", pid=0, tid=2,
               args={"pipe_ns": 30.0, "stall_ns": 10.0})
    t.counter(5.0, "misses", {"local": 3, "remote": 1})
    phs = [e.ph for e in t.events]
    assert phs == ["i", "X", "C"]
    assert t.events[1].dur == 40.0


def test_disabled_tracer_emits_no_structured_events():
    t = Tracer(enabled=False)
    t.begin(0.0, "a")
    t.instant(1.0, "b")
    t.complete(0.0, 1.0, "c")
    t.end(2.0, "a")
    assert t.events == []


def test_counting_false_is_a_true_noop_fast_path():
    t = Tracer(enabled=False, counting=False)
    # emit is rebound to a no-op: no dict work, documented count()==0
    assert t.emit.__func__ is Tracer._emit_noop
    t.emit(1.0, "miss")
    assert t.count("miss") == 0
    assert t.counters == {}


def test_default_tracer_still_counts_when_disabled():
    t = Tracer(enabled=False)
    t.emit(1.0, "miss")
    assert t.count("miss") == 1


def test_use_tracer_reaches_machines_built_inside():
    t = Tracer(enabled=True)
    with use_tracer(t):
        assert active_tracer() is t
        machine = Machine(CFG)
        assert machine.tracer is t
        assert machine.sim.tracer is t  # dispatch counting attached
    assert active_tracer() is None
    # outside the context, machines get their own quiet tracer again
    assert Machine(CFG).tracer is not t


def test_tracing_adds_zero_simulated_time():
    """The acceptance criterion: traced-off and traced-on runs take the
    same simulated time as an unobserved baseline."""
    baseline = barrier_metrics_us(4, Placement.UNIFORM, CFG, rounds=2)
    with use_tracer(Tracer(enabled=False)):
        off = barrier_metrics_us(4, Placement.UNIFORM, CFG, rounds=2)
    with use_tracer(Tracer(enabled=True)):
        on = barrier_metrics_us(4, Placement.UNIFORM, CFG, rounds=2)
    assert off == baseline
    assert on == baseline


def test_timer_reads_are_counted_for_overhead_correction():
    t = Tracer(enabled=True)
    with use_tracer(t):
        barrier_metrics_us(2, Placement.HIGH_LOCALITY, CFG, rounds=2)
    # 2 threads x 2 rounds x 2 timestamps (entry + exit)
    assert t.count("timer.read") == 8
