"""The longitudinal ledger: append/read integrity, folding, trend,
the windowed gate, diff, and the CLI verbs."""

import json
import os

import pytest

from repro.obs.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    Ledger,
    LedgerError,
    diff_records,
    fold_document,
    gate,
    ledger_main,
    record_checksum,
    record_from_bench,
    record_from_manifest,
    record_from_server_stats,
    render_gate,
    render_trend,
    trend,
)


def bench_doc(scale=1.0, cal=12.0, fidelity_ok=True):
    """A realistic schema-2 bench document with controllable speed."""
    def row(serial):
        return {"units": 4, "serial_s": round(serial * scale, 4),
                "parallel_s": round(serial * 0.6, 4), "cached_s": 0.01,
                "speedup": 1.6, "cached_speedup": 10.0,
                "units_per_s": round(4 / (serial * scale), 3),
                "sim_mcycles_per_s": 1.0, "events_per_s": 1000,
                "cache_hit_rate": 1.0, "identical": True}

    fid_err = 0.0 if fidelity_ok else 0.9
    return {
        "schema_version": 2, "generator": "repro.exec.bench",
        "jobs": 2, "quick": True,
        "host": {"cpu_count": 4, "cpu_model": "test", "python": "3",
                 "platform": "linux", "loadavg_1m": 0.1,
                 "calibration_miters_s": cal},
        "code_fingerprint": "cafecafecafecafe",
        "git_sha": "deadbeef" * 5, "git_dirty": False,
        "created_utc": "2026-08-08T00:00:00+00:00",
        "experiments": {"fig2": row(0.5), "fig3": row(0.4)},
        "fidelity": {"fig2": {
            "metrics": {"local_pair_slope_us": {
                "measured": 10.0 * (1 + fid_err), "expected": 10.0,
                "rel_err": fid_err, "tolerance": 0.5,
                "within_tolerance": fidelity_ok, "source": "paper"}},
            "max_abs_rel_err": fid_err,
            "within_tolerance": fidelity_ok}},
        "totals": {"serial_s": round(0.9 * scale, 4), "parallel_s": 0.54,
                   "cached_s": 0.02, "speedup": 1.67,
                   "cached_speedup": 18.0,
                   "cached_speedup_resolution_limited": False},
    }


def filled_ledger(path, scales=(1.0, 1.01, 0.99)):
    ledger = Ledger(str(path))
    for scale in scales:
        ledger.append(record_from_bench(bench_doc(scale)))
    return ledger


# -- append/read integrity ------------------------------------------------


def test_append_read_roundtrip(tmp_path):
    ledger = filled_ledger(tmp_path / "L.jsonl")
    records, skipped = ledger.read()
    assert len(records) == 3 and skipped == 0
    for rec in records:
        assert rec["ledger_schema"] == LEDGER_SCHEMA
        assert rec["sha256"] == record_checksum(rec)
        assert rec["kind"] == "bench"
        assert rec["git_dirty"] is False
        assert rec["calibration_miters_s"] == 12.0
        assert set(rec["experiments"]) == {"fig2", "fig3"}
        assert rec["fidelity"]["fig2"]["within_tolerance"] is True


def test_missing_file_reads_empty(tmp_path):
    records, skipped = Ledger(str(tmp_path / "none.jsonl")).read()
    assert records == [] and skipped == 0


def test_tampered_record_is_skipped(tmp_path):
    path = tmp_path / "L.jsonl"
    filled_ledger(path)
    lines = path.read_text().splitlines()
    doc = json.loads(lines[1])
    doc["experiments"]["fig2"]["serial_s"] = 99.9  # checksum now lies
    lines[1] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    records, skipped = Ledger(str(path)).read()
    assert len(records) == 2 and skipped == 1


def test_torn_final_line_is_tolerated(tmp_path):
    path = tmp_path / "L.jsonl"
    filled_ledger(path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"ledger_schema": 1, "kind": "bench", "trunc')
    records, skipped = Ledger(str(path)).read()
    assert len(records) == 3 and skipped == 1
    # the next append heals the torn tail instead of merging into it
    Ledger(str(path)).append(record_from_bench(bench_doc()))
    records, skipped = Ledger(str(path)).read()
    assert len(records) == 4 and skipped == 1


# -- folding --------------------------------------------------------------


def test_fold_document_detects_bench():
    record = fold_document(bench_doc())
    assert record["kind"] == "bench" and record["source"] == "bench"


def test_fold_document_detects_manifest():
    manifest = {
        "schema_version": 1, "generator": "repro.obs",
        "provenance": {"created_utc": "t", "git_sha": "abc",
                       "git_dirty": True, "code_fingerprint": "ff"},
        "experiment": {"id": "fig2", "title": "x"},
        "headline": {"thread_counts": [4, 8],
                     "high_locality_us": [20.0, 40.0],
                     "uniform_us": [40.0, 80.0]},
        "hostscope": {"regions": {"event_heap": {"self_s": 0.25}},
                      "throughput": {"sim_mcycles_per_s": 2.0}},
        "execution": {"jobs": 2, "cache_hits": 3, "computed": 5},
    }
    record = fold_document(manifest)
    assert record["kind"] == "metrics"
    assert record["experiment"] == "fig2"
    assert record["git_dirty"] is True
    assert record["hostscope_regions"] == {"event_heap": 0.25}
    assert record["throughput"]["sim_mcycles_per_s"] == 2.0
    assert record["execution"]["cache_hits"] == 3
    # fidelity recomputed from the headline (pair slope 10us = golden)
    fid = record["fidelity"]["fig2"]
    assert fid["metrics"]["local_pair_slope_us"]["rel_err"] == 0.0


def test_fold_document_detects_server_stats():
    stats = {
        "jobs": {"done": 3}, "uptime_s": 12.5,
        "metrics": {
            "repro_job_latency_seconds": {"series": [
                {"labels": {"experiment": "fig2"}, "count": 3,
                 "sum": 1.5, "buckets": {}}]},
            "repro_cache_hits_total": {"series": [{"value": 7}]},
            "repro_units_computed_total": {"series": [{"value": 11}]},
        },
    }
    record = fold_document(stats)
    assert record["kind"] == "server"
    assert record["job_latency"]["fig2"] == {"count": 3, "sum_s": 1.5,
                                             "mean_s": 0.5}
    assert record["fabric"]["cache_hits"] == 7
    assert record["fabric"]["units_computed"] == 11


def test_fold_document_rejects_garbage():
    with pytest.raises(LedgerError, match="unrecognized"):
        fold_document({"nonsense": True})
    with pytest.raises(LedgerError, match="JSON object"):
        fold_document([1, 2, 3])


# -- trend ----------------------------------------------------------------


def test_trend_is_calibration_normalized(tmp_path):
    ledger = Ledger(str(tmp_path / "L.jsonl"))
    # identical code speed measured on a half-speed host: raw serial_s
    # doubles, calibration halves -- normalized values stay flat
    ledger.append(record_from_bench(bench_doc(1.0, cal=12.0)))
    ledger.append(record_from_bench(bench_doc(2.0, cal=6.0)))
    records, _ = ledger.read()
    report = trend(records, metric="serial_s")
    assert report["normalized"] is True
    values = report["experiments"]["fig2"]["values"]
    assert values[0] == pytest.approx(values[1], rel=0.05)
    text = render_trend(report)
    assert "fig2" in text and "calibration-normalized" in text


def test_trend_falls_back_to_raw_without_calibration(tmp_path):
    ledger = Ledger(str(tmp_path / "L.jsonl"))
    ledger.append(record_from_bench(bench_doc(1.0)))
    ledger.append(record_from_bench(bench_doc(1.0, cal=None)))
    records, _ = ledger.read()
    report = trend(records)
    assert report["normalized"] is False


def test_trend_fidelity_metric_and_unknown_metric(tmp_path):
    ledger = filled_ledger(tmp_path / "L.jsonl")
    records, _ = ledger.read()
    report = trend(records, metric="fidelity")
    assert report["experiments"]["fig2"]["latest"] == 0.0
    with pytest.raises(LedgerError, match="unknown trend metric"):
        trend(records, metric="bogus")
    with pytest.raises(LedgerError, match="no records for experiment"):
        trend(records, experiment="nope")


# -- the windowed gate ----------------------------------------------------


def test_gate_passes_on_flat_trajectory(tmp_path):
    records, _ = filled_ledger(tmp_path / "L.jsonl").read()
    report = gate(records, window=5)
    assert report["pass"] is True
    assert report["regressions"] == []
    assert "PASS" in render_gate(report)


def test_gate_detects_synthetic_30pct_slowdown(tmp_path):
    ledger = filled_ledger(tmp_path / "L.jsonl")
    ledger.append(record_from_bench(bench_doc(1.3)))  # the slow record
    records, _ = ledger.read()
    report = gate(records, window=5)
    assert report["pass"] is False
    assert "fig2: serial_s" in report["regressions"]
    assert "fig3: serial_s" in report["regressions"]
    assert report["experiments"]["fig2"]["status"] == "regression"
    text = render_gate(report)
    assert "REGRESSION" in text and "FAIL" in text and "fig2" in text


def test_gate_trivial_pass_with_insufficient_history(tmp_path):
    ledger = Ledger(str(tmp_path / "L.jsonl"))
    ledger.append(record_from_bench(bench_doc(1.0)))
    ledger.append(record_from_bench(bench_doc(9.0)))  # huge, but only
    records, _ = ledger.read()                        # 1 prior record
    report = gate(records, window=5)
    assert report["pass"] is True
    assert "insufficient history" in report["reason"]


def test_gate_min_abs_noise_guard(tmp_path):
    """A 30% ratio on sub-hundredth-second rows is timer noise."""
    ledger = Ledger(str(tmp_path / "L.jsonl"))
    for scale in (1.0, 1.0, 1.3):
        doc = bench_doc(scale)
        for row in doc["experiments"].values():
            row["serial_s"] = round(row["serial_s"] / 100, 5)
        ledger.append(record_from_bench(doc))
    records, _ = ledger.read()
    report = gate(records, window=5)
    assert report["pass"] is True, report


def test_gate_fails_on_fidelity_breach_even_when_fast(tmp_path):
    ledger = filled_ledger(tmp_path / "L.jsonl")
    ledger.append(record_from_bench(bench_doc(1.0, fidelity_ok=False)))
    records, _ = ledger.read()
    report = gate(records, window=5)
    assert report["pass"] is False
    assert report["regressions"] == []
    assert report["fidelity_breaches"]
    assert "local_pair_slope_us" in report["fidelity_breaches"][0]


def test_gate_window_limits_history(tmp_path):
    """The window bounds which era the median describes: against the
    recent fast era a 1.3x record regresses; a window wide enough to
    be dominated by the old 5x-slow era calls the same record an
    improvement."""
    ledger = Ledger(str(tmp_path / "L.jsonl"))
    for scale in (5.0, 5.0, 5.0, 5.0, 1.0, 1.01, 1.3):
        ledger.append(record_from_bench(bench_doc(scale)))
    records, _ = ledger.read()
    assert gate(records, window=4)["pass"] is False
    assert gate(records, window=7)["pass"] is True


def test_gate_rejects_non_timing_metric(tmp_path):
    records, _ = filled_ledger(tmp_path / "L.jsonl").read()
    with pytest.raises(LedgerError, match="timing column"):
        gate(records, metric="units_per_s")


# -- diff -----------------------------------------------------------------


def test_diff_records_reuses_compare_bench(tmp_path):
    ledger = filled_ledger(tmp_path / "L.jsonl", scales=(1.0, 2.0))
    records, _ = ledger.read()
    report = diff_records(records, threshold=0.25)
    assert report["normalization_mode"] == "calibration"
    assert set(report["experiments"]) == {"fig2", "fig3"}
    assert report["regressions"]  # 2x slower, same calibration


def test_diff_records_needs_two(tmp_path):
    ledger = filled_ledger(tmp_path / "L.jsonl", scales=(1.0,))
    records, _ = ledger.read()
    with pytest.raises(LedgerError, match=">= 2 bench records"):
        diff_records(records)


# -- the CLI --------------------------------------------------------------


def test_cli_record_show_trend_gate(tmp_path, capsys):
    bench_path = tmp_path / "BENCH.json"
    bench_path.write_text(json.dumps(bench_doc()))
    ledger_path = str(tmp_path / "L.jsonl")
    for _ in range(3):
        assert ledger_main(["record", str(bench_path),
                            "--ledger", ledger_path]) == 0
    out = capsys.readouterr().out
    assert "appended bench record" in out and "sha256" in out

    assert ledger_main(["show", "--ledger", ledger_path]) == 0
    assert "kind=bench" in capsys.readouterr().out

    assert ledger_main(["show", "--ledger", ledger_path,
                        "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["sha256"] == record_checksum(record)

    assert ledger_main(["trend", "--ledger", ledger_path,
                        "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["records"] == 3

    assert ledger_main(["gate", "--ledger", ledger_path,
                        "--window", "5"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_gate_exit_1_on_slowdown(tmp_path, capsys):
    ledger_path = tmp_path / "L.jsonl"
    ledger = filled_ledger(ledger_path)
    ledger.append(record_from_bench(bench_doc(1.3)))
    code = ledger_main(["gate", "--ledger", str(ledger_path),
                        "--window", "5"])
    out = capsys.readouterr().out
    assert code == 1
    assert "fig2" in out and "serial_s" in out


def test_cli_gate_tolerates_torn_tail(tmp_path, capsys):
    ledger_path = tmp_path / "L.jsonl"
    filled_ledger(ledger_path)
    with open(ledger_path, "a", encoding="utf-8") as fh:
        fh.write('{"ledger_schema": 1, "torn')
    code = ledger_main(["gate", "--ledger", str(ledger_path),
                        "--window", "5"])
    captured = capsys.readouterr()
    assert code == 0
    assert "skipped 1 corrupt/torn line" in captured.err


def test_cli_errors_are_actionable(tmp_path, capsys):
    missing = str(tmp_path / "none.jsonl")
    assert ledger_main(["gate", "--ledger", missing]) == 2
    assert "bench --quick --ledger" in capsys.readouterr().err

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert ledger_main(["record", str(bad),
                        "--ledger", missing]) == 2
    assert "not JSON" in capsys.readouterr().err

    assert ledger_main(["record", str(tmp_path / "ghost.json"),
                        "--ledger", missing]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_default_ledger_path_is_benchmarks_jsonl():
    assert DEFAULT_LEDGER_PATH == os.path.join("benchmarks",
                                               "LEDGER.jsonl")


# -- integration with the real bench document -----------------------------


def test_real_bench_doc_folds_with_fidelity(tmp_path):
    """An actual run_bench document (fig-less quick subset) folds; a
    figure experiment's document carries fidelity into the record, and
    folding never perturbs the simulated results (bit-identity)."""
    from repro.core import spp1000
    from repro.exec.bench import run_bench

    doc = run_bench(spp1000(), jobs=2, quick=True,
                    experiment_ids=["fig2"])
    assert doc["experiments"]["fig2"]["identical"] is True
    assert "fig2" in doc["fidelity"]
    assert doc["fidelity"]["fig2"]["within_tolerance"] is True
    assert doc["git_dirty"] in (True, False, None)
    record = record_from_bench(doc)
    assert record["fidelity"]["fig2"]["metrics"]
    ledger = Ledger(str(tmp_path / "L.jsonl"))
    stamped = ledger.append(record)
    loaded, skipped = ledger.read()
    assert skipped == 0 and loaded[0] == stamped
