"""Tests for metrics manifests (span summaries, experiment manifests)."""

import json

import pytest

from repro.core import spp1000
from repro.experiments import run_experiment
from repro.obs import build_manifest, span_summary, write_metrics
from repro.sim import Tracer, use_tracer

CFG = spp1000(2)


def test_span_summary_aggregates_durations_and_imbalance():
    t = Tracer(enabled=True)
    # two tracks: 100 ns and 300 ns of "work" -> imbalance 1.5
    t.complete(0.0, 100.0, "work", pid=0, tid=0)
    t.complete(0.0, 300.0, "work", pid=0, tid=1)
    summary = span_summary(t)
    s = summary["work"]
    assert s["count"] == 2
    assert s["total_ns"] == pytest.approx(400.0)
    assert s["mean_ns"] == pytest.approx(200.0)
    assert s["max_ns"] == pytest.approx(300.0)
    assert s["min_ns"] == pytest.approx(100.0)
    assert s["tracks"] == 2
    assert s["imbalance"] == pytest.approx(1.5)


def test_span_summary_sums_counters_and_breakdown():
    t = Tracer(enabled=True)
    t.begin(0.0, "phase", pid=0, tid=0)
    t.emit(1.0, "load.miss.remote")
    t.end(10.0, "phase", pid=0, tid=0)
    t.complete(0.0, 50.0, "push", pid=0, tid=0,
               args={"pipe_ns": 30.0, "stall_ns": 20.0})
    t.complete(50.0, 50.0, "push", pid=0, tid=0,
               args={"pipe_ns": 35.0, "stall_ns": 15.0})
    summary = span_summary(t)
    assert summary["phase"]["counters"] == {"load.miss.remote": 1}
    assert summary["push"]["breakdown_ns"] == {
        "pipe_ns": pytest.approx(65.0), "stall_ns": pytest.approx(35.0)}


def test_experiment_manifest_end_to_end():
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        result = run_experiment("fig3", config=CFG,
                                thread_counts=[2, 4], rounds=2)
    manifest = result.manifest(config=CFG, tracer=tracer)
    # must be pure-JSON serializable
    round_trip = json.loads(json.dumps(manifest))
    assert round_trip["experiment"]["id"] == "fig3"
    assert round_trip["machine"]["n_cpus"] == 16
    assert round_trip["headline"]["thread_counts"] == [2, 4]
    # per-phase counter deltas: the fork_join span saw protocol events
    fork = round_trip["phases"]["fork_join"]
    assert fork["count"] > 0
    assert any(k.startswith("atomic") or k.startswith("load")
               for k in fork["counters"])
    inst = round_trip["instrumentation"]
    assert inst["tracer_simulated_cost_ns"] == 0.0
    assert inst["timer_reads"] == tracer.count("timer.read")
    assert inst["timer_overhead_total_ns"] == pytest.approx(
        inst["timer_reads"] * CFG.cycles(CFG.timer_overhead_cycles))


def test_write_metrics_file(tmp_path):
    path = tmp_path / "metrics.json"
    write_metrics(build_manifest(tracer=Tracer(enabled=True), config=CFG),
                  str(path))
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == 1
    assert doc["generator"] == "repro.obs"


def test_manifest_sanitizes_non_json_values():
    import numpy as np

    manifest = build_manifest(extra={
        "np_scalar": np.float64(1.5),
        "np_array": np.arange(3),
        "tuple": (1, 2),
    })
    doc = json.loads(json.dumps(manifest))
    assert doc["np_scalar"] == 1.5
    assert doc["np_array"] == [0, 1, 2]
    assert doc["tuple"] == [1, 2]
