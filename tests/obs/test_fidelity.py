"""Golden-anchor fidelity residuals (repro.obs.fidelity)."""

import pytest

from repro.core import spp1000
from repro.obs.fidelity import (
    FIDELITY_EXPERIMENTS,
    GOLDEN_ANCHORS,
    fidelity_residuals,
)


def fig2_data(pair_us=10.0, uniform_pair_us=20.0, step_us=60.0):
    """Synthetic fig2 curves with exact, controllable anchor values."""
    counts = [2, 4, 6, 8, 10]
    high = [pair_us * n / 2 for n in counts]
    high[-1] = high[-2] + pair_us + step_us  # 8 -> 10 crosses the node
    uniform = [uniform_pair_us * n / 2 for n in counts]
    return {"thread_counts": counts, "high_locality_us": high,
            "uniform_us": uniform}


def test_exact_expectations_give_zero_residuals():
    fid = fidelity_residuals("fig2", fig2_data(step_us=50.0))
    assert fid is not None
    assert fid["within_tolerance"] is True
    assert fid["max_abs_rel_err"] == 0.0
    for metric in ("local_pair_slope_us", "uniform_local_slope_ratio",
                   "cross_node_step_us"):
        entry = fid["metrics"][metric]
        assert entry["rel_err"] == 0.0
        assert entry["within_tolerance"] is True
        assert entry["source"] == "paper"


def test_out_of_tolerance_anchor_is_flagged():
    # local pair slope 3x the paper's 10us: rel_err 2.0 >> tol 0.5
    fid = fidelity_residuals("fig2", fig2_data(pair_us=30.0,
                                               uniform_pair_us=60.0))
    assert fid["within_tolerance"] is False
    bad = fid["metrics"]["local_pair_slope_us"]
    assert bad["within_tolerance"] is False
    assert bad["rel_err"] == pytest.approx(2.0)
    assert fid["max_abs_rel_err"] >= 2.0


def test_missing_inputs_skip_the_anchor_not_the_experiment():
    data = fig2_data()
    del data["uniform_us"]  # uniform ratio becomes uncomputable
    fid = fidelity_residuals("fig2", data)
    assert fid is not None
    assert "uniform_local_slope_ratio" not in fid["metrics"]
    assert "local_pair_slope_us" in fid["metrics"]


def test_trimmed_sweep_yields_none_not_error():
    # a reduced machine that never reaches the anchored thread counts
    fid = fidelity_residuals("fig2", {"thread_counts": [2],
                                      "high_locality_us": [10.0],
                                      "uniform_us": [20.0]})
    assert fid is None


def test_unanchored_experiment_returns_none():
    assert fidelity_residuals("table1", {"whatever": 1}) is None
    assert fidelity_residuals("nope", {}) is None


def test_fidelity_covers_the_fig2_to_fig8_suite():
    # there is no fig5 experiment (the paper's Figure 5 is a photograph)
    assert set(FIDELITY_EXPERIMENTS) == {"fig2", "fig3", "fig4", "fig6",
                                         "fig7", "fig8"}


@pytest.mark.parametrize("fig", sorted(FIDELITY_EXPERIMENTS))
def test_reproduction_is_within_tolerance(fig):
    """The live simulator's curves must sit inside every golden
    tolerance — otherwise the ledger gate would fail every bench run."""
    from repro.experiments import get_experiment

    result = get_experiment(fig)(spp1000())
    fid = fidelity_residuals(fig, result.data)
    assert fid is not None, f"{fig}: no anchor computed"
    assert len(fid["metrics"]) == len(GOLDEN_ANCHORS[fig])
    assert fid["within_tolerance"] is True, fid


def test_residuals_never_mutate_the_data():
    data = fig2_data()
    import copy

    before = copy.deepcopy(data)
    fidelity_residuals("fig2", data)
    assert data == before
