"""The memory-system profiler: counters, churn detector, manifests.

MemScope's contract has three legs — exact aggregate counters (hits
counted at the cache, misses classified once by the fetch path),
sampling that decimates only per-page detail, and a churn detector
that flags ping-pong/false-sharing but stays silent on private data.
"""

import pytest

from repro.core import spp1000
from repro.machine import Machine, MemClass
from repro.obs import MemScope, active_memscope, use_memscope
from repro.obs.memscope import memscope_from_trace, placement_probe


def run(machine, gen):
    return machine.sim.run(until=machine.sim.process(gen))


def profiled_machine(n_hypernodes=2, **kwargs):
    config = spp1000(n_hypernodes=n_hypernodes)
    ms = MemScope(config, **kwargs)
    with use_memscope(ms):
        machine = Machine(config)
    return machine, ms


# ---------------------------------------------------------------------------
# wiring and the zero-cost contract
# ---------------------------------------------------------------------------

def test_unprofiled_machine_keeps_class_level_none():
    machine = Machine(spp1000(2))
    assert machine.memscope is None
    assert machine.caches[0].memscope is None
    assert machine.net.rings[0].memscope is None
    # class attribute, not per-instance state
    assert "memscope" not in vars(machine.caches[0])


def test_ambient_scope_is_adopted_and_wired():
    machine, ms = profiled_machine()
    assert machine.memscope is ms
    assert machine.caches[0].memscope is ms
    assert machine.caches[0].cpu == 0
    assert machine.net.rings[3].memscope is ms
    assert ms.machines_attached == 1
    assert active_memscope() is None  # context exited


def test_use_memscope_nests():
    a, b = MemScope(), MemScope()
    with use_memscope(a):
        with use_memscope(b):
            assert active_memscope() is b
        assert active_memscope() is a
    assert active_memscope() is None


# ---------------------------------------------------------------------------
# counter exactness: hits + classified misses = total accesses
# ---------------------------------------------------------------------------

def test_hits_and_misses_are_counted_exactly():
    machine, ms = profiled_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)
    addr = region.addr(0)

    def prog():
        yield machine.load(0, addr)       # local miss
        yield machine.load(0, addr)       # hit
        yield machine.load(0, addr)       # hit

    run(machine, prog())
    assert ms.miss_local == 1
    assert ms.hits == 2
    assert ms.machine_accesses == 3
    b = ms.to_dict()["breakdown"]
    assert b["total_accesses"] == 3
    assert b["hits"] == 2
    assert b["hit_rate"] == pytest.approx(2 / 3)


def test_remote_miss_and_gcb_hit_classified():
    machine, ms = profiled_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)
    addr = region.addr(0)

    def prog():
        yield machine.load(0, addr)       # SCI remote miss (hn0 -> hn1)
        yield machine.load(1, addr)       # sibling: remote line now in GCB

    run(machine, prog())
    assert ms.miss_remote == 1
    assert ms.miss_gcb == 1
    assert list(ms.hop_counts) == [1]
    b = ms.to_dict()["breakdown"]
    assert b["remote_fraction"] == pytest.approx(0.5)


def test_profiler_never_advances_simulated_time():
    plain = Machine(spp1000(2))
    machine, ms = profiled_machine()

    def prog(m, region):
        for cpu in (0, 1, 0):
            for off in range(0, 4096, 64):
                yield m.load(cpu, region.addr(off))
                yield m.store(cpu, region.addr(off), off)

    for m in (plain, machine):
        region = m.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)
        run(m, prog(m, region))
    assert machine.sim.now == plain.sim.now
    assert ms.machine_accesses > 0


# ---------------------------------------------------------------------------
# sampling: aggregates exact, page heat decimated
# ---------------------------------------------------------------------------

def test_sampling_decimates_only_page_heat():
    exact_counts = None
    heats = {}
    for sample in (1, 4):
        machine, ms = profiled_machine(sample=sample)
        region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)

        def prog():
            for _ in range(4):
                for off in range(0, 4096, 32):
                    yield machine.load(0, region.addr(off))

        run(machine, prog())
        counts = (ms.hits, ms.miss_local, ms.miss_gcb, ms.miss_remote)
        if exact_counts is None:
            exact_counts = counts
        else:
            assert counts == exact_counts
        heats[sample] = sum(ms._page_heat.values())
    assert heats[4] == pytest.approx(heats[1] / 4, rel=0.05)


# ---------------------------------------------------------------------------
# churn detector
# ---------------------------------------------------------------------------

def _alternating_stores(machine, addr0, addr1, rounds=6):
    def prog():
        for _ in range(rounds):
            yield machine.load(0, addr0)
            yield machine.store(0, addr0, 1)
            yield machine.load(1, addr1)
            yield machine.store(1, addr1, 2)
    run(machine, prog())


def test_ping_pong_line_is_flagged():
    machine, ms = profiled_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)
    addr = region.addr(0)
    _alternating_stores(machine, addr, addr)     # same word, two writers
    flagged = ms.flagged_lines()
    assert flagged, "alternating writers with invalidations not flagged"
    assert flagged[0]["kind"] == "ping-pong"
    assert flagged[0]["writers"] == [0, 1]
    assert flagged[0]["invalidations"] > 0


def test_false_sharing_distinct_words_same_line():
    machine, ms = profiled_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)
    # words 0 and 1 cohabit one 32-byte line
    _alternating_stores(machine, region.addr(0), region.addr(8))
    flagged = ms.flagged_lines()
    assert flagged
    assert flagged[0]["kind"] == "false-sharing"
    assert flagged[0]["distinct_words"] == 2


def test_private_access_is_not_flagged():
    machine, ms = profiled_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)

    def prog():
        for i in range(20):
            yield machine.load(0, region.addr(0))
            yield machine.store(0, region.addr(0), i)

    run(machine, prog())
    assert ms.flagged_lines() == []


# ---------------------------------------------------------------------------
# occupancy, heat, and the document
# ---------------------------------------------------------------------------

def test_ring_occupancy_and_hot_pages_recorded():
    machine, ms = profiled_machine()
    region = machine.alloc(8192, MemClass.NEAR_SHARED, home_hypernode=1)

    def prog():
        for off in range(0, 8192, 32):
            yield machine.load(0, region.addr(off))

    run(machine, prog())
    doc = ms.to_dict()
    assert doc["source"] == "machine"
    assert doc["rings"], "remote misses produced no ring occupancy"
    ring = next(iter(doc["rings"].values()))
    assert ring["transfers"] > 0 and ring["busy_ns"] > 0
    assert 0.0 < ring["utilization"] <= 1.0
    assert doc["hot_pages"]
    assert doc["hot_pages"][0]["accesses"] > 0
    assert doc["crossbar_ports"]
    assert doc["banks"]
    assert doc["hypernode_heat"]


def test_directory_and_sci_transitions_counted():
    machine, ms = profiled_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)

    def prog():
        yield machine.load(0, region.addr(0))
        yield machine.load(8, region.addr(0))    # cpu 8: hypernode 1
        yield machine.store(0, region.addr(0), 1)

    run(machine, prog())
    assert ms.dir_events.get("add_sharer", 0) > 0
    assert ms.sci_events.get("attach", 0) > 0


def test_render_smoke():
    machine, ms = profiled_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)
    _alternating_stores(machine, region.addr(0), region.addr(0))
    text = ms.render(title="unit test")
    for fragment in ("miss-class breakdown", "SCI remote miss",
                     "ring occupancy", "hot pages"):
        assert fragment in text


# ---------------------------------------------------------------------------
# manifest integration (the satellite-6 fix: hits never report zero)
# ---------------------------------------------------------------------------

def test_manifest_memscope_block_carries_hits():
    from repro.obs import build_manifest

    machine, ms = profiled_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)

    def prog():
        yield machine.load(0, region.addr(0))
        yield machine.load(0, region.addr(0))

    run(machine, prog())
    manifest = build_manifest(config=machine.config, memscope=ms)
    block = manifest["memscope"]
    assert block["breakdown"]["hits"] == 1
    assert block["breakdown"]["total_accesses"] == 2
    # a dict payload passes through unchanged
    manifest2 = build_manifest(memscope=ms.to_dict())
    assert manifest2["memscope"]["breakdown"]["hits"] == 1


def test_manifest_provenance_stamp():
    from repro.obs import build_manifest

    manifest = build_manifest()
    prov = manifest["provenance"]
    assert prov["created_utc"].startswith("20")
    assert len(prov["code_fingerprint"]) == 16
    assert prov["git_sha"] is None or len(prov["git_sha"]) == 40


# ---------------------------------------------------------------------------
# the placement probe and trace summarisation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_hn,expected_remote", [
    (2, 0.25), (4, 0.375), (8, 0.4375),
])
def test_probe_remote_fraction_rises_with_hypernodes(n_hn, expected_remote):
    ms = placement_probe(spp1000(n_hypernodes=n_hn))
    doc = ms.to_dict()
    assert doc["source"] == "probe"
    assert doc["breakdown"]["remote_fraction"] == pytest.approx(
        expected_remote)


def test_memscope_from_trace_counts_machine_instants():
    events = [
        {"cat": "machine", "name": "load.hit"},
        {"cat": "machine", "name": "load.hit"},
        {"cat": "machine", "name": "load.miss.local"},
        {"cat": "machine", "name": "load.miss.remote"},
        {"cat": "machine", "name": "store.inval.remote"},
        {"cat": "machine", "name": "ring.round_trip",
         "args": {"payload": [2]}},
        {"cat": "runtime", "name": "load.hit"},   # wrong cat: ignored
    ]
    doc = memscope_from_trace(events)
    b = doc["breakdown"]
    assert b["hits"] == 2
    assert b["miss_local"] == 1
    assert b["miss_remote"] == 1
    assert b["total_accesses"] == 4
    assert b["remote_fraction"] == pytest.approx(0.5)
    assert doc["invalidations"]["remote"] == 1
    assert doc["ring_round_trips"] == {"2": 1}
