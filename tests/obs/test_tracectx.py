"""Trace contexts: minting, wire round-trips, ambient install, stitching."""

import re
import threading

import pytest

from repro.obs import (TraceContext, active_tracectx, mint_trace_id,
                       stitch_chrome_trace, use_tracectx)
from repro.obs.tracectx import _SIM_PID_BASE, MAX_SPANS, HostSpan


def test_mint_trace_id_is_16_hex_and_unique():
    ids = {mint_trace_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(re.fullmatch(r"[0-9a-f]{16}", t) for t in ids)


def test_wire_round_trip_preserves_identity():
    ctx = TraceContext(job_id="j-000001", origin="client")
    wire = ctx.to_wire()
    assert wire == {"trace_id": ctx.trace_id, "job_id": "j-000001"}
    back = TraceContext.from_wire(wire, origin="server")
    assert back.trace_id == ctx.trace_id
    assert back.job_id == "j-000001"
    assert back.origin == "server"


def test_from_wire_is_tolerant_of_garbage():
    for wire in (None, {}, {"trace_id": ""}, "nonsense", 7):
        ctx = TraceContext.from_wire(wire, origin="server")
        assert re.fullmatch(r"[0-9a-f]{16}", ctx.trace_id)


def test_stamp_annotates_records_in_place():
    ctx = TraceContext(job_id="j-1")
    record = ctx.stamp({"event": "unit", "done": 3})
    assert record["trace_id"] == ctx.trace_id
    assert record["job_id"] == "j-1"
    assert record["event"] == "unit"


def test_span_recording_and_cap():
    ctx = TraceContext(origin="pool")
    with ctx.span("work", cat="test", where="here"):
        pass
    assert ctx.spans[0].name == "work"
    assert ctx.spans[0].origin == "pool"
    assert ctx.spans[0].t1 >= ctx.spans[0].t0
    for i in range(MAX_SPANS + 5):
        ctx.add_span(f"s{i}", 0.0, 1.0)
    assert len(ctx.spans) == MAX_SPANS
    assert ctx.dropped == 6  # 1 recorded before the flood


def test_spans_survive_wire_round_trip():
    src = TraceContext(origin="server")
    src.add_span("queued", 10.0, 10.5, cat="server.queue", priority=0)
    dst = TraceContext(trace_id=src.trace_id, origin="client")
    dst.extend_from_wire(src.spans_to_wire())
    dst.extend_from_wire(None)       # tolerated
    dst.extend_from_wire(["junk"])   # non-dict entries skipped
    assert len(dst.spans) == 1
    span = dst.spans[0]
    assert (span.name, span.cat, span.origin) == ("queued", "server.queue",
                                                  "server")
    assert span.args == {"priority": 0}


# -- ambient install ------------------------------------------------------


def test_use_tracectx_nests_and_restores():
    assert active_tracectx() is None
    outer, inner = TraceContext(), TraceContext()
    with use_tracectx(outer):
        assert active_tracectx() is outer
        with use_tracectx(inner):
            assert active_tracectx() is inner
        assert active_tracectx() is outer
    assert active_tracectx() is None


def test_ambient_context_is_per_thread():
    """The server runs concurrent jobs on different threads — each must
    see only its own context (a process-global stack would cross-stamp)."""
    seen = {}
    barrier = threading.Barrier(2)

    def job(name):
        ctx = TraceContext(job_id=name)
        with use_tracectx(ctx):
            barrier.wait()  # both threads inside their own context
            seen[name] = active_tracectx().job_id
    threads = [threading.Thread(target=job, args=(n,))
               for n in ("t1", "t2")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert seen == {"t1": "t1", "t2": "t2"}
    assert active_tracectx() is None  # main thread never saw either


# -- stitching ------------------------------------------------------------


def _host_spans():
    return [HostSpan("submit", 100.0, 100.1, origin="client"),
            HostSpan("queued", 100.1, 100.2, origin="server"),
            HostSpan("unit f:0", 100.2, 100.4, origin="pool")]


def test_stitch_places_host_origins_on_fixed_pids():
    doc = stitch_chrome_trace("cafe" * 4, _host_spans(), job_id="j-1")
    events = doc["traceEvents"]
    names = {e["args"]["name"]: e["pid"] for e in events
             if e.get("ph") == "M"}
    assert names == {"host: client": 0, "host: server": 1, "host: pool": 2}
    xs = [e for e in events if e["ph"] == "X"]
    assert [e["pid"] for e in xs] == [0, 1, 2]
    # ts rebased to the earliest span, in microseconds
    assert xs[0]["ts"] == 0.0
    assert xs[1]["ts"] == pytest.approx(100000.0)  # 0.1 s later, in µs
    for e in xs:
        assert e["args"]["trace_id"] == "cafe" * 4
        assert e["args"]["job_id"] == "j-1"
    assert doc["otherData"]["trace_id"] == "cafe" * 4
    assert doc["otherData"]["job_id"] == "j-1"


def test_stitch_shifts_sim_pids_and_prefixes_names():
    sim_doc = {"traceEvents": [
        {"name": "process_name", "ph": "M", "ts": 0.0, "pid": 0,
         "tid": 0, "args": {"name": "hypernode 0"}},
        {"name": "fork_join", "ph": "X", "ts": 5.0, "dur": 3.0,
         "pid": 0, "tid": 1, "args": {}},
    ], "otherData": {"experiment": "fig3"}}
    doc = stitch_chrome_trace("beef" * 4, _host_spans(), sim_doc)
    sim_events = [e for e in doc["traceEvents"]
                  if e["pid"] >= _SIM_PID_BASE]
    assert len(sim_events) == 2
    meta = next(e for e in sim_events if e["ph"] == "M")
    assert meta["args"]["name"] == "sim: hypernode 0"
    span = next(e for e in sim_events if e["ph"] == "X")
    assert span["ts"] == 5.0  # simulated timestamps untouched
    assert span["args"]["trace_id"] == "beef" * 4
    assert doc["otherData"]["sim"] == {"experiment": "fig3"}


def test_stitched_doc_is_json_serializable(tmp_path):
    import json

    from repro.obs import write_chrome_json

    path = tmp_path / "trace.json"
    write_chrome_json(
        stitch_chrome_trace("f00d" * 4, _host_spans()), str(path))
    doc = json.loads(path.read_text())
    assert doc["otherData"]["trace_id"] == "f00d" * 4
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
