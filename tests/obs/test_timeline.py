"""Tests for the ASCII Gantt timeline renderer."""

from repro.obs import render_timeline, timeline_from_tracer
from repro.sim import Tracer


def synthetic_events():
    return [
        {"ph": "M", "name": "process_name", "ts": 0, "pid": 0, "tid": 0},
        {"ph": "B", "name": "thread", "ts": 0.0, "pid": 0, "tid": 0},
        {"ph": "i", "name": "barrier.arrive", "ts": 5.0, "pid": 0, "tid": 0},
        {"ph": "E", "name": "thread", "ts": 10.0, "pid": 0, "tid": 0},
        {"ph": "X", "name": "push", "ts": 0.0, "dur": 8.0,
         "pid": 1, "tid": 8},
    ]


def test_render_draws_one_row_per_track():
    text = render_timeline(synthetic_events(), width=40)
    assert "hn0/cpu0" in text
    assert "hn1/cpu8" in text
    assert text.count("|") == 2 * 2  # two tracks, two borders each


def test_render_legend_names_spans_and_markers():
    text = render_timeline(synthetic_events(), width=40)
    assert "A=thread" in text
    assert "B=push" in text
    assert "+=barrier.arrive" in text


def test_span_bars_cover_their_extent():
    text = render_timeline(synthetic_events(), width=40)
    row = next(l for l in text.splitlines() if l.startswith("hn0/cpu0"))
    # the thread span covers the whole range (0..10 of 0..10)
    bar = row.split("|")[1]
    assert bar.startswith("A")
    assert bar.rstrip().endswith("A")
    assert "+" in bar  # the instant overdraws the span


def test_empty_trace_is_handled():
    assert "(no events)" in render_timeline([])


def test_round_trip_from_live_tracer():
    t = Tracer(enabled=True)
    t.begin(0.0, "work", pid=0, tid=2)
    t.end(1000.0, "work", pid=0, tid=2)
    text = render_timeline(timeline_from_tracer(t))
    assert "hn0/cpu2" in text
    assert "A=work" in text
