"""``python -m repro top``: frame building, replay, and the live poll."""

import json

import pytest

from repro.obs.top import (build_frame, replay_stats, sparkline,
                           top_main)


# -- sparkline ------------------------------------------------------------


def test_sparkline_scales_to_the_ramp():
    line = sparkline([0.0, 1.0, 2.0, 4.0], width=4)
    assert len(line) == 4
    assert line[0] == " "     # zero maps to the blank cell
    assert line[-1] == "@"    # peak maps to the hottest cell
    assert sparkline([], width=10) == " " * 10


def test_sparkline_keeps_only_the_last_width_values():
    assert sparkline([9.0] * 50 + [0.0], width=1) == " "


# -- frames ---------------------------------------------------------------


def _stats(**over):
    stats = {
        "jobs": {"done": 3, "running": 1},
        "connections": 2,
        "coalesced": 7,
        "queue_depth": 4,
        "workers": {"total": 4, "busy": 1},
        "recent_jobs": [
            {"id": "j000001", "experiment": "fig3", "status": "done",
             "done": 16, "total": 16, "wall_s": 1.25,
             "trace_id": "ab" * 8},
        ],
        "metrics": {
            "repro_cache_hits_total": {"series": [{"value": 10.0}]},
            "repro_cache_misses_total": {"series": [{"value": 30.0}]},
            "repro_units_computed_total": {"series": [{"value": 30.0}]},
        },
    }
    stats.update(over)
    return stats


def test_build_frame_reports_the_service_story():
    frame = build_frame(_stats(), source="unit test",
                        rates=[1.0, 2.0, 4.0])
    text = "\n".join(frame)
    assert "repro top — unit test" in text
    assert "done:3" in text and "running:1" in text
    assert "queue depth 4" in text
    assert "connections 2" in text
    assert "1/4 busy" in text
    assert "10 hits / 30 misses (25% hit rate)" in text
    assert "units computed 30" in text
    assert "coalesced 7" in text
    assert "peak 4.0" in text
    assert "j000001" in text and "ab" * 8 in text
    assert "draining" not in text


def test_build_frame_handles_empty_stats_and_draining():
    frame = build_frame({"draining": True}, source="empty")
    text = "\n".join(frame)
    assert "n/a hit rate" in text     # no lookups yet, no ZeroDivision
    assert "0/0 busy" in text
    assert "draining" in text


# -- replay ---------------------------------------------------------------


def _progress_records():
    return [
        {"t_s": 0.0, "event": "start", "experiment": "fig3",
         "total": 4, "trace_id": "cd" * 8, "job_id": "j000009"},
        {"t_s": 0.2, "event": "unit", "experiment": "fig3", "done": 1,
         "total": 4, "job_id": "j000009", "jobs": 2, "workers_busy": 2},
        {"t_s": 0.4, "event": "unit", "experiment": "fig3", "done": 2,
         "total": 4, "job_id": "j000009", "jobs": 2, "workers_busy": 2},
        {"t_s": 1.1, "event": "unit", "experiment": "fig3", "done": 3,
         "total": 4, "job_id": "j000009", "jobs": 2, "workers_busy": 1},
        {"t_s": 1.5, "event": "unit", "experiment": "fig3", "done": 4,
         "total": 4, "job_id": "j000009", "jobs": 2, "workers_busy": 1},
        {"t_s": 1.6, "event": "done", "experiment": "fig3",
         "job_id": "j000009", "wall_s": 1.6, "computed": 4,
         "cache_hits": 0},
    ]


def test_replay_stats_reconstructs_the_final_frame():
    stats = replay_stats(_progress_records())
    assert stats["jobs"] == {"done": 1}
    row = stats["recent_jobs"][0]
    assert row["id"] == "j000009"
    assert row["trace_id"] == "cd" * 8
    assert (row["done"], row["total"]) == (4, 4)
    assert row["wall_s"] == 1.6
    assert stats["workers"] == {"total": 2, "busy": 1}
    # units/s binned per second of stream time: 2 in [0,1), 2 in [1,2)
    assert stats["rates"] == [2.0, 2.0]
    units = stats["metrics"]["repro_units_computed_total"]["series"]
    assert units == [{"value": 4.0}]


def test_replay_groups_untraced_records_by_experiment():
    records = [{"event": "start", "experiment": "fig7", "total": 2},
               {"event": "unit", "experiment": "fig7", "done": 2,
                "total": 2},
               {"event": "done", "experiment": "fig7", "wall_s": 0.5,
                "computed": 2}]
    stats = replay_stats(records)
    assert stats["recent_jobs"][0]["id"] == "fig7"
    assert stats["jobs"] == {"done": 1}


# -- the CLI --------------------------------------------------------------


def test_top_replay_renders_one_frame(tmp_path, capsys):
    path = tmp_path / "progress.jsonl"
    path.write_text("".join(json.dumps(r) + "\n"
                            for r in _progress_records()))
    assert top_main(["--progress", str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert f"replay of {path}" in out
    assert "j000009" in out and "cd" * 8 in out


def test_top_replay_errors_are_one_line_actionable(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    assert top_main(["--progress", str(missing)]) == 2
    assert "cannot read progress file" in capsys.readouterr().err

    corrupt = tmp_path / "bad.jsonl"
    corrupt.write_text("{not json\n")
    assert top_main(["--progress", str(corrupt)]) == 2
    assert "cannot parse progress file" in capsys.readouterr().err

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert top_main(["--progress", str(empty)]) == 2
    assert "contains no records" in capsys.readouterr().err


def test_top_rejects_nonpositive_interval(capsys):
    assert top_main(["--interval", "0"]) == 2
    assert "--interval must be > 0" in capsys.readouterr().err


def test_top_refuses_dead_server(capsys):
    # a port nothing listens on: connect fails with an actionable line
    assert top_main(["--port", "1", "--once"]) == 2
    assert "cannot attach to" in capsys.readouterr().err


def test_top_live_once_against_a_server(tmp_path, capsys):
    from repro.sdk import Client
    from repro.server import ServerThread

    srv = ServerThread(workers=1, no_cache=True).start()
    try:
        with Client(srv.host, srv.port) as client:
            client.submit("fig3", quick=True).result()
        code = top_main(["--host", srv.host, "--port", str(srv.port),
                         "--once"])
    finally:
        srv.stop(drain=False)
    assert code == 0
    out = capsys.readouterr().out
    assert f"{srv.host}:{srv.port}" in out
    assert "done:1" in out
    assert "fig3" in out


def test_top_dispatches_from_the_main_cli(capsys):
    from repro.cli import main

    assert main(["top", "--interval", "0"]) == 2
    assert "--interval must be > 0" in capsys.readouterr().err
