"""The host-time self-profiler: attribution, throughput, zero-cost.

HostScope's contract has three legs — host-time attribution whose
region self-times partition the profiled wall clock (coverage >= 95%
on a real run), bit-identical simulated results *and* final simulated
clocks whether the profiler is installed or not, and an off-path cost
(one ``is None`` check per hot-loop site) small enough to stay within
a 2% wall-time budget.
"""

import heapq
import time

import pytest

from repro import Machine, spp1000
from repro.obs import HostScope, active_hostscope, use_hostscope
from repro.obs.hostscope import (
    REGIONS,
    host_region,
    hostscope_from_trace,
    render_trace_summary,
)
from repro.pvm import PvmSystem
from repro.runtime import Placement, Runtime
from repro.sim import Simulator
from repro.sim.errors import SimulationError
from repro.sim.process import Process


def run_forkjoin(n=8, placement=Placement.UNIFORM, n_hypernodes=2):
    """A small fork-join; returns (results, final simulated clock)."""
    machine = Machine(spp1000(n_hypernodes))
    rt = Runtime(machine)

    def body(env, tid):
        yield env.compute(100)
        return tid * tid

    def main(env):
        return (yield from env.fork_join(n, body, placement))

    results = rt.run(main)
    return results, machine.sim.now


# ---------------------------------------------------------------------------
# wiring and the zero-cost contract
# ---------------------------------------------------------------------------

def test_unprofiled_simulator_keeps_hostscope_none():
    sim = Simulator()
    assert sim.hostscope is None
    assert active_hostscope() is None


def test_ambient_scope_is_adopted_and_counts_simulators():
    hs = HostScope()
    with use_hostscope(hs):
        machine = Machine(spp1000(2))
        assert machine.sim.hostscope is hs
        # the machine taught the scope its clock for cycle conversion
        assert hs.clock_ns == machine.config.clock_ns
    assert active_hostscope() is None  # context exited
    assert hs.simulators == 1


def test_results_and_clocks_bit_identical_on_off():
    plain_results, plain_now = run_forkjoin()
    hs = HostScope()
    with use_hostscope(hs), hs.profile():
        profiled_results, profiled_now = run_forkjoin()
    assert profiled_results == plain_results
    assert profiled_now == plain_now        # float-exact, not approx
    assert hs.events > 0


def test_light_mode_is_also_bit_identical():
    plain_results, plain_now = run_forkjoin()
    hs = HostScope(detail=False)
    with use_hostscope(hs):
        light_results, light_now = run_forkjoin()
    assert light_results == plain_results
    assert light_now == plain_now
    assert hs.events > 0
    assert hs.sim_cycles > 0
    # light mode never touches the region stack
    assert all(v == 0 for v in hs._self_ns.values())


# ---------------------------------------------------------------------------
# region accounting
# ---------------------------------------------------------------------------

def test_region_stack_self_and_cumulative():
    hs = HostScope()
    hs.start()
    with hs.region("app"):
        time.sleep(0.002)
        with hs.region("memory"):
            time.sleep(0.002)
        with hs.region("app"):            # nested same-region instance
            time.sleep(0.001)
    hs.stop()
    assert hs._enters["app"] == 2
    # cumulative counts only the outermost instance: >= its self time,
    # and >= the inner memory region it contains
    assert hs._cum_ns["app"] >= hs._self_ns["app"]
    assert hs._cum_ns["app"] >= hs._self_ns["memory"]
    assert hs._self_ns["memory"] >= 1_000_000


def test_unbalanced_exit_is_ignored():
    hs = HostScope()
    hs.start()
    hs.exit()                              # empty stack: no-op, no raise
    hs.stop()
    assert hs.events == 0


def test_expected_regions_present_after_runtime_run():
    hs = HostScope()
    with use_hostscope(hs), hs.profile():
        run_forkjoin()
    seen = {name for name, ns in hs._self_ns.items() if hs._enters[name]}
    for expected in ("event_heap", "dispatch", "app", "sched", "memory"):
        assert expected in seen, expected
    assert set(seen) <= set(REGIONS)


def test_pvm_region_billed_on_message_traffic():
    hs = HostScope()
    with use_hostscope(hs), hs.profile():
        pvm = PvmSystem(Runtime(Machine(spp1000(2))))

        def body(task, tid):
            if tid == 0:
                yield from task.send(1, "ping", nbytes=8)
                return None
            return (yield from task.recv(0))

        results = pvm.run_tasks(2, body)
    assert results[1] == "ping"
    assert hs._enters["pvm"] > 0


def test_coverage_at_least_95_percent_on_profiled_run():
    hs = HostScope()
    with use_hostscope(hs), hs.profile():
        run_forkjoin(n=16)
    assert hs.coverage >= 0.95
    assert hs.wall_s > 0


def test_host_region_helper_null_when_off():
    from contextlib import nullcontext

    class FakeSim:
        hostscope = None

    assert isinstance(host_region(None, "pvm"), nullcontext)
    light = HostScope(detail=False)
    assert isinstance(host_region(light, "pvm"), nullcontext)
    full = HostScope()
    full.start()
    with host_region(full, "pvm"):
        pass
    full.stop()
    assert full._enters["pvm"] == 1


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------

def test_to_dict_shape_and_throughput():
    hs = HostScope()
    with use_hostscope(hs), hs.profile():
        run_forkjoin()
    doc = hs.to_dict()
    assert doc["schema_version"] == 1
    assert doc["detail"] is True
    assert doc["wall_s"] > 0
    assert 0.95 <= doc["coverage"] <= 1.0
    shares = [row["share"] for row in doc["regions"].values()]
    assert all(0.0 <= s <= 1.0 for s in shares)
    tp = doc["throughput"]
    assert tp["events"] == hs.events
    assert tp["sim_mcycles"] == pytest.approx(hs.sim_cycles / 1e6,
                                              abs=1e-4)
    assert tp["events_per_s"] > 0
    heap = doc["event_heap"]
    assert heap["pushes"] >= heap["max_depth"] >= 1
    assert doc["processes"] > 0 and doc["simulators"] > 0


def test_render_mentions_regions_and_throughput():
    hs = HostScope()
    with use_hostscope(hs), hs.profile():
        run_forkjoin()
    text = hs.render(title="hostscope: test")
    assert "host-time attribution" in text
    assert "coverage" in text
    assert "memory" in text
    assert "simulator throughput" in text


def test_render_without_activity_explains_itself():
    hs = HostScope()
    hs.start()
    hs.stop()
    assert "no simulator activity" in hs.render()


def test_trace_summary_census():
    hs = HostScope()
    from repro.obs import use_tracer
    from repro.sim import Tracer

    tracer = Tracer(enabled=True)
    with use_tracer(tracer), use_hostscope(hs), hs.profile():
        run_forkjoin()
    from repro.obs import timeline_from_tracer

    events = timeline_from_tracer(tracer)
    doc = hostscope_from_trace(events)
    assert doc["source"] == "trace"
    assert doc["events"] == len(events)
    text = render_trace_summary(doc, title="t.json")
    assert "live run" in text


# ---------------------------------------------------------------------------
# the off-path overhead budget
# ---------------------------------------------------------------------------

def _reference_step(self):
    """Simulator.step as it was before hostscope instrumentation."""
    time_, _seq, event = heapq.heappop(self._queue)
    if time_ < self._now - 1e-12:
        raise SimulationError("event scheduled in the past")
    self._now = time_
    if self.tracer is not None:
        self.tracer.emit(time_, "sim.dispatch")
    callbacks, event.callbacks = event.callbacks, None
    for callback in callbacks:
        callback(event)
    if not event.ok and not event.defused:
        raise event.value


def _reference_resume(self, event):
    """Process._resume as it was before hostscope instrumentation."""
    self.sim._active_process = self
    self._target = None
    try:
        if event.ok:
            next_event = self._generator.send(event.value)
        else:
            event.defused = True
            next_event = self._generator.throw(event.value)
    except StopIteration as stop:
        self.sim._active_process = None
        self.succeed(stop.value)
        return
    except BaseException as exc:
        self.sim._active_process = None
        self.fail(exc)
        return
    self.sim._active_process = None
    if not isinstance(next_event, type(event)) \
            and not hasattr(next_event, "callbacks"):
        kind = type(next_event).__name__
        self._generator.close()
        self.fail(SimulationError(
            f"process {self.name!r} yielded a non-event ({kind})"))
        return
    if next_event.sim is not self.sim:
        self._generator.close()
        self.fail(SimulationError(
            f"process {self.name!r} yielded an event from another "
            "simulator"))
        return
    if next_event.processed:
        proxy = type(event)(self.sim)
        proxy.callbacks.append(self._resume)
        if next_event.ok:
            proxy.succeed(next_event.value)
        else:
            next_event.defused = True
            proxy.defused = True
            proxy.fail(next_event.value)
        self._target = proxy
    else:
        next_event.callbacks.append(self._resume)
        self._target = next_event


def _churn_workload(n_procs=4, n_events=8000):
    sim = Simulator()

    def churn(sim):
        for _ in range(n_events):
            yield sim.timeout(1.0)

    for _ in range(n_procs):
        sim.process(churn(sim))
    sim.run()


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_off_path_overhead_under_two_percent(monkeypatch):
    """The uninstalled profiler costs < 2% wall time on an event-churn
    workload (one None check per step/schedule/resume)."""
    assert active_hostscope() is None

    def measure_once():
        # Interleaved best-of-N damps scheduler noise: reference and
        # current alternate so a background blip hits both equally.
        current, reference = float("inf"), float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            _churn_workload()
            current = min(current, time.perf_counter() - t0)
            with monkeypatch.context() as mp:
                mp.setattr(Simulator, "step", _reference_step)
                mp.setattr(Process, "_resume", _reference_resume)
                t0 = time.perf_counter()
                _churn_workload()
                reference = min(reference, time.perf_counter() - t0)
        return current, reference

    for _ in range(3):                      # retry to shrug off CI noise
        current, reference = measure_once()
        if current <= reference * 1.02:
            return
    assert current <= reference * 1.02, (
        f"off-path hostscope overhead {current / reference - 1:.1%} "
        "exceeds the 2% budget")
