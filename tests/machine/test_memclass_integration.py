"""Integration tests: memory classes drive access costs on the machine."""

import pytest

from repro import Machine, spp1000
from repro.machine import MemClass
from repro.runtime import Runtime

CFG = spp1000(2)


def timed_load(machine, cpu, addr):
    def go():
        yield machine.load(cpu, addr + 64)   # warm TLB, different line
        t0 = machine.sim.now
        yield machine.load(cpu, addr)
        return machine.sim.now - t0
    return machine.sim.run(until=machine.sim.process(go()))


def test_block_shared_blocks_keep_lines_together():
    machine = Machine(CFG)
    block = 8 * CFG.line_bytes
    region = machine.alloc(4 * CFG.page_bytes, MemClass.BLOCK_SHARED,
                           block_bytes=block)
    # consecutive blocks alternate hypernodes: latency from CPU 0
    # alternates local/remote
    t_block0 = timed_load(machine, 0, region.addr(0))
    machine2 = Machine(CFG)
    region2 = machine2.alloc(4 * CFG.page_bytes, MemClass.BLOCK_SHARED,
                             block_bytes=block)
    t_block1 = timed_load(machine2, 0, region2.addr(block))
    assert t_block1 > 3 * t_block0    # block 1 is homed on hypernode 1


def test_thread_private_allocation_via_env():
    machine = Machine(CFG)
    rt = Runtime(machine)

    def body(env, tid):
        region = env.alloc_private(4096, label=f"priv-{tid}")
        home = machine.space.home_of(region.addr(0))
        t0 = env.now
        yield env.load(region.addr(64))
        yield env.load(region.addr(0))
        return home.hypernode, env.now - t0

    def main(env):
        from repro.runtime import Placement
        return (yield from env.fork_join(4, body, Placement.UNIFORM))

    results = rt.run(main)
    # each thread's private memory is homed on its own hypernode
    assert [hn for hn, _t in results] == [0, 1, 0, 1]
    # and access is local-speed everywhere
    for _hn, elapsed in results:
        assert elapsed / CFG.clock_ns < 250


def test_near_shared_remote_for_other_hypernode():
    machine = Machine(CFG)
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)
    t_home = timed_load(machine, 8, region.addr(0))      # on hn1: local
    machine2 = Machine(CFG)
    region2 = machine2.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)
    t_away = timed_load(machine2, 0, region2.addr(0))    # on hn0: remote
    assert t_away > 3 * t_home
