"""Tests for intra-hypernode directory state."""

from repro.machine import HypernodeDirectory


def test_entry_created_on_demand():
    d = HypernodeDirectory(0)
    assert d.tracked_lines == 0
    ent = d.entry(0x100)
    assert ent.sharers == set() and not ent.dirty
    assert d.tracked_lines == 1


def test_peek_does_not_create():
    d = HypernodeDirectory(0)
    assert d.peek(0x100).sharers == set()
    assert d.tracked_lines == 0


def test_add_remove_sharers():
    d = HypernodeDirectory(0)
    d.add_sharer(0x100, 3)
    d.add_sharer(0x100, 5)
    assert d.local_sharers(0x100) == [3, 5]
    assert d.local_sharers(0x100, excluding=3) == [5]
    d.remove_sharer(0x100, 3)
    assert d.local_sharers(0x100) == [5]


def test_last_sharer_removal_drops_entry_and_dirty_bit():
    d = HypernodeDirectory(0)
    d.add_sharer(0x100, 1)
    d.entry(0x100).dirty = True
    d.remove_sharer(0x100, 1)
    assert d.tracked_lines == 0
    assert not d.peek(0x100).dirty


def test_remove_sharer_of_untracked_line_is_noop():
    d = HypernodeDirectory(0)
    d.remove_sharer(0x500, 2)  # must not raise


def test_clear_line_returns_sharers_sorted():
    d = HypernodeDirectory(0)
    for cpu in [4, 1, 6]:
        d.add_sharer(0x100, cpu)
    assert d.clear_line(0x100) == [1, 4, 6]
    assert d.tracked_lines == 0
    assert d.clear_line(0x100) == []


def test_global_cache_buffer_membership():
    d = HypernodeDirectory(1)
    assert not d.gcb_holds(0x200)
    d.gcb_insert(0x200)
    assert d.gcb_holds(0x200)
    assert d.gcb_drop(0x200)
    assert not d.gcb_drop(0x200)
