"""Tests for the SCI distributed sharing lists."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import SCIDirectory, SCIList


def test_new_list_is_empty():
    lst = SCIList(home_hypernode=0)
    assert len(lst) == 0
    assert lst.walk() == []


def test_attach_prepends_at_head():
    lst = SCIList(0)
    lst.attach(1)
    lst.attach(2)
    lst.attach(3)
    assert lst.walk() == [3, 2, 1]
    lst.check_invariants()


def test_home_never_joins_its_own_list():
    lst = SCIList(0)
    with pytest.raises(ValueError):
        lst.attach(0)


def test_double_attach_rejected():
    lst = SCIList(0)
    lst.attach(1)
    with pytest.raises(ValueError):
        lst.attach(1)


def test_detach_head_middle_tail():
    lst = SCIList(0)
    for hn in [1, 2, 3, 4]:
        lst.attach(hn)
    # list is now 4,3,2,1
    lst.detach(4)           # head
    assert lst.walk() == [3, 2, 1]
    lst.detach(2)           # middle
    assert lst.walk() == [3, 1]
    lst.detach(1)           # tail
    assert lst.walk() == [3]
    lst.check_invariants()


def test_detach_unknown_raises():
    lst = SCIList(0)
    with pytest.raises(KeyError):
        lst.detach(5)


def test_purge_returns_visit_order_and_empties():
    lst = SCIList(0)
    for hn in [1, 2, 3]:
        lst.attach(hn)
    assert lst.purge() == [3, 2, 1]
    assert len(lst) == 0
    assert lst.head is None


def test_directory_creates_lists_on_demand():
    d = SCIDirectory()
    lst = d.list_for(0x100, home_hypernode=2)
    assert lst.home == 2
    assert d.list_for(0x100, 2) is lst
    assert d.sharers(0x100) == []
    assert d.sharers(0x999) == []


def test_directory_rejects_conflicting_home():
    d = SCIDirectory()
    d.list_for(0x100, 1)
    with pytest.raises(ValueError):
        d.list_for(0x100, 2)


def test_active_lines_counts_only_nonempty():
    d = SCIDirectory()
    d.list_for(0x100, 0)
    d.list_for(0x200, 0).attach(1)
    assert d.active_lines == 1
    d.drop(0x200)
    assert d.active_lines == 0


@given(st.lists(
    st.tuples(st.booleans(), st.integers(1, 15)), min_size=1, max_size=120))
def test_invariants_hold_under_random_attach_detach(ops):
    """Property: the doubly-linked list stays consistent and matches a
    model set under arbitrary attach/detach sequences."""
    lst = SCIList(0)
    model = set()
    for is_attach, hn in ops:
        if is_attach:
            if hn not in model:
                lst.attach(hn)
                model.add(hn)
        else:
            if hn in model:
                lst.detach(hn)
                model.remove(hn)
        lst.check_invariants()
        assert set(lst.walk()) == model
        assert len(lst) == len(model)
