"""Tests for dirty-line writeback on eviction."""

import pytest

from repro.core import spp1000
from repro.machine import Machine, MemClass

CFG = spp1000(2)


def run(machine, gen):
    return machine.sim.run(until=machine.sim.process(gen))


def conflicting_addrs(machine, region):
    """Two addresses mapping to the same direct-mapped cache set."""
    a = region.addr(0)
    b = region.addr(CFG.dcache_bytes)
    assert machine.caches[0].set_of(machine.line_of(a)) == \
        machine.caches[0].set_of(machine.line_of(b))
    return a, b


@pytest.fixture
def setup():
    machine = Machine(CFG)
    region = machine.alloc(CFG.dcache_bytes + CFG.page_bytes,
                           MemClass.NEAR_SHARED, home_hypernode=0)
    return machine, region


def test_clean_eviction_writes_nothing_back(setup):
    machine, region = setup
    a, b = conflicting_addrs(machine, region)

    def prog():
        yield machine.load(0, a)      # clean copy
        yield machine.load(0, b)      # evicts the clean line

    run(machine, prog())
    assert machine.tracer.count("cache.writeback") == 0


def test_dirty_eviction_writes_back(setup):
    machine, region = setup
    a, b = conflicting_addrs(machine, region)

    def prog():
        yield machine.store(0, a, 42)   # dirty copy
        yield machine.load(0, b)        # evicts the dirty line

    run(machine, prog())
    assert machine.tracer.count("cache.writeback") == 1


def test_dirty_eviction_costs_a_bank_visit(setup):
    machine, region = setup
    a, b = conflicting_addrs(machine, region)

    def clean_case():
        yield machine.load(0, a)
        t0 = machine.sim.now
        yield machine.load(0, b)
        return machine.sim.now - t0

    t_clean = run(machine, clean_case())
    machine2 = Machine(CFG)
    region2 = machine2.alloc(CFG.dcache_bytes + CFG.page_bytes,
                             MemClass.NEAR_SHARED, home_hypernode=0)
    a2, b2 = conflicting_addrs(machine2, region2)

    def dirty_case():
        yield machine2.store(0, a2, 1)
        t0 = machine2.sim.now
        yield machine2.load(0, b2)
        return machine2.sim.now - t0

    t_dirty = run(machine2, dirty_case())
    assert t_dirty > t_clean


def test_value_survives_dirty_eviction(setup):
    machine, region = setup
    a, b = conflicting_addrs(machine, region)

    def prog():
        yield machine.store(0, a, 123)
        yield machine.load(0, b)          # evict dirty a
        value = yield machine.load(0, a)  # re-fetch from memory
        return value

    assert run(machine, prog()) == 123


def test_shared_dirty_line_not_written_back_by_reader(setup):
    """Only the sole modified owner writes back; a shared (downgraded)
    copy leaves silently."""
    machine, region = setup
    a, b = conflicting_addrs(machine, region)

    def prog():
        yield machine.store(0, a, 7)
        yield machine.load(1, a)     # downgrade: now shared by 0 and 1
        yield machine.load(1, b)     # cpu 1 evicts its shared copy

    run(machine, prog())
    assert machine.tracer.count("cache.writeback") == 0
