"""Tests for the measured latency table."""

import pytest

from repro.core import spp1000
from repro.machine import latency_table, measure_latencies


@pytest.fixture(scope="module")
def latencies():
    return measure_latencies(spp1000(2))


def test_papers_prose_numbers(latencies):
    """§2.6: one access per cycle; miss 50-60 cycles; remote ~8x."""
    assert latencies["cache_hit"] == pytest.approx(1.0)
    assert 50 <= latencies["local_miss"] <= 65
    ratio = latencies["remote_miss"] / latencies["local_miss"]
    assert 5.0 <= ratio <= 12.0


def test_gcb_between_local_and_remote(latencies):
    assert latencies["local_miss"] <= latencies["gcb_hit"] \
        < latencies["remote_miss"]


def test_atomics_cost_a_memory_round_trip(latencies):
    assert latencies["local_atomic"] >= 40
    assert latencies["remote_atomic"] > 4 * latencies["local_atomic"]


def test_tlb_miss_matches_config(latencies):
    assert latencies["tlb_miss"] == pytest.approx(
        spp1000().tlb_miss_cycles, abs=1)


def test_table_renders():
    text = latency_table(spp1000(2)).render()
    assert "remote_miss" in text
    assert "microseconds" in text


def test_single_hypernode_rejected():
    with pytest.raises(ValueError):
        measure_latencies(spp1000(1))
