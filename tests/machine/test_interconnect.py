"""Tests for crossbars, rings, and memory-bank contention."""

import pytest

from repro.core import spp1000
from repro.machine import Machine, MemClass
from repro.machine.interconnect import Crossbar, Interconnect, Ring
from repro.machine.memory import MemorySubsystem
from repro.machine.address import HomeLocation
from repro.sim import Simulator

CFG = spp1000(2)


def test_interconnect_inventory():
    sim = Simulator()
    net = Interconnect(sim, CFG)
    assert len(net.crossbars) == 2
    assert len(net.rings) == 4
    assert set(net.crossbars[0].ports) == {0, 1, 2, 3, Crossbar.IO_PORT}


def test_crossbar_traversal_takes_configured_cycles():
    sim = Simulator()
    xbar = Crossbar(sim, CFG, hypernode=0)
    proc = xbar.traverse(2)
    sim.run(until=proc)
    assert sim.now == CFG.cycles(CFG.crossbar_cycles)
    assert xbar.traversals == 1


def test_crossbar_ports_contend_independently():
    sim = Simulator()
    xbar = Crossbar(sim, CFG, hypernode=0)
    # two traversals to the same port serialise...
    p1 = xbar.traverse(0)
    p2 = xbar.traverse(0)
    # ...one to a different port runs in parallel
    p3 = xbar.traverse(1)
    sim.run()
    assert all(p.triggered for p in (p1, p2, p3))
    assert sim.now == 2 * CFG.cycles(CFG.crossbar_cycles)


def test_ring_transfer_time_scales_with_hops():
    cfg = spp1000(4)
    sim = Simulator()
    ring = Ring(sim, cfg, ring_id=0)
    one_hop = ring.transfer(0, 1)
    sim.run(until=one_hop)
    t1 = sim.now
    three_hops = ring.transfer(1, 0)  # unidirectional: 3 hops
    sim.run(until=three_hops)
    assert (sim.now - t1) == pytest.approx(3 * t1)
    assert ring.transfers == 2
    assert ring.busy_ns == pytest.approx(4 * t1)


def test_ring_serialises_transfers():
    sim = Simulator()
    ring = Ring(sim, CFG, ring_id=1)
    procs = [ring.transfer(0, 1) for _ in range(3)]
    sim.run()
    assert all(p.triggered for p in procs)
    assert sim.now == pytest.approx(3 * CFG.cycles(CFG.ring_hop_cycles))


def test_bank_contention_serialises_same_bank():
    sim = Simulator()
    mem = MemorySubsystem(sim, CFG)
    bank = mem.bank(HomeLocation(0, 0, 0))
    procs = [bank.service() for _ in range(4)]
    sim.run()
    assert sim.now == pytest.approx(4 * CFG.cycles(CFG.bank_cycles))
    assert bank.accesses == 4


def test_distinct_banks_run_in_parallel():
    sim = Simulator()
    mem = MemorySubsystem(sim, CFG)
    p1 = mem.bank(HomeLocation(0, 0, 0)).service()
    p2 = mem.bank(HomeLocation(0, 0, 1)).service()
    p3 = mem.bank(HomeLocation(0, 1, 0)).service()
    sim.run()
    assert all(p.triggered for p in (p1, p2, p3))
    assert sim.now == pytest.approx(CFG.cycles(CFG.bank_cycles))


def test_same_bank_loads_queue_on_the_machine():
    """Two CPUs missing to one bank finish later than to two banks."""
    machine = Machine(CFG)
    region = machine.alloc(2 * CFG.page_bytes, MemClass.NEAR_SHARED,
                           home_hypernode=0)
    # page 0 -> FU0/bank0; page 1 -> FU1/bank0: distinct banks
    same_a = region.addr(0)
    same_b = region.addr(CFG.line_bytes)        # same page, same bank
    other_page = region.addr(CFG.page_bytes)    # different FU

    def pair(addr1, addr2):
        m = Machine(CFG)
        r = m.alloc(2 * CFG.page_bytes, MemClass.NEAR_SHARED,
                    home_hypernode=0)
        a1 = r.addr(addr1 - region.addr(0))
        a2 = r.addr(addr2 - region.addr(0))

        def one(cpu, addr):
            yield m.load(cpu, addr)

        procs = [m.sim.process(one(0, a1)), m.sim.process(one(2, a2))]
        m.sim.run(until=m.sim.all_of(procs))
        return m.sim.now

    t_same_bank = pair(same_a, same_b)
    t_diff_bank = pair(same_a, other_page)
    assert t_same_bank > t_diff_bank


def test_four_rings_carry_traffic_independently():
    """Far-shared pages interleave over FUs, so concurrent remote misses
    to different pages use different rings."""
    machine = Machine(CFG)
    region = machine.alloc(8 * CFG.page_bytes, MemClass.FAR_SHARED)
    # pages homed at hypernode 0, FUs 0..3 (ring 0..3)
    addrs = [region.addr(p * CFG.page_bytes) for p in (0, 2, 4, 6)]

    def one(cpu, addr):
        yield machine.load(cpu, addr)

    procs = [machine.sim.process(one(8 + i, addr))
             for i, addr in enumerate(addrs)]
    machine.sim.run(until=machine.sim.all_of(procs))
    used_rings = [r for r in machine.net.rings if r.transfers > 0]
    assert len(used_rings) == 4
