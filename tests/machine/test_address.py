"""Tests for the address space and the five memory classes."""

import pytest
from hypothesis import given, strategies as st

from repro.core import spp1000
from repro.machine import AddressSpace, MemClass

CFG = spp1000(n_hypernodes=2)


@pytest.fixture
def space():
    return AddressSpace(CFG)


def test_regions_are_page_aligned_and_disjoint(space):
    r1 = space.alloc(100, MemClass.NEAR_SHARED, home_hypernode=0)
    r2 = space.alloc(5000, MemClass.FAR_SHARED)
    assert r1.base % CFG.page_bytes == 0
    assert r2.base % CFG.page_bytes == 0
    assert r1.end <= r2.base
    assert r1.size == CFG.page_bytes         # rounded up to one page
    assert r2.size == 2 * CFG.page_bytes     # rounded up to two pages


def test_address_zero_is_unmapped(space):
    with pytest.raises(KeyError):
        space.region_of(0)


def test_region_of_finds_owner(space):
    regions = [space.alloc(CFG.page_bytes, MemClass.FAR_SHARED)
               for _ in range(10)]
    for r in regions:
        assert space.region_of(r.base) is r
        assert space.region_of(r.end - 1) is r


def test_region_addr_bounds_checked(space):
    r = space.alloc(64, MemClass.NEAR_SHARED, home_hypernode=0)
    with pytest.raises(IndexError):
        r.addr(r.size)
    with pytest.raises(IndexError):
        r.addr(-1)


def test_alloc_rejects_bad_arguments(space):
    with pytest.raises(ValueError):
        space.alloc(0, MemClass.FAR_SHARED)
    with pytest.raises(ValueError):
        space.alloc(64, MemClass.THREAD_PRIVATE)  # needs placement
    with pytest.raises(ValueError):
        space.alloc(64, MemClass.NEAR_SHARED)  # needs home hypernode
    with pytest.raises(ValueError):
        space.alloc(64, MemClass.BLOCK_SHARED)  # needs block size
    with pytest.raises(ValueError):
        space.alloc(64, MemClass.BLOCK_SHARED, block_bytes=48)  # not multiple
    with pytest.raises(ValueError):
        space.alloc(64, MemClass.NEAR_SHARED, home_hypernode=5)  # no such HN


def test_thread_private_homes_on_owning_fu(space):
    r = space.alloc(4 * CFG.page_bytes, MemClass.THREAD_PRIVATE,
                    home_hypernode=1, home_fu=2)
    for page in range(4):
        home = r.home_of(r.addr(page * CFG.page_bytes))
        assert home.hypernode == 1
        assert home.fu == 2
    # pages alternate between the FU's two banks
    banks = [r.home_of(r.addr(p * CFG.page_bytes)).bank for p in range(4)]
    assert banks == [0, 1, 0, 1]


def test_near_shared_interleaves_pages_across_home_fus(space):
    r = space.alloc(8 * CFG.page_bytes, MemClass.NEAR_SHARED,
                    home_hypernode=1)
    homes = [r.home_of(r.addr(p * CFG.page_bytes)) for p in range(8)]
    assert all(h.hypernode == 1 for h in homes)
    assert [h.fu for h in homes] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert [h.bank for h in homes[:4]] == [0, 0, 0, 0]
    assert [h.bank for h in homes[4:]] == [1, 1, 1, 1]


def test_far_shared_interleaves_pages_across_hypernodes(space):
    r = space.alloc(8 * CFG.page_bytes, MemClass.FAR_SHARED)
    homes = [r.home_of(r.addr(p * CFG.page_bytes)) for p in range(8)]
    assert [h.hypernode for h in homes] == [0, 1, 0, 1, 0, 1, 0, 1]
    # and across FUs once hypernodes wrap
    assert [h.fu for h in homes] == [0, 0, 1, 1, 2, 2, 3, 3]


def test_block_shared_uses_block_granularity(space):
    block = 4 * CFG.line_bytes  # 128 B blocks
    r = space.alloc(CFG.page_bytes, MemClass.BLOCK_SHARED, block_bytes=block)
    h0 = r.home_of(r.addr(0))
    h1 = r.home_of(r.addr(block))
    h2 = r.home_of(r.addr(2 * block))
    assert h0.hypernode == 0 and h1.hypernode == 1 and h2.hypernode == 0
    # within one block, all lines share a home
    assert r.home_of(r.addr(block - 1)) == h0


def test_node_private_homes_on_accessor(space):
    r = space.alloc(CFG.page_bytes, MemClass.NODE_PRIVATE)
    assert r.home_of(r.addr(0), accessor_hn=0).hypernode == 0
    assert r.home_of(r.addr(0), accessor_hn=1).hypernode == 1
    with pytest.raises(ValueError):
        r.home_of(r.addr(0))  # accessor required


def test_home_of_rejects_foreign_address(space):
    r1 = space.alloc(64, MemClass.NEAR_SHARED, home_hypernode=0)
    r2 = space.alloc(64, MemClass.NEAR_SHARED, home_hypernode=0)
    with pytest.raises(ValueError):
        r1.home_of(r2.addr(0))


@given(
    n_hn=st.sampled_from([1, 2, 4, 8, 16]),
    offset=st.integers(0, 64 * 4096 - 1),
    mclass=st.sampled_from([MemClass.FAR_SHARED, MemClass.NEAR_SHARED]),
)
def test_homes_always_structurally_valid(n_hn, offset, mclass):
    cfg = spp1000(n_hypernodes=n_hn)
    space = AddressSpace(cfg)
    r = space.alloc(64 * cfg.page_bytes, mclass,
                    home_hypernode=0 if mclass is MemClass.NEAR_SHARED else None)
    home = r.home_of(r.addr(offset))
    assert 0 <= home.hypernode < cfg.n_hypernodes
    assert 0 <= home.fu < cfg.fus_per_hypernode
    assert 0 <= home.bank < cfg.banks_per_fu


@given(offset=st.integers(0, 16 * 4096 - 1))
def test_all_bytes_of_a_line_share_a_home(offset):
    cfg = spp1000(n_hypernodes=4)
    space = AddressSpace(cfg)
    r = space.alloc(16 * cfg.page_bytes, MemClass.FAR_SHARED)
    addr = r.addr(offset)
    line_start = addr - addr % cfg.line_bytes
    homes = {r.home_of(a) for a in range(line_start, line_start + cfg.line_bytes, 8)}
    assert len(homes) == 1


def test_allocation_accounting(space):
    assert space.allocated_bytes == 0
    space.alloc(CFG.page_bytes, MemClass.FAR_SHARED)
    space.alloc(100, MemClass.FAR_SHARED)  # rounds to one page
    assert space.allocated_bytes == 2 * CFG.page_bytes
    # 2 hypernodes x 4 FUs x 2 banks x 16 MB
    assert space.physical_bytes == 2 * 4 * 2 * 16 * 1024 * 1024
    assert 0.0 < space.utilization < 1.0
