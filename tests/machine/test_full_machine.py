"""Tests on the maximum configuration: 16 hypernodes, 128 CPUs."""

import pytest

from repro.core import spp1000
from repro.core.units import to_us
from repro.machine import Machine, MemClass
from repro.runtime import Barrier, Placement, Runtime, assign


@pytest.fixture(scope="module")
def machine():
    return Machine(spp1000(n_hypernodes=16))


def test_configuration(machine):
    assert machine.config.n_cpus == 128
    assert len(machine.caches) == 128
    assert len(machine.directories) == 16
    assert len(machine.net.rings) == 4


def test_far_shared_spreads_over_all_hypernodes(machine):
    region = machine.alloc(64 * machine.config.page_bytes,
                           MemClass.FAR_SHARED)
    homes = {machine.space.home_of(
        region.addr(p * machine.config.page_bytes)).hypernode
        for p in range(64)}
    assert homes == set(range(16))


def test_remote_latency_grows_with_ring_distance(machine):
    """On a 16-node unidirectional ring, a fetch from the next node is
    cheaper than one that travels most of the way round."""
    cfg = machine.config
    region = machine.alloc(2 * cfg.page_bytes, MemClass.NEAR_SHARED,
                           home_hypernode=0)
    near_addr = region.addr(0)
    far_addr = region.addr(cfg.line_bytes)

    def timed(cpu, addr):
        def go():
            yield machine.load(cpu, addr + 8 * cfg.line_bytes)  # warm TLB
            t0 = machine.sim.now
            yield machine.load(cpu, addr)
            return machine.sim.now - t0
        proc = machine.sim.process(go())
        return machine.sim.run(until=proc)

    cpu_hn15 = 15 * 8       # hypernode 15: 1 hop to reach 0, 15 back? no:
    cpu_hn1 = 1 * 8         # hypernode 1 -> 0 is 15 hops out, 1 hop back
    t_from_hn15 = timed(cpu_hn15, near_addr)   # 15->0: 1 hop, 0->15: 15
    t_from_hn1 = timed(cpu_hn1, far_addr)      # 1->0: 15 hops, 0->1: 1
    # both directions total 16 hops on the ring: equal round trips
    assert t_from_hn15 == pytest.approx(t_from_hn1)


def test_writes_invalidate_across_many_hypernodes(machine):
    region = machine.alloc(machine.config.page_bytes,
                           MemClass.NEAR_SHARED, home_hypernode=0)
    addr = region.addr(0)
    readers = [hn * 8 for hn in range(16)]

    def go():
        for cpu in readers:
            yield machine.load(cpu, addr)
        t0 = machine.sim.now
        yield machine.store(0, addr, 1)
        return machine.sim.now - t0

    elapsed = machine.sim.run(until=machine.sim.process(go()))
    line = machine.line_of(addr)
    for cpu in readers[1:]:
        assert not machine.caches[cpu].contains(line)
    assert machine.sci.sharers(line) == []
    machine.check_coherence_invariants()
    # walking 15 sharing hypernodes takes tens of microseconds
    assert to_us(elapsed) > 10.0


def test_128_thread_fork_join_and_barrier():
    machine = Machine(spp1000(16))
    runtime = Runtime(machine)
    barrier = Barrier(runtime, 128)
    arrived = []

    def body(env, tid):
        yield env.compute(17 * (tid % 5))
        yield from barrier.wait(env)
        arrived.append(tid)

    def main(env):
        yield from env.fork_join(128, body, Placement.UNIFORM)

    runtime.run(main)
    assert sorted(arrived) == list(range(128))


def test_uniform_assignment_on_16_hypernodes():
    cfg = spp1000(16)
    cpus = assign(cfg, 128, Placement.UNIFORM)
    assert sorted(cpus) == list(range(128))
    per_hn = [sum(1 for c in cpus if c // 8 == hn) for hn in range(16)]
    assert per_hn == [8] * 16
