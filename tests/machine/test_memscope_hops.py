"""Golden-value tests for memscope's SCI hop-count accounting.

On the unidirectional SCI ring the outbound distance from hypernode
``s`` to ``d`` is ``(d - s) mod n``, and a full round trip always
covers the whole circle — ``n x ring_hop_cycles`` of ring time — so
the remote-miss fetch latency is a pure function of the machine
config:

    gcb_lookup + issue + 2 x crossbar + 2 x agent + bank
    + sci_update + n x ring_hop + fill        [cycles]

Memscope must report exactly that per miss, the exact outbound hop
count per distance, and — under a failed-ring plan — exactly two
reroute detours more (outbound + return).
"""

import os

import pytest

from repro.core import spp1000
from repro.faults import load_plan, use_faults
from repro.machine import Machine, MemClass
from repro.obs import MemScope, use_memscope

RING_LOSS = os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "faults", "ring_loss.json")

N_HN = 8


def golden_remote_ns(cfg):
    """The fetch-path latency of one fresh remote miss, from costs."""
    cycles = (cfg.gcb_lookup_cycles + cfg.issue_cycles
              + 2 * cfg.crossbar_cycles + 2 * cfg.agent_cycles
              + cfg.bank_cycles + cfg.sci_update_cycles
              + cfg.n_hypernodes * cfg.ring_hop_cycles + cfg.fill_cycles)
    return cfg.cycles(cycles)


def remote_load(distance, plan=None):
    """One load from hypernode 0 of a line homed ``distance`` away."""
    cfg = spp1000(n_hypernodes=N_HN)
    ms = MemScope(cfg)
    with use_memscope(ms):
        if plan is not None:
            with use_faults(plan):
                machine = Machine(cfg)
        else:
            machine = Machine(cfg)
    if plan is not None:
        machine.sim.run(until=0.0)       # apply the plan's t=0 events
    region = machine.alloc(4096, MemClass.NEAR_SHARED,
                           home_hypernode=distance)

    def prog():
        yield machine.load(0, region.addr(0))

    machine.sim.run(until=machine.sim.process(prog()))
    return machine, ms, cfg


@pytest.mark.parametrize("distance", [1, 2, 4])
def test_hop_count_and_golden_latency(distance):
    machine, ms, cfg = remote_load(distance)
    assert ms.miss_remote == 1
    assert ms.hop_counts == {distance: 1}
    assert ms.hop_latency_ns[distance] == golden_remote_ns(cfg)
    doc = ms.to_dict()
    assert doc["hops"][str(distance)]["count"] == 1
    assert doc["hops"][str(distance)]["mean_latency_ns"] == \
        golden_remote_ns(cfg)


def test_round_trip_cost_is_distance_independent():
    # the return path completes the circle: every distance pays the
    # same n x ring_hop total, so latencies are identical across hops
    latencies = set()
    for distance in (1, 2, 4, 7):
        _, ms, cfg = remote_load(distance)
        latencies.add(ms.hop_latency_ns[distance])
    assert latencies == {golden_remote_ns(cfg)}


def test_degraded_ring_adds_two_reroute_detours():
    plan_cfg = spp1000(n_hypernodes=N_HN)
    plan = load_plan(RING_LOSS, plan_cfg)
    machine, ms, cfg = remote_load(1, plan=plan)
    assert ms.miss_remote == 1
    assert ms.hop_counts == {1: 1}
    # page 0 of a NEAR_SHARED region fronts fu 0 == ring 0, which the
    # plan fails (with ring 1): outbound and return each detour once
    expected = golden_remote_ns(cfg) + cfg.cycles(
        2 * cfg.ring_reroute_extra_cycles)
    assert ms.hop_latency_ns[1] == expected


def test_degraded_traffic_lands_on_surviving_ring():
    plan = load_plan(RING_LOSS, spp1000(n_hypernodes=N_HN))
    machine, ms, cfg = remote_load(1, plan=plan)
    occupied = {r for r, st in ms._rings.items() if st["events"]}
    assert occupied, "no ring occupancy recorded"
    assert occupied <= {2, 3}, \
        f"traffic on failed rings 0/1: {sorted(occupied)}"
    # outbound + return transfers both recorded on the detour ring
    assert sum(st["events"] for st in ms._rings.values()) == 2
