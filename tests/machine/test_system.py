"""Integration tests for the wired machine: latencies and coherence."""

import pytest

from repro.core import spp1000
from repro.core.units import to_us
from repro.machine import Machine, MemClass


def run(machine, gen):
    proc = machine.sim.process(gen)
    return machine.sim.run(until=proc)


@pytest.fixture
def machine():
    return Machine(spp1000(n_hypernodes=2))


def shared_word(machine, home_hn=0):
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=home_hn)
    return region.addr(0)


def timed(machine, proc_gen):
    """Run a generator on the machine and return (result, elapsed_us)."""
    start = machine.sim.now
    result = run(machine, proc_gen)
    return result, to_us(machine.sim.now - start)


# ---------------------------------------------------------------------------
# latency structure (paper section 2.6)
# ---------------------------------------------------------------------------

def test_cache_hit_costs_one_cycle(machine):
    addr = shared_word(machine)

    def prog():
        yield machine.load(0, addr)          # warm
        t0 = machine.sim.now
        yield machine.load(0, addr)          # hit
        return machine.sim.now - t0

    elapsed = run(machine, prog())
    assert elapsed == machine.config.clock_ns


def test_local_miss_in_50_to_60_cycles(machine):
    addr = shared_word(machine, home_hn=0)

    def prog():
        yield machine.load(0, addr + 64)  # warm the TLB, different line
        t0 = machine.sim.now
        yield machine.load(0, addr)
        return (machine.sim.now - t0) / machine.config.clock_ns

    cycles = run(machine, prog())
    assert 50 <= cycles <= 65


def test_remote_miss_about_8x_local(machine):
    addr = shared_word(machine, home_hn=0)

    def local():
        yield machine.load(0, addr + 64)  # warm the TLB, different line
        t0 = machine.sim.now
        yield machine.load(0, addr)
        return machine.sim.now - t0

    t_local = run(machine, local())
    machine2 = Machine(spp1000(n_hypernodes=2))
    addr2 = shared_word(machine2, home_hn=0)

    def remote():
        yield machine2.load(8, addr2 + 64)  # warm the TLB
        t0 = machine2.sim.now
        yield machine2.load(8, addr2)   # cpu 8 lives on hypernode 1
        return machine2.sim.now - t0

    t_remote = run(machine2, remote())
    ratio = t_remote / t_local
    assert 5.0 <= ratio <= 12.0, f"remote/local miss ratio {ratio:.1f}"


def test_global_cache_buffer_serves_second_remote_miss(machine):
    addr = shared_word(machine, home_hn=0)

    def prog():
        yield machine.load(8, addr)      # hn1 fetches over the ring
        yield machine.load(9, addr + 64)  # warm cpu 9's TLB, different line
        t0 = machine.sim.now
        yield machine.load(9, addr)      # same hypernode, different CPU
        return (machine.sim.now - t0) / machine.config.clock_ns

    cycles = run(machine, prog())
    # GCB hit should look like a local miss, far below a ring crossing
    assert cycles < 100
    assert machine.tracer.count("load.miss.gcb") == 1
    # the timed fetch plus the TLB warm-up line both crossed the ring
    assert machine.tracer.count("load.miss.remote") == 2


def test_node_private_always_local(machine):
    region = machine.alloc(4096, MemClass.NODE_PRIVATE)
    addr = region.addr(0)

    def prog(cpu):
        yield machine.load(cpu, addr + 64)   # warm the TLB, different line
        t0 = machine.sim.now
        yield machine.load(cpu, addr)
        return (machine.sim.now - t0) / machine.config.clock_ns

    assert run(machine, prog(0)) <= 65
    assert run(machine, prog(8)) <= 65   # other hypernode: still local
    assert machine.tracer.count("load.miss.remote") == 0


# ---------------------------------------------------------------------------
# value semantics and coherence
# ---------------------------------------------------------------------------

def test_store_then_load_roundtrips_value(machine):
    addr = shared_word(machine)

    def prog():
        yield machine.store(0, addr, 123)
        value = yield machine.load(5, addr)
        return value

    assert run(machine, prog()) == 123


def test_words_in_same_line_are_independent(machine):
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)
    a, b = region.addr(0), region.addr(8)

    def prog():
        yield machine.store(0, a, "first")
        yield machine.store(0, b, "second")
        va = yield machine.load(1, a)
        vb = yield machine.load(1, b)
        return va, vb

    assert run(machine, prog()) == ("first", "second")


def test_write_invalidates_local_sharers(machine):
    addr = shared_word(machine)

    def prog():
        for cpu in range(4):
            yield machine.load(cpu, addr)
        yield machine.store(0, addr, 1)
        return None

    run(machine, prog())
    line = machine.line_of(addr)
    assert machine.caches[0].contains(line)
    for cpu in range(1, 4):
        assert not machine.caches[cpu].contains(line)
    assert machine.tracer.count("store.inval.local") == 3


def test_write_invalidates_remote_hypernode_and_gcb(machine):
    addr = shared_word(machine, home_hn=0)

    def prog():
        yield machine.load(8, addr)
        yield machine.load(12, addr)
        yield machine.store(0, addr, 7)
        return None

    run(machine, prog())
    line = machine.line_of(addr)
    assert not machine.caches[8].contains(line)
    assert not machine.caches[12].contains(line)
    assert not machine.directories[1].gcb_holds(line)
    assert machine.sci.sharers(line) == []
    machine.check_coherence_invariants()


def test_remote_write_costs_more_when_line_widely_shared(machine):
    addr = shared_word(machine, home_hn=0)

    def share_then_store(n_sharers):
        def prog():
            for cpu in range(n_sharers):
                yield machine.load(cpu, addr)
            t0 = machine.sim.now
            yield machine.store(15, addr, 1)  # writer on the other hypernode
            return machine.sim.now - t0
        return prog

    t_few = run(machine, share_then_store(1)())
    machine2 = Machine(spp1000(n_hypernodes=2))
    addr2 = shared_word(machine2, home_hn=0)

    def prog2():
        for cpu in range(8):
            yield machine2.load(cpu, addr2)
        t0 = machine2.sim.now
        yield machine2.store(15, addr2, 1)
        return machine2.sim.now - t0

    t_many = run(machine2, prog2())
    assert t_many > t_few


def test_exclusive_rewrite_is_cheap(machine):
    addr = shared_word(machine)

    def prog():
        yield machine.store(0, addr, 1)
        t0 = machine.sim.now
        yield machine.store(0, addr, 2)
        return machine.sim.now - t0

    elapsed = run(machine, prog())
    assert elapsed == machine.config.clock_ns
    assert machine.tracer.count("store.hit.exclusive") == 1


def test_fetch_add_is_atomic_under_contention(machine):
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)
    addr = region.addr(0)
    machine.poke(addr, 0)

    def incrementer(cpu):
        for _ in range(10):
            yield machine.fetch_add(cpu, addr, 1)

    procs = [machine.sim.process(incrementer(cpu)) for cpu in range(16)]
    machine.sim.run(until=machine.sim.all_of(procs))
    assert machine.peek(addr) == 160


def test_fetch_add_returns_old_value(machine):
    addr = shared_word(machine)
    machine.poke(addr, 41)

    def prog():
        old = yield machine.fetch_add(0, addr, 1)
        return old

    assert run(machine, prog()) == 41
    assert machine.peek(addr) == 42


def test_spin_until_wakes_on_write(machine):
    addr = shared_word(machine)
    machine.poke(addr, 0)
    log = []

    def spinner():
        value = yield machine.spin_until(1, addr, lambda v: v == 99)
        log.append((machine.sim.now, value))

    def writer():
        yield machine.compute(0, 10_000)  # 100 us
        yield machine.store(0, addr, 99)

    machine.sim.process(spinner())
    machine.sim.process(writer())
    machine.sim.run()
    assert len(log) == 1
    assert log[0][1] == 99
    assert log[0][0] >= 100_000  # not before the writer ran


def test_spin_until_skips_intermediate_values(machine):
    addr = shared_word(machine)
    machine.poke(addr, 0)
    seen = []

    def spinner():
        value = yield machine.spin_until(1, addr, lambda v: v >= 3)
        seen.append(value)

    def writer():
        for v in (1, 2, 3):
            yield machine.compute(0, 5_000)
            yield machine.store(0, addr, v)

    machine.sim.process(spinner())
    machine.sim.process(writer())
    machine.sim.run()
    assert seen == [3]


def test_many_spinners_all_wake(machine):
    addr = shared_word(machine)
    machine.poke(addr, 0)
    woken = []

    def spinner(cpu):
        yield machine.spin_until(cpu, addr, lambda v: v == 1)
        woken.append(cpu)

    for cpu in range(1, 16):
        machine.sim.process(spinner(cpu))

    def writer():
        yield machine.compute(0, 1_000)
        yield machine.store(0, addr, 1)

    machine.sim.process(writer())
    machine.sim.run()
    assert sorted(woken) == list(range(1, 16))


def test_block_read_scales_sublinearly(machine):
    region = machine.alloc(64 * 1024, MemClass.NEAR_SHARED, home_hypernode=0)
    addr = region.addr(0)

    def read(nbytes):
        def prog():
            t0 = machine.sim.now
            yield machine.read_block(0, addr, nbytes)
            return machine.sim.now - t0
        return prog

    t_small = run(machine, read(64)())
    t_big = run(machine, read(64 * 64)())
    assert t_big > t_small
    # pipelined: 64x the bytes costs far less than 64x the time
    assert t_big < 32 * t_small


def test_block_rejects_nonpositive_size(machine):
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)

    def prog():
        yield machine.read_block(0, region.addr(0), 0)

    with pytest.raises(ValueError):
        run(machine, prog())


def test_coherence_invariants_after_mixed_traffic(machine):
    region = machine.alloc(16 * 4096, MemClass.FAR_SHARED)

    def worker(cpu, seed):
        addrs = [region.addr(((seed * 97 + i * 53) % 512) * 32)
                 for i in range(30)]
        for i, addr in enumerate(addrs):
            if i % 3 == 0:
                yield machine.store(cpu, addr, cpu)
            else:
                yield machine.load(cpu, addr)

    procs = [machine.sim.process(worker(cpu, cpu * 7 + 1))
             for cpu in range(16)]
    machine.sim.run(until=machine.sim.all_of(procs))
    machine.check_coherence_invariants()


def test_single_hypernode_machine_has_no_ring_traffic():
    machine = Machine(spp1000(n_hypernodes=1))
    region = machine.alloc(4096, MemClass.FAR_SHARED)
    addr = region.addr(0)

    def prog():
        for cpu in range(8):
            yield machine.load(cpu, addr)
        yield machine.store(0, addr, 5)

    run(machine, prog())
    assert machine.tracer.count("ring.round_trip") == 0
    assert machine.tracer.count("load.miss.remote") == 0
