"""Tests for the TLB model."""

import pytest
from hypothesis import given, strategies as st

from repro.core import spp1000
from repro.machine import Machine, MemClass
from repro.machine.tlb import TLB

CFG = spp1000()


def test_first_access_misses_then_hits():
    tlb = TLB(CFG)
    assert not tlb.access(0x1000)
    assert tlb.access(0x1000)
    assert tlb.access(0x1fff)     # same 4 KB page
    assert not tlb.access(0x2000)  # next page
    assert tlb.hits == 2 and tlb.misses == 2


def test_lru_eviction():
    tlb = TLB(CFG)
    for page in range(CFG.tlb_entries + 1):
        tlb.access(page * CFG.page_bytes)
    assert not tlb.contains(0)                      # oldest evicted
    assert tlb.contains(CFG.tlb_entries * CFG.page_bytes)
    assert tlb.occupancy == CFG.tlb_entries


def test_touch_refreshes_lru_position():
    tlb = TLB(CFG)
    for page in range(CFG.tlb_entries):
        tlb.access(page * CFG.page_bytes)
    tlb.access(0)                                   # refresh page 0
    tlb.access(CFG.tlb_entries * CFG.page_bytes)    # evicts page 1, not 0
    assert tlb.contains(0)
    assert not tlb.contains(CFG.page_bytes)


def test_flush():
    tlb = TLB(CFG)
    tlb.access(0)
    tlb.flush()
    assert tlb.occupancy == 0


@given(st.lists(st.integers(0, 300), min_size=1, max_size=500))
def test_contains_matches_lru_model(pages):
    """Property: the TLB holds exactly the last `entries` distinct pages."""
    tlb = TLB(CFG)
    for page in pages:
        tlb.access(page * CFG.page_bytes)
    recent = []
    for page in reversed(pages):
        if page not in recent:
            recent.append(page)
        if len(recent) == CFG.tlb_entries:
            break
    for page in set(pages):
        assert tlb.contains(page * CFG.page_bytes) == (page in recent)


def test_machine_charges_tlb_miss_on_first_touch():
    machine = Machine(CFG)
    region = machine.alloc(2 * CFG.page_bytes, MemClass.NEAR_SHARED,
                           home_hypernode=0)
    a_page1, b_page1 = region.addr(0), region.addr(64)

    def prog():
        t0 = machine.sim.now
        yield machine.load(0, a_page1)       # TLB miss + cache miss
        cold = machine.sim.now - t0
        t0 = machine.sim.now
        yield machine.load(0, b_page1)       # TLB hit + cache miss
        warm = machine.sim.now - t0
        return cold, warm

    cold, warm = machine.sim.run(until=machine.sim.process(prog()))
    delta_cycles = (cold - warm) / CFG.clock_ns
    assert delta_cycles == pytest.approx(CFG.tlb_miss_cycles, abs=1)
    assert machine.tracer.count("tlb.miss") == 1


def test_block_transfer_translates_every_page():
    machine = Machine(CFG)
    region = machine.alloc(8 * CFG.page_bytes, MemClass.NEAR_SHARED,
                           home_hypernode=0)

    def prog():
        yield machine.read_block(0, region.addr(0), 8 * CFG.page_bytes)

    machine.sim.run(until=machine.sim.process(prog()))
    assert machine.tlbs[0].misses == 8
