"""Stateful property test: the coherent memory system vs a flat model.

Hypothesis drives random sequences of loads, stores, atomics, and block
transfers from random CPUs against one far-shared region.  After every
operation the machine must (a) return the value a flat dictionary model
returns, and (b) satisfy every cross-structure coherence invariant
(directory <-> cache agreement, well-formed SCI lists, SCI <-> GCB
agreement).
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import spp1000
from repro.machine import Machine, MemClass

CFG = spp1000(n_hypernodes=2)
N_WORDS = 64   # words under test, spread over several lines and pages


class CoherentMemoryMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.machine = Machine(CFG)
        region = self.machine.alloc(
            N_WORDS * 256, MemClass.FAR_SHARED, label="fuzz")
        # spread words across lines (stride 8 words = 2 lines)
        self.addrs = [region.addr(i * 256) for i in range(N_WORDS)]
        self.model = {}
        for addr in self.addrs:
            self.machine.poke(addr, 0)
            self.model[addr] = 0

    def _run(self, gen):
        proc = self.machine.sim.process(gen)
        return self.machine.sim.run(until=proc)

    @rule(cpu=st.integers(0, 15), word=st.integers(0, N_WORDS - 1))
    def load(self, cpu, word):
        addr = self.addrs[word]

        def go():
            value = yield self.machine.load(cpu, addr)
            return value

        assert self._run(go()) == self.model[addr]

    @rule(cpu=st.integers(0, 15), word=st.integers(0, N_WORDS - 1),
          value=st.integers(-1000, 1000))
    def store(self, cpu, word, value):
        addr = self.addrs[word]

        def go():
            yield self.machine.store(cpu, addr, value)

        self._run(go())
        self.model[addr] = value

    @rule(cpu=st.integers(0, 15), word=st.integers(0, N_WORDS - 1),
          delta=st.integers(-5, 5))
    def fetch_add(self, cpu, word, delta):
        addr = self.addrs[word]

        def go():
            old = yield self.machine.fetch_add(cpu, addr, delta)
            return old

        assert self._run(go()) == self.model[addr]
        self.model[addr] += delta

    @rule(cpu=st.integers(0, 15), word=st.integers(0, N_WORDS - 8))
    def block_read(self, cpu, word):
        def go():
            yield self.machine.read_block(cpu, self.addrs[word], 256)

        self._run(go())

    @invariant()
    def coherence_invariants_hold(self):
        self.machine.check_coherence_invariants()

    @invariant()
    def all_values_still_peekable(self):
        for addr, expected in self.model.items():
            assert self.machine.peek(addr) == expected


CoherentMemoryMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestCoherentMemory = CoherentMemoryMachine.TestCase
