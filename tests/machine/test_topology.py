"""Tests for CPU/FU/hypernode/ring naming."""

import pytest
from hypothesis import given, strategies as st

from repro.core import spp1000
from repro.machine import Topology


@pytest.fixture
def topo():
    return Topology(spp1000(n_hypernodes=2))


def test_cpu_zero_is_first_everything(topo):
    loc = topo.locate(0)
    assert (loc.hypernode, loc.fu, loc.slot) == (0, 0, 0)


def test_cpus_pair_up_in_functional_units(topo):
    assert topo.locate(0).fu == topo.locate(1).fu == 0
    assert topo.locate(2).fu == topo.locate(3).fu == 1
    assert topo.locate(6).fu == topo.locate(7).fu == 3


def test_hypernode_boundary_at_eight_cpus(topo):
    assert topo.locate(7).hypernode == 0
    assert topo.locate(8).hypernode == 1
    assert topo.locate(8).fu == 0


def test_out_of_range_cpu_rejected(topo):
    with pytest.raises(ValueError):
        topo.locate(16)
    with pytest.raises(ValueError):
        topo.locate(-1)


def test_cpu_id_inverse_arguments_checked(topo):
    with pytest.raises(ValueError):
        topo.cpu_id(2, 0, 0)   # only 2 hypernodes
    with pytest.raises(ValueError):
        topo.cpu_id(0, 4, 0)   # only 4 FUs
    with pytest.raises(ValueError):
        topo.cpu_id(0, 0, 2)   # only 2 slots


def test_cpus_of_hypernode(topo):
    assert list(topo.cpus_of_hypernode(0)) == list(range(8))
    assert list(topo.cpus_of_hypernode(1)) == list(range(8, 16))


def test_ring_of_fu_is_identity(topo):
    for fu in range(4):
        assert topo.ring_of_fu(fu) == fu
    with pytest.raises(ValueError):
        topo.ring_of_fu(4)


def test_ring_hops_unidirectional():
    topo = Topology(spp1000(n_hypernodes=4))
    assert topo.ring_hops(0, 1) == 1
    assert topo.ring_hops(1, 0) == 3  # must go the long way round
    assert topo.ring_hops(2, 2) == 0


@given(hn=st.integers(0, 15), fu=st.integers(0, 3), slot=st.integers(0, 1))
def test_locate_roundtrips_cpu_id(hn, fu, slot):
    topo = Topology(spp1000(n_hypernodes=16))
    cpu = topo.cpu_id(hn, fu, slot)
    loc = topo.locate(cpu)
    assert (loc.hypernode, loc.fu, loc.slot) == (hn, fu, slot)


@given(cpu=st.integers(0, 127))
def test_cpu_id_roundtrips_locate(cpu):
    topo = Topology(spp1000(n_hypernodes=16))
    loc = topo.locate(cpu)
    assert topo.cpu_id(loc.hypernode, loc.fu, loc.slot) == cpu
