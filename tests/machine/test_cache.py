"""Tests for the direct-mapped cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.core import spp1000
from repro.machine import DirectMappedCache

CFG = spp1000()


@pytest.fixture
def cache():
    return DirectMappedCache(CFG)


def test_geometry(cache):
    assert cache.n_sets == CFG.dcache_bytes // CFG.line_bytes == 32768


def test_miss_then_hit(cache):
    line = 0x1000
    assert not cache.access(line)
    cache.insert(line)
    assert cache.access(line)
    assert cache.hits == 1 and cache.misses == 1


def test_line_of_alignment(cache):
    assert cache.line_of(0x1000) == 0x1000
    assert cache.line_of(0x101f) == 0x1000
    assert cache.line_of(0x1020) == 0x1020


def test_insert_requires_alignment(cache):
    with pytest.raises(ValueError):
        cache.insert(0x1001)


def test_direct_mapped_conflict_evicts(cache):
    a = 0x0
    b = a + CFG.dcache_bytes  # same set, different tag
    cache.insert(a)
    victim = cache.insert(b)
    assert victim == a
    assert not cache.contains(a)
    assert cache.contains(b)
    assert cache.evictions == 1


def test_reinserting_same_line_is_noop(cache):
    cache.insert(0x40)
    assert cache.insert(0x40) is None
    assert cache.evictions == 0


def test_distinct_sets_coexist(cache):
    lines = [i * CFG.line_bytes for i in range(100)]
    for line in lines:
        cache.insert(line)
    assert all(cache.contains(line) for line in lines)
    assert cache.occupancy == 100


def test_invalidate(cache):
    cache.insert(0x80)
    assert cache.invalidate(0x80)
    assert not cache.contains(0x80)
    assert not cache.invalidate(0x80)  # second time: no copy
    assert cache.invalidations == 1


def test_invalidate_does_not_touch_conflicting_line(cache):
    a, b = 0x0, CFG.dcache_bytes
    cache.insert(a)
    assert not cache.invalidate(b)  # same set, different tag
    assert cache.contains(a)


def test_flush(cache):
    for i in range(10):
        cache.insert(i * CFG.line_bytes)
    cache.flush()
    assert cache.occupancy == 0


@given(st.lists(st.integers(0, 2**22), min_size=1, max_size=300))
def test_contains_iff_most_recent_in_set(addresses):
    """Property: a line is cached iff it was the last line inserted
    into its set — the defining behaviour of a direct-mapped cache."""
    cache = DirectMappedCache(CFG)
    lines = [a - a % CFG.line_bytes for a in addresses]
    last_in_set = {}
    for line in lines:
        cache.insert(line)
        last_in_set[cache.set_of(line)] = line
    for line in lines:
        expected = last_in_set[cache.set_of(line)] == line
        assert cache.contains(line) == expected
