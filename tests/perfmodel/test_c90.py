"""Tests for the Cray C90 reference model."""

import pytest

from repro.core.units import seconds
from repro.perfmodel import C90Model, C90Profile


def test_profile_validation():
    with pytest.raises(ValueError):
        C90Profile(vector_fraction=1.2)
    with pytest.raises(ValueError):
        C90Profile(0.5, gather_fraction=-0.1)
    with pytest.raises(ValueError):
        C90Profile(0.5, avg_vector_length=0)


def test_fully_scalar_code_runs_at_scalar_rate():
    model = C90Model()
    rate = model.sustained_mflops(C90Profile(vector_fraction=0.0))
    assert rate == pytest.approx(model.scalar_mflops)


def test_perfect_vector_code_approaches_peak():
    model = C90Model()
    rate = model.sustained_mflops(
        C90Profile(vector_fraction=1.0, avg_vector_length=10_000))
    assert rate > 0.9 * model.peak_mflops


def test_gather_scatter_slows_vector_work():
    model = C90Model()
    clean = model.sustained_mflops(C90Profile(0.95, gather_fraction=0.0))
    dirty = model.sustained_mflops(C90Profile(0.95, gather_fraction=0.6))
    assert dirty < clean


def test_short_vectors_hurt():
    model = C90Model()
    long_v = model.sustained_mflops(C90Profile(1.0, avg_vector_length=128))
    short_v = model.sustained_mflops(C90Profile(1.0, avg_vector_length=8))
    assert short_v < 0.5 * long_v


def test_time_ns_consistency():
    model = C90Model()
    profile = C90Profile(0.9)
    rate = model.sustained_mflops(profile)
    t = model.time_ns(rate * 1e6, profile)  # one second of work
    assert t == pytest.approx(seconds(1.0))
    with pytest.raises(ValueError):
        model.time_ns(-1, profile)


def test_rates_can_reproduce_papers_yardsticks():
    """The paper's three C90 rates are reachable with plausible profiles."""
    model = C90Model()
    pic = model.sustained_mflops(
        C90Profile(0.97, avg_vector_length=64, gather_fraction=0.45))
    fem = model.sustained_mflops(
        C90Profile(0.95, avg_vector_length=48, gather_fraction=0.75))
    tree = model.sustained_mflops(
        C90Profile(0.88, avg_vector_length=24, gather_fraction=0.9))
    assert 300 <= pic <= 430     # paper: 355-369
    assert 200 <= fem <= 310     # paper: 250
    assert 95 <= tree <= 170     # paper: 120
