"""The analytic primitive costs must track the simulated primitives.

These tests are the contract that keeps the application performance
model (analytic) and the microbenchmark experiments (discrete-event
simulation) mutually consistent: both derive from the same
MachineConfig, and each formula must land within tolerance of its
simulated counterpart.
"""

import pytest

from repro.core import spp1000
from repro.experiments.fig2_forkjoin import forkjoin_time_us
from repro.experiments.fig3_barrier import barrier_metrics_us
from repro.experiments.fig4_message import round_trip_us
from repro.core.units import to_us
from repro.perfmodel import barrier_ns, forkjoin_ns, pvm_oneway_ns
from repro.runtime import Placement

CFG = spp1000()


@pytest.mark.parametrize("n,placement,hns", [
    (4, Placement.HIGH_LOCALITY, 1),
    (8, Placement.HIGH_LOCALITY, 1),
    (16, Placement.UNIFORM, 2),
])
def test_barrier_formula_tracks_simulation(n, placement, hns):
    simulated = barrier_metrics_us(n, placement, CFG, rounds=8)
    analytic = to_us(barrier_ns(CFG, n, hns))
    sim_lilo = simulated["last_in_last_out"]
    assert 0.5 <= analytic / sim_lilo <= 2.0, (
        f"analytic {analytic:.1f} us vs simulated {sim_lilo:.1f} us")


@pytest.mark.parametrize("n,placement,hns", [
    (4, Placement.HIGH_LOCALITY, 1),
    (8, Placement.HIGH_LOCALITY, 1),
    (16, Placement.UNIFORM, 2),
])
def test_forkjoin_formula_tracks_simulation(n, placement, hns):
    simulated = forkjoin_time_us(n, placement, CFG, repeats=2)
    analytic = to_us(forkjoin_ns(CFG, n, hns, include_setup=True))
    assert 0.5 <= analytic / simulated <= 2.0, (
        f"analytic {analytic:.1f} us vs simulated {simulated:.1f} us")


@pytest.mark.parametrize("nbytes", [64, 1024, 8192, 65536])
@pytest.mark.parametrize("placement,remote", [
    (Placement.HIGH_LOCALITY, False),
    (Placement.UNIFORM, True),
])
def test_pvm_formula_tracks_simulation(nbytes, placement, remote):
    simulated_rt = round_trip_us(nbytes, placement, CFG, repeats=3)
    analytic_rt = 2 * to_us(pvm_oneway_ns(CFG, nbytes, remote))
    assert 0.55 <= analytic_rt / simulated_rt <= 1.8, (
        f"analytic {analytic_rt:.1f} us vs simulated {simulated_rt:.1f} us "
        f"({nbytes} B, remote={remote})")
