"""Tests for the phase-level execution model."""

import pytest

from repro.core import spp1000
from repro.core.units import MIB
from repro.perfmodel import (
    Access,
    LocalityMix,
    Msg,
    PerformanceModel,
    Phase,
    StepWork,
    TeamSpec,
)
from repro.runtime import Placement

CFG = spp1000(2)
MODEL = PerformanceModel(CFG)


def team(n, placement=Placement.HIGH_LOCALITY):
    return TeamSpec(CFG, n, placement)


def simple_step(n_threads, **phase_kwargs):
    defaults = dict(flops=1e6, traffic_bytes=1e6,
                    working_set_bytes=256 * 1024)
    defaults.update(phase_kwargs)
    phase = Phase("work", **defaults)
    return StepWork([[phase] for _ in range(n_threads)])


# -- spill ramp -------------------------------------------------------------

def test_cache_resident_data_has_no_spill():
    assert MODEL.spill_fraction(100 * 1024, Access.STREAM) == 0.0


def test_oversized_working_set_fully_spills():
    assert MODEL.spill_fraction(4 * MIB, Access.STREAM) == 1.0


def test_spill_ramp_is_monotone():
    points = [MODEL.spill_fraction(ws, Access.STREAM)
              for ws in range(0, 4 * MIB, 128 * 1024)]
    assert points == sorted(points)
    assert points[0] == 0.0 and points[-1] == 1.0


def test_random_access_spills_earlier_than_streaming():
    ws = int(0.7 * MIB)
    assert MODEL.spill_fraction(ws, Access.RANDOM) > \
        MODEL.spill_fraction(ws, Access.STREAM)


# -- phase time structure -----------------------------------------------------

def test_flop_bound_phase_time():
    phase = Phase("compute", flops=1e6, traffic_bytes=0.0)
    t = MODEL.phase_time_ns(phase, team(1), 0)
    assert t == pytest.approx(CFG.cycles(1e6 * CFG.flop_cycles))


def test_cache_resident_vs_spilled_factor_about_three():
    """Paper §6: in-cache vs in-memory versions of the same problem can
    differ by a factor of ~3 on a single hypernode."""
    resident = Phase("r", flops=1e6, traffic_bytes=4e6,
                     working_set_bytes=256 * 1024, access=Access.RANDOM)
    spilled = Phase("s", flops=1e6, traffic_bytes=4e6,
                    working_set_bytes=16 * MIB, access=Access.RANDOM)
    t_res = MODEL.phase_time_ns(resident, team(8), 0)
    t_spill = MODEL.phase_time_ns(spilled, team(8), 0)
    ratio = t_spill / t_res
    assert 2.0 <= ratio <= 6.0, f"in-memory/in-cache ratio {ratio:.1f}"


def test_remote_traffic_costs_more_than_local():
    local = Phase("l", traffic_bytes=1e6, working_set_bytes=16 * MIB,
                  locality=LocalityMix(1.0, 0.0, 0.0))
    remote = Phase("r", traffic_bytes=1e6, working_set_bytes=16 * MIB,
                   locality=LocalityMix(0.0, 0.0, 1.0))
    tm = team(16, Placement.UNIFORM)
    t_local = MODEL.phase_time_ns(local, tm, 0)
    t_remote = MODEL.phase_time_ns(remote, tm, 0)
    assert t_remote / t_local > 4.0


def test_random_misses_cost_more_than_streamed():
    stream = Phase("s", traffic_bytes=1e6, working_set_bytes=16 * MIB,
                   access=Access.STREAM)
    rand = Phase("g", traffic_bytes=1e6, working_set_bytes=16 * MIB,
                 access=Access.RANDOM)
    assert MODEL.phase_time_ns(rand, team(1), 0) > \
        2 * MODEL.phase_time_ns(stream, team(1), 0)


def test_messages_add_cost():
    quiet = Phase("q", flops=1e5)
    chatty = Phase("c", flops=1e5, messages=(Msg(8192, remote=True),))
    assert MODEL.phase_time_ns(chatty, team(2), 0) > \
        MODEL.phase_time_ns(quiet, team(2), 0)


def test_contention_inflates_crowded_hypernode():
    phase = Phase("x", traffic_bytes=1e6, working_set_bytes=16 * MIB)
    alone = MODEL.phase_time_ns(phase, team(1), 0)
    crowded = MODEL.phase_time_ns(phase, team(8), 0)
    assert crowded > alone
    assert crowded < 2.0 * alone  # modest, not catastrophic


# -- step / run -----------------------------------------------------------------

def test_step_time_is_critical_path_plus_barrier():
    fast = Phase("fast", flops=1e4)
    slow = Phase("slow", flops=1e6)
    step = StepWork([[slow], [fast]], barriers=0)
    t = MODEL.step_time_ns(step, team(2))
    assert t == pytest.approx(CFG.cycles(1e6 * CFG.flop_cycles))
    with_barrier = StepWork([[slow], [fast]], barriers=1)
    assert MODEL.step_time_ns(with_barrier, team(2)) > t


def test_step_thread_count_must_match_team():
    step = simple_step(4)
    with pytest.raises(ValueError):
        MODEL.step_time_ns(step, team(8))


def test_full_machine_pays_os_interference():
    step15 = simple_step(15)
    step16 = simple_step(16)
    t15 = MODEL.step_time_ns(step15, team(15)) / 15
    t16 = MODEL.step_time_ns(step16, team(16)) / 16
    # per-thread time at 16 is inflated beyond the contention trend
    per_thread_15 = MODEL.step_time_ns(step15, team(15))
    per_thread_16 = MODEL.step_time_ns(step16, team(16))
    assert per_thread_16 > per_thread_15


def test_run_scales_with_repeat():
    step = simple_step(4)
    tm = team(4)
    one = MODEL.run([step], tm, repeat=1)
    ten = MODEL.run([step], tm, repeat=10)
    assert ten.time_ns == pytest.approx(10 * one.time_ns)
    assert ten.flops == pytest.approx(10 * one.flops)
    assert ten.mflops == pytest.approx(one.mflops)


def test_run_rejects_bad_repeat():
    with pytest.raises(ValueError):
        MODEL.run([simple_step(1)], team(1), repeat=0)


def test_parallel_speedup_emerges():
    """A perfectly divisible workload speeds up with threads, sublinearly."""
    total_flops, total_bytes = 8e7, 8e7

    def step(n):
        per = Phase("w", flops=total_flops / n, traffic_bytes=total_bytes / n,
                    working_set_bytes=total_bytes / n)
        return StepWork([[per] for _ in range(n)])

    t1 = MODEL.step_time_ns(step(1), team(1))
    t8 = MODEL.step_time_ns(step(8), team(8))
    speedup = t1 / t8
    assert 5.0 <= speedup <= 8.0, f"8-thread speedup {speedup:.2f}"
