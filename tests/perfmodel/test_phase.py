"""Tests for workload characterisation dataclasses."""

import pytest

from repro.core import spp1000
from repro.perfmodel import Access, LocalityMix, Msg, Phase, StepWork, TeamSpec
from repro.runtime import Placement


def test_locality_mix_must_sum_to_one():
    LocalityMix(0.5, 0.3, 0.2)  # fine
    with pytest.raises(ValueError):
        LocalityMix(0.5, 0.5, 0.5)
    with pytest.raises(ValueError):
        LocalityMix(1.5, -0.5, 0.0)


def test_phase_rejects_negative_quantities():
    with pytest.raises(ValueError):
        Phase("x", flops=-1)
    with pytest.raises(ValueError):
        Phase("x", traffic_bytes=-1)


def test_msg_validation():
    Msg(64, remote=True)
    with pytest.raises(ValueError):
        Msg(0, remote=False)
    with pytest.raises(ValueError):
        Msg(64, remote=False, kind="broadcast")


def test_stepwork_totals():
    p = Phase("a", flops=100.0)
    step = StepWork([[p, p], [p]])
    assert step.n_threads == 2
    assert step.total_flops == 300.0


def test_teamspec_topology_queries():
    team = TeamSpec(spp1000(2), 4, Placement.UNIFORM)
    assert team.cpus == [0, 8, 1, 9]
    assert team.hypernodes == [0, 1]
    assert team.n_hypernodes_used == 2
    assert team.threads_on_hypernode(0) == 2
    assert team.hypernode_of_thread(1) == 1


def test_teamspec_high_locality_single_node():
    team = TeamSpec(spp1000(2), 8, Placement.HIGH_LOCALITY)
    assert team.n_hypernodes_used == 1
    assert team.threads_on_hypernode(0) == 8
    assert team.threads_on_hypernode(1) == 0
