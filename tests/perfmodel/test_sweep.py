"""Tests for the scaling-study helpers."""

import pytest

from repro.apps.ppm import PPMWorkload, TABLE2_PROBLEMS
from repro.core import spp1000
from repro.perfmodel import RunResult, efficiency_table, scaling_study


def fake_run(p):
    # perfectly scalable 1e9-flop workload
    return RunResult(time_ns=1e9 / p, flops=1e9, n_threads=p)


def test_scaling_study_builds_curve():
    curve = scaling_study(fake_run, [1, 2, 4], label="fake")
    assert curve.label == "fake"
    assert curve.processors == [1, 2, 4]
    assert curve.time_at(4) == pytest.approx(2.5e8)


def test_scaling_study_rejects_empty():
    with pytest.raises(ValueError):
        scaling_study(fake_run, [])


def test_efficiency_table_ideal_case():
    curve = scaling_study(fake_run, [1, 2, 8])
    rows = efficiency_table(curve)
    for p, speedup, eff in rows:
        assert speedup == pytest.approx(p)
        assert eff == pytest.approx(1.0)


def test_efficiency_table_zero_baseline_names_curve():
    curve = scaling_study(
        lambda p: RunResult(time_ns=0.0, flops=1e9, n_threads=p),
        [1, 2], label="degenerate")
    with pytest.raises(ValueError) as exc:
        efficiency_table(curve)
    assert "degenerate" in str(exc.value)
    assert "p=1" in str(exc.value)


def test_efficiency_table_zero_point_names_processor_count():
    curve = scaling_study(
        lambda p: RunResult(time_ns=0.0 if p == 4 else 1e9 / p,
                            flops=1e9, n_threads=p),
        [1, 2, 4], label="spiky")
    with pytest.raises(ValueError) as exc:
        efficiency_table(curve)
    assert "spiky" in str(exc.value)
    assert "p=4" in str(exc.value)


def test_scaling_study_point_hook_memoises():
    seen = {}

    def point(key, fn):
        if key not in seen:
            seen[key] = fn()
        return seen[key]

    curve = scaling_study(fake_run, [1, 2, 4], label="fake", point=point)
    assert set(seen) == {"fake:1", "fake:2", "fake:4"}
    # a second sweep through the same hook computes nothing new
    calls = []
    scaling_study(lambda p: calls.append(p) or fake_run(p),
                  [1, 2, 4], label="fake", point=point)
    assert calls == []
    assert curve.time_at(4) == pytest.approx(2.5e8)


def test_efficiency_table_on_real_workload():
    workload = PPMWorkload(TABLE2_PROBLEMS["120x480 / 4x16"], spp1000())
    curve = scaling_study(workload.run, [1, 2, 4, 8], label="ppm")
    rows = efficiency_table(curve)
    effs = [eff for _p, _s, eff in rows]
    assert effs[0] == pytest.approx(1.0)
    assert all(e > 0.85 for e in effs)      # Table 2's near-linear scaling
    assert effs == sorted(effs, reverse=True)
