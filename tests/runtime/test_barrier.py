"""Tests for the semaphore+spin barrier (paper Fig 3 mechanism)."""

import pytest

from repro import Machine, spp1000
from repro.core.units import to_us
from repro.runtime import Barrier, Placement, Runtime


def run_barrier_rounds(n, placement, rounds=5, stagger=True):
    machine = Machine(spp1000(2))
    rt = Runtime(machine)
    bar = Barrier(rt, n)
    entries = [[0.0] * n for _ in range(rounds)]
    exits = [[0.0] * n for _ in range(rounds)]

    def body(env, tid):
        for r in range(rounds):
            if stagger:
                yield env.compute(40 * ((tid * 5 + r) % 7))
            entries[r][tid] = env.now
            yield from bar.wait(env)
            exits[r][tid] = env.now

    def main(env):
        yield from env.fork_join(n, body, placement)

    rt.run(main)
    return entries, exits


def test_no_thread_exits_before_last_enters():
    entries, exits = run_barrier_rounds(8, Placement.HIGH_LOCALITY)
    for en, ex in zip(entries, exits):
        assert min(ex) >= max(en)


def test_barrier_is_reusable_across_rounds():
    entries, exits = run_barrier_rounds(4, Placement.UNIFORM, rounds=10)
    for r in range(9):
        # each thread exits round r before entering round r+1 ...
        for t in range(4):
            assert exits[r][t] <= entries[r + 1][t]
        # ... and nobody leaves round r+1 before everyone arrived there
        assert min(exits[r + 1]) >= max(entries[r + 1])


def test_single_thread_barrier_is_trivial():
    entries, exits = run_barrier_rounds(1, Placement.HIGH_LOCALITY, rounds=3)
    for en, ex in zip(entries, exits):
        assert ex[0] - en[0] < 10_000  # well under 10 us


def test_barrier_rejects_zero_threads():
    rt = Runtime(Machine(spp1000(2)))
    with pytest.raises(ValueError):
        Barrier(rt, 0)


def lifo_lilo_us(n, placement):
    entries, exits = run_barrier_rounds(n, placement, rounds=10)
    lifo = min(min(ex) - max(en) for en, ex in zip(entries, exits))
    lilo = min(max(ex) - max(en) for en, ex in zip(entries, exits))
    return to_us(lifo), to_us(lilo)


def test_lifo_on_one_hypernode_is_microseconds():
    lifo, _ = lifo_lilo_us(8, Placement.HIGH_LOCALITY)
    assert 1.0 <= lifo <= 8.0, f"LIFO {lifo:.2f} us"


def test_lifo_pays_extra_when_crossing_hypernodes():
    lifo_local, _ = lifo_lilo_us(8, Placement.HIGH_LOCALITY)
    lifo_cross, _ = lifo_lilo_us(8, Placement.UNIFORM)
    assert lifo_cross > lifo_local
    assert lifo_cross - lifo_local <= 6.0  # small absolute penalty


def test_lilo_grows_roughly_linearly_with_threads():
    _, lilo4 = lifo_lilo_us(4, Placement.HIGH_LOCALITY)
    _, lilo8 = lifo_lilo_us(8, Placement.HIGH_LOCALITY)
    _, lilo16 = lifo_lilo_us(16, Placement.HIGH_LOCALITY)
    assert lilo4 < lilo8 < lilo16
    slope = (lilo16 - lilo8) / 8
    assert 0.8 <= slope <= 4.0, f"release slope {slope:.2f} us/thread"


def test_threads_blocked_until_late_arrival():
    machine = Machine(spp1000(2))
    rt = Runtime(machine)
    bar = Barrier(rt, 4)
    exit_times = {}

    def body(env, tid):
        if tid == 3:
            yield env.compute(200_000)  # 2 ms late
        yield from bar.wait(env)
        exit_times[tid] = env.now

    def main(env):
        yield from env.fork_join(4, body)

    rt.run(main)
    assert all(t >= 2_000_000 for t in exit_times.values())
