"""Tests for asynchronous threads (paper §3.2's second thread class)."""

import pytest

from repro import Machine, spp1000
from repro.runtime import Runtime


@pytest.fixture
def rt():
    return Runtime(Machine(spp1000(2)))


def test_parent_continues_while_child_runs(rt):
    log = {}

    def child(env, tid):
        yield env.compute(100_000)   # 1 ms of work
        log["child_done"] = env.now
        return "child-result"

    def main(env):
        handle = yield from env.spawn_async(child)
        log["parent_continued"] = env.now
        result = yield from handle.join(env)
        log["joined"] = env.now
        return result

    assert rt.run(main) == "child-result"
    # parent resumed long before the child finished
    assert log["parent_continued"] < log["child_done"]
    assert log["joined"] >= log["child_done"]


def test_join_after_child_finished_is_quick(rt):
    def child(env, tid):
        yield env.compute(10)
        return 7

    def main(env):
        handle = yield from env.spawn_async(child)
        yield env.compute(500_000)   # 5 ms: child long done
        assert handle.finished
        t0 = env.now
        result = yield from handle.join(env)
        return result, env.now - t0

    result, join_time = rt.run(main)
    assert result == 7
    assert join_time < 50_000   # no waiting, just bookkeeping


def test_many_async_children_round_robin_cpus(rt):
    cpus = []

    def child(env, tid):
        cpus.append(env.cpu)
        yield env.compute(10)
        return env.cpu

    def main(env):
        handles = []
        for _ in range(6):
            handle = yield from env.spawn_async(child)
            handles.append(handle)
        results = []
        for handle in handles:
            results.append((yield from handle.join(env)))
        return results

    results = rt.run(main)
    assert len(set(results)) == 6   # six distinct CPUs


def test_explicit_cpu_placement(rt):
    def child(env, tid):
        yield env.compute(10)
        return env.cpu

    def main(env):
        handle = yield from env.spawn_async(child, cpu=12)
        return (yield from handle.join(env))

    assert rt.run(main) == 12


def test_invalid_cpu_rejected(rt):
    def child(env, tid):  # pragma: no cover
        yield env.compute(1)

    def main(env):
        yield from env.spawn_async(child, cpu=99)

    with pytest.raises(ValueError):
        rt.run(main)


def test_cross_hypernode_async_spawn_costs_more(rt):
    def child(env, tid):
        yield env.compute(1)
        return None

    def main(env):
        t0 = env.now
        h1 = yield from env.spawn_async(child, cpu=1)   # same hypernode
        local_cost = env.now - t0
        t0 = env.now
        h2 = yield from env.spawn_async(child, cpu=9)   # other hypernode
        remote_cost = env.now - t0
        yield from h1.join(env)
        yield from h2.join(env)
        return local_cost, remote_cost

    local_cost, remote_cost = rt.run(main)
    assert remote_cost > 1.5 * local_cost


def test_async_child_can_fork_a_team(rt):
    def grandchild(env, tid):
        yield env.compute(10)
        return tid

    def child(env, tid):
        results = yield from env.fork_join(2, grandchild)
        return results

    def main(env):
        handle = yield from env.spawn_async(child, cpu=4)
        return (yield from handle.join(env))

    assert rt.run(main) == [0, 1]
