"""Property test: the barrier invariant under random teams and staggers."""

from hypothesis import given, settings, strategies as st

from repro import Machine, spp1000
from repro.runtime import Barrier, Placement, Runtime


@given(
    n_threads=st.integers(2, 16),
    rounds=st.integers(1, 3),
    staggers=st.lists(st.integers(0, 2000), min_size=16, max_size=16),
    uniform=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_no_exit_before_last_entry_ever(n_threads, rounds, staggers,
                                        uniform):
    """For any team size, placement, and arrival pattern: nobody leaves a
    barrier round before the last participant has entered it."""
    machine = Machine(spp1000(2))
    runtime = Runtime(machine)
    barrier = Barrier(runtime, n_threads)
    entries = [[0.0] * n_threads for _ in range(rounds)]
    exits = [[0.0] * n_threads for _ in range(rounds)]

    def body(env, tid):
        for r in range(rounds):
            yield env.compute(staggers[(tid + r) % len(staggers)])
            entries[r][tid] = env.now
            yield from barrier.wait(env)
            exits[r][tid] = env.now

    def main(env):
        placement = Placement.UNIFORM if uniform \
            else Placement.HIGH_LOCALITY
        yield from env.fork_join(n_threads, body, placement)

    runtime.run(main)
    for r in range(rounds):
        assert min(exits[r]) >= max(entries[r]), (r, entries[r], exits[r])
        # and per-thread round ordering
        if r + 1 < rounds:
            for t in range(n_threads):
                assert exits[r][t] <= entries[r + 1][t]
