"""Tests for thread placement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core import spp1000
from repro.runtime import Placement, assign, hypernodes_used

CFG = spp1000(n_hypernodes=2)


def test_high_locality_fills_first_hypernode_first():
    cpus = assign(CFG, 8, Placement.HIGH_LOCALITY)
    assert cpus == list(range(8))
    assert hypernodes_used(CFG, cpus) == [0]


def test_high_locality_spills_to_second_hypernode():
    cpus = assign(CFG, 10, Placement.HIGH_LOCALITY)
    assert cpus == list(range(10))
    assert hypernodes_used(CFG, cpus) == [0, 1]


def test_uniform_alternates_hypernodes():
    cpus = assign(CFG, 4, Placement.UNIFORM)
    assert cpus == [0, 8, 1, 9]
    assert hypernodes_used(CFG, cpus) == [0, 1]


def test_uniform_single_thread_stays_local():
    assert assign(CFG, 1, Placement.UNIFORM) == [0]


def test_uniform_balances_counts():
    cpus = assign(CFG, 16, Placement.UNIFORM)
    hn0 = sum(1 for c in cpus if c < 8)
    hn1 = sum(1 for c in cpus if c >= 8)
    assert hn0 == hn1 == 8


def test_thread_count_bounds():
    with pytest.raises(ValueError):
        assign(CFG, 0)
    with pytest.raises(ValueError):
        assign(CFG, 17)


def test_unknown_placement_rejected():
    with pytest.raises(TypeError):
        assign(CFG, 2, "not-a-placement")


@given(n=st.integers(1, 16),
       placement=st.sampled_from(list(Placement)))
def test_assignments_are_distinct_valid_cpus(n, placement):
    cpus = assign(CFG, n, placement)
    assert len(cpus) == n
    assert len(set(cpus)) == n
    assert all(0 <= c < CFG.n_cpus for c in cpus)


@given(n=st.integers(2, 16))
def test_uniform_is_balanced_within_one(n):
    cpus = assign(CFG, n, Placement.UNIFORM)
    counts = [sum(1 for c in cpus if c // 8 == hn) for hn in range(2)]
    assert abs(counts[0] - counts[1]) <= 1
