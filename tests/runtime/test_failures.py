"""Failure injection: errors must surface, not hang or vanish."""

import pytest

from repro import Machine, spp1000
from repro.pvm import PvmSystem
from repro.runtime import Runtime
from repro.sim import DeadlockError


@pytest.fixture
def rt():
    return Runtime(Machine(spp1000(2)))


def test_child_exception_propagates_out_of_run(rt):
    def body(env, tid):
        yield env.compute(10)
        if tid == 2:
            raise RuntimeError("child blew up")
        return tid

    def main(env):
        yield from env.fork_join(4, body)

    with pytest.raises(RuntimeError, match="child blew up"):
        rt.run(main)


def test_main_thread_exception_propagates(rt):
    def main(env):
        yield env.compute(10)
        raise ValueError("main failed")

    with pytest.raises(ValueError, match="main failed"):
        rt.run(main)


def test_unmatched_recv_deadlocks_loudly():
    pvm = PvmSystem(Runtime(Machine(spp1000(2))))

    def body(task, tid):
        if tid == 1:
            yield from task.recv(0)   # nobody ever sends
        else:
            yield task.env.compute(10)
        return None

    with pytest.raises(DeadlockError):
        pvm.run_tasks(2, body)


def test_barrier_with_missing_participant_deadlocks():
    machine = Machine(spp1000(2))
    rt = Runtime(machine)
    from repro.runtime import Barrier

    bar = Barrier(rt, 4)   # sized for 4, only 3 will arrive

    def body(env, tid):
        yield from bar.wait(env)

    def main(env):
        yield from env.fork_join(3, body)

    with pytest.raises(DeadlockError):
        rt.run(main)


def test_access_to_unmapped_address_raises(rt):
    def main(env):
        yield env.load(0)   # address 0 is deliberately unmapped

    with pytest.raises(KeyError):
        rt.run(main)


def test_send_to_missing_task_raises():
    pvm = PvmSystem(Runtime(Machine(spp1000(2))))

    def body(task, tid):
        yield from task.send(7, "x", 8)   # only 2 tasks exist
        return None

    with pytest.raises(KeyError):
        pvm.run_tasks(2, body)


def test_exception_in_one_child_does_not_corrupt_machine_state(rt):
    attempts = {"count": 0}

    def body(env, tid):
        attempts["count"] += 1
        yield env.compute(10)
        if tid == 0:
            raise RuntimeError("first try fails")
        return tid

    def main(env):
        yield from env.fork_join(2, body)

    with pytest.raises(RuntimeError):
        rt.run(main)
    # the machine survives for a fresh run on the same runtime
    def ok_body(env, tid):
        yield env.compute(10)
        return tid

    def main2(env):
        return (yield from env.fork_join(2, ok_body))

    assert rt.run(main2) == [0, 1]
