"""Tests for semaphores, critical sections, and gates."""

import pytest

from repro import Machine, spp1000
from repro.runtime import (
    CountingSemaphore,
    CriticalSection,
    Gate,
    Placement,
    Runtime,
)


@pytest.fixture
def rt():
    return Runtime(Machine(spp1000(2)))


def test_semaphore_counts(rt):
    sem = CountingSemaphore(rt, initial=5)

    def main(env):
        old = yield from sem.add(env, -1)
        return old

    assert rt.run(main) == 5
    assert sem.value == 4


def test_semaphore_concurrent_adds_all_land(rt):
    sem = CountingSemaphore(rt, initial=0)

    def body(env, tid):
        for _ in range(5):
            yield from sem.add(env, 1)

    def main(env):
        yield from env.fork_join(8, body)

    rt.run(main)
    assert sem.value == 40


def test_critical_section_is_mutually_exclusive(rt):
    lock = CriticalSection(rt)
    active = []
    max_active = []

    def body(env, tid):
        yield from lock.acquire(env)
        active.append(tid)
        max_active.append(len(active))
        yield env.compute(500)
        active.remove(tid)
        yield from lock.release(env)

    def main(env):
        yield from env.fork_join(8, body, Placement.UNIFORM)

    rt.run(main)
    assert max(max_active) == 1
    assert len(max_active) == 8


def test_critical_section_grants_in_ticket_order(rt):
    lock = CriticalSection(rt)
    order = []

    def body(env, tid):
        # stagger arrival so tickets are taken in tid order
        yield env.compute(2000 * tid)
        ticket = yield from lock.acquire(env)
        order.append((ticket, tid))
        yield env.compute(10_000)
        yield from lock.release(env)

    def main(env):
        yield from env.fork_join(4, body)

    rt.run(main)
    assert [t for t, _ in order] == [0, 1, 2, 3]


def test_critical_helper_wraps_body(rt):
    lock = CriticalSection(rt)
    counter = {"value": 0}

    def body(env, tid):
        for _ in range(3):
            yield from lock.acquire(env)
            counter["value"] += 1
            yield from lock.release(env)

    def main(env):
        yield from env.fork_join(6, body)
        yield from lock.critical(env, body_cycles=100)

    rt.run(main)
    assert counter["value"] == 18


def test_gate_blocks_until_opened(rt):
    gate = Gate(rt)
    passed = []

    def waiter(env, tid):
        yield from gate.wait(env)
        passed.append(env.now)

    def main(env):
        # children wait on the gate; open it after 1 ms
        def opener(env2, tid):
            if tid == 0:
                yield env2.compute(100_000)
                yield from gate.open(env2)
            else:
                yield from gate.wait(env2)
                passed.append(env2.now)

        yield from env.fork_join(4, opener)

    rt.run(main)
    assert len(passed) == 3
    assert all(t >= 1_000_000 for t in passed)
    assert gate.is_open


def test_gate_close_rearms(rt):
    gate = Gate(rt)

    def main(env):
        yield from gate.open(env)
        yield from gate.wait(env)       # passes immediately
        yield from gate.close(env)
        return gate.is_open

    assert rt.run(main) is False


def test_remote_semaphore_slower_than_local(rt):
    local = CountingSemaphore(rt, home_hypernode=0)
    remote = CountingSemaphore(rt, home_hypernode=1)

    def timed(env, sem):
        t0 = env.now
        yield from sem.add(env, 1)
        return env.now - t0

    def main(env):  # env runs on cpu 0 (hypernode 0)
        t_local = yield from timed(env, local)
        t_remote = yield from timed(env, remote)
        return t_local, t_remote

    t_local, t_remote = rt.run(main)
    assert t_remote > 3 * t_local
