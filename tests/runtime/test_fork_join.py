"""Tests for fork-join on the simulated machine (paper Fig 2 mechanism)."""

import pytest

from repro import Machine, spp1000
from repro.core.units import to_us
from repro.runtime import Placement, Runtime


def empty_body(env, tid):
    return tid
    yield  # pragma: no cover - makes this a generator


def forkjoin_time_us(n, placement, n_hypernodes=2):
    machine = Machine(spp1000(n_hypernodes))
    rt = Runtime(machine)

    def main(env):
        t0 = env.now
        results = yield from env.fork_join(n, empty_body, placement)
        return env.now - t0, results

    elapsed, results = rt.run(main)
    assert results == list(range(n))
    return to_us(elapsed)


def test_children_run_and_return_results():
    machine = Machine(spp1000(2))
    rt = Runtime(machine)

    def body(env, tid):
        yield env.compute(100)
        return tid * tid

    def main(env):
        return (yield from env.fork_join(4, body))

    assert rt.run(main) == [0, 1, 4, 9]


def test_children_actually_run_on_assigned_cpus():
    machine = Machine(spp1000(2))
    rt = Runtime(machine)
    cpus_seen = []

    def body(env, tid):
        cpus_seen.append((tid, env.cpu))
        return None
        yield  # pragma: no cover

    def main(env):
        yield from env.fork_join(4, body, Placement.UNIFORM)

    rt.run(main)
    assert sorted(cpus_seen) == [(0, 0), (1, 8), (2, 1), (3, 9)]


def test_join_waits_for_slowest_child():
    machine = Machine(spp1000(2))
    rt = Runtime(machine)

    def body(env, tid):
        yield env.compute(100_000 if tid == 3 else 10)  # 1 ms vs 100 ns
        return env.now

    def main(env):
        yield from env.fork_join(4, body)
        return env.now

    end = rt.run(main)
    assert end >= 1_000_000  # the ms-long child completed before the join


def test_fork_cost_grows_with_thread_count():
    times = [forkjoin_time_us(n, Placement.HIGH_LOCALITY) for n in (2, 4, 8)]
    assert times[0] < times[1] < times[2]
    # roughly linear: normalised per-pair increments comparable
    d1 = times[1] - times[0]          # one extra pair
    d2 = (times[2] - times[1]) / 2    # two extra pairs
    assert 0.5 < d1 / d2 < 2.0


def test_local_pair_costs_about_10us():
    d = (forkjoin_time_us(8, Placement.HIGH_LOCALITY)
         - forkjoin_time_us(6, Placement.HIGH_LOCALITY))
    assert 5.0 <= d <= 20.0, f"per-pair cost {d:.1f} us"


def test_uniform_pair_costs_about_twice_local():
    local = (forkjoin_time_us(8, Placement.HIGH_LOCALITY)
             - forkjoin_time_us(6, Placement.HIGH_LOCALITY))
    uniform = (forkjoin_time_us(8, Placement.UNIFORM)
               - forkjoin_time_us(6, Placement.UNIFORM))
    assert 1.3 <= uniform / local <= 3.5


def test_crossing_hypernodes_pays_a_large_step():
    # High locality: n=8 fits one hypernode, n=10 spills onto the second.
    t8 = forkjoin_time_us(8, Placement.HIGH_LOCALITY)
    t10 = forkjoin_time_us(10, Placement.HIGH_LOCALITY)
    step = t10 - t8
    local_pair = t8 - forkjoin_time_us(6, Placement.HIGH_LOCALITY)
    # The step includes one extra pair plus the ~50us cross-node setup.
    assert step > local_pair + 25.0, f"crossing step only {step:.1f} us"


def test_cross_node_setup_charged_once():
    machine = Machine(spp1000(2))
    rt = Runtime(machine)
    durations = []

    def main(env):
        for _ in range(2):
            t0 = env.now
            yield from env.fork_join(10, empty_body, Placement.HIGH_LOCALITY)
            durations.append(env.now - t0)

    rt.run(main)
    # the second fork-join skips the one-time setup
    setup_ns = machine.config.cycles(machine.config.cross_node_setup_cycles)
    assert durations[0] - durations[1] >= 0.8 * setup_ns


def test_nested_fork_join():
    machine = Machine(spp1000(2))
    rt = Runtime(machine)

    def inner(env, tid):
        yield env.compute(10)
        return tid + 100

    def outer(env, tid):
        if tid == 0:
            sub = yield from env.fork_join(2, inner)
            return sub
        yield env.compute(10)
        return tid

    def main(env):
        return (yield from env.fork_join(2, outer))

    results = rt.run(main)
    assert results == [[100, 101], 1]


def test_single_hypernode_machine_rejects_oversubscription():
    machine = Machine(spp1000(1))
    rt = Runtime(machine)

    def main(env):
        yield from env.fork_join(9, empty_body)

    with pytest.raises(ValueError):
        rt.run(main)
