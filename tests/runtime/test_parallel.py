"""Tests for the parallel loop directives."""

import pytest
from hypothesis import given, strategies as st

from repro import Machine, spp1000
from repro.runtime import (
    LoopSchedule,
    Placement,
    Runtime,
    iteration_slices,
    parallel_for,
    parallel_reduce,
)


# -- scheduling ---------------------------------------------------------------

def test_block_schedule_contiguous_and_balanced():
    slices = iteration_slices(10, 3, LoopSchedule.BLOCK)
    assert slices == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]


def test_cyclic_schedule_round_robins():
    slices = iteration_slices(7, 3, LoopSchedule.CYCLIC)
    assert slices == [[0, 3, 6], [1, 4], [2, 5]]


def test_chunked_schedule():
    slices = iteration_slices(10, 2, LoopSchedule.CHUNKED, chunk=3)
    assert slices == [[0, 1, 2, 6, 7, 8], [3, 4, 5, 9]]


def test_schedule_validation():
    with pytest.raises(ValueError):
        iteration_slices(-1, 2)
    with pytest.raises(ValueError):
        iteration_slices(4, 0)
    with pytest.raises(ValueError):
        iteration_slices(4, 2, LoopSchedule.CHUNKED, chunk=0)


@given(n=st.integers(0, 200), p=st.integers(1, 16),
       schedule=st.sampled_from(list(LoopSchedule)),
       chunk=st.integers(1, 7))
def test_every_iteration_scheduled_exactly_once(n, p, schedule, chunk):
    slices = iteration_slices(n, p, schedule, chunk)
    assert len(slices) == p
    flat = sorted(i for s in slices for i in s)
    assert flat == list(range(n))


@given(n=st.integers(1, 200), p=st.integers(1, 16))
def test_block_schedule_balanced_within_one(n, p):
    slices = iteration_slices(n, p, LoopSchedule.BLOCK)
    sizes = [len(s) for s in slices]
    assert max(sizes) - min(sizes) <= 1


# -- execution on the machine ----------------------------------------------------

@pytest.fixture
def rt():
    return Runtime(Machine(spp1000(2)))


def test_parallel_for_returns_results_in_order(rt):
    def iteration(env, i):
        yield env.compute(10)
        return i * i

    def main(env):
        return (yield from parallel_for(env, 12, iteration, n_threads=4))

    assert rt.run(main) == [i * i for i in range(12)]


def test_parallel_for_runs_concurrently(rt):
    def iteration(env, i):
        yield env.compute(100_000)  # 1 ms each
        return None

    def main(env):
        t0 = env.now
        yield from parallel_for(env, 8, iteration, n_threads=8)
        return env.now - t0

    elapsed = rt.run(main)
    assert elapsed < 8 * 1_000_000  # far less than serial


def test_parallel_for_iterations_touch_simulated_memory(rt):
    word = rt.alloc_sync_word(0, 0)

    def iteration(env, i):
        yield env.fetch_add(word, 1)
        return None

    def main(env):
        yield from parallel_for(env, 20, iteration, n_threads=4,
                                schedule=LoopSchedule.CYCLIC)

    rt.run(main)
    assert rt.machine.peek(word) == 20


def test_parallel_reduce_sums(rt):
    def iteration(env, i):
        yield env.compute(5)
        return i

    def main(env):
        total = yield from parallel_reduce(
            env, 100, iteration, combine=lambda a, b: a + b, initial=0,
            n_threads=8, placement=Placement.UNIFORM)
        return total

    assert rt.run(main) == sum(range(100))


def test_parallel_reduce_max(rt):
    values = [3, 1, 41, 5, 9, 2, 6]

    def iteration(env, i):
        yield env.compute(1)
        return values[i]

    def main(env):
        return (yield from parallel_reduce(
            env, len(values), iteration, combine=max,
            initial=float("-inf"), n_threads=3))

    assert rt.run(main) == 41


def test_parallel_for_empty_loop(rt):
    def iteration(env, i):  # pragma: no cover - never called
        yield env.compute(1)

    def main(env):
        return (yield from parallel_for(env, 0, iteration, n_threads=4))

    assert rt.run(main) == []
