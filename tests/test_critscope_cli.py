"""CLI tests for ``python -m repro critscope`` and the --critscope flag."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("repro-cache")))


def critscope_json(capsys, *argv):
    assert main(["critscope", *argv, "--json", "--quick"]) == 0
    return json.loads(capsys.readouterr().out)


def test_critscope_fig3_reports_attribution_and_path(capsys):
    assert main(["critscope", "fig3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "per-thread cycle attribution" in out
    assert "wait states" in out
    assert "critical path" in out
    assert "what-if projections" in out


def test_critscope_json_document(capsys):
    doc = critscope_json(capsys, "fig3")
    assert doc["experiment"] == "fig3"
    assert doc["schema_version"] == 1
    assert doc["threads"]
    assert doc["critical_path"]["total_us"] > 0
    cats = doc["critical_path"]["categories_us"]
    assert cats["barrier_wait"] > 0 or cats["barrier_release"] > 0


def test_critscope_what_if_selects_projections(capsys):
    doc = critscope_json(capsys, "fig2", "--what-if", "forkjoin=4")
    assert [p["category"] for p in doc["what_if"]] == ["forkjoin"]
    assert doc["what_if"][0]["factor"] == 4.0


@pytest.mark.parametrize("spec, needle", [
    ("forkjoin", "CATEGORY=FACTOR"),
    ("forkjoin=fast", "must be a number"),
    ("forkjoin=0", "must be > 0"),
    ("sorcery=2", "not projectable"),
])
def test_critscope_rejects_bad_what_if(capsys, spec, needle):
    assert main(["critscope", "fig3", "--what-if", spec]) == 2
    assert needle in capsys.readouterr().err


def test_critscope_unknown_experiment(capsys):
    assert main(["critscope", "not-an-experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_critscope_without_experiment_or_trace(capsys):
    assert main(["critscope"]) == 2
    err = capsys.readouterr().err
    assert "experiment id" in err and "--trace" in err


@pytest.mark.parametrize("kind, content, needle", [
    ("missing", None, "cannot read trace file"),
    ("corrupt", "{not json", "cannot parse trace file"),
    ("empty", '{"traceEvents": []}', "contains no events"),
])
def test_critscope_trace_errors_are_actionable(tmp_path, capsys, kind,
                                               content, needle):
    path = tmp_path / f"{kind}.json"
    if content is not None:
        path.write_text(content)
    assert main(["critscope", "--trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert needle in err and str(path) in err
    assert "Traceback" not in err


def test_critscope_from_captured_trace(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["fig3", "--quick", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["critscope", "--trace", str(trace), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["source"] == "trace"
    assert doc["sync_markers"]["barrier.arrive"] > 0


def test_critscope_flag_folds_block_into_manifest(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    assert main(["fig3", "--quick", "--critscope",
                 "--metrics", str(metrics),
                 "--what-if", "barrier_release=2"]) == 0
    out = capsys.readouterr().out
    assert "critscope: fig3" in out
    manifest = json.loads(metrics.read_text())
    block = manifest["critscope"]
    assert block["threads"]
    assert [p["category"] for p in block["what_if"]] == ["barrier_release"]


def test_parser_documents_critscope_flags():
    from repro.cli import build_parser

    text = build_parser().format_help()
    for flag in ("--critscope", "--what-if", "critscope"):
        assert flag in text, f"missing {flag}"
