"""Golden-value tests for degraded SCI routing around failed rings.

On the paper machine a one-hop ring transfer holds the ring for
``ring_hop_cycles`` (25 cycles at 10 ns = 250 ns).  A transfer whose
ring has failed detours to the nearest surviving ring and pays
``ring_reroute_extra_cycles`` (90 cycles = 900 ns) on top, so the golden
rerouted latency is 1150 ns regardless of *which* surviving ring absorbs
the traffic.
"""

import pytest

from repro.core import spp1000
from repro.faults import (FaultPlan, NetworkPartitionedError, ring_loss_plan,
                          use_faults)
from repro.machine import Machine

HOP_NS = 250.0            # 25 cycles x 10 ns, one hop
REROUTED_NS = 1150.0      # + 90 reroute cycles x 10 ns


def make_machine(plan):
    with use_faults(plan):
        machine = Machine(spp1000(2))
    machine.sim.run(until=0.0)  # apply the plan's t=0 events
    return machine


def transfer_ns(machine, ring=0, src=0, dst=1):
    start = machine.sim.now
    proc = machine.net.transfer(ring, src, dst)
    machine.sim.run(until=proc)
    return machine.sim.now - start


def test_healthy_machine_golden_hop_latency():
    machine = Machine(spp1000(2))
    assert machine.faults is None
    assert transfer_ns(machine) == HOP_NS


def test_empty_plan_routes_identically():
    machine = make_machine(FaultPlan())
    assert machine.faults is not None
    assert machine.faults.route(0) == (0, 0.0)
    assert transfer_ns(machine) == HOP_NS


def test_one_ring_failed_golden_reroute_latency():
    machine = make_machine(ring_loss_plan(1))
    assert machine.faults.route(0) == (1, 90.0)
    assert transfer_ns(machine, ring=0) == REROUTED_NS
    # the transfer actually travelled on ring 1
    assert machine.net.rings[0].transfers == 0
    assert machine.net.rings[1].transfers == 1
    assert machine.tracer.count("ring.reroute") >= 1


def test_two_rings_failed_golden_reroute_latency():
    machine = make_machine(ring_loss_plan(2))
    assert machine.faults.route(0) == (2, 90.0)
    assert machine.faults.route(1) == (2, 90.0)
    assert transfer_ns(machine, ring=0) == REROUTED_NS
    assert transfer_ns(machine, ring=1) == REROUTED_NS
    assert machine.net.rings[2].transfers == 2


def test_surviving_rings_are_unaffected():
    machine = make_machine(ring_loss_plan(2))
    assert machine.faults.route(2) == (2, 0.0)
    assert machine.faults.route(3) == (3, 0.0)
    assert transfer_ns(machine, ring=3) == HOP_NS


def test_ring_recovery_restores_direct_route():
    from repro.faults import FaultEvent
    plan = FaultPlan(events=(
        FaultEvent(t_ns=0.0, kind="ring_fail", ring=0),
        FaultEvent(t_ns=1000.0, kind="ring_recover", ring=0)))
    with use_faults(plan):
        machine = Machine(spp1000(2))
    machine.sim.run(until=0.0)
    assert machine.faults.route(0) == (1, 90.0)
    machine.sim.run(until=2000.0)
    assert machine.faults.route(0) == (0, 0.0)
    assert transfer_ns(machine) == HOP_NS


def test_all_rings_failed_raises_network_partitioned():
    machine = make_machine(ring_loss_plan(4))
    with pytest.raises(NetworkPartitionedError, match="all 4 SCI rings"):
        machine.net.transfer(0, 0, 1)


def test_fault_events_are_recorded_and_counted():
    machine = make_machine(ring_loss_plan(2))
    assert [ev.kind for ev in machine.faults.applied] == ["ring_fail",
                                                          "ring_fail"]
    assert machine.tracer.count("fault.ring_fail") == 2
