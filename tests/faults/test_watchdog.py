"""Tests for the simulated-time watchdog: deadlock reports and stalls.

Scenario: four threads iterate compute + barrier; one CPU fails mid-run,
so its thread halts and the other three spin at the barrier forever.
With nothing else running the event queue drains (a deadlock); with a
background ticker keeping the machine "alive", the same wedge is a stall.
Either way the watchdog's report must name the barrier and the dead CPU.
"""

import pytest

from repro.core import spp1000
from repro.faults import StallError, plan_from_dict, use_faults
from repro.machine import Machine
from repro.runtime import Barrier, Runtime
from repro.sim import DeadlockError


def wedged_machine(watchdog):
    plan = plan_from_dict({
        "events": [{"t_us": 5, "kind": "cpu_fail", "cpu": 1}],
        "watchdog": watchdog}, spp1000(1))
    with use_faults(plan):
        machine = Machine(spp1000(1))
    return machine


def run_wedged_barrier(machine):
    runtime = Runtime(machine)
    barrier = Barrier(runtime, 4)

    def body(env, tid):
        for _round in range(50):
            yield env.compute(1000)  # 10 us
            yield from barrier.wait(env)

    def main(env):
        yield from env.fork_join(4, body)

    runtime.run(main)


def test_drained_queue_becomes_diagnostic_deadlock():
    machine = wedged_machine({"interval_us": 50, "timeout_us": 100000})
    with pytest.raises(DeadlockError) as ei:
        run_wedged_barrier(machine)
    err = ei.value
    assert "waiters blocked" in str(err)
    assert err.now is not None and err.now > 0
    assert err.pending is not None and err.pending > 0
    assert err.report is not None
    assert "barrier@" in err.report       # who is wedged, and on what
    assert "cpu 1: halted" in err.report  # the root cause
    assert "last progress at" in err.report


def test_pvm_recv_stall_report_names_source_and_time():
    # Task 1 receives from task 0, which finishes without ever sending:
    # the queue drains and the watchdog must name the wedged recv (who,
    # source, tag) and when it last made progress in simulated time.
    from repro.pvm import PvmSystem

    plan = plan_from_dict({"watchdog": {"interval_us": 50,
                                        "timeout_us": 100000}})
    with use_faults(plan):
        machine = Machine(spp1000(1))
    pvm = PvmSystem(Runtime(machine))

    def body(task, tid):
        if tid == 0:
            yield task.env.compute(100)
            return None
        payload = yield from task.recv(0, tag=7)
        return payload

    with pytest.raises(DeadlockError) as ei:
        pvm.run_tasks(2, body)
    err = ei.value
    assert "waiters blocked" in str(err)
    assert err.now is not None and err.now > 0
    assert err.report is not None
    # the blocking resource: which task's recv, from whom, on which tag
    assert "pvm recv by task 1 (source 0, tag 7)" in err.report
    # and the simulated time it has been wedged since
    assert "last progress at t=" in err.report


def test_stall_detected_while_machine_still_runs():
    machine = wedged_machine({"interval_us": 50, "timeout_us": 200})

    def ticker():
        for _ in range(100):
            yield machine.sim.timeout(10_000.0)

    machine.sim.process(ticker())
    with pytest.raises(StallError) as ei:
        run_wedged_barrier(machine)
    err = ei.value
    assert "stall" in str(err)
    assert "watchdog timeout 200.000 us" in str(err)
    assert "barrier@" in err.report
    assert "cpu 1: halted" in err.report
    # raised well before the ticker ran out: a stall, not a drained queue
    assert err.now < 1_000_000.0


def test_watchdog_stands_down_when_workload_finishes():
    plan = plan_from_dict({"watchdog": {"interval_us": 50,
                                        "timeout_us": 200}})
    with use_faults(plan):
        machine = Machine(spp1000(1))
    runtime = Runtime(machine)

    def main(env):
        yield env.compute(1000)
        return "done"

    assert runtime.run(main) == "done"
    machine.sim.run()  # drain: the checker must exit cleanly


def test_block_clear_and_report():
    plan = plan_from_dict({"watchdog": {"interval_us": 50,
                                        "timeout_us": 200}})
    with use_faults(plan):
        machine = Machine(spp1000(1))
    wd = machine.watchdog
    token = wd.block("cpu 3", "spin", "lock@0x40")
    assert wd.blocked_count == 1
    report = wd.report()
    assert "cpu 3: spin on lock@0x40" in report
    wd.clear(token)
    assert wd.blocked_count == 0
    assert wd.report() == "no blocked waiters registered"
    wd.clear(token)  # double clear is harmless
