"""Tests for coherence-state purging when a hypernode fails.

A failed hypernode must disappear from every SCI sharing list: lines it
merely shared detach it via the normal rollout path; lines homed on it
lose their backing memory, so surviving sharers' cached copies, GCB
entries, and directory state are dropped too.  The surviving machine's
coherence state must still satisfy every invariant (checked with the
``REPRO_CHECK`` gate forced on).
"""

import pytest

from repro.core import spp1000
from repro.faults import FaultEvent, FaultPlan, use_faults
from repro.machine import Machine, MemClass
from repro.machine import sci as sci_mod


@pytest.fixture(autouse=True)
def check_sci_invariants(monkeypatch):
    monkeypatch.setattr(sci_mod, "SCI_CHECK", True)


def faulted_machine():
    with use_faults(FaultPlan()):  # empty plan: events applied manually
        machine = Machine(spp1000(2))
    return machine


def run(machine, proc):
    machine.sim.run(until=proc)


def fail_hypernode(machine, hn):
    machine.faults.apply(FaultEvent(t_ns=machine.sim.now,
                                    kind="hypernode_fail", hypernode=hn))


def test_sharer_hypernode_is_detached_from_sci_lists():
    machine = faulted_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)
    addr = region.base
    line = machine.line_of(addr)
    run(machine, machine.load(0, addr))   # home hypernode reads
    run(machine, machine.load(8, addr))   # hypernode 1 becomes a sharer
    assert 1 in machine.sci.sharers(line)

    fail_hypernode(machine, 1)
    assert 1 not in machine.sci.sharers(line)
    assert not machine.caches[8].contains(line)
    machine.check_coherence_invariants()


def test_lines_homed_on_dead_hypernode_are_dropped_everywhere():
    machine = faulted_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)
    addr = region.base
    line = machine.line_of(addr)
    run(machine, machine.load(0, addr))   # hypernode 0 caches a remote line
    assert machine.caches[0].contains(line)

    fail_hypernode(machine, 1)
    # the backing memory is gone: no SCI list, no surviving cached copy
    assert machine.sci.sharers(line) == []
    assert not machine.caches[0].contains(line)
    assert not machine.directories[1]._entries
    machine.check_coherence_invariants()


def test_failed_cpu_operations_halt_forever():
    machine = faulted_machine()
    fail_hypernode(machine, 1)
    assert not machine.faults.cpu_alive(8)
    assert machine.faults.cpu_alive(0)

    halted = machine.compute(8, 100)
    machine.sim.run(until=machine.sim.now + 1_000_000.0)
    assert not halted.triggered

    # the healthy hypernode keeps working
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=0)
    run(machine, machine.load(0, region.base))


def test_access_to_dead_hypernode_memory_halts_forever():
    machine = faulted_machine()
    region = machine.alloc(4096, MemClass.NEAR_SHARED, home_hypernode=1)
    fail_hypernode(machine, 1)

    stuck = machine.load(0, region.base)
    machine.sim.run(until=machine.sim.now + 1_000_000.0)
    assert not stuck.triggered
    assert machine.tracer.count("fault.halt") == 1
