"""Tests for fault-plan loading, validation, and the ambient-plan stack."""

import json
import os

import pytest

from repro.core import spp1000
from repro.faults import (FaultEvent, FaultPlan, FaultPlanError, PvmPolicy,
                          WatchdogPolicy, active_fault_plan, load_plan,
                          plan_from_dict, ring_loss_plan, use_faults,
                          validate_plan_dict)

EXAMPLE = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "examples", "faults", "ring_loss.json")


def errors_of(data):
    return validate_plan_dict(data, spp1000(2))


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def test_valid_plan_has_no_errors():
    assert errors_of({
        "description": "ok",
        "seed": 3,
        "events": [
            {"t_us": 0, "kind": "ring_fail", "ring": 0},
            {"t_us": 5, "kind": "pvm_loss", "p": 0.25},
            {"t_us": 9, "kind": "ring_recover", "ring": 0},
            {"t_us": 9, "kind": "cpu_fail", "cpu": 15},
            {"t_us": 12, "kind": "hypernode_fail", "hypernode": 1},
        ],
        "pvm": {"timeout_us": 25, "max_retries": 3, "backoff": 1.5},
        "watchdog": {"interval_us": 100, "timeout_us": 2000},
    }) == []


def test_non_dict_plan_rejected():
    assert "must be a JSON object" in errors_of([1, 2, 3])[0]


def test_unknown_top_level_key_lists_valid_keys():
    [err] = errors_of({"evnets": []})
    assert "evnets" in err and "events" in err


def test_unknown_event_key():
    [err] = errors_of(
        {"events": [{"t_us": 0, "kind": "ring_fail", "ring": 0,
                     "rign": 1}]})
    assert "events[0]" in err and "rign" in err


def test_unknown_kind_named():
    [err] = errors_of({"events": [{"t_us": 0, "kind": "ring_explode"}]})
    assert "ring_explode" in err and "ring_fail" in err


def test_missing_required_id_field():
    [err] = errors_of({"events": [{"t_us": 0, "kind": "ring_fail"}]})
    assert "requires the 'ring' field" in err


def test_id_field_invalid_for_kind():
    [err] = errors_of(
        {"events": [{"t_us": 0, "kind": "ring_fail", "ring": 0, "cpu": 3}]})
    assert "'cpu' is not valid for kind 'ring_fail'" in err


def test_ring_out_of_range_names_the_limit():
    [err] = errors_of({"events": [{"t_us": 0, "kind": "ring_fail",
                                   "ring": 5}]})
    assert "ring 5 out of range" in err and "4 rings: 0..3" in err


def test_cpu_and_hypernode_out_of_range():
    errs = errors_of({"events": [
        {"t_us": 0, "kind": "cpu_fail", "cpu": 16},
        {"t_us": 0, "kind": "hypernode_fail", "hypernode": 2}]})
    assert any("cpu 16 out of range" in e for e in errs)
    assert any("hypernode 2 out of range" in e for e in errs)


def test_negative_and_non_monotonic_timestamps():
    errs = errors_of({"events": [
        {"t_us": -1, "kind": "ring_fail", "ring": 0},
        {"t_us": 10, "kind": "ring_fail", "ring": 1},
        {"t_us": 5, "kind": "ring_recover", "ring": 1}]})
    assert any("non-negative" in e for e in errs)
    assert any("precedes the previous event" in e for e in errs)


def test_pvm_loss_without_probability():
    [err] = errors_of({"events": [{"t_us": 0, "kind": "pvm_loss"}]})
    assert "sets no probability" in err


def test_probability_out_of_range():
    [err] = errors_of(
        {"events": [{"t_us": 0, "kind": "pvm_loss", "p": 1.5}]})
    assert "probability in [0, 1]" in err


def test_probability_key_on_wrong_kind():
    [err] = errors_of(
        {"events": [{"t_us": 0, "kind": "cpu_fail", "cpu": 1, "p": 0.5}]})
    assert "only valid for kind 'pvm_loss'" in err


def test_seed_must_be_integer_and_bool_is_not():
    assert any("seed" in e for e in errors_of({"seed": "7"}))
    assert any("seed" in e for e in errors_of({"seed": True}))


def test_policy_validation():
    errs = errors_of({"pvm": {"timeout_us": 0, "max_retries": -1,
                              "backoff": 0.5, "bogus": 1},
                      "watchdog": {"interval_us": -3}})
    assert any("timeout_us must be a positive" in e for e in errs)
    assert any("max_retries" in e for e in errs)
    assert any("backoff" in e for e in errs)
    assert any("'bogus'" in e for e in errs)
    assert any("watchdog: interval_us" in e for e in errs)


def test_plan_from_dict_raises_with_every_problem():
    with pytest.raises(FaultPlanError) as ei:
        plan_from_dict({"events": [
            {"t_us": 0, "kind": "ring_fail"},
            {"t_us": 0, "kind": "nope"}]}, spp1000(2))
    text = str(ei.value)
    assert "requires the 'ring' field" in text and "nope" in text


# ---------------------------------------------------------------------------
# loading and round trips
# ---------------------------------------------------------------------------

def test_load_example_plan():
    plan = load_plan(EXAMPLE, spp1000(2))
    assert plan.seed == 7
    assert [ev.kind for ev in plan.events] == ["ring_fail", "ring_fail"]
    assert [ev.ring for ev in plan.events] == [0, 1]
    assert not plan.is_empty


def test_load_plan_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(FaultPlanError, match="not valid JSON"):
        load_plan(str(path))


def test_to_dict_round_trips(tmp_path):
    plan = plan_from_dict({
        "description": "round trip",
        "seed": 11,
        "events": [{"t_us": 2.5, "kind": "pvm_loss", "p": 0.1,
                    "ack_loss_p": 0.2}],
        "pvm": {"timeout_us": 30},
        "watchdog": {"interval_us": 100, "timeout_us": 400},
    }, spp1000(2))
    rebuilt = plan_from_dict(
        json.loads(json.dumps(plan.to_dict())), spp1000(2))
    assert rebuilt == plan


def test_ring_loss_plan_builder():
    plan = ring_loss_plan(2, t_us=3.0, seed=9)
    assert plan.seed == 9
    assert [(ev.kind, ev.ring, ev.t_ns) for ev in plan.events] == [
        ("ring_fail", 0, 3000.0), ("ring_fail", 1, 3000.0)]
    assert FaultPlan().is_empty


def test_default_policies():
    plan = plan_from_dict({"events": []})
    assert plan.pvm == PvmPolicy(timeout_us=50.0, max_retries=4, backoff=2.0)
    assert plan.watchdog is None
    wd = plan_from_dict({"watchdog": {"interval_us": 10, "timeout_us": 20}})
    assert wd.watchdog == WatchdogPolicy(interval_us=10, timeout_us=20)


def test_event_to_dict_emits_microseconds():
    ev = FaultEvent(t_ns=1500.0, kind="ring_fail", ring=2)
    assert ev.to_dict() == {"t_us": 1.5, "kind": "ring_fail", "ring": 2}


# ---------------------------------------------------------------------------
# ambient plan stack
# ---------------------------------------------------------------------------

def test_use_faults_nests_and_none_masks():
    assert active_fault_plan() is None
    outer = ring_loss_plan(1)
    inner = ring_loss_plan(2)
    with use_faults(outer):
        assert active_fault_plan() is outer
        with use_faults(inner):
            assert active_fault_plan() is inner
        with use_faults(None):
            assert active_fault_plan() is None
        assert active_fault_plan() is outer
    assert active_fault_plan() is None


def test_use_faults_pops_on_exception():
    with pytest.raises(RuntimeError):
        with use_faults(ring_loss_plan(1)):
            raise RuntimeError("boom")
    assert active_fault_plan() is None
