"""The fault layer must be zero-cost when inactive.

Two contracts:

* no plan attached — ``machine.faults`` is ``None`` and every operation
  pays exactly one ``is None`` check;
* an *empty* plan attached — the fault machinery is wired up but
  schedules nothing, consults no RNG, and must produce **bit-identical**
  timings to the no-plan run.
"""

from repro.core import spp1000
from repro.experiments.fig3_barrier import barrier_metrics_us
from repro.experiments.fig4_message import round_trip_us
from repro.faults import FaultPlan, ring_loss_plan, use_faults
from repro.machine import Machine
from repro.runtime import Placement


def test_empty_plan_schedules_nothing():
    with use_faults(FaultPlan()):
        machine = Machine(spp1000(2))
    assert machine.faults is not None
    assert not machine.sim._queue          # no pending fault callbacks
    assert machine.watchdog is None        # no policy => no checker


def test_barrier_metrics_bit_identical_under_empty_plan():
    base = barrier_metrics_us(4, Placement.UNIFORM, spp1000(2), rounds=2)
    with use_faults(FaultPlan()):
        faulted = barrier_metrics_us(4, Placement.UNIFORM, spp1000(2),
                                     rounds=2)
    assert faulted == base


def test_round_trip_bit_identical_under_empty_plan():
    base = round_trip_us(4096, Placement.UNIFORM, spp1000(2), repeats=2)
    with use_faults(FaultPlan()):
        faulted = round_trip_us(4096, Placement.UNIFORM, spp1000(2),
                                repeats=2)
    assert faulted == base


def test_masking_an_ambient_plan_restores_baseline():
    base = round_trip_us(4096, Placement.UNIFORM, spp1000(2), repeats=2)
    with use_faults(ring_loss_plan(2)):
        degraded = round_trip_us(4096, Placement.UNIFORM, spp1000(2),
                                 repeats=2)
        with use_faults(None):
            masked = round_trip_us(4096, Placement.UNIFORM, spp1000(2),
                                   repeats=2)
    assert masked == base
    assert degraded > base
