"""Tests for the PVM reliability layer: timeout, retry/backoff, duplicate
suppression, and unreachable peers.

Loss is driven deterministically (probability 0 or 1 inside explicit
time windows), so these tests have no statistical flakiness.
"""

import pytest

from repro.core import spp1000
from repro.faults import plan_from_dict, use_faults
from repro.machine import Machine
from repro.pvm import PvmSystem, TaskFailedError
from repro.runtime import Placement, Runtime


def make_pvm(plan_dict, n_hypernodes=2):
    plan = plan_from_dict(plan_dict, spp1000(n_hypernodes))
    with use_faults(plan):
        machine = Machine(spp1000(n_hypernodes))
    return PvmSystem(Runtime(machine))


def send_recv_body(payload="hello", nbytes=64):
    def body(task, tid):
        if tid == 0:
            yield from task.send(1, payload, nbytes=nbytes)
            return None
        got = yield from task.recv(0)
        return got
    return body


def test_total_loss_exhausts_retry_budget():
    pvm = make_pvm({
        "events": [{"t_us": 0, "kind": "pvm_loss", "p": 1.0}],
        "pvm": {"timeout_us": 10, "max_retries": 2, "backoff": 2.0}})
    with pytest.raises(TaskFailedError,
                       match="after 3 attempts.*budget exhausted"):
        pvm.run_tasks(2, send_recv_body(), Placement.UNIFORM)
    tracer = pvm.machine.tracer
    assert tracer.count("pvm.lost") == 3      # every attempt was dropped
    assert tracer.count("pvm.retry") == 2     # max_retries retransmissions
    assert tracer.count("pvm.timeout") == 3   # waited after each attempt


def test_backoff_grows_exponentially():
    from repro.sim import Tracer
    plan = plan_from_dict({
        "events": [{"t_us": 0, "kind": "pvm_loss", "p": 1.0}],
        "pvm": {"timeout_us": 10, "max_retries": 2, "backoff": 2.0}})
    with use_faults(plan):
        machine = Machine(spp1000(2), tracer=Tracer(enabled=True))
    pvm = PvmSystem(Runtime(machine))
    with pytest.raises(TaskFailedError):
        pvm.run_tasks(2, send_recv_body(), Placement.UNIFORM)
    stamps = [r.time for r in machine.tracer.select("pvm.timeout")]
    assert len(stamps) == 3
    gap1, gap2 = stamps[1] - stamps[0], stamps[2] - stamps[1]
    # waits are 10 us, then 20 us (plus the retransmission's wire work)
    assert gap1 >= 10_000.0
    assert gap2 >= 20_000.0
    assert gap2 > gap1


def delayed_send_body(payload):
    """Sender's first delivery attempt lands ~150-160 us in (thread
    startup + 100 us of compute + pack work), safely inside a loss
    window ending at 400 us; the 400 us retry timeout then pushes the
    retransmission safely past recovery."""
    def body(task, tid):
        if tid == 0:
            yield task.env.compute(10_000)  # 100 us
            yield from task.send(1, payload, nbytes=64)
            return None
        got = yield from task.recv(0)
        return got
    return body


def test_loss_window_then_recovery_delivers_on_retry():
    pvm = make_pvm({
        "events": [{"t_us": 0, "kind": "pvm_loss", "p": 1.0},
                   {"t_us": 400, "kind": "pvm_loss", "p": 0.0}],
        "pvm": {"timeout_us": 400, "max_retries": 4, "backoff": 2.0}})
    results = pvm.run_tasks(2, delayed_send_body("survivor"),
                            Placement.UNIFORM)
    assert results[1] == "survivor"
    tracer = pvm.machine.tracer
    assert tracer.count("pvm.lost") == 1
    assert tracer.count("pvm.retry") == 1
    assert tracer.count("pvm.dup_drop") == 0


def test_ack_loss_triggers_duplicate_suppression():
    pvm = make_pvm({
        "events": [{"t_us": 0, "kind": "pvm_loss", "ack_loss_p": 1.0},
                   {"t_us": 400, "kind": "pvm_loss", "p": 0.0}],
        "pvm": {"timeout_us": 400, "max_retries": 4, "backoff": 2.0}})
    results = pvm.run_tasks(2, delayed_send_body("once only"),
                            Placement.UNIFORM)
    # delivered on the first attempt; the retransmission was dropped as a
    # duplicate, so the receiver saw the payload exactly once
    assert results[1] == "once only"
    tracer = pvm.machine.tracer
    assert tracer.count("pvm.dup_drop") == 1
    assert tracer.count("pvm.retry") == 1
    receiver = pvm.task(1)
    assert receiver.received_messages == 1
    assert receiver.mailbox == []


def test_unreachable_peer_raises_task_failed():
    pvm = make_pvm({
        "events": [{"t_us": 0, "kind": "hypernode_fail", "hypernode": 1}]})
    with pytest.raises(TaskFailedError, match="unreachable"):
        # uniform placement puts task 1 on the failed hypernode
        pvm.run_tasks(2, send_recv_body(), Placement.UNIFORM)
    assert pvm.machine.tracer.count("pvm.unreachable") == 1


def test_sends_without_a_plan_use_the_plain_path():
    machine = Machine(spp1000(2))
    pvm = PvmSystem(Runtime(machine))
    results = pvm.run_tasks(2, send_recv_body("plain"), Placement.UNIFORM)
    assert results[1] == "plain"
    assert machine.faults is None
    assert machine.tracer.count("pvm.retry") == 0
