"""The regression observatory: compare_bench and its reports."""

import pytest

from repro.exec.bench import (compare_bench, markdown_compare,
                              render_compare, run_bench)


def bench_doc(serial, fingerprint="aaaa", sha="a" * 40):
    return {
        "schema_version": 1,
        "code_fingerprint": fingerprint,
        "git_sha": sha,
        "experiments": {
            exp_id: {"serial_s": s, "parallel_s": s, "cached_s": 0.01}
            for exp_id, s in serial.items()
        },
    }


BASE = {"fig2": 0.5, "fig3": 1.0, "fig7": 5.0, "scale128": 8.0,
        "table2": 0.3}


def test_self_compare_is_clean():
    doc = bench_doc(BASE)
    report = compare_bench(doc, doc)
    assert report["regressions"] == []
    assert report["improvements"] == []
    assert all(row["status"] == "ok"
               for row in report["experiments"].values())
    assert all(row["ratio"] == 1.0
               for row in report["experiments"].values())


def test_injected_2x_slowdown_is_flagged():
    current = dict(BASE)
    current["fig7"] = BASE["fig7"] * 2
    report = compare_bench(bench_doc(current), bench_doc(BASE))
    assert report["regressions"] == ["fig7"]
    row = report["experiments"]["fig7"]
    assert row["status"] == "regression"
    assert row["ratio"] == pytest.approx(2.0)
    # the other four experiments anchor the median at 1.0
    assert row["normalized_ratio"] == pytest.approx(2.0)


def test_improvement_is_reported_not_failed():
    current = dict(BASE)
    current["fig3"] = BASE["fig3"] / 2
    report = compare_bench(bench_doc(current), bench_doc(BASE))
    assert report["regressions"] == []
    assert report["improvements"] == ["fig3"]


def test_uniform_host_slowdown_is_normalized_away():
    # a 3x slower runner shifts every experiment equally: the median
    # ratio absorbs it and nothing is a regression
    current = {exp_id: s * 3 for exp_id, s in BASE.items()}
    report = compare_bench(bench_doc(current), bench_doc(BASE))
    assert report["normalized"]
    assert report["host_speed_factor"] == pytest.approx(3.0)
    assert report["regressions"] == []


def test_normalization_off_below_four_experiments():
    base = {"fig2": 0.5, "fig3": 1.0}
    current = {"fig2": 1.5, "fig3": 3.0}
    report = compare_bench(bench_doc(current), bench_doc(base))
    assert not report["normalized"]
    assert report["regressions"] == ["fig2", "fig3"]


def test_min_abs_guard_ignores_timer_noise():
    # 10x ratio but a 9 ms absolute delta: below min_abs_s, not real
    base = dict(BASE, table1=0.001)
    current = dict(BASE, table1=0.010)
    report = compare_bench(bench_doc(current), bench_doc(base))
    assert report["experiments"]["table1"]["status"] == "ok"
    assert report["regressions"] == []


def test_threshold_boundary():
    current = dict(BASE)
    current["fig7"] = BASE["fig7"] * 1.2     # +20% < 25% threshold
    report = compare_bench(bench_doc(current), bench_doc(BASE),
                           normalize=False)
    assert report["regressions"] == []
    current["fig7"] = BASE["fig7"] * 1.3     # +30% > threshold
    report = compare_bench(bench_doc(current), bench_doc(BASE),
                           normalize=False)
    assert report["regressions"] == ["fig7"]


def test_new_and_missing_experiments_listed():
    base = dict(BASE)
    current = dict(BASE)
    del current["table2"]
    current["fig9"] = 1.0
    report = compare_bench(bench_doc(current), bench_doc(base))
    assert report["new"] == ["fig9"]
    assert report["missing"] == ["table2"]
    assert "fig9" not in report["experiments"]


def test_render_and_markdown_reports():
    current = dict(BASE)
    current["fig7"] = BASE["fig7"] * 2
    report = compare_bench(bench_doc(current, "bbbb", "b" * 40),
                           bench_doc(BASE))
    text = render_compare(report)
    assert "REGRESSION" in text and "fig7" in text
    md = markdown_compare(report)
    assert "**FAIL**" in md
    assert "| fig7 |" in md
    assert "**REGRESSION**" in md
    clean = markdown_compare(compare_bench(bench_doc(BASE),
                                           bench_doc(BASE)))
    assert "**PASS**" in clean


def test_run_bench_skips_unknown_experiments(capsys):
    # A renamed/unknown id in --bench-experiments (or carried over from
    # an old baseline) must warn-and-skip, not abort with a KeyError.
    from repro.core import spp1000

    doc = run_bench(spp1000(1), jobs=1, quick=True,
                    experiment_ids=["fig2", "renamed_away"])
    err = capsys.readouterr().err
    assert "skipping 'renamed_away'" in err
    assert list(doc["experiments"]) == ["fig2"]


def test_run_bench_errors_when_nothing_benchmarkable():
    from repro.core import spp1000

    with pytest.raises(ValueError) as ei:
        run_bench(spp1000(1), quick=True,
                  experiment_ids=["nope1", "nope2"])
    msg = str(ei.value)
    assert "no benchmarkable experiments" in msg
    assert "fig2" in msg  # names the valid choices


def test_fingerprints_carried_through():
    report = compare_bench(bench_doc(BASE, "cur", "c" * 40),
                           bench_doc(BASE, "old", "d" * 40))
    assert report["current_fingerprint"] == "cur"
    assert report["baseline_fingerprint"] == "old"
    assert report["current_git_sha"] == "c" * 40
    assert report["baseline_git_sha"] == "d" * 40


# ---------------------------------------------------------------------------
# calibration-based normalization (schema 2 host blocks)
# ---------------------------------------------------------------------------

def scored_doc(serial, score):
    doc = bench_doc(serial)
    doc["host"] = {"calibration_miters_s": score}
    return doc


def test_calibration_score_preferred_over_median():
    # current host measured 2x slower by the microbenchmark; every
    # experiment reading 2x slower is therefore expected, not a
    # regression
    current = {exp_id: s * 2 for exp_id, s in BASE.items()}
    report = compare_bench(scored_doc(current, score=5.0),
                           scored_doc(BASE, score=10.0))
    assert report["normalization_mode"] == "calibration"
    assert report["host_speed_factor"] == pytest.approx(2.0)
    assert report["regressions"] == []


def test_calibration_catches_uniform_code_slowdown():
    # Same-speed hosts (equal scores) but every experiment 2x slower:
    # the median heuristic would absorb this into the normalizer; the
    # calibration score cannot be fooled by the experiments under test.
    current = {exp_id: s * 2 for exp_id, s in BASE.items()}
    report = compare_bench(scored_doc(current, score=10.0),
                           scored_doc(BASE, score=10.0))
    assert report["normalization_mode"] == "calibration"
    assert report["host_speed_factor"] == pytest.approx(1.0)
    assert sorted(report["regressions"]) == sorted(BASE)


def test_median_fallback_for_schema1_baseline():
    # old baselines have no host score: the median heuristic still
    # applies with >= 4 shared experiments
    current = {exp_id: s * 3 for exp_id, s in BASE.items()}
    report = compare_bench(scored_doc(current, score=5.0),
                           bench_doc(BASE))
    assert report["normalization_mode"] == "median"
    assert report["regressions"] == []


def test_median_fallback_for_schema2_doc_with_null_calibration():
    # A schema-2 document whose host block exists but whose calibration
    # microbenchmark was skipped (--no-calibrate) records null: the
    # comparison must fall back to the median heuristic, not divide by
    # the missing score.
    current = {exp_id: s * 3 for exp_id, s in BASE.items()}
    report = compare_bench(scored_doc(current, score=10.0),
                           scored_doc(BASE, score=None))
    assert report["normalization_mode"] == "median"
    assert report["host_speed_factor"] == pytest.approx(3.0)
    assert report["regressions"] == []


def test_median_fallback_for_zero_calibration_score():
    # a zero score (corrupt or hand-edited baseline) must never reach
    # the division; both sides zero likewise
    current = {exp_id: s * 3 for exp_id, s in BASE.items()}
    report = compare_bench(scored_doc(current, score=10.0),
                           scored_doc(BASE, score=0.0))
    assert report["normalization_mode"] == "median"
    assert report["regressions"] == []
    report = compare_bench(scored_doc(current, score=0.0),
                           scored_doc(BASE, score=0.0))
    assert report["normalization_mode"] == "median"


def test_no_calibration_and_few_experiments_disables_normalization():
    # missing scores AND < 4 shared experiments: nothing to normalize
    # with — mode "none", raw ratios drive the verdict
    base = {"fig2": 0.5, "fig3": 1.0}
    current = {"fig2": 1.5, "fig3": 3.0}
    report = compare_bench(scored_doc(current, score=None),
                           scored_doc(base, score=0.0))
    assert report["normalization_mode"] == "none"
    assert not report["normalized"]
    assert report["regressions"] == ["fig2", "fig3"]


def test_resolution_limited_rows_surface_in_markdown():
    current = bench_doc(BASE)
    current["experiments"]["fig2"][
        "cached_speedup_resolution_limited"] = True
    report = compare_bench(current, bench_doc(BASE))
    assert report["cached_resolution_limited"] == ["fig2"]
    md = markdown_compare(report)
    assert "timer-resolution floor" in md and "`fig2`" in md


# -- the resilience fold --------------------------------------------------


def _with_resilience(doc, exp_id, **counters):
    resil = {"retries": 0, "timeouts": 0, "hung_workers_replaced": 0,
             "workers_replaced": 0, "serial_fallbacks": 0,
             "quarantined_units": [], "cache_corrupt": 0}
    resil.update(counters)
    doc["experiments"][exp_id]["resilience"] = resil
    return doc


def test_clean_runs_fold_no_resilience():
    report = compare_bench(bench_doc(BASE), bench_doc(BASE))
    assert report["resilience"] == {}
    assert "Fault behaviour" not in markdown_compare(report)
    assert "fault events" not in render_compare(report)


def test_resilience_counters_fold_per_experiment():
    base = _with_resilience(bench_doc(BASE), "fig3", retries=2,
                            timeouts=1, quarantined_units=["u:1", "u:2"],
                            chaos_injected={"kill": 3})
    cur = _with_resilience(bench_doc(BASE), "fig3", retries=1,
                           workers_replaced=1, cache_corrupt=1)
    report = compare_bench(cur, base)
    assert list(report["resilience"]) == ["fig3"]
    sides = report["resilience"]["fig3"]
    assert sides["baseline"]["retries"] == 2
    assert sides["baseline"]["quarantined"] == 2
    assert sides["baseline"]["chaos_injected"] == 3
    assert sides["current"]["retries"] == 1
    assert sides["current"]["workers_replaced"] == 1
    assert sides["current"]["cache_corrupt"] == 1
    assert sides["current"]["chaos_injected"] == 0


def test_one_sided_faults_still_fold():
    # a baseline that survived faults vs a now-clean current run (or
    # vice versa) is exactly the story the table should tell
    base = _with_resilience(bench_doc(BASE), "fig7", retries=5)
    report = compare_bench(bench_doc(BASE), base)
    assert report["resilience"]["fig7"]["baseline"]["retries"] == 5
    assert report["resilience"]["fig7"]["current"]["retries"] == 0


def test_fault_table_is_informational_not_failing():
    cur = _with_resilience(bench_doc(BASE), "fig3", retries=9,
                           timeouts=9, cache_corrupt=9)
    report = compare_bench(cur, bench_doc(BASE))
    assert report["regressions"] == []  # exit code stays timing-driven
    md = markdown_compare(report)
    assert "**PASS**" in md
    assert "## Fault behaviour" in md
    assert "| fig3 | 0 → 9 | 0 → 9 |" in md
    text = render_compare(report)
    assert "fault events survived (baseline->current): fig3 0->27" in text
    assert "no serial-path regressions" in text
