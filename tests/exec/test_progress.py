"""Host-timing accounting and live telemetry in the execution fabric."""

import json

import pytest

import repro.experiments  # noqa: F401  (registers every planner)
from repro.core import spp1000
from repro.exec import PoolStats, ProgressStream, WorkerPool, execute
from repro.exec.units import plan_units


@pytest.fixture
def config():
    return spp1000()


@pytest.fixture
def units(config):
    return plan_units("fig3", config, quick=True)


# ---------------------------------------------------------------------------
# per-unit host timings from the pool
# ---------------------------------------------------------------------------

def test_serial_pool_records_local_unit_timings(config, units):
    stats = PoolStats(1)
    WorkerPool(1).map_units(units, config, stats=stats)
    assert len(stats.unit_timings) == len(units)
    for timing in stats.unit_timings:
        assert timing["where"] == "local"
        assert timing["run_s"] >= 0
        assert timing["queue_s"] == 0.0
        assert timing["return_s"] == 0.0
    assert stats.spawn_s == 0.0
    assert {t["key"] for t in stats.unit_timings} \
        == {u.key for u in units}


def test_parallel_pool_records_worker_unit_timings(config, units):
    stats = PoolStats(2)
    WorkerPool(2).map_units(units, config, stats=stats)
    workers = [t for t in stats.unit_timings if t["where"] == "worker"]
    assert workers, "expected at least one worker-computed unit"
    for timing in workers:
        assert timing["run_s"] >= 0
        assert timing["queue_s"] >= 0
        assert timing["return_s"] >= 0
        assert timing["overhead_s"] >= 0
    if stats.retried_in_process == 0:
        assert stats.spawn_s > 0


def test_pool_on_progress_fires_per_completion(config, units):
    seen = []
    WorkerPool(1).map_units(
        units, config,
        on_progress=lambda unit, timing: seen.append((unit.key, timing)))
    assert [k for k, _ in seen] == [u.key for u in units]
    assert all(t["run_s"] >= 0 for _, t in seen)


def test_stats_to_dict_carries_spawn(config, units):
    stats = PoolStats(1)
    WorkerPool(1).map_units(units[:2], config, stats=stats)
    doc = stats.to_dict()
    assert doc["jobs"] == 1 and doc["executed"] == 2
    assert doc["spawn_s"] == 0.0


# ---------------------------------------------------------------------------
# execute(): the fabric's own phase split
# ---------------------------------------------------------------------------

def test_execute_report_carries_host_timing(config):
    result, report = execute("fig3", config, jobs=1, quick=True)
    t = report.host_timing
    for phase in ("plan_s", "cache_lookup_s", "cache_store_s", "pool_s",
                  "spawn_s", "assemble_s"):
        assert phase in t, phase
        assert t[phase] >= 0
    assert len(report.unit_timings) == report.computed
    doc = report.to_dict()
    assert doc["host_timing"] == t
    assert doc["unit_timings"] == report.unit_timings
    assert "pool" in report.render()


# ---------------------------------------------------------------------------
# ProgressStream
# ---------------------------------------------------------------------------

def test_progress_stream_writes_flushed_jsonl(tmp_path):
    path = tmp_path / "p.jsonl"
    with ProgressStream(str(path)) as ps:
        ps.emit({"event": "start", "units": 3})
        ps.emit({"event": "done"})
    records = [json.loads(ln) for ln in
               path.read_text().strip().splitlines()]
    assert [r["event"] for r in records] == ["start", "done"]
    assert all(r["t_s"] >= 0 for r in records)
    assert records[0]["t_s"] <= records[1]["t_s"]


def test_progress_stream_stderr_not_owned(capsys):
    ps = ProgressStream("-")
    ps.emit({"event": "ping"})
    ps.close()
    ps.emit({"event": "after-close"})       # silently dropped, no raise
    err = capsys.readouterr().err
    assert '"event": "ping"' in err
    assert "after-close" not in err


def test_execute_emits_start_units_done(config, tmp_path):
    path = tmp_path / "p.jsonl"
    with ProgressStream(str(path)) as ps:
        execute("fig3", config, jobs=2, quick=True, progress=ps)
    records = [json.loads(ln) for ln in
               path.read_text().strip().splitlines()]
    kinds = [r["event"] for r in records]
    assert kinds[0] == "start" and kinds[-1] == "done"
    units = [r for r in records if r["event"] == "unit"]
    assert len(units) == records[0]["to_compute"]
    dones = [r["done"] for r in units]
    assert dones == sorted(dones) and dones[-1] == len(units)
    assert all(r["eta_s"] is None or r["eta_s"] >= 0 for r in units)


# ---------------------------------------------------------------------------
# bench v2: throughput columns, host block, resolution floor
# ---------------------------------------------------------------------------

def test_bench_rows_carry_throughput_and_breakdown(config):
    from repro.exec.bench import BENCH_SCHEMA, run_bench

    doc = run_bench(config, jobs=2, quick=True, experiment_ids=["fig3"])
    assert doc["schema_version"] == BENCH_SCHEMA == 2
    row = doc["experiments"]["fig3"]
    assert row["units_per_s"] > 0
    assert row["sim_mcycles"] > 0
    assert row["sim_mcycles_per_s"] > 0
    assert row["events"] > 0
    assert row["events_per_s"] > 0
    assert "cached_speedup_resolution_limited" in row
    breakdown = row["parallel_breakdown"]
    assert breakdown["pool_s"] >= 0
    assert breakdown["unit_run_s"] > 0
    assert "cached_speedup_resolution_limited" in doc["totals"]


def test_bench_host_block_is_enriched(config):
    from repro.exec.bench import host_info

    host = host_info()
    assert host["cpu_count"] >= 1
    assert host["python"] and host["platform"]
    assert "cpu_model" in host and "physical_cpus" in host
    assert "loadavg_1m" in host
    assert host["calibration_miters_s"] > 0


def test_bench_progress_streams_pass_markers(config, tmp_path):
    """bench --progress: a bench_pass marker per pass, then that pass's
    start/unit/done records with per-unit host timings -- the serial
    (where=local) vs parallel (where=worker) decomposition."""
    from repro.exec.bench import run_bench

    out = tmp_path / "bench.jsonl"
    with ProgressStream(str(out)) as stream:
        run_bench(config, jobs=2, quick=True, experiment_ids=["table2"],
                  progress=stream)
    records = [json.loads(line) for line in out.read_text().splitlines()]
    passes = [r for r in records if r["event"] == "bench_pass"]
    assert [p["pass"] for p in passes] == ["serial", "parallel", "cached"]
    assert passes[0]["jobs"] == 1 and passes[1]["jobs"] == 2
    units = [r for r in records if r["event"] == "unit"]
    assert units, "no unit heartbeats"
    assert {u["where"] for u in units} == {"local", "worker"}
    assert all(u["run_s"] >= 0 for u in units)

def test_cached_speedup_clamped_at_resolution_floor():
    from repro.exec.bench import _RESOLUTION_FLOOR_S

    # a 0.004 s warm pass against a 1 s serial pass must not report a
    # 250x speedup: the clamp caps it at serial / floor
    assert 1.0 / max(0.004, _RESOLUTION_FLOOR_S) \
        == 1.0 / _RESOLUTION_FLOOR_S
    assert _RESOLUTION_FLOOR_S == 0.05


def test_render_bench_notes_resolution_limited():
    from repro.exec.bench import render_bench

    doc = {
        "schema_version": 2, "jobs": 2, "host": {"cpu_count": 4},
        "experiments": {
            "fig3": {"units": 16, "serial_s": 1.0, "parallel_s": 0.6,
                     "cached_s": 0.004, "speedup": 1.67,
                     "cached_speedup": 20.0,
                     "cached_speedup_resolution_limited": True,
                     "units_per_s": 16.0, "sim_mcycles_per_s": 1.0,
                     "cache_hit_rate": 1.0, "identical": True}},
        "totals": {"serial_s": 1.0, "parallel_s": 0.6, "cached_s": 0.004,
                   "speedup": 1.67},
    }
    text = render_bench(doc)
    assert "units/s" in text and "Mcyc/s" in text
    assert "timer-resolution floor" in text


# ---------------------------------------------------------------------------
# telemetry under worker crash / retry (the resilience event stream)
# ---------------------------------------------------------------------------

def test_progress_jsonl_stays_well_formed_under_worker_crash(
        config, tmp_path):
    """Chaos-killed workers must not tear the JSONL stream: every line
    parses, a retry event is emitted, and ETA/occupancy recover (the
    done counter still reaches the total)."""
    from repro.exec import ResiliencePolicy, chaos_from_dict

    chaos = chaos_from_dict({"faults": [
        {"kind": "kill_worker", "unit": 0},
        {"kind": "drop_return", "unit": 1},
    ]})
    path = tmp_path / "crash.jsonl"
    with ProgressStream(str(path)) as ps:
        execute("fig3", config, jobs=2, quick=True, progress=ps,
                chaos=chaos, policy=ResiliencePolicy(backoff_s=0.0))
    records = [json.loads(line)                      # every line parses
               for line in path.read_text().strip().splitlines()]
    kinds = [r["event"] for r in records]
    assert kinds[0] == "start" and kinds[-1] == "done"
    retries = [r for r in records if r["event"] == "retry"]
    assert retries, "expected retry events in the stream"
    for retry in retries:
        assert retry["key"] and retry["attempt"] >= 2
        assert "error" in retry and "t_s" in retry
    units = [r for r in records if r["event"] == "unit"]
    dones = [r["done"] for r in units]
    assert dones == sorted(dones)
    assert dones[-1] == records[0]["to_compute"]     # sweep completed
    assert all(r["eta_s"] is None or r["eta_s"] >= 0 for r in units)
    assert all(r["workers_busy"] >= 0 for r in units)
