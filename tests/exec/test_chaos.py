"""The deterministic host-chaos harness, and its bit-identity contract."""

import json

import pytest

from repro.core import spp1000
from repro.core.canon import canonical_json
from repro.exec.chaos import (
    ChaosPlanError,
    chaos_from_dict,
    corrupt_cache_entry,
    load_chaos_plan,
    validate_chaos_dict,
)
from repro.exec.pool import PoolStats, WorkerPool
from repro.exec.resilience import ResiliencePolicy
from repro.exec.units import WorkUnit, register_units

# -- synthetic experiment (module-level so workers can resolve it) ----------


def _plan_victim(config, quick=False):
    return [WorkUnit("_chaos_victim", f"v:{i}", {"i": i})
            for i in range(6)]


def _run_victim(params, config):
    return {"i": params["i"], "sq": params["i"] ** 2}


register_units("_chaos_victim", _plan_victim, _run_victim)


# -- validation: every problem reported, faults/plan.py style ---------------

def test_validate_lists_every_problem():
    errors = validate_chaos_dict({
        "seed": "zero",
        "bogus": 1,
        "faults": [
            {"kind": "explode", "unit": 0},
            {"kind": "kill_worker"},
            {"kind": "kill_worker", "unit": 0, "key": "both"},
            {"kind": "delay_unit", "unit": 1},
            {"kind": "kill_worker", "unit": 2, "seconds": 1},
            {"kind": "kill_worker", "unit": -1},
            {"kind": "kill_worker", "unit": 3, "attempts": []},
            {"kind": "kill_worker", "unit": 4, "p": 1.5},
        ],
    })
    text = "\n".join(errors)
    assert "unknown key 'bogus'" in text
    assert "seed must be an integer" in text
    assert "'explode'" in text
    assert "neither" in text and "both" in text
    assert "requires the 'seconds' field" in text
    assert "only valid for kind 'delay_unit'" in text
    assert "non-negative plan-order" in text
    assert "attempts must be a non-empty list" in text
    assert "p must be a probability" in text
    assert len(errors) >= 9


def test_chaos_from_dict_raises_with_all_problems():
    with pytest.raises(ChaosPlanError) as excinfo:
        chaos_from_dict({"faults": [{"kind": "nope", "unit": 0},
                                    {"kind": "kill_worker"}]})
    lines = str(excinfo.value).splitlines()
    assert len(lines) == 2


def test_load_chaos_plan_roundtrip(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({
        "description": "test",
        "seed": 7,
        "faults": [{"kind": "delay_unit", "unit": 1, "seconds": 0.25},
                   {"kind": "kill_worker", "key": "v:0",
                    "attempts": [1, 2]}],
    }))
    plan = load_chaos_plan(str(path))
    assert plan.seed == 7 and len(plan.faults) == 2
    assert plan.faults[0].seconds == 0.25
    assert plan.faults[1].attempts == (1, 2)
    assert not plan.is_empty


def test_load_chaos_plan_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{nope")
    with pytest.raises(ChaosPlanError, match="not valid JSON"):
        load_chaos_plan(str(path))


# -- resolution: deterministic, quick-mode tolerant -------------------------

def test_resolve_targets_by_index_and_key():
    units = _plan_victim(None)
    plan = chaos_from_dict({"faults": [
        {"kind": "kill_worker", "unit": 2},
        {"kind": "delay_unit", "key": "v:4", "seconds": 0.1},
        {"kind": "kill_worker", "unit": 99},        # beyond the sweep
        {"kind": "drop_return", "key": "v:nope"},   # unknown key
    ]})
    resolved = plan.resolve(units)
    assert set(resolved) == {"v:2", "v:4"}
    assert resolved["v:2"] == [{"kind": "kill_worker", "seconds": 0.0,
                                "attempts": [1]}]
    assert resolved["v:4"][0]["kind"] == "delay_unit"


def test_resolve_probability_is_seeded_and_stable():
    units = _plan_victim(None)
    data = {"seed": 3, "faults": [
        {"kind": "kill_worker", "unit": i, "p": 0.5} for i in range(6)]}
    first = chaos_from_dict(data).resolve(units)
    second = chaos_from_dict(data).resolve(units)
    assert first == second
    assert chaos_from_dict({**data, "seed": 3})
    # p=0 never fires, p=1 always fires
    none = chaos_from_dict({"faults": [
        {"kind": "kill_worker", "unit": 0, "p": 0.0}]}).resolve(units)
    assert none == {}
    always = chaos_from_dict({"faults": [
        {"kind": "kill_worker", "unit": 0, "p": 1.0}]}).resolve(units)
    assert set(always) == {"v:0"}


# -- cache corruption helper ------------------------------------------------

def test_corrupt_cache_entry_keeps_checksum_field(tmp_path):
    path = tmp_path / "entry.json"
    path.write_text(json.dumps({"schema": 2, "value": [1, 2, 3],
                                "sha256": "feedface"}))
    assert corrupt_cache_entry(str(path))
    entry = json.loads(path.read_text())
    assert entry["sha256"] == "feedface"          # checksum untouched
    assert entry["value"]["__chaos_corrupted__"] is True
    assert entry["value"]["was"] == [1, 2, 3]
    assert not corrupt_cache_entry(str(tmp_path / "missing.json"))


# -- the pinned contract: chaos runs are bit-identical ----------------------

def test_chaos_kills_delays_and_drops_stay_bit_identical():
    units = _plan_victim(None)
    config = spp1000()
    clean = WorkerPool(1).map_units(units, config)

    plan = chaos_from_dict({"faults": [
        {"kind": "kill_worker", "unit": 0},
        {"kind": "kill_worker", "unit": 3},
        {"kind": "delay_unit", "unit": 1, "seconds": 0.05},
        {"kind": "drop_return", "unit": 2},
    ]})
    stats = PoolStats(2)
    policy = ResiliencePolicy(backoff_s=0.0)
    chaotic = WorkerPool(2, policy).map_units(
        units, config, stats=stats, chaos_spec=plan.resolve(units))

    assert canonical_json(chaotic) == canonical_json(clean)
    assert list(chaotic) == [u.key for u in units]   # plan order kept
    injected = stats.resilience.chaos_injected
    assert injected.get("kill_worker", 0) == 2
    assert injected.get("delay_unit", 0) >= 1
    assert injected.get("drop_return", 0) >= 1
    assert stats.resilience.retries >= 3
    assert stats.resilience.workers_replaced >= 2
    assert stats.resilience.quarantined_count == 0


def test_chaos_serial_delay_and_drop_stay_bit_identical():
    units = _plan_victim(None)
    config = spp1000()
    clean = WorkerPool(1).map_units(units, config)
    plan = chaos_from_dict({"faults": [
        {"kind": "delay_unit", "unit": 1, "seconds": 0.01},
        {"kind": "drop_return", "unit": 2},
    ]})
    stats = PoolStats(1)
    policy = ResiliencePolicy(backoff_s=0.0)
    chaotic = WorkerPool(1, policy).map_units(
        units, config, stats=stats, chaos_spec=plan.resolve(units))
    assert canonical_json(chaotic) == canonical_json(clean)
    assert stats.resilience.chaos_injected.get("drop_return", 0) == 1
    assert stats.resilience.retries >= 1
