"""Host-level fault tolerance: timeouts, retries, quarantine, hangs."""

import multiprocessing
import os
import time

import pytest

from repro.core import spp1000
from repro.exec.pool import PoolStats, WorkerPool
from repro.exec.resilience import (
    DEFAULT_MAX_RETRIES,
    ResiliencePolicy,
    ResilienceStats,
    UnitExecutionError,
    UnitFailure,
)
from repro.exec.units import WorkUnit, register_units

# -- synthetic experiments (module-level so workers can resolve them) -------


def _plan_poison(config, quick=False):
    return [WorkUnit("_resil_poison", f"p:{i}", {"i": i}) for i in range(4)]


def _run_poison(params, config):
    if params["i"] == 2:
        raise ValueError(f"poison unit {params['i']}")
    return params["i"] * 10


def _plan_hang(config, quick=False):
    return [WorkUnit("_resil_hang", f"h:{i}", {"i": i}) for i in range(3)]


def _run_hang(params, config):
    # hang forever -- but only inside a worker, so the serial-degradation
    # attempt succeeds and proves the hang detector recovered the sweep
    if params["i"] == 1 and multiprocessing.parent_process() is not None:
        time.sleep(600)
    return params["i"]


def _plan_flaky(config, quick=False):
    return [WorkUnit("_resil_flaky", f"f:{i}", {"i": i}) for i in range(3)]


def _run_flaky(params, config):
    # worker pids differ run to run; fail in exactly one worker process
    # per unit by dying only on the first attempt marker file
    if params["i"] == 1:
        marker = os.environ.get("RESIL_FLAKY_MARKER")
        if marker and not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fh:
                fh.write("x")
            raise RuntimeError("transient failure")
    return params["i"]


register_units("_resil_poison", _plan_poison, _run_poison)
register_units("_resil_hang", _plan_hang, _run_hang)
register_units("_resil_flaky", _plan_flaky, _run_flaky)


# -- policy ------------------------------------------------------------------

def test_policy_defaults_and_ladder():
    policy = ResiliencePolicy()
    assert policy.max_retries == DEFAULT_MAX_RETRIES == 2
    assert policy.pool_attempts == 3
    assert policy.backoff_for(1) == 0.0
    assert policy.backoff_for(2) == pytest.approx(0.05)
    assert policy.backoff_for(3) == pytest.approx(0.10)
    assert policy.backoff_for(4) == pytest.approx(0.20)
    assert policy.replacement_budget(4) == 10


def test_policy_rejects_bad_values():
    with pytest.raises(ValueError, match="unit_timeout_s"):
        ResiliencePolicy(unit_timeout_s=0)
    with pytest.raises(ValueError, match="max_retries"):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError, match="backoff_s"):
        ResiliencePolicy(backoff_s=-0.1)


def test_resilience_stats_dict_shape():
    stats = ResilienceStats()
    assert not stats.any()
    doc = stats.to_dict()
    assert doc["retries"] == 0 and "chaos_injected" not in doc
    stats.count_chaos("kill_worker")
    stats.count_chaos("kill_worker")
    assert stats.any()
    assert stats.to_dict()["chaos_injected"] == {"kill_worker": 2}


# -- quarantine: the sweep drains, then the error names everything ----------

def _assert_poison_error(excinfo, stats):
    err = excinfo.value
    assert isinstance(err, UnitExecutionError)
    assert [f.key for f in err.failures] == ["p:2"]
    failure = err.failures[0]
    assert isinstance(failure, UnitFailure)
    assert failure.attempts >= 1
    # the actionable message names the unit key and attempt count ...
    assert "p:2" in str(err)
    assert "attempts" in str(err)
    # ... and carries the ORIGINAL traceback, not pool internals
    assert "poison unit 2" in str(err)
    assert "ValueError" in str(err)
    assert stats.resilience.quarantined_count == 1


def test_serial_poison_unit_quarantined_not_sinking_sweep():
    units = _plan_poison(None)
    stats = PoolStats(1)
    cached = {}
    policy = ResiliencePolicy(max_retries=1, backoff_s=0.0)
    with pytest.raises(UnitExecutionError) as excinfo:
        WorkerPool(1, policy).map_units(
            units, spp1000(), stats=stats,
            on_unit=lambda u, v: cached.update({u.key: v}))
    _assert_poison_error(excinfo, stats)
    # every healthy unit completed and reached the cache hook first
    assert cached == {"p:0": 0, "p:1": 10, "p:3": 30}
    # the exception chain preserves the real exception (raise ... from e)
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_parallel_poison_unit_quarantined_with_traceback():
    units = _plan_poison(None)
    stats = PoolStats(2)
    policy = ResiliencePolicy(max_retries=1, backoff_s=0.0)
    with pytest.raises(UnitExecutionError) as excinfo:
        WorkerPool(2, policy).map_units(units, spp1000(), stats=stats)
    _assert_poison_error(excinfo, stats)
    assert stats.resilience.retries >= 1


def test_retry_event_names_key_and_attempt():
    units = _plan_poison(None)
    events = []
    policy = ResiliencePolicy(max_retries=2, backoff_s=0.0)
    with pytest.raises(UnitExecutionError):
        WorkerPool(1, policy).map_units(
            units, spp1000(), on_event=events.append)
    retries = [e for e in events if e["event"] == "retry"]
    assert retries, "expected retry events"
    for event in retries:
        assert event["key"] == "p:2"
        assert event["attempt"] >= 2
        assert event["max_attempts"] >= event["attempt"]
        assert "poison unit 2" in event["error"]
    quarantines = [e for e in events if e["event"] == "quarantine"]
    assert [q["key"] for q in quarantines] == ["p:2"]


# -- hang detection ----------------------------------------------------------

def test_hung_worker_detected_replaced_and_unit_recovered():
    units = _plan_hang(None)
    stats = PoolStats(2)
    events = []
    policy = ResiliencePolicy(unit_timeout_s=1.0, max_retries=0,
                              backoff_s=0.0)
    values = WorkerPool(2, policy).map_units(
        units, spp1000(), stats=stats, on_event=events.append)
    # the hang was detected, the worker replaced, the unit recovered
    # in-process -- and every value is correct
    assert values == {"h:0": 0, "h:1": 1, "h:2": 2}
    assert stats.resilience.timeouts >= 1
    assert stats.resilience.hung_workers_replaced >= 1
    hung = [e for e in events if e["event"] == "hung_worker"]
    assert hung and hung[0]["key"] == "h:1"
    assert hung[0]["timeout_s"] == 1.0
    assert stats.to_dict()["resilience"]["hung_workers_replaced"] >= 1


# -- KeyboardInterrupt is never swallowed ------------------------------------

def test_keyboard_interrupt_propagates_serially(monkeypatch):
    units = _plan_poison(None)[:1]

    def interrupted(experiment_id, params, config):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.exec.pool.run_unit", interrupted)
    with pytest.raises(KeyboardInterrupt):
        WorkerPool(1).map_units(units, spp1000())


# -- transient failures recover without quarantine ---------------------------

def test_transient_worker_failure_retries_to_success(tmp_path,
                                                     monkeypatch):
    marker = tmp_path / "flaky-once"
    monkeypatch.setenv("RESIL_FLAKY_MARKER", str(marker))
    units = _plan_flaky(None)
    stats = PoolStats(2)
    policy = ResiliencePolicy(max_retries=2, backoff_s=0.0)
    values = WorkerPool(2, policy).map_units(units, spp1000(),
                                             stats=stats)
    assert values == {"f:0": 0, "f:1": 1, "f:2": 2}
    assert stats.resilience.retries >= 1
    assert stats.resilience.quarantined_count == 0
