"""Tests for the content-addressed result cache."""

import json
import os

import pytest

from repro.core import spp1000
from repro.exec.cache import CACHE_SCHEMA, ResultCache, default_cache_root
from repro.exec.fingerprint import code_fingerprint
from repro.exec.units import WorkUnit

UNIT = WorkUnit("fig0", "k:1", {"p": 1})


def make_cache(tmp_path, fingerprint="f" * 64):
    return ResultCache(str(tmp_path / "cache"), fingerprint)


def test_put_get_roundtrip(tmp_path):
    cache = make_cache(tmp_path)
    digest = cache.digest(UNIT, spp1000())
    with pytest.raises(KeyError):
        cache.get(digest)
    cache.put(digest, {"v": [1.5, 2]}, UNIT)
    assert cache.get(digest) == {"v": [1.5, 2]}
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert cache.entries() == 1


def test_digest_is_stable_across_instances(tmp_path):
    a = make_cache(tmp_path).digest(UNIT, spp1000())
    b = make_cache(tmp_path).digest(UNIT, spp1000())
    assert a == b
    assert len(a) == 64


def test_digest_depends_on_every_ingredient(tmp_path):
    cache = make_cache(tmp_path)
    base = cache.digest(UNIT, spp1000())
    assert cache.digest(WorkUnit("fig0", "k:1", {"p": 2}),
                        spp1000()) != base
    assert cache.digest(UNIT, spp1000(n_hypernodes=4)) != base
    assert cache.digest(UNIT, spp1000(), seed=7) != base
    other = make_cache(tmp_path, fingerprint="0" * 64)
    assert other.digest(UNIT, spp1000()) != base


def test_digest_depends_on_fault_plan(tmp_path):
    from repro.faults import ring_loss_plan

    cache = make_cache(tmp_path)
    base = cache.digest(UNIT, spp1000())
    with_faults = cache.digest(UNIT, spp1000(),
                               fault_plan=ring_loss_plan(1))
    assert with_faults != base
    assert cache.digest(UNIT, spp1000(),
                        fault_plan=ring_loss_plan(1)) == with_faults


def test_corrupt_entry_reads_as_miss_and_is_removed(tmp_path):
    cache = make_cache(tmp_path)
    digest = cache.digest(UNIT, spp1000())
    cache.put(digest, 1, UNIT)
    path = cache._path(digest)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{truncated")
    with pytest.raises(KeyError):
        cache.get(digest)
    assert not os.path.exists(path)


def test_foreign_schema_entry_is_a_miss(tmp_path):
    cache = make_cache(tmp_path)
    digest = cache.digest(UNIT, spp1000())
    path = cache._path(digest)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"schema": CACHE_SCHEMA + 1, "value": 1}, fh)
    with pytest.raises(KeyError):
        cache.get(digest)


def test_prune_empties_the_store(tmp_path):
    cache = make_cache(tmp_path)
    for i in range(3):
        unit = WorkUnit("fig0", f"k:{i}", {"p": i})
        cache.put(cache.digest(unit, spp1000()), i, unit)
    assert cache.entries() == 3
    assert cache.prune() == 3
    assert cache.entries() == 0


def test_default_cache_root_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert default_cache_root() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
    assert default_cache_root() == os.path.join("/tmp/xdg", "repro")


def test_default_fingerprint_is_code_fingerprint(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    assert cache.fingerprint == code_fingerprint()


def test_fingerprint_changes_with_source(tmp_path, monkeypatch):
    """The code fingerprint covers every .py file under the package."""
    import repro
    from repro.exec import fingerprint as fp

    src_root = os.path.dirname(os.path.abspath(repro.__file__))
    # hash a copy, touch one file, hash again
    import shutil

    copy = tmp_path / "repro"
    shutil.copytree(src_root, copy)
    fp.clear_fingerprint_cache()
    before = fp.code_fingerprint(str(copy))
    with open(copy / "core" / "canon.py", "a", encoding="utf-8") as fh:
        fh.write("\n# touched\n")
    fp.clear_fingerprint_cache()
    after = fp.code_fingerprint(str(copy))
    fp.clear_fingerprint_cache()
    assert before != after


# -- payload-checksum integrity (cache schema v2) ---------------------------

def test_checksum_corruption_quarantined_and_reexecutable(tmp_path):
    """A well-formed entry whose payload fails its checksum is moved to
    quarantine/, counted, and reads as a miss -- never served."""
    from repro.exec.chaos import corrupt_cache_entry

    cache = make_cache(tmp_path)
    digest = cache.digest(UNIT, spp1000())
    cache.put(digest, {"v": 42}, UNIT)
    path = cache._path(digest)
    assert corrupt_cache_entry(path)
    with pytest.raises(KeyError):
        cache.get(digest)
    assert cache.corrupt == 1
    assert cache.quarantined == 1
    assert not os.path.exists(path)              # no longer served
    assert cache.quarantine_entries() == 1       # preserved for autopsy
    qpath = cache._quarantine_path(digest)
    assert json.load(open(qpath))["value"]["__chaos_corrupted__"] is True
    # re-execution stores a fresh verified entry
    cache.put(digest, {"v": 42}, UNIT)
    assert cache.get(digest) == {"v": 42}
    stats = cache.stats()
    assert stats["corrupt"] == 1 and stats["quarantined"] == 1


def test_entries_carry_payload_checksum(tmp_path):
    from repro.exec.cache import value_checksum

    cache = make_cache(tmp_path)
    digest = cache.digest(UNIT, spp1000())
    cache.put(digest, [1, 2.5], UNIT)
    entry = json.load(open(cache._path(digest)))
    assert entry["schema"] == CACHE_SCHEMA == 2
    assert entry["sha256"] == value_checksum([1, 2.5])


def test_v1_entry_without_checksum_is_a_miss(tmp_path):
    cache = make_cache(tmp_path)
    digest = cache.digest(UNIT, spp1000())
    path = cache._path(digest)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"schema": 1, "value": 1}, fh)
    with pytest.raises(KeyError):
        cache.get(digest)
    assert cache.corrupt == 0      # structural, not silent corruption


# -- actionable cache-root validation ---------------------------------------

def test_check_root_rejects_file(tmp_path):
    from repro.exec.cache import CacheRootError

    target = tmp_path / "afile"
    target.write_text("x")
    with pytest.raises(CacheRootError) as excinfo:
        ResultCache(str(target), "f" * 64).check_root()
    message = str(excinfo.value)
    assert str(target) in message
    assert "--cache-dir" in message


def test_check_root_rejects_foreign_directory(tmp_path):
    from repro.exec.cache import CacheRootError

    target = tmp_path / "documents"
    target.mkdir()
    (target / "thesis.txt").write_text("x")
    with pytest.raises(CacheRootError) as excinfo:
        ResultCache(str(target), "f" * 64).check_root()
    message = str(excinfo.value)
    assert "'thesis.txt'" in message
    assert "non-cache files" in message


def test_check_root_accepts_fresh_and_existing_roots(tmp_path):
    cache = make_cache(tmp_path)
    cache.check_root()                       # creates the root
    digest = cache.digest(UNIT, spp1000())
    cache.put(digest, 1, UNIT)
    cache.check_root()                       # existing cache root is fine
    assert os.path.isdir(os.path.join(cache.root, "objects"))


def test_check_root_unwritable_is_actionable(tmp_path, monkeypatch):
    import tempfile as _tempfile

    from repro.exec.cache import CacheRootError

    cache = make_cache(tmp_path)

    def denied(*args, **kwargs):
        raise PermissionError(13, "Permission denied")

    monkeypatch.setattr(_tempfile, "NamedTemporaryFile", denied)
    with pytest.raises(CacheRootError) as excinfo:
        cache.check_root()
    message = str(excinfo.value)
    assert "not writable" in message and "Permission denied" in message
    assert "--no-cache" in message
