"""Tests for the worker pool: ordering, ambients, crash containment."""

import multiprocessing
import os

import pytest

from repro.core import spp1000
from repro.exec.pool import PoolStats, WorkerPool
from repro.exec.units import WorkUnit, register_units

# -- synthetic experiments registered for pool testing ----------------------
# Runners must be module-level so worker processes can resolve them.


def _plan_square(config, quick=False):
    return [WorkUnit("_pool_square", f"sq:{i}", {"i": i}) for i in range(6)]


def _run_square(params, config):
    return params["i"] * params["i"]


def _plan_crashy(config, quick=False):
    return [WorkUnit("_pool_crashy", f"c:{i}", {"i": i}) for i in range(4)]


def _run_crashy(params, config):
    # die hard -- but only inside a worker process, so the in-process
    # retry (and serial runs) succeed
    if params["i"] == 2 and multiprocessing.parent_process() is not None:
        os._exit(13)
    return params["i"]


def _plan_faulty(config, quick=False):
    return [WorkUnit("_pool_faulty", "probe", {})]


def _run_faulty(params, config):
    from repro.faults import active_fault_plan

    plan = active_fault_plan()
    return None if plan is None else plan.to_dict()["events"]


register_units("_pool_square", _plan_square, _run_square)
register_units("_pool_crashy", _plan_crashy, _run_crashy)
register_units("_pool_faulty", _plan_faulty, _run_faulty)


def test_serial_pool_runs_in_plan_order():
    units = _plan_square(None)
    stats = PoolStats(1)
    seen = []
    values = WorkerPool(1).map_units(
        units, spp1000(), stats=stats,
        on_unit=lambda u, v: seen.append(u.key))
    assert list(values) == [u.key for u in units]
    assert values["sq:3"] == 9
    assert seen == [u.key for u in units]
    assert stats.executed == 6
    assert stats.in_workers == 0


def test_parallel_pool_merges_into_plan_order():
    units = _plan_square(None)
    stats = PoolStats(2)
    values = WorkerPool(2).map_units(units, spp1000(), stats=stats)
    assert list(values) == [u.key for u in units]
    assert [values[f"sq:{i}"] for i in range(6)] == [0, 1, 4, 9, 16, 25]
    assert stats.executed == 6


def test_worker_crash_degrades_to_in_process_retry():
    units = _plan_crashy(None)
    stats = PoolStats(2)
    values = WorkerPool(2).map_units(units, spp1000(), stats=stats)
    assert [values[f"c:{i}"] for i in range(4)] == [0, 1, 2, 3]
    assert stats.retried_in_process >= 1


def test_jobs_below_one_rejected():
    with pytest.raises(ValueError):
        WorkerPool(0)


def test_fault_plan_reaches_workers():
    from repro.faults import ring_loss_plan

    plan = ring_loss_plan(1)
    expected = plan.to_dict()["events"]
    for jobs in (1, 2):
        values = WorkerPool(jobs).map_units(
            _plan_faulty(None), spp1000(), fault_plan=plan)
        assert values["probe"] == expected, f"jobs={jobs}"


def test_no_fault_plan_means_clean_workers():
    for jobs in (1, 2):
        values = WorkerPool(jobs).map_units(
            _plan_faulty(None), spp1000())
        assert values["probe"] is None, f"jobs={jobs}"
