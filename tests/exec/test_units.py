"""Tests for work-unit planning and the PointStore protocol."""

import pytest

import repro.experiments  # noqa: F401  (registers every planner)
from repro.core import spp1000
from repro.exec.units import (
    PointStore,
    WorkUnit,
    has_units,
    plan_units,
    register_units,
    run_unit,
    unit_count,
    unit_experiments,
)


def test_every_registered_experiment_plans_unique_keys():
    config = spp1000()
    for exp_id in unit_experiments():
        units = plan_units(exp_id, config)
        assert units, exp_id
        keys = [u.key for u in units]
        assert len(keys) == len(set(keys)), exp_id
        for unit in units:
            assert unit.experiment_id == exp_id


def test_ablations_is_not_unit_aware():
    assert not has_units("ablations")
    assert unit_count("ablations", spp1000()) is None


def test_unit_count_matches_plan():
    config = spp1000()
    assert unit_count("table1", config) == 2
    assert unit_count("fig3", config) == len(plan_units("fig3", config))


def test_plan_units_unknown_experiment_lists_known_ones():
    with pytest.raises(KeyError) as exc:
        plan_units("nope", spp1000())
    assert "fig3" in str(exc.value)


def test_planner_shrinks_with_machine_size():
    # a 1-hypernode machine has 8 CPUs; counts above that are dropped
    full = plan_units("fig3", spp1000())
    small = plan_units("fig3", spp1000(n_hypernodes=1))
    assert len(small) < len(full)


def test_work_unit_is_hashable_on_params_content():
    a = WorkUnit("x", "k", {"p": 1, "q": [1, 2]})
    b = WorkUnit("x", "k", {"q": [1, 2], "p": 1})
    assert hash(a) == hash(b)
    assert a == b


def test_run_unit_computes_point():
    config = spp1000()
    unit = plan_units("table2", config)[0]
    value = run_unit("table2", unit.params, config)
    assert isinstance(value, float) and value > 0


def test_register_units_rejects_duplicates():
    with pytest.raises(ValueError):
        register_units("fig3", lambda config, quick=False: [],
                       lambda params, config: None)


def test_point_store_serves_and_falls_back():
    store = PointStore({"a": 1})
    assert store.point("a", lambda: 99) == 1
    assert store.point("b", lambda: 2) == 2
    assert store.hits == 1
    assert store.computed == 1
    # the fallback value is memoised for subsequent lookups
    assert store.point("b", lambda: 3) == 2


def test_point_store_persists_fallbacks_to_checkpoint(tmp_path):
    from repro.experiments.checkpoint import Checkpoint

    ck = Checkpoint(str(tmp_path / "ck.json"))
    ck.bind("fig3")
    store = PointStore({}, checkpoint=ck)
    store.bind("fig3")
    assert store.point("extra", lambda: 42) == 42
    resumed = Checkpoint(str(tmp_path / "ck.json"), resume=True)
    assert resumed.points["extra"] == 42
