"""The fabric's bit-identity contract.

Acceptance criteria from the execution-fabric issue: every registered
experiment run with ``--jobs 4`` produces byte-identical ``.data`` to
the serial run — including under a fault plan and when resuming a
half-finished checkpoint — and a warm-cache re-run re-simulates
nothing.
"""

import pytest

import repro.experiments  # noqa: F401
from repro.core import spp1000
from repro.core.canon import canonical_json
from repro.exec import ResultCache, execute, unit_experiments
from repro.experiments.checkpoint import Checkpoint

CONFIG = spp1000()

_serial_cache = {}


def serial_data(exp_id):
    """Canonical serial-run .data per experiment, computed once."""
    if exp_id not in _serial_cache:
        result, report = execute(exp_id, CONFIG, jobs=1, quick=True)
        _serial_cache[exp_id] = (canonical_json(result.data), report)
    return _serial_cache[exp_id]


@pytest.mark.parametrize("exp_id", unit_experiments())
def test_jobs4_is_bit_identical_to_serial(exp_id):
    expected, serial_report = serial_data(exp_id)
    result, report = execute(exp_id, CONFIG, jobs=4, quick=True)
    assert canonical_json(result.data) == expected
    assert report.units_planned == serial_report.units_planned
    assert report.fallback_points == serial_report.fallback_points


@pytest.mark.parametrize("exp_id", ["fig3", "table2"])
def test_warm_cache_recomputes_nothing(exp_id, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cold, cold_report = execute(exp_id, CONFIG, jobs=2, quick=True,
                                cache=cache)
    warm, warm_report = execute(exp_id, CONFIG, jobs=2, quick=True,
                                cache=cache)
    assert canonical_json(cold.data) == canonical_json(warm.data)
    assert warm_report.computed == 0
    assert warm_report.cache_hits == warm_report.units_planned
    assert warm_report.cache_misses == 0


def test_parallel_under_fault_plan_is_bit_identical():
    from repro.faults import ring_loss_plan, use_faults

    plan = ring_loss_plan(1)
    with use_faults(plan):
        serial, _ = execute("degraded", CONFIG, jobs=1, quick=True,
                            fault_plan=plan)
        parallel, rep = execute("degraded", CONFIG, jobs=4, quick=True,
                                fault_plan=plan)
    assert canonical_json(serial.data) == canonical_json(parallel.data)
    # the ambient plan shrank the scenario list to clean-vs-plan
    assert serial.data["scenarios"][0] == "0 rings failed"
    assert len(serial.data["scenarios"]) == 2


def test_resume_mid_sweep_is_bit_identical(tmp_path):
    expected, _ = serial_data("fig3")
    # a "killed" run: only the first five points made it to disk
    full = Checkpoint(str(tmp_path / "full.json"))
    _result, _report = execute("fig3", CONFIG, jobs=1, quick=True,
                               checkpoint=full)
    partial_points = dict(list(full.points.items())[:5])
    partial = Checkpoint(str(tmp_path / "ck.json"))
    partial.bind("fig3")
    partial.put_many(partial_points)

    resumed = Checkpoint(str(tmp_path / "ck.json"), resume=True)
    result, report = execute("fig3", CONFIG, jobs=4, quick=True,
                             checkpoint=resumed)
    assert canonical_json(result.data) == expected
    assert report.from_checkpoint == 5
    assert report.computed == report.units_planned - 5


def test_cache_hits_fold_into_checkpoint(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    execute("table1", CONFIG, jobs=1, cache=cache)
    ck = Checkpoint(str(tmp_path / "ck.json"))
    _result, report = execute("table1", CONFIG, jobs=1, cache=cache,
                              checkpoint=ck)
    assert report.cache_hits == report.units_planned
    # a later --resume without the cache skips everything
    resumed = Checkpoint(str(tmp_path / "ck.json"), resume=True)
    _result2, report2 = execute("table1", CONFIG, jobs=1,
                                checkpoint=resumed)
    assert report2.from_checkpoint == report2.units_planned
    assert report2.computed == 0


def test_observed_run_skips_cache_reads_but_writes(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    execute("table1", CONFIG, jobs=1, cache=cache)
    assert cache.entries() == 2
    _result, report = execute("table1", CONFIG, jobs=4, cache=cache,
                              observed=True)
    # observed runs simulate everything in-process, read nothing
    assert report.cache_hits == 0
    assert report.computed == report.units_planned
    assert report.jobs == 4  # requested, but forced serial internally


def test_seed_changes_cache_address_not_result(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    a, ra = execute("table2", CONFIG, jobs=1, cache=cache, seed=1)
    b, rb = execute("table2", CONFIG, jobs=1, cache=cache, seed=2)
    # deterministic simulation: same values, but separately addressed
    assert canonical_json(a.data) == canonical_json(b.data)
    assert rb.cache_hits == 0
    assert cache.entries() == 2 * ra.units_planned


def test_memscope_on_off_is_bit_identical():
    """The profiler's zero-cost contract at experiment granularity."""
    from repro.obs import MemScope, use_memscope

    expected, _ = serial_data("fig6")
    ms = MemScope(CONFIG)
    with use_memscope(ms):
        result, _report = execute("fig6", CONFIG, jobs=1, quick=True,
                                  observed=True)
    assert canonical_json(result.data) == expected
    # the profiler did observe the run (model-attributed phases)
    assert ms.to_dict()["source"] != "empty"


def test_memscope_does_not_move_the_simulated_clock():
    from repro.machine import Machine, MemClass
    from repro.obs import MemScope, use_memscope

    def drive(machine):
        region = machine.alloc(8192, MemClass.NEAR_SHARED,
                               home_hypernode=1)

        def prog():
            for cpu in (0, 1, 8):
                for off in range(0, 8192, 32):
                    yield machine.load(cpu, region.addr(off))
                    yield machine.store(cpu, region.addr(off), off)

        machine.sim.run(until=machine.sim.process(prog()))
        return machine.sim.now

    bare = drive(Machine(CONFIG))
    ms = MemScope(CONFIG)
    with use_memscope(ms):
        profiled = drive(Machine(CONFIG))
    assert profiled == bare
    assert ms.machine_accesses > 0
    assert ms.invalidations > 0
