"""Trace-context propagation through the execution fabric.

Two contracts from the operations-observatory issue: an ambient
:class:`~repro.obs.tracectx.TraceContext` stamps its IDs onto every
progress record and collects per-unit pool spans, and instrumentation
never perturbs results — ``.data`` is bit-identical with and without a
context installed (the zero-cost-when-off discipline).
"""

import json

from repro.core import spp1000
from repro.core.canon import canonical_json
from repro.exec import execute
from repro.exec.progress import ProgressStream
from repro.obs import TraceContext, use_tracectx

CONFIG = spp1000()


def _run_traced(tmp_path, name, ctx=None, jobs=2):
    path = tmp_path / f"{name}.jsonl"
    with ProgressStream(str(path)) as progress:
        if ctx is not None:
            with use_tracectx(ctx):
                result, report = execute("fig3", CONFIG, jobs=jobs,
                                         quick=True, progress=progress)
        else:
            result, report = execute("fig3", CONFIG, jobs=jobs,
                                     quick=True, progress=progress)
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    return result, report, records


def test_ambient_context_stamps_every_progress_record(tmp_path):
    ctx = TraceContext(job_id="j-42", origin="server")
    _, report, records = _run_traced(tmp_path, "traced", ctx)
    assert records, "expected start/unit/done records"
    for record in records:
        assert record["trace_id"] == ctx.trace_id, record
        assert record["job_id"] == "j-42", record
    units = [r for r in records if r["event"] == "unit"]
    assert len(units) == report.units_planned


def test_ambient_context_collects_pool_unit_spans(tmp_path):
    ctx = TraceContext(origin="server")
    _, report, _ = _run_traced(tmp_path, "spans", ctx)
    unit_spans = [s for s in ctx.spans if s.cat == "exec.unit"]
    assert len(unit_spans) == report.units_planned
    assert all(s.origin == "pool" for s in unit_spans)
    assert all(s.t1 >= s.t0 for s in unit_spans)
    assert all(s.name.startswith("unit ") for s in unit_spans)


def test_unit_spans_recorded_even_without_progress_stream():
    ctx = TraceContext(origin="server")
    with use_tracectx(ctx):
        _, report = execute("fig3", CONFIG, jobs=1, quick=True)
    assert len([s for s in ctx.spans if s.cat == "exec.unit"]) \
        == report.units_planned


def test_results_bit_identical_with_and_without_context(tmp_path):
    plain, _, plain_records = _run_traced(tmp_path, "plain", None)
    traced, _, _ = _run_traced(tmp_path, "stamped", TraceContext())
    assert canonical_json(plain.data) == canonical_json(traced.data)
    # and the untraced run's records carry no trace fields at all
    assert all("trace_id" not in r and "job_id" not in r
               for r in plain_records)
