"""The shared event schema: emit-site validation, round-trips, and the
one-schema-everywhere contract (progress JSONL, journal, wire)."""

import json

import pytest

from repro.core import spp1000
from repro.exec import execute
from repro.exec.events import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    EventSchemaError,
    journal_header,
    journal_record,
    make_event,
    validate_event,
)
from repro.exec.progress import ProgressStream

# representative field values for every required field in the tables
_SAMPLES = {
    "experiment": "fig3", "units": 4, "to_compute": 2,
    "from_checkpoint": 0, "cache_hits": 2, "jobs": 1, "key": "u:1",
    "done": 1, "total": 4, "computed": 2, "cache_hit_rate": 0.5,
    "wall_s": 0.1, "attempt": 1, "max_attempts": 3, "where": "worker",
    "error": "boom", "backoff_s": 0.1, "pid": 123, "elapsed_s": 9.0,
    "timeout_s": 5.0, "reason": "x", "attempts": 3, "pass": "warm",
}


def _sample(kind):
    return {f: _SAMPLES[f] for f in EVENT_KINDS[kind]}


def test_every_kind_round_trips():
    for kind in EVENT_KINDS:
        record = make_event(kind, **_sample(kind))
        assert record["event"] == kind
        assert record["schema"] == EVENT_SCHEMA
        # survives JSON (the wire, the progress file, the journal)
        revived = json.loads(json.dumps(record))
        assert validate_event(revived) == kind
        assert revived == record


def test_make_event_rejects_unknown_kind():
    with pytest.raises(EventSchemaError, match="unknown event kind"):
        make_event("frobnicate")


def test_make_event_rejects_missing_fields():
    with pytest.raises(EventSchemaError) as excinfo:
        make_event("retry", key="u:1")
    message = str(excinfo.value)
    assert "retry" in message and "missing" in message


def test_validate_event_rejects_foreign_schema():
    record = make_event("unit", **_sample("unit"))
    record["schema"] = EVENT_SCHEMA + 1
    with pytest.raises(EventSchemaError, match="schema"):
        validate_event(record)


def test_validate_event_allows_extra_fields():
    record = make_event("unit", **_sample("unit"))
    record["t_s"] = 1.25
    record["eta_s"] = None
    assert validate_event(record) == "unit"


def test_validate_event_rejects_non_record():
    with pytest.raises(EventSchemaError):
        validate_event(["not", "a", "record"])
    with pytest.raises(EventSchemaError):
        validate_event({"no_event_field": True})


def test_journal_shapes_are_stable():
    header = journal_header(1, "fig3", "abc123")
    assert header == {"journal": 1, "experiment_id": "fig3",
                      "fingerprint": "abc123"}
    record = journal_record("u:1", {"v": 2}, "deadbeef")
    assert record == {"key": "u:1", "value": {"v": 2},
                      "sha256": "deadbeef"}


def test_progress_stream_emits_schema_stamped_records(tmp_path):
    """An end-to-end sweep's --progress JSONL validates record by
    record against the shared schema — the same records the server
    streams on the wire."""
    path = tmp_path / "progress.jsonl"
    with ProgressStream(str(path)) as stream:
        execute("fig3", spp1000(), quick=True, progress=stream)
    kinds = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        kinds.append(validate_event(record))
        assert record["schema"] == EVENT_SCHEMA
        assert "t_s" in record
    assert kinds[0] == "start"
    assert kinds[-1] == "done"
    assert "unit" in kinds
