"""The crash-safe sweep journal: append, replay, torn-tail tolerance."""

import json

import pytest

from repro.core import spp1000
from repro.exec.journal import JOURNAL_SCHEMA, JournalError, SweepJournal
from repro.exec.pool import WorkerPool
from repro.exec.units import WorkUnit, register_units


def _plan_journal(config, quick=False):
    return [WorkUnit("_journal_sq", f"j:{i}", {"i": i}) for i in range(5)]


def _run_journal(params, config):
    return {"sq": params["i"] ** 2}


register_units("_journal_sq", _plan_journal, _run_journal)


def test_journal_roundtrip(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    journal = SweepJournal(path)
    assert journal.replay("exp") == {}
    journal.open("exp", fingerprint="abc123")
    journal.record("k:1", {"v": 1.5})
    journal.record("k:2", [1, 2, 3])
    journal.close()

    again = SweepJournal(path)
    done = again.replay("exp")
    assert done == {"k:1": {"v": 1.5}, "k:2": [1, 2, 3]}
    assert again.replayed == 2 and again.skipped == 0
    header = json.loads(open(path).readline())
    assert header["journal"] == JOURNAL_SCHEMA
    assert header["experiment_id"] == "exp"
    assert header["fingerprint"] == "abc123"


def test_journal_survives_torn_tail(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    with SweepJournal(path) as journal:
        journal.open("exp")
        journal.record("k:1", 11)
        journal.record("k:2", 22)
    # crash residue: the last append died halfway through the line
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"key": "k:3", "val')

    again = SweepJournal(path)
    done = again.replay("exp")
    assert done == {"k:1": 11, "k:2": 22}
    assert again.skipped == 1


def test_journal_skips_checksum_failed_lines(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    with SweepJournal(path) as journal:
        journal.open("exp")
        journal.record("k:1", 11)
    # a bit-flipped value no longer matches its recorded checksum
    lines = open(path).read().splitlines()
    record = json.loads(lines[1])
    record["value"] = 999
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(lines[0] + "\n" + json.dumps(record) + "\n")

    again = SweepJournal(path)
    assert again.replay("exp") == {}
    assert again.skipped == 1


def test_journal_refuses_other_experiment(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    with SweepJournal(path) as journal:
        journal.open("fig3")
        journal.record("k", 1)
    with pytest.raises(JournalError, match="belongs to experiment"):
        SweepJournal(path).replay("fig7")


def test_journal_refuses_non_journal_file(tmp_path):
    path = tmp_path / "not-a-journal.jsonl"
    path.write_text("just some text\n")
    with pytest.raises(JournalError, match="not a sweep journal"):
        SweepJournal(str(path)).replay("exp")


def test_journal_append_survives_resume(tmp_path):
    """Re-opening an existing journal appends, never truncates."""
    path = str(tmp_path / "sweep.jsonl")
    with SweepJournal(path) as journal:
        journal.open("exp")
        journal.record("k:1", 1)
    second = SweepJournal(path)
    assert second.replay("exp") == {"k:1": 1}
    second.open("exp")
    second.record("k:2", 2)
    second.close()
    assert SweepJournal(path).replay("exp") == {"k:1": 1, "k:2": 2}


def test_journal_records_pool_completions_and_resumes(tmp_path):
    """on_complete journals units as they finish; a 'crashed' sweep
    replays them and re-executes only the incomplete units."""
    path = str(tmp_path / "sweep.jsonl")
    units = _plan_journal(None)
    config = spp1000()

    journal = SweepJournal(path)
    journal.open("_journal_sq")
    WorkerPool(2).map_units(
        units[:3], config,   # "crash" after the first three units
        on_complete=lambda u, v: journal.record(u.key, v))
    journal.close()
    assert journal.recorded == 3

    resumed = SweepJournal(path)
    done = resumed.replay("_journal_sq")
    assert set(done) == {"j:0", "j:1", "j:2"}
    todo = [u for u in units if u.key not in done]
    assert [u.key for u in todo] == ["j:3", "j:4"]
    rest = WorkerPool(1).map_units(todo, config)
    merged = {**done, **rest}
    clean = WorkerPool(1).map_units(units, config)
    assert merged == clean
