"""Tests for the wall-clock benchmark (python -m repro bench)."""

import json

from repro.core import spp1000
from repro.exec.bench import (
    BENCH_SCHEMA,
    render_bench,
    run_bench,
    stale_artifact_warning,
    write_bench,
)


def small_bench():
    return run_bench(spp1000(), jobs=2, quick=True,
                     experiment_ids=["table1", "table2"])


def test_bench_document_shape(tmp_path):
    doc = small_bench()
    assert doc["schema_version"] == BENCH_SCHEMA
    assert doc["jobs"] == 2
    assert doc["quick"] is True
    assert set(doc["experiments"]) == {"table1", "table2"}
    for exp_id, row in doc["experiments"].items():
        assert row["units"] > 0
        assert row["serial_s"] >= 0
        assert row["identical"] is True, exp_id
        assert row["cache_hit_rate"] == 1.0, exp_id
        assert row["units_resimulated_warm"] == 0, exp_id
    totals = doc["totals"]
    assert totals["serial_s"] >= 0
    assert "speedup" in totals and "cached_speedup" in totals

    out = tmp_path / "bench.json"
    write_bench(doc, str(out))
    assert json.loads(out.read_text()) == doc


def test_bench_renders_a_table():
    doc = small_bench()
    text = render_bench(doc)
    assert "Execution trajectory" in text
    assert "table1" in text
    assert "TOTAL" in text
    assert "NO" not in text  # every row bit-identical


def test_committed_bench_artifact_matches_current_schema():
    """The BENCH_exec.json committed at the repo root must be written
    by the current generator — a schema bump without regenerating it
    would ship a stale artifact (CI asserts the same before its own
    bench run)."""
    import os

    root = os.path.join(os.path.dirname(__file__), "..", "..")
    path = os.path.join(root, "BENCH_exec.json")
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == BENCH_SCHEMA, (
        f"committed BENCH_exec.json is schema {doc['schema_version']}, "
        f"the generator writes {BENCH_SCHEMA}; regenerate with: "
        "python -m repro bench --quick --jobs 2 --bench-out "
        "BENCH_exec.json")
    assert doc["generator"] == "repro.exec.bench"


def test_bench_stamps_git_dirty_and_fidelity():
    doc = run_bench(spp1000(), jobs=2, quick=True,
                    experiment_ids=["fig2", "table1"])
    # dirty flag sits next to git_sha; None only when git is unavailable
    assert "git_dirty" in doc
    assert doc["git_dirty"] in (True, False, None)
    # fig2 is golden-anchored, table1 is not; the block only carries
    # experiments with computable anchors
    assert "fidelity" in doc
    assert "table1" not in doc["fidelity"]
    fig2 = doc["fidelity"]["fig2"]
    assert fig2["within_tolerance"] is True
    assert "local_pair_slope_us" in fig2["metrics"]


def test_stale_artifact_warning_none_when_fingerprint_matches():
    from repro.exec.fingerprint import code_fingerprint

    current = code_fingerprint()[:16]  # bench docs store 16 hex chars
    baseline = {"code_fingerprint": current, "git_sha": "a" * 40}
    assert stale_artifact_warning(baseline, "BENCH_exec.json") is None
    # short (prefix) recordings from older writers still count as fresh
    short = {"code_fingerprint": current[:12], "git_sha": "a" * 40}
    assert stale_artifact_warning(short, "BENCH_exec.json") is None
    # no recorded fingerprint at all: nothing to compare, stay silent
    assert stale_artifact_warning({}, "BENCH_exec.json") is None


def test_stale_artifact_warning_names_path_and_remedy():
    baseline = {"code_fingerprint": "f" * 16, "git_sha": "b" * 40}
    msg = stale_artifact_warning(baseline, "benchmarks/OLD.json")
    assert msg is not None
    assert "benchmarks/OLD.json" in msg
    assert "stale" in msg
    assert "regenerate" in msg
    assert "bbbbbbbbbbbb" in msg  # the recorded git sha, shortened
