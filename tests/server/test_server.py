"""Server mechanics: scheduling, rate limits, backpressure, drain."""

import socket
import time
import types

import pytest

from repro.sdk import Client, RateLimited, ServerError
from repro.server import ServerThread
from repro.server.protocol import PROTOCOL_VERSION, decode, encode
from repro.server.server import ClientConnection, TokenBucket


# -- token bucket --------------------------------------------------------


def test_token_bucket_burst_then_refusal():
    bucket = TokenBucket(rate_per_s=0.001, burst=3)
    for _ in range(3):
        ok, retry = bucket.take()
        assert ok and retry == 0.0
    ok, retry = bucket.take()
    assert not ok
    assert retry > 0


def test_token_bucket_refills():
    bucket = TokenBucket(rate_per_s=1000.0, burst=1)
    assert bucket.take()[0]
    assert not bucket.take()[0]
    time.sleep(0.01)
    assert bucket.take()[0]


# -- bounded send buffer / coalescing (deterministic, no sockets) --------


def _bare_connection(limit):
    fake_server = types.SimpleNamespace(rate_per_s=10.0, burst=5,
                                        send_buffer=limit)
    return ClientConnection(fake_server, reader=None, writer=None)


def _unit_event(job, done):
    return {"kind": "event", "job": job,
            "record": {"event": "unit", "schema": 1, "key": f"k{done}",
                       "done": done, "total": 100}}


def test_progress_coalesces_once_buffer_is_full():
    conn = _bare_connection(limit=4)
    for done in range(20):
        conn.push(_unit_event("j1", done))
    assert len(conn._buffer) == 4          # never exceeds the bound
    assert conn.coalesced == 16
    assert conn.max_buffered == 4
    newest = conn._buffer[-1]
    assert newest["record"]["done"] == 19   # latest progress wins
    assert newest["coalesced"] == 16        # and says what it absorbed


def test_coalescing_is_per_job():
    conn = _bare_connection(limit=2)
    conn.push(_unit_event("j1", 0))
    conn.push(_unit_event("j2", 0))
    conn.push(_unit_event("j1", 1))  # coalesces into j1's entry
    conn.push(_unit_event("j2", 1))  # coalesces into j2's entry
    assert len(conn._buffer) == 2
    jobs = {m["job"]: m["record"]["done"] for m in conn._buffer}
    assert jobs == {"j1": 1, "j2": 1}


def test_critical_messages_evict_progress_not_each_other():
    conn = _bare_connection(limit=2)
    conn.push(_unit_event("j1", 0))
    conn.push(_unit_event("j2", 0))
    result = {"kind": "result", "job": "j1", "experiment": "x",
              "data": {}, "execution": {}, "wall_s": 0.1}
    conn.push(result, critical=True)
    assert result in conn._buffer           # terminal message survives
    assert conn.coalesced == 1              # one progress record evicted
    error = {"kind": "error", "error": "x", "detail": "y"}
    conn.push(error, critical=True)
    assert result in conn._buffer and error in conn._buffer


def test_non_progress_overflow_without_progress_to_evict_still_appends():
    conn = _bare_connection(limit=1)
    a = {"kind": "pong"}
    b = {"kind": "pong"}
    conn.push(a, critical=True)
    conn.push(b, critical=True)
    assert list(conn._buffer) == [a, b]  # criticals are never dropped


# -- scheduling ----------------------------------------------------------


def test_priority_ordering():
    srv = ServerThread(workers=0, no_cache=True).start()
    try:
        client = Client(srv.host, srv.port)
        low = client.submit("_srv_stamp", priority=0, seed=1)
        high = client.submit("_srv_stamp", priority=5, seed=2)
        mid = client.submit("_srv_stamp", priority=1, seed=3)

        async def _go():
            srv.server.add_worker()
        srv.call(_go())

        ran_at = {name: job.result().data["ran_at"]
                  for name, job in (("low", low), ("high", high),
                                    ("mid", mid))}
        assert ran_at["high"] < ran_at["mid"] < ran_at["low"]
        client.close()
    finally:
        srv.stop(drain=False)


def test_rate_limit_rejection_is_actionable():
    srv = ServerThread(workers=1, no_cache=True, rate_per_s=0.001,
                       burst=1).start()
    try:
        client = Client(srv.host, srv.port)
        first = client.submit("_srv_stamp")
        with pytest.raises(RateLimited) as excinfo:
            client.submit("_srv_stamp")
        err = excinfo.value
        assert err.error == "rate_limited"
        assert err.retry_after_s > 0
        assert "retry in" in err.detail  # says what to do, not just no
        first.result()  # the accepted job still completes normally
        client.close()
    finally:
        srv.stop(drain=False)


def test_queue_full_rejection():
    srv = ServerThread(workers=0, no_cache=True, max_queue=1).start()
    try:
        client = Client(srv.host, srv.port)
        client.submit("_srv_stamp")
        with pytest.raises(ServerError) as excinfo:
            client.submit("_srv_stamp")
        assert excinfo.value.error == "queue_full"
        client.close()
    finally:
        srv.stop(drain=False)


def test_unknown_experiment_lists_servable_ids():
    srv = ServerThread(workers=0, no_cache=True).start()
    try:
        client = Client(srv.host, srv.port)
        with pytest.raises(ServerError) as excinfo:
            client.submit("nope")
        assert excinfo.value.error == "unknown_experiment"
        assert "fig3" in excinfo.value.detail
        client.close()
    finally:
        srv.stop(drain=False)


# -- raw-protocol behaviour ---------------------------------------------


def _raw_connect(srv):
    sock = socket.create_connection((srv.host, srv.port), timeout=30)
    fh = sock.makefile("rb")
    sock.sendall(encode({"kind": "hello",
                         "protocol": PROTOCOL_VERSION}))
    welcome = decode(fh.readline())
    return sock, fh, welcome


def test_handshake_and_catalog(server):
    sock, fh, welcome = _raw_connect(server)
    assert welcome["kind"] == "welcome"
    assert welcome["protocol"] == PROTOCOL_VERSION
    assert welcome["experiments"]["fig3"]["servable_sweep"] is True
    assert welcome["experiments"]["ablations"]["servable_sweep"] is False
    sock.close()


def test_protocol_mismatch_is_rejected(server):
    sock = socket.create_connection((server.host, server.port),
                                    timeout=30)
    fh = sock.makefile("rb")
    sock.sendall(encode({"kind": "hello", "protocol": 999}))
    reply = decode(fh.readline())
    assert reply["kind"] == "error"
    assert reply["error"] == "protocol_mismatch"
    assert "999" in reply["detail"]
    sock.close()


def test_bad_message_keeps_connection_usable(server):
    sock, fh, _ = _raw_connect(server)
    sock.sendall(b"not json at all\n")
    reply = decode(fh.readline())
    assert reply["kind"] == "error" and reply["error"] == "bad_message"
    sock.sendall(encode({"kind": "ping"}))
    assert decode(fh.readline())["kind"] == "pong"
    sock.close()


def test_cancel_unknown_job_is_actionable(server):
    sock, fh, _ = _raw_connect(server)
    sock.sendall(encode({"kind": "cancel", "job": "j999999"}))
    reply = decode(fh.readline())
    assert reply["error"] == "unknown_job"
    assert "submitter" in reply["detail"]
    sock.close()


# -- graceful drain ------------------------------------------------------


def test_drain_finishes_accepted_jobs_and_says_bye():
    srv = ServerThread(workers=1, no_cache=True).start()
    try:
        client = Client(srv.host, srv.port)
        jobs = [client.submit("_srv_fast", quick=True, seed=i)
                for i in range(3)]
        srv.call(srv.server.shutdown(drain=True), timeout=120)
        # every accepted job still delivered its result before the bye
        results = [job.result() for job in jobs]
        assert all(r.data["vals"] for r in results)
        assert client.closed or _reads_bye(client)
        with pytest.raises(ServerError):
            client.submit("_srv_fast", quick=True)
    finally:
        srv.stop(drain=False)


def _reads_bye(client):
    try:
        client.ping()
    except ServerError:
        pass
    return client.closed


def test_draining_server_rejects_new_submits():
    srv = ServerThread(workers=1, no_cache=True).start()
    try:
        client = Client(srv.host, srv.port)

        async def _set():
            srv.server.draining = True
        srv.call(_set())
        with pytest.raises(ServerError) as excinfo:
            client.submit("_srv_fast", quick=True)
        assert excinfo.value.error == "draining"
        assert "retry" in excinfo.value.detail
        client.close()
    finally:
        srv.stop(drain=False)
