"""Wire-protocol unit tests: NDJSON framing and message validation."""

import json

import pytest

from repro.server.protocol import (
    CLIENT_KINDS,
    PROTOCOL_VERSION,
    SERVER_KINDS,
    ProtocolError,
    decode,
    encode,
    validate_message,
)


def test_encode_is_one_compact_ndjson_line():
    raw = encode({"kind": "ping"})
    assert raw.endswith(b"\n")
    assert raw.count(b"\n") == 1
    assert b" " not in raw  # compact separators


def test_encode_decode_round_trip():
    message = {"kind": "submit", "experiment": "fig3", "quick": True,
               "priority": 3, "telemetry": ["hostscope"]}
    assert decode(encode(message)) == message


def test_decode_rejects_non_json():
    with pytest.raises(ProtocolError, match="not a JSON line"):
        decode(b"this is not json\n")


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError, match="expected a JSON object"):
        decode(b"[1,2,3]\n")


def test_decode_rejects_missing_kind():
    with pytest.raises(ProtocolError, match="no 'kind' field"):
        decode(b'{"experiment":"fig3"}\n')


def test_validate_rejects_unknown_kind():
    with pytest.raises(ProtocolError, match="unknown client message"):
        validate_message({"kind": "frobnicate"}, side="client")


def test_validate_rejects_missing_required_fields():
    with pytest.raises(ProtocolError, match="missing required"):
        validate_message({"kind": "submit"}, side="client")
    with pytest.raises(ProtocolError, match="missing required"):
        validate_message({"kind": "result", "job": "j1"}, side="server")


def test_validate_allows_extra_fields():
    kind = validate_message(
        {"kind": "hello", "protocol": PROTOCOL_VERSION,
         "client": "x", "future_field": 1}, side="client")
    assert kind == "hello"


def test_sides_are_disjoint_tables():
    # a server kind is not accepted from a client, and vice versa
    with pytest.raises(ProtocolError):
        validate_message({"kind": "result"}, side="client")
    with pytest.raises(ProtocolError):
        validate_message({"kind": "submit", "experiment": "fig3"},
                         side="server")


def test_every_kind_table_entry_is_spellable():
    for kind, fields in {**CLIENT_KINDS, **SERVER_KINDS}.items():
        message = {"kind": kind}
        message.update({f: None for f in fields})
        side = "client" if kind in CLIENT_KINDS else "server"
        assert validate_message(message, side=side) == kind
        # and survives the wire
        assert decode(encode(message)) == json.loads(
            encode(message).decode())
