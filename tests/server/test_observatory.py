"""The operations observatory end to end: stats verb, trace
propagation, the merged Chrome trace, the Prometheus endpoint, the
coalesced counter on the Job handle, and structured logging."""

import json
import urllib.request

import pytest

from repro.sdk import AsyncClient, Client
from repro.server import ServerThread, StructuredLog
from repro.server.metricshttp import CONTENT_TYPE


# -- the stats verb -------------------------------------------------------


def test_stats_verb_returns_service_state(server):
    with Client(server.host, server.port) as client:
        job = client.submit("_srv_fast", quick=True)
        job.result()
        stats = client.stats()
    assert stats["jobs"].get("done", 0) >= 1
    assert stats["connections"] >= 1
    assert stats["uptime_s"] >= 0
    assert stats["queue_depth"] == 0
    assert stats["workers"]["total"] == 2
    recent = stats["recent_jobs"]
    assert recent and recent[-1]["id"] == job.id
    assert recent[-1]["status"] == "done"
    assert recent[-1]["trace_id"] == job.trace_id
    assert recent[-1]["wall_s"] is not None
    metrics = stats["metrics"]
    submitted = metrics["repro_jobs_submitted_total"]["series"]
    assert any(row["labels"] == {"experiment": "_srv_fast"}
               and row["value"] >= 1 for row in submitted)
    latency = metrics["repro_job_latency_seconds"]["series"]
    assert any(row["count"] >= 1 for row in latency)


def test_stats_verb_on_async_client(server):
    import asyncio

    async def scenario():
        client = await AsyncClient.connect(server.host, server.port)
        try:
            job = await client.submit("_srv_fast", quick=True)
            await job.result()
            return await client.stats(), job.trace_id
        finally:
            await client.close()

    stats, trace_id = asyncio.run(scenario())
    assert stats["jobs"].get("done", 0) >= 1
    assert any(row["trace_id"] == trace_id
               for row in stats["recent_jobs"])


# -- trace propagation ----------------------------------------------------


def test_client_minted_trace_id_reaches_every_leg(server):
    with Client(server.host, server.port) as client:
        job = client.submit("_srv_fast", quick=True)
        assert job.trace_id  # minted at submit, before any event
        records = list(job.events())
        result = job.result()
    # every streamed progress record carries the submit's trace ID
    units = [r for r in records if r.get("event") == "unit"]
    assert units
    for record in units:
        assert record["trace_id"] == job.trace_id
        assert record["job_id"] == job.id
    # the result message carries identity + the server's host spans
    assert result.trace == {"trace_id": job.trace_id, "job_id": job.id}
    origins = {s["origin"] for s in result.host_spans}
    assert {"server", "pool"} <= origins
    names = [s["name"] for s in result.host_spans]
    assert "queued" in names and "run" in names


def test_write_trace_merges_client_server_pool_and_sim(server, tmp_path):
    with Client(server.host, server.port) as client:
        job = client.submit("fig3", quick=True, telemetry=("trace",))
        job.result()
        path = job.write_trace(str(tmp_path / "trace.json"))
    doc = json.loads((tmp_path / "trace.json").read_text())
    assert path == str(tmp_path / "trace.json")
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") != "M"]
    host_pids = {e["pid"] for e in spans if e["pid"] < 10}
    assert host_pids == {0, 1, 2}  # client, server, pool all present
    # simulated spans (B/E pairs from the sim tracer) rode along
    assert any(e["pid"] >= 10 for e in spans)
    # one trace ID on every single span, host and simulated alike
    assert all(e["args"].get("trace_id") == job.trace_id for e in spans)
    assert doc["otherData"]["trace_id"] == job.trace_id
    process_names = {e["args"]["name"] for e in events
                     if e.get("ph") == "M" and e["name"] == "process_name"}
    assert {"host: client", "host: server", "host: pool"} <= process_names
    assert any(name.startswith("sim: ") for name in process_names)


def test_write_trace_before_result_is_actionable(server, tmp_path):
    from repro.sdk import ServerError

    with Client(server.host, server.port) as client:
        job = client.submit("_srv_fast", quick=True)
        with pytest.raises(ServerError, match="no result yet"):
            job.write_trace(str(tmp_path / "early.json"))
        job.result()


# -- the Prometheus endpoint ----------------------------------------------


@pytest.fixture
def metrics_server(tmp_path):
    srv = ServerThread(workers=2, cache_dir=str(tmp_path / "cache"),
                       metrics_port=0).start()
    yield srv
    srv.stop(drain=False)


def _scrape(srv, path="/metrics"):
    port = srv.server.metrics_port
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


def test_metrics_endpoint_serves_prometheus_text(metrics_server):
    with Client(metrics_server.host, metrics_server.port) as client:
        client.submit("_srv_fast", quick=True).result()
    status, ctype, body = _scrape(metrics_server)
    assert status == 200
    assert ctype == CONTENT_TYPE
    assert "# TYPE repro_jobs_submitted_total counter" in body
    assert 'repro_jobs_submitted_total{experiment="_srv_fast"} 1' in body
    assert 'repro_jobs_completed_total{experiment="_srv_fast",' \
           'status="done"} 1' in body
    # fabric counters folded from the execution report
    assert "repro_units_computed_total 6" in body
    assert "repro_cache_misses_total 6" in body
    # histogram with cumulative buckets present
    assert 'repro_job_latency_seconds_bucket{experiment="_srv_fast",' \
           'le="+Inf"} 1' in body
    assert "repro_job_latency_seconds_count" in body


def test_metrics_endpoint_healthz_and_404(metrics_server):
    status, _, body = _scrape(metrics_server, "/healthz")
    assert (status, body.strip()) == (200, "ok")
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _scrape(metrics_server, "/nope")
    assert exc_info.value.code == 404


# -- coalescing on the Job handle -----------------------------------------


def test_job_coalesced_counter_surfaces(server):
    with Client(server.host, server.port) as client:
        job = client.submit("_srv_fast", quick=True)
        job.result()
    assert isinstance(job.coalesced, int)
    assert job.coalesced >= 0


# -- structured logging ---------------------------------------------------


def test_structured_log_lines_carry_trace_and_job_ids(tmp_path):
    log_path = tmp_path / "server.log"
    log = StructuredLog(str(log_path))
    srv = ServerThread(workers=1, no_cache=True, log=log).start()
    try:
        with Client(srv.host, srv.port) as client:
            job = client.submit("_srv_fast", quick=True)
            job.result()
    finally:
        srv.stop(drain=False)
        log.close()
    lines = [json.loads(line)
             for line in log_path.read_text().splitlines()]
    events = [line["event"] for line in lines]
    for expected in ("listening", "connect", "job_submitted",
                     "job_started", "job_done", "stopped"):
        assert expected in events, events
    for line in lines:
        assert "ts" in line
        if line["event"] in ("job_submitted", "job_started", "job_done"):
            assert line["job_id"] == job.id
            assert line["trace_id"] == job.trace_id
    done = next(line for line in lines if line["event"] == "job_done")
    assert done["experiment"] == "_srv_fast"
    assert done["wall_s"] >= 0


# -- the longitudinal ledger ----------------------------------------------


def test_ledger_attached_server_appends_lifetime_record(tmp_path):
    """A --ledger server leaves the same longitudinal trace a bench run
    does: one server-kind record at drain, gauges on the registry."""
    from repro.obs.ledger import Ledger

    ledger_path = tmp_path / "LEDGER.jsonl"
    srv = ServerThread(workers=1, cache_dir=str(tmp_path / "cache"),
                       ledger_path=str(ledger_path)).start()
    try:
        stats = srv.call(_stats_coro(srv))
        assert stats["ledger"] == {"path": str(ledger_path),
                                   "records": 0, "skipped": 0}
        snapshot = stats["metrics"]
        assert "repro_ledger_records" in snapshot
        assert "repro_ledger_skipped_lines" in snapshot
        with Client(srv.host, srv.port) as client:
            client.submit("_srv_fast", quick=True).result()
    finally:
        srv.stop(drain=True)

    records, skipped = Ledger(str(ledger_path)).read()
    assert skipped == 0
    assert len(records) == 1
    rec = records[0]
    assert rec["kind"] == "server"
    assert rec["jobs"]["done"] == 1
    latency = rec["job_latency"]["_srv_fast"]
    assert latency["count"] == 1
    assert latency["sum_s"] >= 0
    assert rec["fabric"]["units_computed"] >= 1


def test_ledger_gauges_reflect_existing_records(tmp_path):
    from repro.obs.ledger import Ledger, fold_document

    ledger_path = tmp_path / "LEDGER.jsonl"
    doc = {"schema_version": 2, "generator": "repro.exec.bench",
           "git_sha": None, "code_fingerprint": "ab" * 8,
           "host": {"calibration_miters_s": 10.0},
           "experiments": {"fig2": {"serial_s": 0.5}},
           "totals": {"serial_s": 0.5}}
    Ledger(str(ledger_path)).append(fold_document(doc))
    with open(ledger_path, "a", encoding="utf-8") as fh:
        fh.write('{"torn')  # a torn tail the gauges must count

    srv = ServerThread(workers=1, cache_dir=str(tmp_path / "cache"),
                       ledger_path=str(ledger_path)).start()
    try:
        stats = srv.call(_stats_coro(srv))
        assert stats["ledger"]["records"] == 1
        assert stats["ledger"]["skipped"] == 1
        snapshot = stats["metrics"]
        assert _gauge_value(snapshot["repro_ledger_records"]) == 1
        assert _gauge_value(snapshot["repro_ledger_skipped_lines"]) == 1
    finally:
        srv.stop(drain=False)


def test_server_without_ledger_reports_none_and_writes_nothing(
        server, tmp_path):
    stats = server.call(_stats_coro(server))
    assert stats["ledger"] is None
    assert not list(tmp_path.glob("*.jsonl"))


async def _stats_async(srv):
    return srv.server.stats()


def _stats_coro(srv):
    return _stats_async(srv)


def _gauge_value(metric_doc):
    return metric_doc["series"][0]["value"]
