"""SDK end-to-end tests: concurrency, bit-identity, warm cache,
cancellation, backpressure, and the asyncio client."""

import asyncio
import socket
import threading
import time

import pytest

from repro.core import spp1000
from repro.core.canon import canonical_json
from repro.exec import execute
from repro.exec.events import validate_event
from repro.sdk import (
    AsyncClient,
    Client,
    JobCancelledError,
)
from repro.server import ServerThread
from repro.server.protocol import PROTOCOL_VERSION, decode, encode

from .conftest import MANY_N


# -- the headline contract: N concurrent clients, bit-identical ----------


def _serial_reference(experiment, quick):
    """What the one-shot CLI would compute: execute() with no cache."""
    result, _report = execute(experiment, spp1000(), jobs=1, quick=quick)
    return canonical_json(result.data)


def test_eight_concurrent_clients_bit_identical(server):
    mix = [("_srv_fast", True), ("_srv_fast", False), ("fig3", True)]
    expected = {(exp, quick): _serial_reference(exp, quick)
                for exp, quick in set(mix)}
    outcomes = {}
    errors = []

    def one_client(idx):
        exp, quick = mix[idx % len(mix)]
        try:
            client = Client(server.host, server.port)
            job = client.submit(exp, quick=quick)
            seen = [record for record in job.events()]
            result = job.result()
            for record in seen:
                validate_event(record)  # shared schema on the wire
            outcomes[idx] = (exp, quick, canonical_json(result.data))
            client.close()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((idx, exc))

    threads = [threading.Thread(target=one_client, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert not errors, errors
    assert len(outcomes) == 8
    for exp, quick, payload in outcomes.values():
        assert payload == expected[(exp, quick)]


# -- warm cache ----------------------------------------------------------


def test_warm_cache_resubmit_is_instant_and_identical(server):
    client = Client(server.host, server.port)
    cold = client.submit("_srv_slow").result()
    assert cold.execution["computed"] > 0
    warm = client.submit("_srv_slow").result()
    assert warm.execution["computed"] == 0        # nothing re-simulated
    assert warm.execution["cache_hits"] == cold.execution["computed"]
    assert canonical_json(warm.data) == canonical_json(cold.data)
    assert warm.wall_s * 10 <= cold.wall_s        # >= 10x faster
    client.close()


# -- streaming telemetry -------------------------------------------------


def test_event_stream_matches_progress_schema(server):
    client = Client(server.host, server.port)
    job = client.submit("_srv_fast", quick=True)
    kinds = []
    for record in job.events():
        kinds.append(validate_event(record))
        assert "t_s" in record
    result = job.result()
    assert kinds[0] == "start"
    assert kinds[-1] == "done"
    assert kinds.count("unit") + result.execution["cache_hits"] >= 6
    client.close()


def test_telemetry_blocks_ride_along(server):
    client = Client(server.host, server.port)
    result = client.submit("_srv_fast", quick=True,
                           telemetry=("hostscope",)).result()
    assert "hostscope" in result.blocks
    assert result.manifest is not None
    client.close()


# -- cancellation --------------------------------------------------------


def test_cancel_running_job_stops_at_unit_boundary(server):
    client = Client(server.host, server.port)
    job = client.submit("_srv_slow")
    events = job.events()
    next(events)              # start record: the sweep is running
    job.cancel()
    with pytest.raises(JobCancelledError, match="running"):
        job.result()
    # the connection and server stay healthy afterwards
    follow_up = client.submit("_srv_fast", quick=True).result()
    assert follow_up.data["vals"]
    client.close()


def test_cancel_queued_job_is_instant():
    srv = ServerThread(workers=0, no_cache=True).start()
    try:
        client = Client(srv.host, srv.port)
        job = client.submit("_srv_fast", quick=True)
        job.cancel()
        with pytest.raises(JobCancelledError, match="queue"):
            job.result()
        client.close()
    finally:
        srv.stop(drain=False)


# -- backpressure (integration) -----------------------------------------


def test_slow_consumer_is_coalesced_not_buffered():
    """A client that stops reading must not grow server memory: the
    outbound buffer stays bounded and progress records coalesce."""
    srv = ServerThread(workers=1, no_cache=True, send_buffer=8).start()
    try:
        sock = socket.create_connection((srv.host, srv.port),
                                        timeout=120)
        # a tiny receive window so the server's writer blocks early
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        fh = sock.makefile("rb")
        sock.sendall(encode({"kind": "hello",
                             "protocol": PROTOCOL_VERSION}))
        assert decode(fh.readline())["kind"] == "welcome"
        sock.sendall(encode({"kind": "submit",
                             "experiment": "_srv_many"}))
        # ... and now read NOTHING until the sweep has finished
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            stats = srv.call(_stats(srv))
            jobs = stats["jobs"]
            if jobs.get("done") or jobs.get("failed"):
                break
            time.sleep(0.05)
        stats = srv.call(_stats(srv))
        assert stats["jobs"].get("done") == 1, stats
        assert stats["max_buffered"] <= 8, stats
        assert stats["coalesced"] > 0, stats
        # the stalled client can still drain to the terminal result
        kinds = []
        while True:
            message = decode(fh.readline())
            kinds.append(message["kind"])
            if message["kind"] == "result":
                assert message["data"]["total"] == \
                    sum(range(MANY_N))
                break
        # far fewer than one event per unit made it through: the rest
        # were coalesced server-side (what reached the TCP buffers
        # before the writer blocked still arrives, hence "far fewer",
        # not "exactly the buffer bound")
        assert kinds.count("event") + stats["coalesced"] >= MANY_N
        assert kinds.count("event") < MANY_N // 2
        sock.close()
    finally:
        srv.stop(drain=False)


async def _stats_async(server):
    return server.stats()


def _stats(srv):
    return _stats_async(srv.server)


# -- asyncio client ------------------------------------------------------


def test_async_client_round_trip(server):
    async def go():
        client = await AsyncClient.connect(server.host, server.port)
        assert "fig3" in client.experiments
        job = await client.submit("_srv_fast", quick=True)
        kinds = []
        async for record in job.events():
            kinds.append(validate_event(record))
        result = await job.result()
        assert kinds[0] == "start" and kinds[-1] == "done"
        catalog = await client.list()
        assert catalog["_srv_fast"]["servable_sweep"] is True
        await client.ping()
        await client.close()
        return result

    result = asyncio.run(go())
    assert canonical_json(result.data) == _serial_reference(
        "_srv_fast", True)


def test_async_client_interleaves_two_jobs(server):
    async def go():
        client = await AsyncClient.connect(server.host, server.port)
        a = await client.submit("_srv_fast", quick=True)
        b = await client.submit("_srv_fast", quick=False)
        ra, rb = await asyncio.gather(a.result(), b.result())
        await client.close()
        return ra, rb

    ra, rb = asyncio.run(go())
    assert len(ra.data["vals"]) == 6
    assert len(rb.data["vals"]) == 12
