"""Synthetic experiments + fixtures for the repro.server test suite.

The synthetic experiments are registered at module level (module-level
functions so ``--jobs N`` workers could resolve them) under ``_``
prefixes, which keeps them out of ``unit_experiments()``.  Each one is
registered BOTH as a unit planner (``register_units``) and as an
experiment (``@register``) because the fabric's assemble step looks the
experiment up by id.
"""

import time

import pytest

from repro.exec.units import WorkUnit, register_units
from repro.experiments.base import ExperimentResult, register
from repro.server import ServerThread

# -- _srv_fast: deterministic, cheap; bit-identity + concurrency ---------

FAST_N = {True: 6, False: 12}


def _plan_fast(config, quick=False):
    return [WorkUnit("_srv_fast", f"f:{i}", {"i": i})
            for i in range(FAST_N[quick])]


def _run_fast(params, config):
    i = params["i"]
    return {"i": i, "value": i * i + 7 * i + config.n_hypernodes}


def _assemble_fast(config=None, quick=False, checkpoint=None):
    vals = [checkpoint.point(f"f:{i}",
                             lambda i=i: _run_fast({"i": i}, config))
            for i in range(FAST_N[quick])]
    return ExperimentResult(experiment_id="_srv_fast",
                            title="synthetic fast sweep",
                            data={"vals": vals})


# -- _srv_slow: 0.05s per unit; cancellation at a unit boundary ----------

SLOW_N = 60


def _plan_slow(config, quick=False):
    return [WorkUnit("_srv_slow", f"s:{i}", {"i": i})
            for i in range(SLOW_N)]


def _run_slow(params, config):
    time.sleep(0.05)
    return {"i": params["i"]}


def _assemble_slow(config=None, quick=False, checkpoint=None):
    vals = [checkpoint.point(f"s:{i}",
                             lambda i=i: _run_slow({"i": i}, config))
            for i in range(SLOW_N)]
    return ExperimentResult(experiment_id="_srv_slow",
                            title="synthetic slow sweep",
                            data={"vals": vals})


# -- _srv_many: 2000 trivial units; backpressure/coalescing --------------

MANY_N = 2000


def _plan_many(config, quick=False):
    return [WorkUnit("_srv_many", f"m:{i}", {"i": i})
            for i in range(MANY_N)]


def _run_many(params, config):
    return params["i"]


def _assemble_many(config=None, quick=False, checkpoint=None):
    vals = [checkpoint.point(f"m:{i}",
                             lambda i=i: _run_many({"i": i}, config))
            for i in range(MANY_N)]
    return ExperimentResult(experiment_id="_srv_many",
                            title="synthetic many-unit sweep",
                            data={"total": sum(vals)})


# -- _srv_stamp: returns wall-clock stamps; priority-order probes --------


def _plan_stamp(config, quick=False):
    return [WorkUnit("_srv_stamp", "t:0", {"i": 0})]


def _run_stamp(params, config):
    time.sleep(0.02)
    return {"ran_at": time.monotonic()}


def _assemble_stamp(config=None, quick=False, checkpoint=None):
    val = checkpoint.point("t:0", lambda: _run_stamp({"i": 0}, config))
    return ExperimentResult(experiment_id="_srv_stamp",
                            title="synthetic run-order stamp",
                            data=val)


def _register_all():
    register_units("_srv_fast", _plan_fast, _run_fast)
    register("_srv_fast", "synthetic fast sweep")(_assemble_fast)
    register_units("_srv_slow", _plan_slow, _run_slow)
    register("_srv_slow", "synthetic slow sweep")(_assemble_slow)
    register_units("_srv_many", _plan_many, _run_many)
    register("_srv_many", "synthetic many-unit sweep")(_assemble_many)
    register_units("_srv_stamp", _plan_stamp, _run_stamp)
    register("_srv_stamp", "synthetic run-order stamp")(_assemble_stamp)


try:
    _register_all()
except ValueError:
    pass  # already registered by a prior conftest import in this process


# -- fixtures ------------------------------------------------------------


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


@pytest.fixture
def server(cache_dir):
    """A running server on a background thread with a private cache."""
    srv = ServerThread(workers=2, cache_dir=cache_dir).start()
    yield srv
    srv.stop(drain=False)


@pytest.fixture
def uncached_server():
    """A cache-less server (every job runs cold; no digest overlap)."""
    srv = ServerThread(workers=1, no_cache=True).start()
    yield srv
    srv.stop(drain=False)
