"""CLI tests for memscope, trace-file errors, and bench --compare."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("repro-cache")))


# ---------------------------------------------------------------------------
# python -m repro memscope <experiment>
# ---------------------------------------------------------------------------

def memscope_json(capsys, *argv):
    assert main(["memscope", *argv, "--json", "--quick"]) == 0
    return json.loads(capsys.readouterr().out)


def test_memscope_fig6_remote_fraction_rises_with_hypernodes(capsys):
    doc2 = memscope_json(capsys, "fig6_pic", "--hypernodes", "2")
    doc4 = memscope_json(capsys, "fig6_pic", "--hypernodes", "4")
    assert doc2["experiment"] == "fig6"
    assert doc2["n_hypernodes"] == 2 and doc4["n_hypernodes"] == 4
    f2 = doc2["breakdown"]["remote_fraction"]
    f4 = doc4["breakdown"]["remote_fraction"]
    assert 0.0 < f2 < f4, (f2, f4)
    # model-level experiment: the perfmodel attributed its phases too
    assert doc2["model"]["phases"]


def test_memscope_accepts_registered_id_and_module_stem(capsys):
    doc_by_stem = memscope_json(capsys, "fig6_pic")
    doc_by_id = memscope_json(capsys, "fig6")
    assert doc_by_stem["experiment"] == doc_by_id["experiment"] == "fig6"


def test_memscope_machine_experiment_renders_tables(capsys):
    assert main(["memscope", "fig3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "miss-class breakdown" in out
    assert "source: machine" in out
    assert "ring occupancy" in out


def test_memscope_unknown_experiment(capsys):
    assert main(["memscope", "not-an-experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_memscope_without_experiment_or_trace(capsys):
    assert main(["memscope"]) == 2
    err = capsys.readouterr().err
    assert "experiment id" in err and "--trace" in err


def test_memscope_sample_must_be_positive(capsys):
    assert main(["memscope", "fig3", "--memscope-sample", "0"]) == 2
    assert "--memscope-sample" in capsys.readouterr().err


def test_bare_invocation_names_the_commands(capsys):
    assert main([]) == 2
    err = capsys.readouterr().err
    assert "memscope" in err and "bench" in err


# ---------------------------------------------------------------------------
# satellite 1: actionable errors for bad trace files, both commands
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("command", ["timeline", "memscope"])
def test_missing_trace_file_names_the_path(command, tmp_path, capsys):
    path = tmp_path / "nope.json"
    assert main([command, "--trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert "cannot read trace file" in err
    assert str(path) in err
    assert "Traceback" not in err


@pytest.mark.parametrize("command", ["timeline", "memscope"])
def test_corrupt_trace_file_names_the_path(command, tmp_path, capsys):
    path = tmp_path / "corrupt.json"
    path.write_text("{not json")
    assert main([command, "--trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert "cannot parse trace file" in err
    assert str(path) in err
    assert "expected a Chrome trace" in err


@pytest.mark.parametrize("command", ["timeline", "memscope"])
def test_empty_trace_file_names_the_path(command, tmp_path, capsys):
    path = tmp_path / "empty.json"
    path.write_text('{"traceEvents": []}')
    assert main([command, "--trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert "contains no events" in err
    assert str(path) in err
    assert "--trace" in err          # tells the user how to capture one


def test_memscope_from_captured_trace(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["fig3", "--quick", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["memscope", "--trace", str(trace), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["source"] == "trace"
    assert doc["breakdown"]["total_accesses"] > 0


# ---------------------------------------------------------------------------
# --memscope on a normal run folds into the manifest
# ---------------------------------------------------------------------------

def test_memscope_flag_folds_block_into_manifest(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    assert main(["fig3", "--quick", "--memscope",
                 "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "memscope: fig3" in out
    manifest = json.loads(metrics.read_text())
    block = manifest["memscope"]
    # satellite 6: hits are counted, never silently zero
    assert block["breakdown"]["hits"] > 0
    assert block["breakdown"]["total_accesses"] > block["breakdown"]["hits"]
    prov = manifest["provenance"]
    assert prov["created_utc"] and prov["code_fingerprint"]


def test_parser_has_memscope_and_compare_flags():
    from repro.cli import build_parser

    text = build_parser().format_help()
    for flag in ("--memscope", "--memscope-sample", "--json", "--top",
                 "--compare", "--bench-diff-out"):
        assert flag in text, f"missing {flag}"


# ---------------------------------------------------------------------------
# bench --compare: the acceptance fixtures
# ---------------------------------------------------------------------------

def run_quick_bench(tmp_path, capsys, *extra):
    out = tmp_path / "B.json"
    code = main(["bench", "--quick", "--bench-experiments", "fig2",
                 "--bench-out", str(out), *extra])
    return code, out, capsys.readouterr()


def test_bench_self_compare_exits_zero(tmp_path, capsys):
    out = tmp_path / "B.json"
    code = main(["bench", "--quick", "--bench-experiments", "fig2",
                 "--bench-out", str(out), "--compare", str(out)])
    captured = capsys.readouterr()
    assert code == 0, captured.err
    assert "no serial-path regressions" in captured.out


def test_bench_compare_flags_2x_slowdown(tmp_path, capsys):
    code, out, _ = run_quick_bench(tmp_path, capsys)
    assert code == 0
    doc = json.loads(out.read_text())
    # fabricate a baseline claiming we used to be twice as fast
    baseline = tmp_path / "baseline.json"
    doctored = json.loads(out.read_text())
    for row in doctored["experiments"].values():
        row["serial_s"] = max(row["serial_s"] / 2, 0.05)
    baseline.write_text(json.dumps(doctored))
    diff_md = tmp_path / "diff.md"
    code = main(["bench", "--quick", "--bench-experiments", "fig2",
                 "--bench-out", str(out), "--compare", str(baseline),
                 "--bench-diff-out", str(diff_md)])
    captured = capsys.readouterr()
    assert code == 1, captured.out
    assert "REGRESSION" in captured.out
    md = diff_md.read_text()
    assert "**FAIL**" in md and "**REGRESSION**" in md


def test_bench_compare_missing_baseline(tmp_path, capsys):
    code, _, captured = run_quick_bench(
        tmp_path, capsys, "--compare", str(tmp_path / "nope.json"))
    assert code == 2
    assert "cannot read bench baseline" in captured.err


def test_bench_compare_corrupt_baseline(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    code, _, captured = run_quick_bench(tmp_path, capsys,
                                        "--compare", str(bad))
    assert code == 2
    assert "cannot parse bench baseline" in captured.err


def test_bench_diff_tool_script(tmp_path, capsys):
    import os
    import subprocess
    import sys

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = os.path.join(root, "tools", "bench_diff.py")
    baseline = os.path.join(root, "benchmarks", "BENCH_baseline.json")
    out = subprocess.run(
        [sys.executable, script, baseline, baseline,
         "-o", str(tmp_path / "d.md")],
        capture_output=True, text=True)
    assert out.returncode == 0, out.stderr
    assert "no serial-path regressions" in out.stdout
    assert (tmp_path / "d.md").read_text().startswith(
        "# Bench regression report")
