"""Tests for table/series rendering."""

import pytest

from repro.core import Series, Table, render_series


def test_table_renders_title_headers_rows():
    t = Table("Demo", ["p", "time"])
    t.add_row(1, 10.0)
    t.add_row(16, 2.5)
    out = t.render()
    assert "Demo" in out
    assert "p" in out and "time" in out
    assert "10.00" in out and "2.50" in out


def test_table_rejects_wrong_arity():
    t = Table("x", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_series_requires_matching_lengths():
    with pytest.raises(ValueError):
        Series("s", [1, 2], [1.0])


def test_render_series_merges_on_x():
    s1 = Series("local", [1, 2, 4], [30.0, 30.0, 31.0])
    s2 = Series("global", [2, 4], [70.0, 71.0])
    out = render_series("Fig", [s1, s2], x_name="threads")
    assert "local" in out and "global" in out
    lines = out.splitlines()
    # x=1 row exists with '-' for the missing global value
    row1 = next(l for l in lines if l.strip().startswith("1 "))
    assert "-" in row1
