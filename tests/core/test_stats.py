"""Tests for the measurement methodology."""

import pytest
from hypothesis import given, strategies as st

from repro.core import corrected, summarize


def test_corrected_subtracts_timer_cost():
    assert corrected(1000.0, 2, 100.0) == 800.0


def test_corrected_clamps_at_zero():
    assert corrected(100.0, 5, 100.0) == 0.0


def test_corrected_rejects_negative_count():
    with pytest.raises(ValueError):
        corrected(100.0, -1, 10.0)


def test_summarize_basic():
    m = summarize([3.0, 1.0, 2.0])
    assert m.minimum == 1.0
    assert m.maximum == 3.0
    assert m.mean == 2.0
    assert m.n == 3


def test_summarize_single_sample_has_zero_stdev():
    m = summarize([5.0])
    assert m.stdev == 0.0
    assert m.minimum == m.mean == m.maximum == 5.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


@given(st.lists(st.floats(0, 1e9), min_size=1, max_size=50))
def test_summary_invariants(xs):
    m = summarize(xs)
    tol = 1e-9 * max(1.0, m.maximum)  # float summation rounding
    assert m.minimum <= m.mean + tol
    assert m.mean <= m.maximum + tol
    assert m.stdev >= 0.0
    assert m.n == len(xs)
