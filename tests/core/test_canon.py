"""Tests for canonical serialization and hashing (repro.core.canon)."""

import dataclasses
import enum

import numpy as np
import pytest

from repro.core import spp1000
from repro.core.canon import (
    canonical,
    canonical_json,
    config_dict,
    stable_hash,
)


class Colour(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclasses.dataclass(frozen=True)
class Inner:
    x: int
    tags: tuple


def test_scalars_pass_through():
    assert canonical(3) == 3
    assert canonical(2.5) == 2.5
    assert canonical("s") == "s"
    assert canonical(True) is True
    assert canonical(None) is None


def test_dataclass_becomes_field_dict():
    assert canonical(Inner(1, ("a", "b"))) == {"x": 1, "tags": ["a", "b"]}


def test_enum_becomes_value():
    assert canonical(Colour.RED) == "red"
    assert canonical({"c": Colour.BLUE}) == {"c": "blue"}


def test_sets_are_order_independent():
    assert canonical_json({"s": {3, 1, 2}}) == canonical_json({"s": {2, 3, 1}})


def test_dict_key_order_does_not_matter():
    assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})


def test_numpy_values_become_plain():
    assert canonical(np.int64(7)) == 7
    assert canonical(np.array([1.0, 2.0])) == [1.0, 2.0]


def test_canonical_json_is_compact_ascii():
    s = canonical_json({"b": [1, 2], "a": "x"})
    assert s == '{"a":"x","b":[1,2]}'


def test_unserializable_object_is_rejected_loudly():
    with pytest.raises(TypeError) as exc:
        canonical(object())
    assert "canonicalise" in str(exc.value)


def test_machine_config_roundtrip_is_stable():
    a = config_dict(spp1000())
    b = config_dict(spp1000())
    assert a == b
    assert canonical_json(a) == canonical_json(b)
    assert a["n_hypernodes"] == 2


def test_different_configs_hash_differently():
    assert stable_hash(spp1000()) != stable_hash(spp1000(n_hypernodes=4))


def test_stable_hash_length_and_determinism():
    h = stable_hash({"k": 1}, length=16)
    assert len(h) == 16
    assert h == stable_hash({"k": 1}, length=16)
    assert stable_hash({"k": 1}).startswith(h)


def test_float_int_distinction_preserved():
    # 1 and 1.0 canonicalise to JSON "1" and "1.0" respectively
    assert canonical_json(1) != canonical_json(1.0)
