"""Tests for machine configuration."""

import pytest

from repro.core import MachineConfig, spp1000


def test_default_is_the_papers_two_hypernode_machine():
    cfg = spp1000()
    assert cfg.n_cpus == 16
    assert cfg.cpus_per_hypernode == 8
    assert cfg.n_fus == 8
    assert cfg.clock_ns == 10.0
    assert cfg.line_bytes == 32
    assert cfg.dcache_lines == 32768


def test_full_machine_configuration():
    cfg = spp1000(n_hypernodes=16)
    assert cfg.n_cpus == 128


def test_local_miss_in_papers_band():
    cfg = spp1000()
    assert 50 <= cfg.miss_local_cycles <= 60


def test_cycles_converts_to_ns():
    cfg = spp1000()
    assert cfg.cycles(55) == 550.0


def test_validation_rejects_bad_structures():
    with pytest.raises(ValueError):
        spp1000(n_hypernodes=17)
    with pytest.raises(ValueError):
        spp1000(n_hypernodes=0)
    with pytest.raises(ValueError):
        MachineConfig(fus_per_hypernode=3).validate()
    with pytest.raises(ValueError):
        MachineConfig(page_bytes=100).validate()
    with pytest.raises(ValueError):
        MachineConfig(dcache_bytes=1000).validate()


def test_with_returns_validated_copy():
    cfg = spp1000()
    cfg2 = cfg.with_(n_hypernodes=4)
    assert cfg2.n_hypernodes == 4
    assert cfg.n_hypernodes == 2  # original untouched
    with pytest.raises(ValueError):
        cfg.with_(n_hypernodes=99)


def test_config_is_hashable_and_frozen():
    cfg = spp1000()
    with pytest.raises(Exception):
        cfg.n_hypernodes = 3
    assert hash(cfg) == hash(spp1000())
