"""Tests for performance metrics."""

import pytest

from repro.core import ScalingCurve, ScalingPoint, efficiency, mflops, speedup
from repro.core.units import seconds


def test_mflops():
    # 1e9 flops in 1 second = 1000 MFLOP/s
    assert mflops(1e9, seconds(1.0)) == pytest.approx(1000.0)


def test_mflops_rejects_nonpositive_time():
    with pytest.raises(ValueError):
        mflops(1e6, 0.0)


def test_speedup_and_efficiency():
    assert speedup(100.0, 25.0) == 4.0
    assert efficiency(100.0, 25.0, 8) == 0.5
    with pytest.raises(ValueError):
        speedup(0.0, 1.0)
    with pytest.raises(ValueError):
        efficiency(1.0, 1.0, 0)


def test_scaling_point_mflops():
    pt = ScalingPoint(processors=4, time_ns=seconds(2.0), flops=8e8)
    assert pt.mflops == pytest.approx(400.0)
    assert ScalingPoint(1, 100.0).mflops == 0.0


def test_scaling_curve_sorts_and_queries():
    curve = ScalingCurve("shared", [
        ScalingPoint(4, 25.0), ScalingPoint(1, 100.0), ScalingPoint(2, 50.0),
    ])
    assert curve.processors == [1, 2, 4]
    assert curve.time_at(2) == 50.0
    with pytest.raises(KeyError):
        curve.time_at(8)


def test_scaling_curve_speedups():
    curve = ScalingCurve("x", [ScalingPoint(1, 100.0), ScalingPoint(4, 25.0)])
    assert curve.speedups() == [(1, 1.0), (4, 4.0)]
    assert curve.speedups(baseline_ns=200.0) == [(1, 2.0), (4, 8.0)]
