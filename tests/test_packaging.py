"""Package-level hygiene: imports, exports, versioning."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro", "repro.core", "repro.sim", "repro.machine", "repro.runtime",
    "repro.pvm", "repro.perfmodel", "repro.tools", "repro.experiments",
    "repro.apps", "repro.apps.pic", "repro.apps.fem", "repro.apps.nbody",
    "repro.apps.ppm", "repro.apps.kernels", "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_top_level_convenience_exports():
    machine = repro.Machine(repro.spp1000())
    assert machine.config.n_cpus == 16
    assert repro.MemClass.FAR_SHARED.value == "far_shared"


def test_py_typed_marker_exists():
    import pathlib

    pkg_dir = pathlib.Path(repro.__file__).parent
    assert (pkg_dir / "py.typed").exists()


@pytest.mark.parametrize("name", PACKAGES)
def test_every_module_has_a_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, name
