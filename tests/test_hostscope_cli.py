"""CLI tests for hostscope and --progress live telemetry."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("repro-cache")))


# ---------------------------------------------------------------------------
# python -m repro hostscope <experiment>
# ---------------------------------------------------------------------------

def hostscope_json(capsys, *argv):
    assert main(["hostscope", *argv, "--json", "--quick"]) == 0
    return json.loads(capsys.readouterr().out)


def test_hostscope_fig2_covers_95_percent(capsys):
    doc = hostscope_json(capsys, "fig2")
    assert doc["experiment"] == "fig2"
    assert doc["coverage"] >= 0.95
    assert doc["wall_s"] > 0
    assert doc["throughput"]["events_per_s"] > 0
    assert doc["throughput"]["sim_mcycles"] > 0
    assert "memory" in doc["regions"]
    assert "event_heap" in doc["regions"]


def test_hostscope_renders_tables(capsys):
    assert main(["hostscope", "fig3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "hostscope: fig3" in out
    assert "host-time attribution" in out
    assert "simulator throughput" in out


def test_hostscope_unknown_experiment(capsys):
    assert main(["hostscope", "not-an-experiment"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "hostscope" in err            # listed among the commands


def test_hostscope_without_experiment_or_trace(capsys):
    assert main(["hostscope"]) == 2
    err = capsys.readouterr().err
    assert "experiment id" in err and "--trace" in err


def test_bare_invocation_names_hostscope(capsys):
    assert main([]) == 2
    assert "hostscope" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# satellite 6: actionable trace-file errors, same contract as the others
# ---------------------------------------------------------------------------

def test_missing_trace_file_names_the_path(tmp_path, capsys):
    path = tmp_path / "nope.json"
    assert main(["hostscope", "--trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert "cannot read trace file" in err
    assert str(path) in err
    assert "Traceback" not in err


def test_corrupt_trace_file_names_the_path(tmp_path, capsys):
    path = tmp_path / "corrupt.json"
    path.write_text("{not json")
    assert main(["hostscope", "--trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert "cannot parse trace file" in err
    assert str(path) in err
    assert "expected a Chrome trace" in err


def test_empty_trace_file_names_the_path(tmp_path, capsys):
    path = tmp_path / "empty.json"
    path.write_text('{"traceEvents": []}')
    assert main(["hostscope", "--trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert "contains no events" in err
    assert str(path) in err


def test_hostscope_from_captured_trace(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["fig3", "--quick", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["hostscope", "--trace", str(trace), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["source"] == "trace"
    assert doc["events"] > 0
    capsys.readouterr()
    assert main(["hostscope", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "live run" in out             # points at the live command


# ---------------------------------------------------------------------------
# --hostscope on a normal run folds into the manifest
# ---------------------------------------------------------------------------

def test_hostscope_flag_folds_block_into_manifest(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    assert main(["fig3", "--quick", "--hostscope",
                 "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "hostscope: fig3" in out
    manifest = json.loads(metrics.read_text())
    block = manifest["hostscope"]
    assert block["coverage"] >= 0.95
    assert block["throughput"]["events"] > 0
    assert "event_heap" in block["regions"]


def test_parser_has_hostscope_and_progress_flags():
    from repro.cli import build_parser

    text = build_parser().format_help()
    for flag in ("--hostscope", "--progress"):
        assert flag in text, f"missing {flag}"


# ---------------------------------------------------------------------------
# --progress: live JSONL sweep telemetry
# ---------------------------------------------------------------------------

def read_jsonl(path):
    return [json.loads(line) for line in
            path.read_text().strip().splitlines()]


def test_progress_file_is_well_formed_jsonl(tmp_path, capsys):
    prog = tmp_path / "prog.jsonl"
    assert main(["fig3", "--quick", "--jobs", "2",
                 "--progress", str(prog)]) == 0
    records = read_jsonl(prog)
    assert records[0]["event"] == "start"
    assert records[-1]["event"] == "done"
    units = [r for r in records if r["event"] == "unit"]
    assert len(units) == records[0]["to_compute"]
    for rec in units:
        assert rec["t_s"] >= 0
        assert rec["run_s"] >= 0
        assert rec["queue_s"] >= 0
        assert 0 <= rec["done"] <= rec["total"]
        assert 0.0 <= rec["cache_hit_rate"] <= 1.0
        assert 0 <= rec["workers_busy"] <= rec["jobs"]
    assert units[-1]["done"] == units[-1]["total"]
    assert records[-1]["wall_s"] > 0


def test_progress_to_stderr_by_default(tmp_path, capsys):
    assert main(["fig3", "--quick", "--jobs", "1", "--progress"]) == 0
    err = capsys.readouterr().err
    lines = [json.loads(ln) for ln in err.strip().splitlines()
             if ln.startswith("{")]
    assert any(r["event"] == "unit" and r["where"] == "local"
               for r in lines)
    assert lines[-1]["event"] == "done"


def test_progress_warm_cache_run_emits_no_units(tmp_path, capsys):
    assert main(["fig3", "--quick"]) == 0           # warm the cache
    capsys.readouterr()
    prog = tmp_path / "warm.jsonl"
    assert main(["fig3", "--quick", "--progress", str(prog)]) == 0
    records = read_jsonl(prog)
    assert records[0]["event"] == "start"
    assert records[0]["to_compute"] == 0
    assert records[-1]["event"] == "done"
    assert records[-1]["cache_hit_rate"] == 1.0


def test_progress_non_fabric_experiment_notes_and_runs(capsys):
    # ablations runs in-process (no unit planner): --progress must say
    # why it will stay silent rather than silently emitting nothing
    from repro.exec import has_units

    if has_units("ablations"):
        pytest.skip("ablations grew a unit planner; pick another target")
    assert main(["ablations", "--quick", "--progress"]) == 0
    err = capsys.readouterr().err
    assert "no work-unit planner" in err
