"""Tests for the memory-class placement ablation."""

import pytest

from repro.apps.fem import FEMWorkload, large_problem
from repro.core import spp1000
from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def memclass():
    return run_experiment("memclass")


def idx(memclass, p):
    return memclass.data["processors"].index(p)


def test_three_placements_compared(memclass):
    assert set(memclass.data) - {"processors"} == \
        {"far_shared", "near_shared", "block_shared"}


def test_identical_on_one_hypernode(memclass):
    i8 = idx(memclass, 8)
    rates = {k: v[i8] for k, v in memclass.data.items()
             if k != "processors"}
    assert len({round(r, 6) for r in rates.values()}) == 1


def test_block_shared_removes_the_dip(memclass):
    """The unavailable mode would have fixed the Fig 7 anomaly."""
    block = memclass.data["block_shared"]
    assert block[idx(memclass, 9)] > block[idx(memclass, 8)]
    far = memclass.data["far_shared"]
    assert far[idx(memclass, 9)] < far[idx(memclass, 8)]


def test_placement_ordering_beyond_one_hypernode(memclass):
    for p in (9, 12, 16):
        i = idx(memclass, p)
        assert memclass.data["block_shared"][i] > \
            memclass.data["far_shared"][i] > \
            memclass.data["near_shared"][i]


def test_unknown_placement_rejected():
    with pytest.raises(ValueError):
        FEMWorkload(large_problem(), spp1000(), data_placement="magic")
