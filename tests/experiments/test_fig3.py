"""Figure 3 reproduction: barrier cost shapes."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig3():
    return run_experiment("fig3", thread_counts=[2, 4, 8, 10, 12, 16],
                          rounds=8)


def series_map(fig3):
    return {s.label: dict(zip(s.x, s.y)) for s in fig3.series}


def test_has_four_series(fig3):
    assert len(fig3.series) == 4


def test_lifo_single_hypernode_is_a_few_us(fig3):
    lifo = series_map(fig3)["LIFO high locality"]
    for n in (2, 4, 8):
        assert 1.0 <= lifo[n] <= 8.0


def test_lifo_jump_when_second_hypernode_joins(fig3):
    lifo = series_map(fig3)["LIFO high locality"]
    jump = lifo[10] - lifo[8]
    assert 0.3 <= jump <= 5.0, f"LIFO crossing jump {jump:.2f} us"


def test_lifo_roughly_flat_within_regimes(fig3):
    lifo = series_map(fig3)["LIFO high locality"]
    assert lifo[8] - lifo[2] <= 3.0     # one-hypernode regime
    assert abs(lifo[16] - lifo[10]) <= 2.0  # two-hypernode regime


def test_lilo_grows_about_2us_per_thread(fig3):
    lilo = series_map(fig3)["LILO high locality"]
    slope = (lilo[16] - lilo[8]) / 8
    assert 0.8 <= slope <= 4.0, f"LILO slope {slope:.2f} us/thread"


def test_uniform_lilo_converges_to_high_locality_at_16(fig3):
    m = series_map(fig3)
    hi, un = m["LILO high locality"][16], m["LILO uniform"][16]
    assert abs(hi - un) / hi < 0.35


def test_uniform_more_expensive_at_small_counts(fig3):
    m = series_map(fig3)
    assert m["LILO uniform"][2] > m["LILO high locality"][2]
    assert m["LIFO uniform"][2] > m["LIFO high locality"][2]
