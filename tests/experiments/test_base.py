"""Tests for the experiment registry and result rendering."""

import pytest

from repro.core import Series, Table
from repro.experiments import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)
from repro.experiments.base import _REGISTRY


def test_registry_contains_all_paper_artifacts():
    ids = set(list_experiments())
    for required in ["fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
                     "table1", "table2", "ablations", "contention",
                     "scale128", "memclass"]:
        assert required in ids


def test_get_unknown_experiment_raises_with_listing():
    with pytest.raises(KeyError, match="fig2"):
        get_experiment("nonexistent")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        @register("fig2", "dup")
        def run():  # pragma: no cover
            pass


def test_result_render_includes_everything():
    t = Table("T", ["a"])
    t.add_row(1)
    r = ExperimentResult("x1", "demo", tables=[t],
                         series=[Series("s", [1], [2.0])],
                         notes="a note")
    out = r.render()
    assert "x1" in out and "demo" in out
    assert "T" in out and "a note" in out and "s" in out


def test_run_experiment_dispatches():
    fn = get_experiment("fig2")
    assert callable(fn)
