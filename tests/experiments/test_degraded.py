"""Tests for the degraded-mode (failed SCI rings) experiment."""

import pytest

from repro.experiments import Checkpoint, run_experiment
from repro.faults import ring_loss_plan, use_faults


@pytest.fixture(scope="module")
def degraded():
    return run_experiment("degraded", quick=True)


def test_default_scenarios(degraded):
    assert degraded.data["scenarios"] == [
        "0 rings failed", "1 ring failed", "2 rings failed"]


def test_ring_loss_slows_messages(degraded):
    base = degraded.data["0 rings failed"]["round_trip_us"]
    for label in ("1 ring failed", "2 rings failed"):
        worse = degraded.data[label]["round_trip_us"]
        assert all(w > b for w, b in zip(worse, base)), label


def test_ring_loss_slows_barriers(degraded):
    base = degraded.data["0 rings failed"]["barrier_lilo_us"]
    worse = degraded.data["2 rings failed"]["barrier_lilo_us"]
    assert all(w >= b for w, b in zip(worse, base))


def test_fault_events_recorded_for_manifests(degraded):
    events = {e["scenario"]: e["events"]
              for e in degraded.data["fault_events"]}
    assert "0 rings failed" not in events   # the baseline is clean
    assert [ev["kind"] for ev in events["1 ring failed"]] == ["ring_fail"]
    assert [ev["ring"] for ev in events["2 rings failed"]] == [0, 1]


def test_series_per_scenario(degraded):
    assert {s.label for s in degraded.series} == {
        "barrier LILO, 0 rings failed", "barrier LILO, 1 ring failed",
        "barrier LILO, 2 rings failed"}


def test_ambient_plan_replaces_canned_scenarios():
    plan = ring_loss_plan(1, description="custom plan under test")
    with use_faults(plan):
        result = run_experiment("degraded", quick=True)
    assert result.data["scenarios"] == ["0 rings failed",
                                       "custom plan under test"]
    [recorded] = result.data["fault_events"]
    assert recorded["scenario"] == "custom plan under test"


def test_checkpoint_resume_is_bit_identical(tmp_path):
    path = str(tmp_path / "degraded.ckpt.json")
    first = run_experiment("degraded", quick=True,
                           checkpoint=Checkpoint(path))
    resumed = Checkpoint(path, resume=True)
    second = run_experiment("degraded", quick=True, checkpoint=resumed)
    assert second.data == first.data
    assert resumed.computed == 0          # everything came from the file
    assert resumed.hits > 0
