"""Tests for the §6 ablation experiment."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.ablations import (
    cache_residency_ratio,
    measured_miss_latencies_us,
    os_interference_overhead,
)


@pytest.fixture(scope="module")
def ablations():
    return run_experiment("ablations")


def test_latency_ordering(ablations):
    lat = ablations.data["latencies_us"]
    assert lat["hit"] < lat["local_miss"] < lat["remote_miss"]
    assert lat["gcb_hit"] < lat["remote_miss"]


def test_remote_local_ratio_about_8(ablations):
    assert 5.0 <= ablations.data["remote_local_miss_ratio"] <= 12.0


def test_cache_residency_factor_about_3(ablations):
    assert 2.0 <= ablations.data["cache_residency_ratio"] <= 6.0


def test_os_interference_positive_but_moderate(ablations):
    overhead = ablations.data["os_interference_overhead"]
    assert 0.0 < overhead < 0.25


def test_ring_sensitivity_monotone(ablations):
    rows = ablations.data["ring_sensitivity"]
    effs = [eff for _f, eff in rows]
    assert effs == sorted(effs, reverse=True)


def test_direct_helpers_match_experiment(ablations):
    assert measured_miss_latencies_us()["hit"] == \
        ablations.data["latencies_us"]["hit"]
    assert cache_residency_ratio() == \
        ablations.data["cache_residency_ratio"]
    assert os_interference_overhead() == \
        ablations.data["os_interference_overhead"]
