"""Figure 2 reproduction: fork-join cost shapes."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig2():
    return run_experiment("fig2", thread_counts=[2, 4, 6, 8, 10, 12, 16],
                          repeats=2)


def test_result_has_both_placements(fig2):
    labels = {s.label for s in fig2.series}
    assert labels == {"high locality", "uniform distribution"}


def test_cost_monotone_in_threads(fig2):
    for series in fig2.series:
        assert list(series.y) == sorted(series.y)


def test_local_pair_cost_near_10us(fig2):
    counts = fig2.data["thread_counts"]
    high = dict(zip(counts, fig2.data["high_locality_us"]))
    per_pair = (high[8] - high[4]) / 2
    assert 5.0 <= per_pair <= 20.0, f"{per_pair:.1f} us/pair"


def test_uniform_pair_cost_about_double_local(fig2):
    counts = fig2.data["thread_counts"]
    high = dict(zip(counts, fig2.data["high_locality_us"]))
    uni = dict(zip(counts, fig2.data["uniform_us"]))
    local_pair = (high[8] - high[4]) / 2
    uniform_pair = (uni[8] - uni[4]) / 2
    assert 1.3 <= uniform_pair / local_pair <= 3.5


def test_crossing_step_of_order_50us(fig2):
    counts = fig2.data["thread_counts"]
    high = dict(zip(counts, fig2.data["high_locality_us"]))
    pair = (high[8] - high[4]) / 2
    step = (high[10] - high[8]) - pair  # beyond the marginal pair cost
    assert 25.0 <= step <= 110.0, f"crossing step {step:.1f} us"


def test_uniform_pays_crossing_from_two_threads(fig2):
    counts = fig2.data["thread_counts"]
    high = dict(zip(counts, fig2.data["high_locality_us"]))
    uni = dict(zip(counts, fig2.data["uniform_us"]))
    assert uni[2] > high[2] + 25.0
