"""Table 2 reproduction shape checks."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def table2():
    return run_experiment("table2")


def rows(table2, tiles=None, grid=None):
    out = table2.data["rows"]
    if tiles:
        out = [r for r in out if r["tiles"] == tiles]
    if grid:
        out = [r for r in out if r["grid"] == grid]
    return out


def test_all_nine_rows_present(table2):
    assert len(table2.data["rows"]) == 9


def test_every_row_within_25_percent_of_paper(table2):
    for row in table2.data["rows"]:
        rel = abs(row["mflops"] - row["paper_mflops"]) / row["paper_mflops"]
        assert rel < 0.25, f"{row}: off by {rel:.0%}"


def test_coarse_tiles_scale_nearly_linearly(table2):
    r = {row["procs"]: row["mflops"]
         for row in rows(table2, tiles=(4, 16), grid=(120, 480))}
    assert r[8] / r[1] > 7.0   # paper: 228.5/29.9 = 7.6


def test_fine_decomposition_uniformly_slower(table2):
    coarse = {row["procs"]: row["mflops"]
              for row in rows(table2, tiles=(4, 16), grid=(120, 480))}
    fine = {row["procs"]: row["mflops"]
            for row in rows(table2, tiles=(12, 48))}
    for p in (1, 2, 4, 8):
        assert fine[p] < coarse[p]
        ratio = coarse[p] / fine[p]
        assert 1.05 <= ratio <= 1.6   # paper: ~1.23-1.26


def test_rate_insensitive_to_grid_size(table2):
    small = rows(table2, tiles=(4, 16), grid=(120, 480))
    big = rows(table2, tiles=(4, 16), grid=(240, 960))
    small4 = next(r["mflops"] for r in small if r["procs"] == 4)
    big4 = next(r["mflops"] for r in big if r["procs"] == 4)
    assert abs(big4 - small4) / small4 < 0.15
