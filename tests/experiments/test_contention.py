"""Tests for the message-contention experiment."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.contention import contended_round_trip_us


@pytest.fixture(scope="module")
def contention():
    return run_experiment("contention")


def test_two_series_over_pair_counts(contention):
    assert contention.data["pairs"] == [1, 2, 3, 4]
    assert len(contention.series) == 2


def test_single_pair_matches_fig4_regime(contention):
    assert 10.0 <= contention.data["local_us"][0] <= 60.0
    ratio = contention.data["cross_us"][0] / contention.data["local_us"][0]
    assert 1.7 <= ratio <= 3.2


def test_little_degradation_with_traffic(contention):
    """The paper's [24] claim: appreciable traffic, little degradation."""
    assert 0.0 <= contention.data["local_degradation"] <= 0.40
    assert 0.0 <= contention.data["cross_degradation"] <= 0.40


def test_round_trips_never_speed_up_under_load(contention):
    for key in ("local_us", "cross_us"):
        series = contention.data[key]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))


def test_pair_count_validation():
    with pytest.raises(ValueError):
        contended_round_trip_us(0, False)
    with pytest.raises(ValueError):
        contended_round_trip_us(9, False)   # 18 tasks on 16 CPUs
