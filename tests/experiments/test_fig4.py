"""Figure 4 reproduction: message round-trip shapes."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig4():
    return run_experiment(
        "fig4", sizes=[64, 1024, 4096, 8192, 16384, 65536], repeats=3)


def curves(fig4):
    return {s.label: dict(zip(s.x, s.y)) for s in fig4.series}


def test_local_small_message_rt_order_30us(fig4):
    local = curves(fig4)["local (one hypernode)"]
    assert 10.0 <= local[64] <= 60.0


def test_global_local_ratio_near_2_3(fig4):
    ratio = fig4.data["small_message_global_local_ratio"]
    assert 1.7 <= ratio <= 3.2, f"ratio {ratio:.2f}"


def test_approximately_constant_below_8kb(fig4):
    for label, curve in curves(fig4).items():
        assert curve[8192] / curve[64] < 2.6, label


def test_substantial_increase_beyond_8kb(fig4):
    for label, curve in curves(fig4).items():
        assert curve[16384] / curve[8192] > 1.8, label


def test_superlinear_page_growth(fig4):
    for label, curve in curves(fig4).items():
        # 4x the pages beyond the knee costs more than 2.5x the time
        assert curve[65536] / curve[16384] > 2.5, label


def test_global_always_slower_than_local(fig4):
    c = curves(fig4)
    local, globl = c["local (one hypernode)"], c["global (two hypernodes)"]
    for size in local:
        assert globl[size] > local[size]
