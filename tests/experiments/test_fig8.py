"""Fig 8 reproduction shape checks."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig8():
    return run_experiment("fig8")


def test_all_sizes_and_configs_present(fig8):
    assert set(fig8.data) == {"32K", "256K", "2M"}
    labels = {s.label for s in fig8.series}
    assert "32K 1-hypernode" in labels
    assert "2M 2-hypernodes" in labels


def test_speedups_monotone(fig8):
    for d in fig8.data.values():
        assert d["one_node_speedup"] == sorted(d["one_node_speedup"])
        assert d["two_node_speedup"] == sorted(d["two_node_speedup"])


def test_degradation_small_across_hypernodes(fig8):
    """Paper: between 2 and 7 percent."""
    for label, d in fig8.data.items():
        for p, deg in d["degradation"].items():
            assert 0.0 <= deg <= 0.09, f"{label} p={p}: {deg:.1%}"


def test_single_cpu_and_16_cpu_rates(fig8):
    d = fig8.data["32K"]
    assert 20.0 <= d["single_cpu_mflops"] <= 40.0      # paper: 27.5
    assert 300.0 <= d["mflops_16"] <= 500.0            # paper: 384


def test_c90_reference_and_favourable_comparison(fig8):
    for d in fig8.data.values():
        assert 95.0 <= d["c90_mflops"] <= 175.0        # paper: 120
        assert d["mflops_16"] > d["c90_mflops"]


def test_problem_size_affects_16_processor_speedup(fig8):
    s = {label: d["two_node_speedup"][-1] for label, d in fig8.data.items()}
    assert max(s.values()) - min(s.values()) > 0.5
