"""Tests for the 128-CPU extrapolation experiment."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def scale():
    return run_experiment("scale128")


def test_covers_all_four_applications(scale):
    labels = {s.label for s in scale.series}
    assert labels == {"PIC 64x64x32", "FEM large", "N-body 2M",
                      "PPM 480x960"}


def test_cpu_axis_up_to_128(scale):
    assert scale.data["cpus"] == [8, 16, 32, 64, 128]


def test_speedups_monotone_in_machine_size(scale):
    for series in scale.series:
        assert list(series.y) == sorted(series.y), series.label


def test_ppm_scales_best_pic_worst(scale):
    """PPM's tile locality scales nearly linearly; PIC's write-shared
    mesh saturates first."""
    at_128 = {s.label: s.y[-1] for s in scale.series}
    assert at_128["PPM 480x960"] > 90.0
    assert at_128["PIC 64x64x32"] < at_128["N-body 2M"] \
        < at_128["PPM 480x960"]


def test_single_hypernode_efficiency_high_everywhere(scale):
    """Paper §6: one hypernode scales excellently for every code."""
    for name in ("PIC 64x64x32", "FEM large", "N-body 2M", "PPM 480x960"):
        eff8 = scale.data[name]["efficiency"][0]
        assert eff8 > 0.8, f"{name}: 8-CPU efficiency {eff8:.2f}"
