"""Fig 6 and Table 1 reproduction shape checks."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig6():
    return run_experiment("fig6")


@pytest.fixture(scope="module")
def table1():
    return run_experiment("table1")


def test_fig6_has_six_series(fig6):
    assert len(fig6.series) == 6


def test_fig6_shared_beats_pvm_everywhere_above_1(fig6):
    for label in ("32x32x32", "64x64x32"):
        d = fig6.data[label]
        for i, p in enumerate(fig6.data["processors"]):
            if p >= 2:
                assert d["pvm_seconds"][i] > d["shared_seconds"][i]


def test_fig6_both_styles_scale_to_16(fig6):
    for label in ("32x32x32", "64x64x32"):
        d = fig6.data[label]
        assert d["shared_speedup"][-1] > 6.0
        assert d["pvm_speedup"][-1] > 4.0


def test_fig6_pvm_about_half_to_threequarters_of_shared_at_16(fig6):
    d = fig6.data["32x32x32"]
    ratio = d["pvm_seconds"][-1] / d["shared_seconds"][-1]
    assert 1.1 <= ratio <= 2.6


def test_fig6_c90_line_between_serial_and_parallel(fig6):
    for label in ("32x32x32", "64x64x32"):
        d = fig6.data[label]
        assert d["shared_seconds"][0] > d["c90_seconds"]
        # full machine comes within a small factor of the C90 head
        assert d["shared_seconds"][-1] < 4.0 * d["c90_seconds"]


def test_table1_rates_close_to_paper(table1):
    for label in ("32x32x32", "64x64x32"):
        row = table1.data[label]
        paper = row["paper"]
        assert row["particles"] == paper["particles"]
        assert abs(row["mflops"] - paper["mflops"]) / paper["mflops"] < 0.25


def test_table1_larger_problem_takes_longer(table1):
    assert table1.data["64x64x32"]["seconds"] > \
        table1.data["32x32x32"]["seconds"]
