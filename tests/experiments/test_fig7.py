"""Fig 7 reproduction shape checks."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig7():
    return run_experiment("fig7")


def idx(fig7, p):
    return fig7.data["processors"].index(p)


def test_has_four_series(fig7):
    labels = {s.label for s in fig7.series}
    assert labels == {"small1", "small2", "large", "C90 (1 head)"}


def test_serial_rates_in_paper_band(fig7):
    """Paper: vector coding 31 MFLOP/s serial, -O3 recompile 18."""
    assert 12.0 <= fig7.data["small1"]["mflops"][0] <= 40.0
    assert fig7.data["small2"]["mflops"][0] < fig7.data["small1"]["mflops"][0]


def test_c90_reference_close_to_250(fig7):
    assert 200.0 <= fig7.data["c90_mflops"] <= 310.0


def test_nonmonotonic_dip_between_8_and_9(fig7):
    """The paper's reported anomaly."""
    for label in ("small1", "small2", "large"):
        rates = fig7.data[label]["mflops"]
        r8 = rates[idx(fig7, 8)]
        r9 = rates[idx(fig7, 9)]
        assert r9 < r8, f"{label}: no dip at 9 ({r8:.0f} -> {r9:.0f})"


def test_recovery_after_the_dip(fig7):
    for label in ("small1", "large"):
        rates = fig7.data[label]["mflops"]
        assert rates[idx(fig7, 16)] > rates[idx(fig7, 9)]


def test_single_hypernode_scaling_excellent(fig7):
    """Paper §6: programming a single hypernode returned excellent
    scaling across eight processors in all cases."""
    for label in ("small1", "small2", "large"):
        rates = fig7.data[label]["mflops"]
        eff = rates[idx(fig7, 8)] / (8 * rates[idx(fig7, 1)])
        assert eff > 0.8, f"{label}: 8-cpu efficiency {eff:.2f}"


def test_small_benefits_from_aggregate_cache_at_16(fig7):
    """The small set was sized to fit the 16-CPU aggregate cache; the
    large set cannot, so small out-scales large beyond one hypernode."""
    s = fig7.data["small1"]["mflops"]
    l = fig7.data["large"]["mflops"]
    assert s[idx(fig7, 16)] / s[0] > l[idx(fig7, 16)] / l[0]
