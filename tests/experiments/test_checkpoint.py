"""Tests for experiment checkpoint/resume."""

import json

import pytest

from repro.experiments import Checkpoint, CheckpointError, run_experiment
from repro.experiments.checkpoint import SCHEMA_VERSION


def test_point_memoises_and_persists(tmp_path):
    path = str(tmp_path / "ck.json")
    ck = Checkpoint(path)
    ck.bind("demo")
    calls = []

    def expensive():
        calls.append(1)
        return 42.5

    assert ck.point("a:1", expensive) == 42.5
    assert ck.point("a:1", expensive) == 42.5
    assert calls == [1]
    assert ck.computed == 1 and ck.hits == 1

    on_disk = json.loads(open(path).read())
    assert on_disk["schema"] == SCHEMA_VERSION
    assert on_disk["experiment"] == "demo"
    assert on_disk["points"] == {"a:1": 42.5}


def test_resume_skips_completed_points(tmp_path):
    path = str(tmp_path / "ck.json")
    first = Checkpoint(path)
    first.bind("demo")
    first.put("done", 1.0)

    resumed = Checkpoint(path, resume=True)
    resumed.bind("demo")

    def must_not_run():
        raise AssertionError("resumed point was recomputed")

    assert resumed.point("done", must_not_run) == 1.0
    assert resumed.hits == 1 and resumed.computed == 0


def test_without_resume_flag_existing_file_is_ignored(tmp_path):
    path = str(tmp_path / "ck.json")
    Checkpoint(path).put("x", 1.0)
    fresh = Checkpoint(path)  # no resume: starts empty
    assert fresh.get("x") is None


def test_bind_refuses_foreign_checkpoint(tmp_path):
    path = str(tmp_path / "ck.json")
    first = Checkpoint(path)
    first.bind("scale128")
    first.put("p", 0.0)
    resumed = Checkpoint(path, resume=True)
    with pytest.raises(CheckpointError, match="belongs to experiment"):
        resumed.bind("degraded")


def test_resume_with_missing_file_starts_fresh(tmp_path):
    ck = Checkpoint(str(tmp_path / "nope.json"), resume=True)
    assert ck.points == {}


def test_resume_rejects_wrong_schema(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({"schema": 99, "points": {}}))
    with pytest.raises(CheckpointError, match="schema"):
        Checkpoint(str(path), resume=True)


def test_resume_rejects_corrupt_file(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("{truncated")
    with pytest.raises(CheckpointError, match="cannot resume"):
        Checkpoint(str(path), resume=True)


def test_killed_sweep_resumes_to_identical_results(tmp_path):
    """Acceptance: drop half the recorded points (as if the run had been
    killed mid-sweep), re-run with --resume semantics, and require the
    final results to be bit-identical to the uninterrupted run."""
    path = str(tmp_path / "degraded.ckpt.json")
    full = run_experiment("degraded", quick=True, checkpoint=Checkpoint(path))

    state = json.loads(open(path).read())
    keys = sorted(state["points"])
    survivors = keys[: len(keys) // 2]
    state["points"] = {k: state["points"][k] for k in survivors}
    with open(path, "w") as fh:
        json.dump(state, fh)

    resumed = Checkpoint(path, resume=True)
    rerun = run_experiment("degraded", quick=True, checkpoint=resumed)
    assert rerun.data == full.data
    assert resumed.hits == len(survivors)
    assert resumed.computed == len(keys) - len(survivors)
    # the checkpoint file is whole again
    assert sorted(json.loads(open(path).read())["points"]) == keys


def test_scale128_supports_checkpointing(tmp_path):
    import inspect

    from repro.experiments import get_experiment

    assert "checkpoint" in inspect.signature(
        get_experiment("scale128")).parameters
