"""Property tests: PVM delivery semantics under random traffic."""

from hypothesis import given, settings, strategies as st

from repro import Machine, spp1000
from repro.pvm import PvmSystem
from repro.runtime import Placement, Runtime


@given(
    payload_plan=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 200)),  # (tag, body)
        min_size=1, max_size=12),
    cross=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_per_tag_fifo_ordering(payload_plan, cross):
    """Messages with the same tag from one sender arrive in send order,
    regardless of interleaving with other tags."""
    pvm = PvmSystem(Runtime(Machine(spp1000(2))))
    by_tag = {}
    for tag, body in payload_plan:
        by_tag.setdefault(tag, []).append(body)

    def sender(task):
        for seq, (tag, body) in enumerate(payload_plan):
            yield from task.send(1, (seq, body), 16, tag=tag)

    def receiver(task):
        got = {}
        for tag, bodies in by_tag.items():
            for _ in bodies:
                seq_body = yield from task.recv(0, tag=tag)
                got.setdefault(tag, []).append(seq_body[1])
        return got

    def body(task, tid):
        if tid == 0:
            yield from sender(task)
            return None
        return (yield from receiver(task))

    placement = Placement.UNIFORM if cross else Placement.HIGH_LOCALITY
    results = pvm.run_tasks(2, body, placement)
    assert results[1] == by_tag


@given(n_senders=st.integers(1, 6), per_sender=st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_no_message_lost_under_fanin(n_senders, per_sender):
    """A many-to-one pattern delivers every message exactly once."""
    pvm = PvmSystem(Runtime(Machine(spp1000(2))))
    n_tasks = n_senders + 1
    sink = n_senders

    def body(task, tid):
        if tid != sink:
            for k in range(per_sender):
                yield from task.send(sink, (tid, k), 16)
            return None
        got = []
        for _ in range(n_senders * per_sender):
            got.append((yield from task.recv()))
        return got

    results = pvm.run_tasks(n_tasks, body)
    received = results[sink]
    expected = {(tid, k) for tid in range(n_senders)
                for k in range(per_sender)}
    assert set(received) == expected
    assert len(received) == len(expected)
