"""Tests for nonblocking PVM receives."""

import pytest

from repro import Machine, spp1000
from repro.pvm import PvmSystem
from repro.runtime import Runtime


def make_pvm():
    return PvmSystem(Runtime(Machine(spp1000(2))))


def test_irecv_wait_delivers_payload():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            yield from task.send(1, "hello", 8)
            return None
        req = task.irecv(0)
        value = yield from req.wait()
        return value

    assert pvm.run_tasks(2, body)[1] == "hello"


def test_irecv_overlaps_computation():
    pvm = make_pvm()
    timeline = {}

    def body(task, tid):
        if tid == 0:
            yield task.env.compute(50_000)  # message leaves late
            yield from task.send(1, "late", 8)
            return None
        req = task.irecv(0)
        # useful work proceeds while the message is in flight
        yield task.env.compute(100_000)
        timeline["compute_done"] = task.env.now
        value = yield from req.wait()
        timeline["msg_in"] = task.env.now
        return value

    results = pvm.run_tasks(2, body)
    assert results[1] == "late"
    # the wait after 1 ms of compute is nearly free: the message had
    # already arrived, so wait() costs only the unpack
    assert timeline["msg_in"] - timeline["compute_done"] < 20_000


def test_test_polls_without_blocking():
    pvm = make_pvm()
    polls = []

    def body(task, tid):
        if tid == 0:
            yield task.env.compute(100_000)
            yield from task.send(1, "x", 8)
            return None
        req = task.irecv(0)
        polls.append(req.test())       # nothing there yet
        yield task.env.compute(200_000)
        polls.append(req.test())       # arrived meanwhile
        value = yield from req.wait()
        return value

    results = pvm.run_tasks(2, body)
    assert results[1] == "x"
    assert polls == [False, True]


def test_wait_after_successful_test_returns_same_payload():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            yield from task.send(1, {"k": 1}, 16)
            return None
        req = task.irecv(0)
        yield task.env.compute(50_000)
        assert req.test()
        first = yield from req.wait()
        second = yield from req.wait()   # idempotent
        return first, second

    first, second = pvm.run_tasks(2, body)[1]
    assert first == second == {"k": 1}


def test_two_outstanding_requests_by_tag():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            yield from task.send(1, "a", 8, tag=1)
            yield from task.send(1, "b", 8, tag=2)
            return None
        req_b = task.irecv(0, tag=2)
        req_a = task.irecv(0, tag=1)
        b = yield from req_b.wait()
        a = yield from req_a.wait()
        return a, b

    assert pvm.run_tasks(2, body)[1] == ("a", "b")
