"""Tests for PVM collective operations."""

import pytest

from repro import Machine, spp1000
from repro.pvm import (
    PvmSystem,
    pvm_allreduce,
    pvm_barrier,
    pvm_bcast,
    pvm_gather,
    pvm_reduce,
)
from repro.runtime import Placement, Runtime


def run_collective(n_tasks, body, placement=Placement.HIGH_LOCALITY):
    pvm = PvmSystem(Runtime(Machine(spp1000(2))))
    return pvm.run_tasks(n_tasks, body, placement)


@pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
def test_barrier_holds_everyone(n):
    exits = {}

    def body(task, tid):
        # task n-1 arrives late
        if tid == n - 1:
            yield task.env.compute(200_000)
        yield from pvm_barrier(task, n)
        exits[tid] = task.env.now
        return None

    run_collective(n, body)
    assert len(exits) == n
    assert min(exits.values()) >= 2_000_000  # nobody left before the late one


@pytest.mark.parametrize("n,root", [(4, 0), (5, 2), (8, 7), (3, 1)])
def test_bcast_delivers_to_all(n, root):
    def body(task, tid):
        payload = f"from-{root}" if tid == root else None
        value = yield from pvm_bcast(task, root, n, payload, nbytes=16)
        return value

    results = run_collective(n, body)
    assert results == [f"from-{root}"] * n


@pytest.mark.parametrize("n,root", [(2, 0), (4, 0), (6, 3), (8, 5)])
def test_reduce_sums_at_root(n, root):
    def body(task, tid):
        result = yield from pvm_reduce(task, root, n, tid + 1,
                                       op=lambda a, b: a + b)
        return result

    results = run_collective(n, body)
    expected = sum(range(1, n + 1))
    for tid, result in enumerate(results):
        assert result == (expected if tid == root else None)


@pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
def test_allreduce_everyone_gets_total(n):
    def body(task, tid):
        total = yield from pvm_allreduce(task, n, 2 ** tid,
                                         op=lambda a, b: a + b)
        return total

    results = run_collective(n, body, Placement.UNIFORM)
    assert results == [2 ** n - 1] * n


def test_allreduce_with_max(n=6):
    values = [5, 2, 19, 3, 11, 7]

    def body(task, tid):
        return (yield from pvm_allreduce(task, n, values[tid], op=max))

    assert run_collective(n, body) == [19] * n


@pytest.mark.parametrize("n,root", [(4, 0), (5, 4)])
def test_gather_collects_in_tid_order(n, root):
    def body(task, tid):
        return (yield from pvm_gather(task, root, n, tid * 10))

    results = run_collective(n, body)
    for tid, result in enumerate(results):
        if tid == root:
            assert result == [i * 10 for i in range(n)]
        else:
            assert result is None


def test_single_task_collectives_trivial():
    def body(task, tid):
        yield from pvm_barrier(task, 1)
        value = yield from pvm_bcast(task, 0, 1, "x")
        total = yield from pvm_allreduce(task, 1, 5, op=lambda a, b: a + b)
        return value, total

    assert run_collective(1, body) == [("x", 5)]


def test_consecutive_collectives_do_not_crosstalk():
    def body(task, tid):
        first = yield from pvm_allreduce(task, 4, tid, op=lambda a, b: a + b,
                                         sequence=0)
        second = yield from pvm_allreduce(task, 4, tid * tid,
                                          op=lambda a, b: a + b, sequence=1)
        return first, second

    results = run_collective(4, body)
    assert results == [(6, 14)] * 4
