"""Tests for the shared message-buffer pool."""

import pytest

from repro import Machine, spp1000
from repro.pvm import BufferPool


@pytest.fixture
def pool():
    return BufferPool(Machine(spp1000(2)))


def test_small_message_uses_fast_buffer(pool):
    lease = pool.acquire(tid=0, hypernode=0, nbytes=64)
    assert lease.fresh_pages == 0
    assert lease.nbytes == 64


def test_fast_buffer_reused_per_task(pool):
    a = pool.acquire(0, 0, 100)
    b = pool.acquire(0, 0, 200)
    assert a.addr == b.addr


def test_distinct_tasks_get_distinct_fast_buffers(pool):
    a = pool.acquire(0, 0, 100)
    b = pool.acquire(1, 0, 100)
    assert a.addr != b.addr


def test_eight_kb_is_the_fast_path_boundary(pool):
    assert pool.fastbuf_bytes == 8192
    at = pool.acquire(0, 0, 8192)
    over = pool.acquire(0, 0, 8193)
    assert at.fresh_pages == 0
    assert over.fresh_pages == 3  # rounds up to 3 pages


def test_large_message_pays_per_page(pool):
    lease = pool.acquire(0, 0, 64 * 1024)
    assert lease.fresh_pages == 16


def test_large_buffers_are_not_reused(pool):
    a = pool.acquire(0, 0, 64 * 1024)
    b = pool.acquire(0, 0, 64 * 1024)
    assert a.addr != b.addr  # fresh mapping each time (fresh page cost)


def test_zero_size_rejected(pool):
    with pytest.raises(ValueError):
        pool.acquire(0, 0, 0)


def test_buffer_homed_on_sender_hypernode(pool):
    lease = pool.acquire(0, 1, 100)
    home = pool.machine.space.home_of(lease.addr)
    assert home.hypernode == 1
