"""Tests for message matching."""

from hypothesis import given, strategies as st

from repro.pvm import ANY_SOURCE, ANY_TAG, Message, matches


def msg(src=1, tag=7):
    return Message(src=src, dst=0, tag=tag, nbytes=8, payload=None,
                   buffer_addr=0x1000, seq=1)


def test_exact_match():
    assert matches(msg(src=1, tag=7), source=1, tag=7)
    assert not matches(msg(src=1, tag=7), source=2, tag=7)
    assert not matches(msg(src=1, tag=7), source=1, tag=8)


def test_wildcards():
    assert matches(msg(src=3, tag=9), ANY_SOURCE, 9)
    assert matches(msg(src=3, tag=9), 3, ANY_TAG)
    assert matches(msg(src=3, tag=9), ANY_SOURCE, ANY_TAG)


@given(src=st.integers(0, 10), tag=st.integers(0, 10),
       q_src=st.integers(0, 10), q_tag=st.integers(0, 10))
def test_match_is_conjunction(src, tag, q_src, q_tag):
    m = msg(src=src, tag=tag)
    assert matches(m, q_src, q_tag) == ((src == q_src) and (tag == q_tag))
