"""Integration tests for PVM send/recv semantics and costs."""

import pytest

from repro import Machine, spp1000
from repro.core.units import to_us
from repro.pvm import ANY_SOURCE, ANY_TAG, PvmSystem
from repro.runtime import Placement, Runtime


def make_pvm(n_hypernodes=2):
    return PvmSystem(Runtime(Machine(spp1000(n_hypernodes))))


def test_send_recv_delivers_payload():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            yield from task.send(1, {"data": [1, 2, 3]}, nbytes=24)
            return None
        payload = yield from task.recv(0)
        return payload

    results = pvm.run_tasks(2, body)
    assert results[1] == {"data": [1, 2, 3]}


def test_recv_blocks_until_message_arrives():
    pvm = make_pvm()
    arrival = {}

    def body(task, tid):
        if tid == 0:
            yield task.env.compute(100_000)  # 1 ms
            yield from task.send(1, "late", 8)
            return None
        payload = yield from task.recv(0)
        arrival["t"] = task.env.now
        return payload

    results = pvm.run_tasks(2, body)
    assert results[1] == "late"
    assert arrival["t"] >= 1_000_000


def test_messages_from_same_sender_arrive_in_order():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            for i in range(5):
                yield from task.send(1, i, 8, tag=1)
            return None
        got = []
        for _ in range(5):
            got.append((yield from task.recv(0, tag=1)))
        return got

    results = pvm.run_tasks(2, body)
    assert results[1] == [0, 1, 2, 3, 4]


def test_tag_matching_skips_nonmatching_messages():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            yield from task.send(1, "wrong", 8, tag=1)
            yield from task.send(1, "right", 8, tag=2)
            return None
        first = yield from task.recv(0, tag=2)
        second = yield from task.recv(0, tag=1)
        return [first, second]

    results = pvm.run_tasks(2, body)
    assert results[1] == ["right", "wrong"]


def test_any_source_wildcard():
    pvm = make_pvm()

    def body(task, tid):
        if tid in (0, 1):
            yield from task.send(2, f"from-{tid}", 8)
            return None
        a = yield from task.recv(ANY_SOURCE, ANY_TAG)
        b = yield from task.recv(ANY_SOURCE, ANY_TAG)
        return sorted([a, b])

    results = pvm.run_tasks(3, body)
    assert results[2] == ["from-0", "from-1"]


def test_probe_is_nonblocking():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            empty = task.probe()
            yield task.env.compute(10)
            return empty
        yield task.env.compute(10)
        return None

    results = pvm.run_tasks(2, body)
    assert results[0] is False


def test_unknown_task_rejected():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            yield from task.send(99, "x", 8)
        return None
        yield

    with pytest.raises(KeyError):
        pvm.run_tasks(2, body)


def test_message_counters():
    pvm = make_pvm()

    def body(task, tid):
        if tid == 0:
            yield from task.send(1, "x", 8)
        else:
            yield from task.recv(0)
        return None

    pvm.run_tasks(2, body)
    assert pvm.task(0).sent_messages == 1
    assert pvm.task(1).received_messages == 1


# ---------------------------------------------------------------------------
# cost structure (paper Fig 4)
# ---------------------------------------------------------------------------

def round_trip_us(nbytes, placement, reps=4):
    pvm = make_pvm()
    times = []

    def body(task, tid):
        if tid == 0:
            yield from task.send(1, b"", nbytes)
            yield from task.recv(1)
            for _ in range(reps):
                t0 = task.env.now
                yield from task.send(1, b"", nbytes)
                yield from task.recv(1)
                times.append(task.env.now - t0)
        else:
            for _ in range(reps + 1):
                yield from task.recv(0)
                yield from task.send(0, b"", nbytes)
        return None

    pvm.run_tasks(2, body, placement)
    return to_us(min(times))


def test_local_round_trip_order_of_30us():
    rt = round_trip_us(64, Placement.HIGH_LOCALITY)
    assert 10.0 <= rt <= 60.0, f"local RT {rt:.1f} us"


def test_global_to_local_ratio_about_2_3():
    local = round_trip_us(64, Placement.HIGH_LOCALITY)
    globl = round_trip_us(64, Placement.UNIFORM)
    ratio = globl / local
    assert 1.7 <= ratio <= 3.2, f"global/local RT ratio {ratio:.2f}"


def test_under_8kb_round_trip_roughly_constant():
    small = round_trip_us(64, Placement.HIGH_LOCALITY)
    at_8k = round_trip_us(8192, Placement.HIGH_LOCALITY)
    assert at_8k / small < 2.5


def test_knee_above_8kb():
    # growth rate accelerates sharply past the fast-buffer boundary
    r8 = round_trip_us(8192, Placement.HIGH_LOCALITY)
    r16 = round_trip_us(16384, Placement.HIGH_LOCALITY)
    r4 = round_trip_us(4096, Placement.HIGH_LOCALITY)
    below_knee_growth = r8 / r4
    at_knee_growth = r16 / r8
    assert at_knee_growth > 1.5 * below_knee_growth


def test_growth_is_superlinear_in_pages_beyond_knee():
    r16 = round_trip_us(16384, Placement.HIGH_LOCALITY)
    r64 = round_trip_us(65536, Placement.HIGH_LOCALITY)
    assert r64 > 2.5 * r16
