"""Measurement methodology (paper §4).

The paper's synthetic measurements were limited by timer resolution, timer
intrusion, and multitasking noise; the authors ran many repetitions and
reported either the average or the minimum, after correcting for the
overhead of the timestamps themselves.  This module packages the same
methodology so experiment code states *which* estimator it uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

__all__ = ["corrected", "Measurement", "summarize"]


def corrected(raw_ns: float, n_timestamps: int, timer_overhead_ns: float) -> float:
    """Remove timestamp intrusion from a raw interval.

    ``n_timestamps`` is how many timer reads fell *inside* the measured
    interval; the paper subtracts their cost before reporting.
    Negative corrected values clamp to 0 (resolution floor).
    """
    if n_timestamps < 0:
        raise ValueError("timestamp count cannot be negative")
    return max(0.0, raw_ns - n_timestamps * timer_overhead_ns)


@dataclass(frozen=True)
class Measurement:
    """Summary of repeated runs of one measured quantity (in ns)."""

    samples: tuple
    minimum: float
    mean: float
    maximum: float
    stdev: float

    @property
    def n(self) -> int:
        return len(self.samples)


def summarize(samples: Iterable[float]) -> Measurement:
    """Summarise repeated measurements the way the paper reports them.

    The paper uses the minimum for latency-style quantities (barrier,
    message round trips — minimum filters out multitasking intrusion) and
    averages for throughput-style quantities; both are exposed here.
    """
    xs: List[float] = list(samples)
    if not xs:
        raise ValueError("no samples")
    n = len(xs)
    mean = sum(xs) / n
    var = sum((x - mean) ** 2 for x in xs) / n if n > 1 else 0.0
    return Measurement(
        samples=tuple(xs),
        minimum=min(xs),
        mean=mean,
        maximum=max(xs),
        stdev=math.sqrt(var),
    )
