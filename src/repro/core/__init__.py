"""Core utilities: machine configuration, units, metrics, methodology, tables."""

from .canon import canonical, canonical_json, config_dict, stable_hash
from .config import MachineConfig, spp1000
from .metrics import ScalingCurve, ScalingPoint, efficiency, mflops, speedup
from .stats import Measurement, corrected, summarize
from .tables import Series, Table, render_series
from . import units

__all__ = [
    "MachineConfig", "spp1000",
    "canonical", "canonical_json", "config_dict", "stable_hash",
    "mflops", "speedup", "efficiency", "ScalingPoint", "ScalingCurve",
    "Measurement", "corrected", "summarize",
    "Table", "Series", "render_series",
    "units",
]
