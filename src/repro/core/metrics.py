"""Performance metrics used throughout the evaluation.

These mirror the quantities the paper reports: MFLOP/s, parallel speed-up
relative to a one-processor run, and parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .units import to_seconds

__all__ = ["mflops", "speedup", "efficiency", "ScalingPoint", "ScalingCurve"]


def mflops(flops: float, time_ns: float) -> float:
    """Sustained MFLOP/s for ``flops`` floating-point operations in ``time_ns``."""
    if time_ns <= 0:
        raise ValueError("time must be positive")
    return flops / to_seconds(time_ns) / 1e6


def speedup(t1_ns: float, tp_ns: float) -> float:
    """Classic speed-up: one-processor time over p-processor time."""
    if t1_ns <= 0 or tp_ns <= 0:
        raise ValueError("times must be positive")
    return t1_ns / tp_ns


def efficiency(t1_ns: float, tp_ns: float, p: int) -> float:
    """Parallel efficiency: speed-up divided by processor count."""
    if p < 1:
        raise ValueError("processor count must be >= 1")
    return speedup(t1_ns, tp_ns) / p


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling study: p processors -> time (and flops)."""

    processors: int
    time_ns: float
    flops: float = 0.0

    @property
    def mflops(self) -> float:
        return mflops(self.flops, self.time_ns) if self.flops else 0.0


@dataclass(frozen=True)
class ScalingCurve:
    """A labelled series of :class:`ScalingPoint`, e.g. one line of Fig 6."""

    label: str
    points: tuple

    def __init__(self, label: str, points: Sequence[ScalingPoint]):
        object.__setattr__(self, "label", label)
        object.__setattr__(
            self, "points", tuple(sorted(points, key=lambda p: p.processors)))

    def time_at(self, p: int) -> float:
        for pt in self.points:
            if pt.processors == p:
                return pt.time_ns
        raise KeyError(f"no point at p={p} in curve {self.label!r}")

    def speedups(self, baseline_ns: float | None = None) -> list:
        """Speed-ups vs the 1-processor point (or an explicit baseline)."""
        if baseline_ns is None:
            baseline_ns = self.time_at(1)
        return [(pt.processors, speedup(baseline_ns, pt.time_ns))
                for pt in self.points]

    @property
    def processors(self) -> list:
        return [pt.processors for pt in self.points]
