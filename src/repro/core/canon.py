"""Canonical serialization and hashing of configuration objects.

The execution fabric (:mod:`repro.exec`) keys its on-disk result cache
by the *content* of a work unit — its parameters, the machine
configuration, the ambient fault plan — so two processes, or two runs a
week apart, must serialize the same configuration to the same bytes.
The observability manifests (:mod:`repro.obs.metrics`) embed the same
canonical form so manifest ``config`` blocks diff cleanly.

Canonical form rules:

* dataclasses become plain dicts of their fields;
* tuples, sets, and frozensets become lists (sets sorted by their
  canonical JSON, so iteration order cannot leak in);
* enums become their ``value``;
* numpy scalars/arrays become Python scalars/lists (via ``tolist``);
* dict keys become strings, and :func:`canonical_json` sorts them;
* anything else that is not already a JSON scalar is rejected loudly —
  a silently lossy ``str(obj)`` would make cache keys lie.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict

__all__ = ["canonical", "canonical_json", "config_dict", "stable_hash"]


def canonical(obj: Any) -> Any:
    """Recursively coerce ``obj`` into canonical JSON-able form."""
    if isinstance(obj, enum.Enum):
        return canonical(obj.value)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        items = [canonical(v) for v in obj]
        return sorted(items, key=lambda v: json.dumps(v, sort_keys=True))
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, int):
        return int(obj)  # normalise int subclasses
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, str):
        return obj
    if hasattr(obj, "tolist"):  # numpy scalar or array
        return canonical(obj.tolist())
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__}: {obj!r} (add an "
        "explicit conversion rather than relying on str())")


def canonical_json(obj: Any) -> str:
    """``obj`` as byte-stable JSON: canonical form, sorted keys, no
    whitespace, ASCII only."""
    return json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def config_dict(config: Any) -> Dict[str, Any]:
    """A dataclass config as a canonical plain dict (for manifests)."""
    out = canonical(config)
    if not isinstance(out, dict):
        raise TypeError(f"expected a dataclass/dict config, got "
                        f"{type(config).__name__}")
    return out


def stable_hash(obj: Any, length: int = 64) -> str:
    """Hex SHA-256 of the canonical JSON of ``obj`` (``length`` chars)."""
    digest = hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()
    return digest[:length]
