"""Unit helpers.

All simulated time in this project is kept in **nanoseconds** (float); the
SPP-1000's 100 MHz clock makes one CPU cycle exactly 10 ns.  Sizes are in
bytes.  These helpers keep conversions explicit and greppable.
"""

from __future__ import annotations

__all__ = [
    "NS_PER_US", "NS_PER_MS", "NS_PER_S",
    "KIB", "MIB",
    "us", "ms", "seconds", "to_us", "to_ms", "to_seconds",
]

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0

KIB = 1024
MIB = 1024 * 1024


def us(value: float) -> float:
    """Microseconds -> nanoseconds."""
    return value * NS_PER_US


def ms(value: float) -> float:
    """Milliseconds -> nanoseconds."""
    return value * NS_PER_MS


def seconds(value: float) -> float:
    """Seconds -> nanoseconds."""
    return value * NS_PER_S


def to_us(ns: float) -> float:
    """Nanoseconds -> microseconds."""
    return ns / NS_PER_US


def to_ms(ns: float) -> float:
    """Nanoseconds -> milliseconds."""
    return ns / NS_PER_MS


def to_seconds(ns: float) -> float:
    """Nanoseconds -> seconds."""
    return ns / NS_PER_S
