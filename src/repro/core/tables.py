"""Plain-text rendering of experiment results (tables and figure series).

Every experiment in :mod:`repro.experiments` returns structured data plus a
renderable :class:`Table` or set of :class:`Series`, so `python -m repro
fig4` prints the same rows/series the paper's Figure 4 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["Table", "Series", "render_series"]


@dataclass
class Table:
    """A titled table with a header row and uniform formatting."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} "
                "columns")
        self.rows.append(cells)

    def render(self, float_fmt: str = "{:.2f}") -> str:
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return float_fmt.format(cell)
            return str(cell)

        text_rows = [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, ""]
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in text_rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class Series:
    """One labelled (x, y) series of a figure."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self):
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal length")


def render_series(title: str, series: Sequence[Series],
                  x_name: str = "x", y_name: str = "y",
                  float_fmt: str = "{:.2f}") -> str:
    """Render several series as a combined table keyed by x."""
    xs = sorted({x for s in series for x in s.x})
    table = Table(title, [x_name] + [s.label for s in series])
    lookup = [{x: y for x, y in zip(s.x, s.y)} for s in series]
    for x in xs:
        cells = [x]
        for m in lookup:
            y = m.get(x)
            cells.append(float_fmt.format(y) if isinstance(y, float) else
                         (y if y is not None else "-"))
        table.add_row(*cells)
    return table.render(float_fmt)
