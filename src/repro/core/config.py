"""Machine configuration: every calibration knob of the SPP-1000 model.

The defaults reproduce the machine evaluated in the paper.  Structural
parameters (hypernode composition, line/page sizes, clock) come straight
from §2 of the paper; latency parameters are either quoted by the paper
(cache hit throughput, 50–60 cycle local miss, ~8x remote miss) or
calibrated so the §4 microbenchmarks land near the reported curves.  Each
calibrated constant says so in its comment.

Two presets matter:

* :func:`spp1000` — the 2-hypernode, 16-processor machine the paper
  measured (the default for all experiments);
* ``spp1000(n_hypernodes=16)`` — the full 128-processor configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from .units import KIB, MIB

__all__ = ["MachineConfig", "spp1000"]


@dataclass(frozen=True)
class MachineConfig:
    """Structural and temporal parameters of the simulated SPP-1000."""

    # ---- structure (paper §2) -----------------------------------------
    n_hypernodes: int = 2            #: hypernodes in the system (<= 16)
    fus_per_hypernode: int = 4       #: functional units per hypernode
    cpus_per_fu: int = 2             #: PA-RISC 7100 CPUs per functional unit
    n_rings: int = 4                 #: parallel SCI rings (FU i <-> ring i)
    clock_ns: float = 10.0           #: 100 MHz processor clock
    line_bytes: int = 32             #: cache line size
    page_bytes: int = 4 * KIB        #: virtual memory page size
    dcache_bytes: int = 1 * MIB      #: per-CPU direct-mapped data cache
    bank_bytes: int = 16 * MIB       #: per-bank physical memory (2 banks/FU)
    banks_per_fu: int = 2

    # ---- local memory path (paper: miss = 50-60 cycles) ----------------
    issue_cycles: int = 5            #: request issue/translation at the CPU
    crossbar_cycles: int = 10        #: one traversal of the 5-port crossbar
    bank_cycles: int = 30            #: memory bank busy time per line
    fill_cycles: int = 10            #: line fill into the requesting cache
    # total local miss = 5 + 10 + 30 + 10 = 55 cycles = 550 ns  (paper 50-60)

    # ---- global (SCI) path (paper: ~8x local miss on average) ----------
    agent_cycles: int = 150          #: CCMC/agent protocol processing per side
    ring_hop_cycles: int = 25        #: one hop on an SCI ring
    gcb_lookup_cycles: int = 8       #: global-cache-buffer tag check
    ring_reroute_extra_cycles: int = 90  #: detour of one packet around a
                                         #  failed ring: crossbar hop to a
                                         #  surviving ring's FU + extra
                                         #  agent forwarding (degraded mode)
    # 2-hypernode remote miss ~= 55 + 2*150 + 2*25 + 30 + SCI bookkeeping
    # ~= 450 cycles, close to the paper's "factor of eight on average"
    # over the 55-60 cycle local miss.

    # ---- coherence ------------------------------------------------------
    dir_lookup_cycles: int = 4       #: intra-node directory tag access
    dir_inval_cycles: int = 12       #: invalidate one local sharer's copy
    sci_update_cycles: int = 40      #: SCI sharing-list pointer update
    spin_wakeup_cycles: int = 80     #: spin loop notices its line went invalid
                                     #  (calibrated: re-read issue + restart)

    # ---- address translation (paper 2.2: on-chip TLB) -------------------
    tlb_entries: int = 96            #: data-TLB reach per CPU
    tlb_miss_cycles: int = 80        #: software miss-handler cost
                                     #  (PA-RISC traps to a handler)

    # ---- uncached operations (semaphores) -------------------------------
    uncached_local_cycles: int = 50  #: fetch&add at a local/home bank
    # remote uncached ops take the full SCI path computed mechanistically

    # ---- thread runtime (CPSlib analogue; calibrated to Fig 2/3) --------
    spawn_local_cycles: int = 380    #: software cost to create/dispatch one
                                     #  thread on the spawning hypernode
    spawn_remote_extra_cycles: int = 430  #: extra software cost per thread
                                          #  dispatched to another hypernode
    cross_node_setup_cycles: int = 4300   #: one-time kernel-to-kernel setup
                                          #  when a fork first touches a
                                          #  second hypernode (paper: ~50 us)
    join_per_thread_cycles: int = 60      #: parent-side bookkeeping per join
    barrier_entry_cycles: int = 170       #: software cost of entering barrier
    barrier_release_per_thread_cycles: int = 140  #: OS/software cost to get
                                                  #  one spinning thread back
                                                  #  on core (calibrated:
                                                  #  Fig 3 LILO slope ~2 us)
    remote_release_extra_cycles: int = 100        #: extra per-thread release
                                                  #  cost across hypernodes

    # ---- ConvexPVM (calibrated to Fig 4) --------------------------------
    pvm_send_overhead_cycles: int = 620   #: library send path (no daemon)
    pvm_recv_overhead_cycles: int = 620   #: library receive path
    pvm_fastbuf_pages: int = 2            #: preallocated shared-buffer pages
                                          #  (8 KB: the knee in Fig 4)
    page_touch_local_cycles: int = 700    #: map+first-touch one fresh page,
                                          #  same hypernode
    page_touch_remote_cycles: int = 1900  #: ditto across the SCI ring
    stream_line_cycles: int = 2           #: per-line cost of a bulk copy once
                                          #  the path is warm (pipelined)
    remote_stream_factor: int = 2         #: bulk-copy per-line multiplier when
                                          #  the data streams over an SCI ring

    # ---- application performance model (repro.perfmodel) ----------------
    flop_cycles: float = 3.0         #: sustained cycles per flop for scalar
                                     #  PA-RISC code (calibrated: the paper's
                                     #  single-CPU rates are 24-31 MFLOP/s)
    mem_port_cycles: float = 0.7     #: cycles per cached 8-byte access
                                     #  (load/flop issue overlap)
    cold_miss_fraction: float = 0.02 #: compulsory misses per pass even for
                                     #  cache-resident data
    cache_ramp_lo: float = 0.8       #: working set below lo*cache: resident
    cache_ramp_hi: float = 1.6       #: above hi*cache: fully spilled
    stream_overlap: float = 2.0      #: outstanding-miss overlap for
                                     #  unit-stride sweeps
    random_miss_cap: float = 0.35    #: ceiling on per-access miss rate for
                                     #  irregular phases (line-level spatial
                                     #  locality + temporal reuse; the paper's
                                     #  codes Morton-order their data)
    bank_contention: float = 0.04    #: per extra thread sharing a hypernode's
                                     #  banks/crossbar
    ring_contention: float = 0.12    #: per extra remote-traffic generator
                                     #  sharing the rings

    # ---- OS / scheduling -------------------------------------------------
    os_daemon_load: float = 0.06     #: fraction of one CPU consumed by OS
                                     #  housekeeping per hypernode (drives the
                                     #  "16 threads on 16 CPUs" interference
                                     #  the paper complains about in §6)
    timer_overhead_cycles: int = 30  #: cost of one timestamp (gettimeofday);
                                     #  measurements are corrected for it,
                                     #  mirroring the paper's methodology

    # ---- derived helpers -------------------------------------------------
    @property
    def cpus_per_hypernode(self) -> int:
        return self.fus_per_hypernode * self.cpus_per_fu

    @property
    def n_cpus(self) -> int:
        return self.n_hypernodes * self.cpus_per_hypernode

    @property
    def n_fus(self) -> int:
        return self.n_hypernodes * self.fus_per_hypernode

    @property
    def dcache_lines(self) -> int:
        return self.dcache_bytes // self.line_bytes

    @property
    def lines_per_page(self) -> int:
        return self.page_bytes // self.line_bytes

    @property
    def miss_local_cycles(self) -> int:
        """Canonical local-miss latency (issue+crossbar+bank+fill)."""
        return (self.issue_cycles + self.crossbar_cycles
                + self.bank_cycles + self.fill_cycles)

    def cycles(self, n: float) -> float:
        """Convert cycles to nanoseconds."""
        return n * self.clock_ns

    def validate(self) -> None:
        """Raise ``ValueError`` for structurally impossible configurations."""
        if not (1 <= self.n_hypernodes <= 16):
            raise ValueError("SPP-1000 supports 1..16 hypernodes")
        if self.fus_per_hypernode != self.n_rings:
            raise ValueError(
                "each functional unit must pair with exactly one ring")
        if self.line_bytes <= 0 or self.page_bytes % self.line_bytes:
            raise ValueError("page size must be a multiple of the line size")
        if self.dcache_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        if self.cpus_per_fu < 1 or self.banks_per_fu < 1:
            raise ValueError("functional unit needs CPUs and banks")

    def with_(self, **overrides) -> "MachineConfig":
        """Return a modified copy (convenience around dataclasses.replace)."""
        cfg = replace(self, **overrides)
        cfg.validate()
        return cfg


def spp1000(n_hypernodes: int = 2, **overrides) -> MachineConfig:
    """The SPP-1000 the paper measured: ``n_hypernodes`` x 8 PA-RISC CPUs."""
    cfg = MachineConfig(n_hypernodes=n_hypernodes, **overrides)
    cfg.validate()
    return cfg
