"""HLLC approximate Riemann solver for the 1-D Euler equations.

Operates on primitive-state arrays ``(rho, u, v, p)`` where ``u`` is the
velocity normal to the interface and ``v`` the (passively advected)
transverse velocity.  Returns the flux of the conserved variables
``(rho, rho u, rho v, E)``.  Vectorised over arbitrary array shapes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .eos import GammaLawEOS

__all__ = ["hllc_flux"]


def _conserved(rho, u, v, p, gamma):
    e = p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v)
    return np.stack([rho, rho * u, rho * v, e], axis=0)


def _flux(rho, u, v, p, gamma):
    e = p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v)
    return np.stack([rho * u,
                     rho * u * u + p,
                     rho * u * v,
                     (e + p) * u], axis=0)


def hllc_flux(left: Tuple[np.ndarray, ...], right: Tuple[np.ndarray, ...],
              eos: GammaLawEOS) -> np.ndarray:
    """HLLC flux between primitive states ``left`` and ``right``.

    Each state is a 4-tuple ``(rho, u, v, p)`` of equal-shape arrays;
    the result has shape ``(4,) + rho.shape``.
    """
    gamma = eos.gamma
    rl, ul, vl, pl = (np.asarray(x, dtype=float) for x in left)
    rr, ur, vr, pr = (np.asarray(x, dtype=float) for x in right)
    rl = np.maximum(rl, 1e-12)
    rr = np.maximum(rr, 1e-12)
    pl = np.maximum(pl, 1e-12)
    pr = np.maximum(pr, 1e-12)

    cl = eos.sound_speed(rl, pl)
    cr = eos.sound_speed(rr, pr)
    # Davis wave-speed estimates
    sl = np.minimum(ul - cl, ur - cr)
    sr = np.maximum(ul + cl, ur + cr)
    # contact speed
    s_star = (pr - pl + rl * ul * (sl - ul) - rr * ur * (sr - ur)) \
        / (rl * (sl - ul) - rr * (sr - ur))

    u_l = _conserved(rl, ul, vl, pl, gamma)
    u_r = _conserved(rr, ur, vr, pr, gamma)
    f_l = _flux(rl, ul, vl, pl, gamma)
    f_r = _flux(rr, ur, vr, pr, gamma)

    def star_state(rho, u, v, p, s, u_cons):
        factor = rho * (s - u) / (s - s_star)
        e = u_cons[3]
        star = np.stack([
            factor,
            factor * s_star,
            factor * v,
            factor * (e / rho + (s_star - u)
                      * (s_star + p / (rho * (s - u)))),
        ], axis=0)
        return star

    star_l = star_state(rl, ul, vl, pl, sl, u_l)
    star_r = star_state(rr, ur, vr, pr, sr, u_r)

    f_star_l = f_l + sl * (star_l - u_l)
    f_star_r = f_r + sr * (star_r - u_r)

    flux = np.where(sl >= 0.0, f_l,
                    np.where(s_star >= 0.0, f_star_l,
                             np.where(sr >= 0.0, f_star_r, f_r)))
    return flux
