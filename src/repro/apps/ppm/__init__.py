"""Piecewise-Parabolic Method hydrodynamics — PROMETHEUS (paper §5.4).

Numerics: :class:`GammaLawEOS`, PPM reconstruction, HLLC Riemann solver,
directionally split sweeps, the monolithic :class:`PPMSolver2D`, and the
:class:`TiledPPM` domain decomposition with four-deep ghost frames
(bit-identical to the monolithic solver).

Performance: :class:`PPMWorkload` with the exact Table 2 configurations
(:data:`TABLE2_PROBLEMS`).
"""

from .eos import GammaLawEOS
from .exact_riemann import (
    RiemannState,
    exact_riemann,
    sample_riemann,
    sod_exact,
)
from .reconstruct import ppm_reconstruct, vanleer_slopes
from .riemann import hllc_flux
from .solver import PPMSolver2D, blast_state, sod_state, uniform_state
from .sweep import (
    FLOPS_PER_ZONE_PER_STEP,
    GHOST,
    max_wavespeed,
    primitives,
    sweep,
)
from .tiles import Tile, TiledPPM
from .workload import TABLE2_PROBLEMS, PPMProblem, PPMWorkload

__all__ = [
    "GammaLawEOS", "ppm_reconstruct", "vanleer_slopes", "hllc_flux",
    "RiemannState", "exact_riemann", "sample_riemann", "sod_exact",
    "PPMSolver2D", "uniform_state", "sod_state", "blast_state",
    "sweep", "primitives", "max_wavespeed", "GHOST",
    "FLOPS_PER_ZONE_PER_STEP",
    "Tile", "TiledPPM", "PPMProblem", "PPMWorkload", "TABLE2_PROBLEMS",
]
