"""Directionally split PPM sweeps (paper §5.4).

One sweep performs, along one axis: primitive recovery, PPM
reconstruction, HLLC fluxes, and the conservative update.  Arrays carry
guard cells; the update stencil spans four cells each side (the paper's
"nine-point scheme", hence its four-deep ghost frames).

The sweep writes every cell with full stencil support, so tiles can run
an x-sweep over their whole padded array (keeping y-ghost rows valid)
followed by a y-sweep of the interior — exactly one ghost exchange per
timestep, as the paper describes.
"""

from __future__ import annotations

import numpy as np

from .eos import GammaLawEOS
from .reconstruct import ppm_reconstruct
from .riemann import hllc_flux

__all__ = ["GHOST", "primitives", "sweep", "max_wavespeed",
           "FLOPS_PER_ZONE_PER_STEP"]

#: ghost-frame width (paper: "frame is four grid points wide")
GHOST = 4

#: PROMETHEUS-calibre work per zone per timestep (paper: "a few thousand
#: floating point operations ... to update each zone for a single time
#: step"); used by the performance workload's flop ledger.
FLOPS_PER_ZONE_PER_STEP = 3000.0


def primitives(u: np.ndarray, eos: GammaLawEOS):
    """Conserved (4, ...) -> primitive (rho, ux, uy, p)."""
    rho = np.maximum(u[0], 1e-12)
    ux = u[1] / rho
    uy = u[2] / rho
    e_int = u[3] / rho - 0.5 * (ux * ux + uy * uy)
    p = np.maximum(eos.pressure(rho, e_int), 1e-12)
    return rho, ux, uy, p


def max_wavespeed(u: np.ndarray, eos: GammaLawEOS) -> float:
    """max(|v| + c) over all zones (for the CFL condition)."""
    rho, ux, uy, p = primitives(u, eos)
    c = eos.sound_speed(rho, p)
    return float((np.sqrt(ux * ux + uy * uy) + c).max())


def sweep(u: np.ndarray, dt: float, dx: float, eos: GammaLawEOS,
          axis: int) -> np.ndarray:
    """One PPM sweep along ``axis`` (1 = x, 2 = y of a (4, nx, ny) array).

    Returns a new array; cells without full stencil support keep their
    input values.
    """
    if axis not in (1, 2):
        raise ValueError("axis must be 1 (x) or 2 (y)")
    if axis == 2:
        # transpose so the sweep is along array axis 1, and swap the
        # momentum components so u[1] is always the normal momentum
        ut = u[[0, 2, 1, 3]].transpose(0, 2, 1)
        out = sweep(ut, dt, dx, eos, axis=1)
        return out[[0, 2, 1, 3]].transpose(0, 2, 1)

    n = u.shape[1]
    if n < 2 * GHOST + 1:
        raise ValueError("sweep needs at least 9 cells along the axis")
    rho, un, ut, p = primitives(u, eos)

    recon = [ppm_reconstruct(q) for q in (rho, un, ut, p)]
    # left/right states at the face between cells j and j+1 (index j)
    left_state = tuple(r[1][:-1] for r in recon)    # right edge of cell j
    right_state = tuple(r[0][1:] for r in recon)    # left edge of cell j+1
    flux = hllc_flux(left_state, right_state, eos)  # (4, n-1, m)

    out = u.copy()
    # update cells with full support: j in [GHOST-1, n-GHOST]
    lo, hi = GHOST - 1, n - GHOST
    out[:, lo:hi + 1] = u[:, lo:hi + 1] - (dt / dx) * (
        flux[:, lo:hi + 1] - flux[:, lo - 1:hi])
    return out
