"""Monolithic (single-array) 2-D PPM driver with periodic boundaries.

The reference solver the tiled decomposition is validated against.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .eos import GammaLawEOS
from .sweep import GHOST, max_wavespeed, primitives, sweep

__all__ = ["PPMSolver2D", "sod_state", "uniform_state", "blast_state"]


def uniform_state(nx: int, ny: int, rho: float = 1.0, ux: float = 0.0,
                  uy: float = 0.0, p: float = 1.0,
                  gamma: float = 1.4) -> np.ndarray:
    """Uniform conserved state of shape (4, nx, ny)."""
    e = p / (gamma - 1.0) + 0.5 * rho * (ux * ux + uy * uy)
    u = np.empty((4, nx, ny))
    u[0] = rho
    u[1] = rho * ux
    u[2] = rho * uy
    u[3] = e
    return u


def sod_state(nx: int, ny: int, gamma: float = 1.4,
              axis: int = 0) -> np.ndarray:
    """Sod shock tube along one axis."""
    u = uniform_state(nx, ny, gamma=gamma)
    n = nx if axis == 0 else ny
    index = np.arange(n) >= n // 2
    low = np.array([0.125, 0.0, 0.0, 0.1 / (gamma - 1.0)])
    if axis == 0:
        u[:, index, :] = low[:, None, None]
    else:
        u[:, :, index] = low[:, None, None]
    return u


def blast_state(nx: int, ny: int, gamma: float = 1.4,
                pressure_jump: float = 100.0, radius: float = 0.1
                ) -> np.ndarray:
    """A central over-pressurised disc (Sedov-like blast)."""
    u = uniform_state(nx, ny, p=1.0, gamma=gamma)
    x = (np.arange(nx) + 0.5) / nx - 0.5
    y = (np.arange(ny) + 0.5) / ny - 0.5
    r2 = x[:, None] ** 2 + y[None, :] ** 2
    inside = r2 < radius ** 2
    u[3][inside] = pressure_jump / (gamma - 1.0)
    return u


class PPMSolver2D:
    """Dimensionally split PPM on a periodic rectangular grid."""

    def __init__(self, u: np.ndarray, dx: float = 1.0, dy: float = 1.0,
                 eos: GammaLawEOS = GammaLawEOS(), cfl: float = 0.4):
        if u.ndim != 3 or u.shape[0] != 4:
            raise ValueError("state must be (4, nx, ny)")
        if not 0 < cfl <= 1:
            raise ValueError("CFL must be in (0, 1]")
        self.u = u.astype(float).copy()
        self.dx = dx
        self.dy = dy
        self.eos = eos
        self.cfl = cfl
        self.step_count = 0

    @property
    def shape(self) -> Tuple[int, int]:
        return self.u.shape[1], self.u.shape[2]

    def stable_dt(self) -> float:
        speed = max_wavespeed(self.u, self.eos)
        return self.cfl * min(self.dx, self.dy) / speed

    def _padded_sweep(self, u: np.ndarray, dt: float, axis: int
                      ) -> np.ndarray:
        """Sweep with periodic wrap padding of GHOST cells."""
        pad = [(0, 0), (0, 0), (0, 0)]
        pad[axis] = (GHOST, GHOST)
        up = np.pad(u, pad, mode="wrap")
        spacing = self.dx if axis == 1 else self.dy
        swept = sweep(up, dt, spacing, self.eos, axis=axis)
        slicer = [slice(None)] * 3
        slicer[axis] = slice(GHOST, -GHOST)
        return swept[tuple(slicer)]

    def step(self) -> float:
        """One x-then-y split timestep; returns the dt used."""
        dt = self.stable_dt()
        self.u = self._padded_sweep(self.u, dt, axis=1)
        self.u = self._padded_sweep(self.u, dt, axis=2)
        self.step_count += 1
        return dt

    def run(self, n_steps: int) -> List[float]:
        return [self.step() for _ in range(n_steps)]

    def totals(self) -> Dict[str, float]:
        """Conserved totals (exact invariants on the periodic domain)."""
        cell = self.dx * self.dy
        return {
            "mass": float(self.u[0].sum()) * cell,
            "momentum_x": float(self.u[1].sum()) * cell,
            "momentum_y": float(self.u[2].sum()) * cell,
            "energy": float(self.u[3].sum()) * cell,
        }

    def primitive_fields(self):
        """(rho, ux, uy, p) for diagnostics/tests."""
        return primitives(self.u, self.eos)
