"""Tile decomposition of the PPM grid (paper §5.4).

The grid is divided into rectangular tiles, each surrounded by a
four-deep frame of ghost points; ghosts are refreshed **once per
timestep** (the paper: "four rows of values must be exchanged between
adjacent tiles once per time step"), after which every tile advances
independently: an x-sweep over its whole padded array (which keeps the
y-ghost rows consistent) followed by a y-sweep of the interior.

``TiledPPM.step`` is bit-identical to the monolithic
:class:`~repro.apps.ppm.solver.PPMSolver2D` — the integration tests
assert exact agreement, which is the correctness argument for the
decomposition the paper's performance table relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .eos import GammaLawEOS
from .solver import PPMSolver2D
from .sweep import GHOST, max_wavespeed, sweep

__all__ = ["Tile", "TiledPPM"]


@dataclass
class Tile:
    """One tile: interior (w x h) plus a GHOST-deep frame."""

    ix: int
    iy: int
    x0: int
    y0: int
    w: int
    h: int
    data: np.ndarray   #: (4, w + 2*GHOST, h + 2*GHOST)

    @property
    def interior(self) -> np.ndarray:
        return self.data[:, GHOST:GHOST + self.w, GHOST:GHOST + self.h]

    @property
    def ghost_cells(self) -> int:
        padded = (self.w + 2 * GHOST) * (self.h + 2 * GHOST)
        return padded - self.w * self.h


class TiledPPM:
    """Periodic 2-D PPM advanced tile by tile."""

    def __init__(self, u: np.ndarray, tiles_x: int, tiles_y: int,
                 dx: float = 1.0, dy: float = 1.0,
                 eos: GammaLawEOS = GammaLawEOS(), cfl: float = 0.4):
        if u.ndim != 3 or u.shape[0] != 4:
            raise ValueError("state must be (4, nx, ny)")
        _, nx, ny = u.shape
        if nx % tiles_x or ny % tiles_y:
            raise ValueError(
                f"{tiles_x} x {tiles_y} tiles do not evenly divide the "
                f"{nx} x {ny} grid")
        w, h = nx // tiles_x, ny // tiles_y
        if w < GHOST or h < GHOST:
            raise ValueError("tiles must be at least as wide as the "
                             "ghost frame")
        self.nx, self.ny = nx, ny
        self.tiles_x, self.tiles_y = tiles_x, tiles_y
        self.dx, self.dy = dx, dy
        self.eos = eos
        self.cfl = cfl
        self.step_count = 0
        self.exchanged_bytes = 0
        self._global = u.astype(float).copy()
        self.tiles: List[Tile] = []
        for ix in range(tiles_x):
            for iy in range(tiles_y):
                self.tiles.append(Tile(
                    ix, iy, ix * w, iy * h, w, h,
                    np.zeros((4, w + 2 * GHOST, h + 2 * GHOST))))
        self.exchange_ghosts()

    # -- ghost exchange ------------------------------------------------------
    def exchange_ghosts(self) -> None:
        """Refresh every tile's padded array from the composed grid.

        Equivalent to pairwise neighbour (and corner) exchanges on the
        periodic tile topology; the byte counter records the volume a
        message/shared-memory implementation would move.
        """
        g = self._global
        xs = np.arange(-GHOST, 0)  # template reused below
        for tile in self.tiles:
            xi = (np.arange(tile.x0 - GHOST,
                            tile.x0 + tile.w + GHOST)) % self.nx
            yi = (np.arange(tile.y0 - GHOST,
                            tile.y0 + tile.h + GHOST)) % self.ny
            tile.data[:] = g[:, xi[:, None], yi[None, :]]
            self.exchanged_bytes += tile.ghost_cells * 4 * 8

    def _commit(self) -> None:
        for tile in self.tiles:
            self._global[:, tile.x0:tile.x0 + tile.w,
                         tile.y0:tile.y0 + tile.h] = tile.interior

    # -- stepping -----------------------------------------------------------------
    def stable_dt(self) -> float:
        speed = max_wavespeed(self._global, self.eos)
        return self.cfl * min(self.dx, self.dy) / speed

    def step(self) -> float:
        """One split step: global dt, one exchange, independent tiles."""
        dt = self.stable_dt()
        self.exchange_ghosts()
        for tile in self.tiles:
            swept = sweep(tile.data, dt, self.dx, self.eos, axis=1)
            swept = sweep(swept, dt, self.dy, self.eos, axis=2)
            tile.data = swept
        self._commit()
        self.step_count += 1
        return dt

    def run(self, n_steps: int) -> List[float]:
        return [self.step() for _ in range(n_steps)]

    # -- inspection ----------------------------------------------------------------
    def gather(self) -> np.ndarray:
        """The composed global state."""
        return self._global.copy()

    def totals(self) -> Dict[str, float]:
        cell = self.dx * self.dy
        g = self._global
        return {"mass": float(g[0].sum()) * cell,
                "momentum_x": float(g[1].sum()) * cell,
                "momentum_y": float(g[2].sum()) * cell,
                "energy": float(g[3].sum()) * cell}

    def reference_solver(self) -> PPMSolver2D:
        """A monolithic solver starting from the same state."""
        return PPMSolver2D(self.gather(), self.dx, self.dy, self.eos,
                           self.cfl)
