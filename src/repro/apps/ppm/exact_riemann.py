"""Exact Riemann solver for the 1-D Euler equations (Toro's method).

Used to validate the PPM scheme against analytic solutions: the
star-region pressure is found by Newton iteration on the pressure
function, and the full similarity solution rho(x/t), u(x/t), p(x/t) is
sampled — rarefactions, contacts and shocks included.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["RiemannState", "exact_riemann", "sample_riemann", "sod_exact"]


@dataclass(frozen=True)
class RiemannState:
    """One side of the Riemann problem (primitive variables)."""

    rho: float
    u: float
    p: float

    def __post_init__(self):
        if self.rho <= 0 or self.p <= 0:
            raise ValueError("density and pressure must be positive")

    def sound_speed(self, gamma: float) -> float:
        return math.sqrt(gamma * self.p / self.rho)


def _pressure_function(p: float, state: RiemannState, gamma: float
                       ) -> Tuple[float, float]:
    """Toro's f(p, state) and its derivative."""
    if p > state.p:   # shock
        a = 2.0 / ((gamma + 1.0) * state.rho)
        b = (gamma - 1.0) / (gamma + 1.0) * state.p
        root = math.sqrt(a / (p + b))
        f = (p - state.p) * root
        df = root * (1.0 - 0.5 * (p - state.p) / (p + b))
    else:             # rarefaction
        c = state.sound_speed(gamma)
        ratio = p / state.p
        f = (2.0 * c / (gamma - 1.0)
             * (ratio ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0))
        df = ratio ** (-(gamma + 1.0) / (2.0 * gamma)) / (state.rho * c)
    return f, df


def exact_riemann(left: RiemannState, right: RiemannState,
                  gamma: float = 1.4, tol: float = 1e-12,
                  max_iter: int = 100) -> Tuple[float, float]:
    """Star-region pressure and velocity ``(p_star, u_star)``."""
    du = right.u - left.u
    # vacuum check
    critical = (2.0 / (gamma - 1.0)
                * (left.sound_speed(gamma) + right.sound_speed(gamma)))
    if critical <= du:
        raise ValueError("initial states generate vacuum")
    p = max(0.5 * (left.p + right.p), 1e-8)   # initial guess
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, left, gamma)
        f_r, df_r = _pressure_function(p, right, gamma)
        delta = (f_l + f_r + du) / (df_l + df_r)
        p_new = max(p - delta, 1e-12)
        if abs(p_new - p) < tol * max(p, 1.0):
            p = p_new
            break
        p = p_new
    f_l, _ = _pressure_function(p, left, gamma)
    f_r, _ = _pressure_function(p, right, gamma)
    u = 0.5 * (left.u + right.u) + 0.5 * (f_r - f_l)
    return p, u


def sample_riemann(left: RiemannState, right: RiemannState,
                   xi: np.ndarray, gamma: float = 1.4
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample the similarity solution at speeds ``xi = x/t``.

    Returns ``(rho, u, p)`` arrays.
    """
    p_star, u_star = exact_riemann(left, right, gamma)
    xi = np.asarray(xi, dtype=float)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)
    gm1, gp1 = gamma - 1.0, gamma + 1.0

    for i, s in enumerate(xi):
        if s <= u_star:   # left of the contact
            st = left
            sign = 1.0
        else:
            st = right
            sign = -1.0
        c = st.sound_speed(gamma)
        if p_star > st.p:
            # shock on this side
            shock_speed = st.u - sign * c * math.sqrt(
                gp1 / (2.0 * gamma) * p_star / st.p
                + gm1 / (2.0 * gamma))
            if sign * (s - shock_speed) <= 0.0:
                rho[i], u[i], p[i] = st.rho, st.u, st.p
            else:
                ratio = p_star / st.p
                rho[i] = st.rho * ((ratio + gm1 / gp1)
                                   / (gm1 / gp1 * ratio + 1.0))
                u[i], p[i] = u_star, p_star
        else:
            # rarefaction on this side
            c_star = c * (p_star / st.p) ** (gm1 / (2.0 * gamma))
            head = st.u - sign * c
            tail = u_star - sign * c_star
            if sign * (s - head) <= 0.0:
                rho[i], u[i], p[i] = st.rho, st.u, st.p
            elif sign * (s - tail) >= 0.0:
                rho[i] = st.rho * (p_star / st.p) ** (1.0 / gamma)
                u[i], p[i] = u_star, p_star
            else:
                # inside the fan
                u[i] = (2.0 / gp1) * (sign * c + gm1 / 2.0 * st.u + s)
                c_local = sign * (u[i] - s)
                rho[i] = st.rho * (c_local / c) ** (2.0 / gm1)
                p[i] = st.p * (c_local / c) ** (2.0 * gamma / gm1)
    return rho, u, p


def sod_exact(x: np.ndarray, t: float, gamma: float = 1.4,
              x0: float = 0.5) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The exact Sod solution at positions ``x`` and time ``t``."""
    if t <= 0:
        raise ValueError("time must be positive")
    left = RiemannState(1.0, 0.0, 1.0)
    right = RiemannState(0.125, 0.0, 0.1)
    return sample_riemann(left, right, (np.asarray(x) - x0) / t, gamma)
