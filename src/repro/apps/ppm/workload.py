"""Performance workload of the PPM code (paper §5.4, Table 2).

Each processor advances its share of tiles each step.  Per tile the
sweeps do the useful zone updates plus the frame work the stencil forces
(reconstruction reaches two cells into the frame per side, the face flux
one more: an effective ~2.2 extra columns/rows per side and sweep) and a
fixed per-tile sweep setup (temporaries, boundary copies) — together
these reproduce Table 2's lower rates for the 12 x 48 decomposition.
Ghost exchange moves a four-deep frame between adjacent tiles once per
step; with tiles processed one at a time, the working set is a tile, not
the grid, which is why PPM's rate is nearly independent of problem size
(Table 2's 240 x 960 row).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.config import MachineConfig
from ...perfmodel import (
    Access,
    LocalityMix,
    PerformanceModel,
    Phase,
    RunResult,
    StepWork,
    TeamSpec,
)
from ...runtime import Placement
from .sweep import FLOPS_PER_ZONE_PER_STEP, GHOST

__all__ = ["PPMProblem", "PPMWorkload", "TABLE2_PROBLEMS"]

_WORD = 8
_ZONE_WORDS = 16        #: state + temporaries per zone
#: per-tile, per-step sweep setup cost (loop startup, boundary copies,
#: temporary management), in flop-equivalents — calibrated against the
#: Table 2 gap between the 4x16 and 12x48 decompositions
TILE_OVERHEAD_FLOPS = 25_000.0
#: extra reconstruction/flux columns per side and sweep
FRAME_EXTRA = 2.2


@dataclass(frozen=True)
class PPMProblem:
    """One Table 2 configuration: grid and tile decomposition."""

    nx: int
    ny: int
    tiles_x: int
    tiles_y: int
    n_steps: int = 100

    def __post_init__(self):
        if self.nx % self.tiles_x or self.ny % self.tiles_y:
            raise ValueError("tiles must evenly divide the grid")

    @property
    def label(self) -> str:
        return (f"{self.nx}x{self.ny} grid, "
                f"{self.tiles_x}x{self.tiles_y} tiles")

    @property
    def n_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def tile_shape(self):
        return self.nx // self.tiles_x, self.ny // self.tiles_y

    @property
    def n_zones(self) -> int:
        return self.nx * self.ny

    def ghost_factor(self) -> float:
        """Work multiplier from frame computation (mean of both sweeps).

        Per sweep the stencil computes ~FRAME_EXTRA effective extra
        columns/rows (reconstruction 2 cells per side weighted by its
        share of the zone cost, plus the extra face flux).
        """
        w, h = self.tile_shape
        return 0.5 * ((1.0 + FRAME_EXTRA / w) + (1.0 + FRAME_EXTRA / h))

    def exchange_bytes_per_tile(self) -> float:
        w, h = self.tile_shape
        ghost_cells = (w + 2 * GHOST) * (h + 2 * GHOST) - w * h
        return ghost_cells * 4 * _WORD


#: the exact rows of Table 2 (processor counts handled by the runner)
TABLE2_PROBLEMS = {
    "120x480 / 4x16": PPMProblem(120, 480, 4, 16),
    "120x480 / 12x48": PPMProblem(120, 480, 12, 48),
    "240x960 / 4x16": PPMProblem(240, 960, 4, 16),
}


class PPMWorkload:
    """Builds StepWork records and runs them through the machine model."""

    def __init__(self, problem: PPMProblem, config: MachineConfig):
        self.problem = problem
        self.config = config
        self.model = PerformanceModel(config)

    def flops_per_step(self) -> float:
        """Useful flops (zone updates only, as Table 2 counts them)."""
        return FLOPS_PER_ZONE_PER_STEP * self.problem.n_zones

    def _mix(self, team: TeamSpec) -> LocalityMix:
        hns = team.n_hypernodes_used
        remote = 1.0 - 1.0 / hns
        return LocalityMix(private=0.0, node=1.0 - remote, remote=remote)

    def step(self, team: TeamSpec) -> StepWork:
        prob = self.problem
        n = team.n_threads
        if prob.n_tiles % n:
            raise ValueError(
                f"{prob.n_tiles} tiles do not divide over {n} processors")
        tiles_per_thread = prob.n_tiles // n
        zones_per_thread = prob.n_zones / n
        mix = self._mix(team)
        w, h = prob.tile_shape
        tile_bytes = (w + 2 * GHOST) * (h + 2 * GHOST) * _ZONE_WORDS * _WORD

        work_flops = (zones_per_thread * FLOPS_PER_ZONE_PER_STEP
                      * prob.ghost_factor()
                      + tiles_per_thread * TILE_OVERHEAD_FLOPS)
        phases = [
            # ghost exchange: the frame data of every owned tile; the
            # frames were written by neighbouring tiles last step, so no
            # cross-step reuse survives
            Phase("ghost/exchange", flops=0.0,
                  traffic_bytes=2.0 * tiles_per_thread
                  * prob.exchange_bytes_per_tile(),
                  working_set_bytes=tile_bytes,
                  locality=mix, access=Access.STREAM, remote_reuse=0.0),
            # the sweeps, one tile at a time: working set = one tile
            Phase("sweeps", flops=work_flops,
                  traffic_bytes=zones_per_thread * prob.ghost_factor()
                  * 5 * _ZONE_WORDS * _WORD,
                  working_set_bytes=tile_bytes,
                  locality=mix, access=Access.STREAM, remote_reuse=0.8),
            # CFL reduction over owned zones
            Phase("cfl", flops=zones_per_thread * 6,
                  traffic_bytes=zones_per_thread * 4 * _WORD,
                  working_set_bytes=tile_bytes,
                  locality=mix, access=Access.STREAM, remote_reuse=0.8),
        ]
        return StepWork([list(phases) for _ in range(n)], barriers=2)

    def run(self, n_threads: int,
            placement: Placement = Placement.HIGH_LOCALITY) -> RunResult:
        team = TeamSpec(self.config, n_threads, placement)
        result = self.model.run([self.step(team)], team,
                                repeat=self.problem.n_steps)
        useful = self.flops_per_step() * self.problem.n_steps
        return RunResult(result.time_ns, useful, n_threads)
