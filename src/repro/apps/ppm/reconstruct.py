"""Piecewise-parabolic reconstruction (Colella & Woodward 1984, paper [6]).

Given cell averages along axis 0, computes monotonised left/right
interface values of the parabola in each cell:

1. fourth-order interface interpolation
   ``a_{j+1/2} = 7/12 (a_j + a_{j+1}) - 1/12 (a_{j-1} + a_{j+2})``
   using van-Leer-limited slopes,
2. the CW84 monotonicity adjustments (flatten local extrema, pull back
   overshooting parabola edges).

Everything is vectorised over the transverse dimension: inputs are
``(n, m)`` arrays reconstructed along axis 0.  Valid output range: cells
``2 .. n-3`` (two guard cells each side).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["vanleer_slopes", "ppm_reconstruct"]


def vanleer_slopes(a: np.ndarray) -> np.ndarray:
    """Monotonised central differences; zero slope at rows 0 and n-1."""
    d = np.zeros_like(a)
    dc = 0.5 * (a[2:] - a[:-2])
    dl = a[1:-1] - a[:-2]
    dr = a[2:] - a[1:-1]
    lim = 2.0 * np.minimum(np.abs(dl), np.abs(dr))
    mono = (dl * dr) > 0.0
    d[1:-1] = np.where(mono, np.sign(dc) * np.minimum(np.abs(dc), lim), 0.0)
    return d


def ppm_reconstruct(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Monotonised parabola edges ``(a_left, a_right)`` per cell.

    ``a_left[j]`` / ``a_right[j]`` are the reconstructed values at the
    lower / upper face of cell ``j``; rows outside ``2..n-3`` fall back
    to the cell average.
    """
    n = len(a)
    if n < 5:
        raise ValueError("PPM reconstruction needs at least 5 cells")
    d = vanleer_slopes(a)
    # interface value between cells j and j+1, stored at index j
    face = np.empty_like(a)
    face[1:-2] = (0.5 * (a[1:-2] + a[2:-1])
                  - (1.0 / 6.0) * (d[2:-1] - d[1:-2]))
    face[0] = a[0]
    face[-2] = 0.5 * (a[-2] + a[-1])
    face[-1] = a[-1]

    a_left = np.empty_like(a)
    a_right = np.empty_like(a)
    a_left[1:] = face[:-1]
    a_left[0] = a[0]
    a_right[:] = face

    # CW84 monotonisation
    left, right = a_left, a_right
    # 1. local extremum -> piecewise constant
    extremum = (right - a) * (a - left) <= 0.0
    left = np.where(extremum, a, left)
    right = np.where(extremum, a, right)
    # 2. limit parabola overshoot
    diff = right - left
    six = 6.0 * (a - 0.5 * (left + right))
    overshoot_l = diff * six > diff * diff
    overshoot_r = diff * six < -diff * diff
    left = np.where(overshoot_l, 3.0 * a - 2.0 * right, left)
    right = np.where(overshoot_r, 3.0 * a - 2.0 * left, right)
    return left, right
