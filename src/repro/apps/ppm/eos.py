"""Equations of state for the PPM hydrodynamics code.

PROMETHEUS extends the original PPM to a general equation of state
(paper §5.4, refs [6, 7]); we provide the gamma-law EOS used by the
benchmark calculations plus the interface a general EOS must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GammaLawEOS"]


@dataclass(frozen=True)
class GammaLawEOS:
    """Ideal-gas EOS: p = (gamma - 1) rho e."""

    gamma: float = 1.4

    def __post_init__(self):
        if not 1.0 < self.gamma < 3.0:
            raise ValueError("gamma must be in (1, 3)")

    def pressure(self, rho: np.ndarray, internal_energy: np.ndarray
                 ) -> np.ndarray:
        """p(rho, e) with e the specific internal energy."""
        return (self.gamma - 1.0) * rho * internal_energy

    def sound_speed(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.sqrt(self.gamma * np.maximum(p, 0.0)
                       / np.maximum(rho, 1e-300))

    def internal_energy(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        """e(rho, p)."""
        return p / ((self.gamma - 1.0) * np.maximum(rho, 1e-300))
