"""The paper's four Earth/space-science applications (paper §5).

* :mod:`repro.apps.pic` — 3-D electrostatic particle-in-cell plasma code
* :mod:`repro.apps.fem` — 2-D unstructured finite-element gas dynamics
* :mod:`repro.apps.nbody` — Barnes-Hut tree code for gravitational N-body
* :mod:`repro.apps.ppm` — Piecewise-Parabolic Method hydrodynamics
  (PROMETHEUS)

Each application is a real numerical code (NumPy) with a companion
workload module that characterises its parallel phases for the
performance model.
"""

__all__ = ["pic", "fem", "nbody", "ppm"]
