"""A complete message-passing application ON the simulated machine.

The paper's measurements split into synthetic primitives (run on the
machine) and full applications (characterised for the model).  This
kernel closes the loop: a real 1-D heat-diffusion solver executes as
PVM *tasks inside the simulation* — every ghost-cell exchange is a
simulated ``send``/``recv`` paying the Figure 4 costs, every update is
charged as simulated compute — and the numerical result is bit-identical
to the serial solver.

It is deliberately small (the simulator executes every message), and
serves as the end-to-end integration test of machine + runtime + PVM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...core.config import MachineConfig, spp1000
from ...machine import Machine
from ...pvm import PvmSystem
from ...runtime import Placement, Runtime

__all__ = ["serial_heat", "pvm_heat", "HeatResult"]

#: flops per cell update: one fused stencil expression
_FLOPS_PER_CELL = 4
#: modelled cycles per cell update on the PA-7100
_CYCLES_PER_CELL = 12


def _step(u: np.ndarray, left: float, right: float,
          alpha: float) -> np.ndarray:
    """One explicit diffusion update given scalar ghost values."""
    padded = np.empty(len(u) + 2)
    padded[0] = left
    padded[-1] = right
    padded[1:-1] = u
    return u + alpha * (padded[:-2] - 2.0 * u + padded[2:])


def serial_heat(initial: np.ndarray, n_steps: int,
                alpha: float = 0.25) -> np.ndarray:
    """Reference serial solver (periodic boundaries)."""
    if not 0 < alpha <= 0.5:
        raise ValueError("explicit diffusion needs 0 < alpha <= 0.5")
    u = initial.astype(float).copy()
    for _ in range(n_steps):
        u = _step(u, u[-1], u[0], alpha)
    return u


@dataclass(frozen=True)
class HeatResult:
    """Outcome of a simulated-PVM heat run."""

    field: np.ndarray
    time_ns: float
    messages: int

    @property
    def messages_per_step(self) -> float:
        return self.messages


def pvm_heat(initial: np.ndarray, n_steps: int, n_tasks: int,
             alpha: float = 0.25,
             placement: Placement = Placement.HIGH_LOCALITY,
             config: Optional[MachineConfig] = None) -> HeatResult:
    """Run the solver as ``n_tasks`` PVM tasks on the simulated SPP-1000.

    Per step each task exchanges one boundary cell with each periodic
    neighbour through real simulated messages, then updates its slab.
    Returns the gathered field (bit-identical to :func:`serial_heat`),
    the simulated wall time, and the message count.
    """
    if len(initial) % n_tasks:
        raise ValueError(
            f"{len(initial)} cells do not divide over {n_tasks} tasks")
    if not 0 < alpha <= 0.5:
        raise ValueError("explicit diffusion needs 0 < alpha <= 0.5")
    machine = Machine(config or spp1000())
    pvm = PvmSystem(Runtime(machine))
    slab = len(initial) // n_tasks
    slabs = [initial[t * slab:(t + 1) * slab].astype(float).copy()
             for t in range(n_tasks)]
    finish = {}

    def body(task, tid):
        u = slabs[tid]
        left_peer = (tid - 1) % n_tasks
        right_peer = (tid + 1) % n_tasks
        for step in range(n_steps):
            if n_tasks > 1:
                # post both boundary cells, then receive both ghosts
                yield from task.send(left_peer, float(u[0]), 8,
                                     tag=2 * step)
                yield from task.send(right_peer, float(u[-1]), 8,
                                     tag=2 * step + 1)
                left_ghost = yield from task.recv(left_peer,
                                                  tag=2 * step + 1)
                right_ghost = yield from task.recv(right_peer,
                                                   tag=2 * step)
            else:
                left_ghost, right_ghost = float(u[-1]), float(u[0])
            yield task.env.compute(_CYCLES_PER_CELL * slab)
            u = _step(u, left_ghost, right_ghost, alpha)
        slabs[tid] = u
        finish[tid] = task.env.now
        return None

    pvm.run_tasks(n_tasks, body, placement)
    messages = sum(pvm.task(t).sent_messages for t in range(n_tasks))
    return HeatResult(
        field=np.concatenate(slabs),
        time_ns=max(finish.values()),
        messages=messages,
    )
