"""Small complete applications executed *on* the simulated machine.

Unlike :mod:`repro.apps.pic`/``fem``/``nbody``/``ppm`` — real numerical
codes whose performance is modelled phase by phase — these kernels run
end to end inside the simulation, exercising machine + runtime + PVM
together with real payloads.
"""

from .heat1d import HeatResult, pvm_heat, serial_heat
from .jacobi1d import SharedHeatResult, shared_heat

__all__ = ["serial_heat", "pvm_heat", "HeatResult",
           "shared_heat", "SharedHeatResult"]
