"""A shared-memory application ON the simulated machine.

The counterpart of :mod:`repro.apps.kernels.heat1d`: the same explicit
diffusion solve, but in the paper's *shared-memory* style — the field
lives in simulated far-shared memory, every read and write is a coherent
simulated access, threads own contiguous slices, and a runtime barrier
separates the read phase from the write phase of each iteration.

Because all values flow through the simulated memory system, this kernel
is a sequential-consistency test of the coherence protocol as much as a
programming-model demonstration: the result must equal the serial NumPy
solver exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...core.config import MachineConfig, spp1000
from ...machine import Machine, MemClass
from ...runtime import Barrier, Placement, Runtime

__all__ = ["shared_heat", "SharedHeatResult"]

_WORD_STRIDE = 8   # one value per 8-byte word


@dataclass(frozen=True)
class SharedHeatResult:
    """Outcome of a simulated shared-memory heat run."""

    field: np.ndarray
    time_ns: float
    cache_misses: int
    remote_misses: int


def shared_heat(initial: np.ndarray, n_steps: int, n_threads: int,
                alpha: float = 0.25,
                placement: Placement = Placement.HIGH_LOCALITY,
                config: Optional[MachineConfig] = None) -> SharedHeatResult:
    """Run the diffusion solve with threads over simulated shared memory.

    Two far-shared arrays (current and next) are allocated on the
    machine; each thread updates its slice cell by cell with coherent
    loads/stores, and a barrier ends each half-step.  The gathered
    result is bit-identical to :func:`serial_heat`.
    """
    n = len(initial)
    if n % n_threads:
        raise ValueError(f"{n} cells do not divide over {n_threads} threads")
    if not 0 < alpha <= 0.5:
        raise ValueError("explicit diffusion needs 0 < alpha <= 0.5")
    machine = Machine(config or spp1000())
    runtime = Runtime(machine)
    barrier = Barrier(runtime, n_threads)

    buf_a = machine.alloc(n * _WORD_STRIDE, MemClass.FAR_SHARED,
                          label="heat-a")
    buf_b = machine.alloc(n * _WORD_STRIDE, MemClass.FAR_SHARED,
                          label="heat-b")
    for i, value in enumerate(initial):
        machine.poke(buf_a.addr(i * _WORD_STRIDE), float(value))

    chunk = n // n_threads
    finish = {}

    def body(env, tid):
        src, dst = buf_a, buf_b
        lo = tid * chunk
        for _step in range(n_steps):
            for i in range(lo, lo + chunk):
                left = yield env.load(src.addr(((i - 1) % n) * _WORD_STRIDE))
                here = yield env.load(src.addr(i * _WORD_STRIDE))
                right = yield env.load(src.addr(((i + 1) % n) * _WORD_STRIDE))
                new = here + alpha * (left - 2.0 * here + right)
                yield env.store(dst.addr(i * _WORD_STRIDE), new)
            yield from barrier.wait(env)
            src, dst = dst, src
        finish[tid] = env.now
        return None

    def main(env):
        yield from env.fork_join(n_threads, body, placement)

    runtime.run(main)
    final = buf_a if n_steps % 2 == 0 else buf_b
    field = np.array([machine.peek(final.addr(i * _WORD_STRIDE))
                      for i in range(n)])
    stats = machine.cache_stats()
    return SharedHeatResult(
        field=field,
        time_ns=max(finish.values()),
        cache_misses=stats["misses"],
        remote_misses=machine.tracer.count("load.miss.remote"),
    )
