"""TSC (triangular-shaped-cloud) particle-mesh interpolation.

The paper's particles are "finite sized charge clouds ... comparable in
size to a single cell of the mesh" — the classic TSC (quadratic spline)
shape.  Charge deposit (step 1 of §5.1.1, "a scatter with add") spreads
each particle over its 27 neighbouring mesh points; field gather (step 3)
reads the same 27-point stencil.

Both directions use the same weights, which guarantees momentum
conservation and exact charge conservation (the weights sum to one).
"""

from __future__ import annotations

import itertools
from typing import Tuple

import numpy as np

from .grid import Grid3D

__all__ = ["tsc_weights", "deposit_charge", "gather_field",
           "DEPOSIT_FLOPS_PER_PARTICLE", "GATHER_FLOPS_PER_PARTICLE"]

#: analytic flop counts per particle (audited against the code below):
#: weights 3 dims x 8 flops = 24; 27 weight products x 2 = 54;
#: deposit: 27 multiply-adds = 54
DEPOSIT_FLOPS_PER_PARTICLE = 24 + 54 + 54
#: gather: 24 + 54 weight products + 27 points x 3 components x 2 = 162
GATHER_FLOPS_PER_PARTICLE = 24 + 54 + 162


def tsc_weights(positions: np.ndarray, grid: Grid3D
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest mesh points and one-dimensional TSC weights.

    Returns ``(centers, weights)`` where ``centers`` is (N, 3) int —
    the nearest grid point per dimension — and ``weights`` is (N, 3, 3):
    the quadratic-spline weight of offsets -1, 0, +1 per dimension.
    """
    centers = np.floor(positions + 0.5).astype(np.int64)
    dx = positions - centers          # in [-0.5, 0.5)
    w = np.empty(positions.shape + (3,))
    w[..., 0] = 0.5 * (0.5 - dx) ** 2
    w[..., 1] = 0.75 - dx ** 2
    w[..., 2] = 0.5 * (0.5 + dx) ** 2
    return centers, w


def deposit_charge(positions: np.ndarray, charge: float,
                   grid: Grid3D) -> np.ndarray:
    """Scatter-add particle charge to the mesh (periodic); returns rho."""
    rho = grid.zeros()
    centers, w = tsc_weights(positions, grid)
    dims = np.array(grid.shape)
    for ox, oy, oz in itertools.product((-1, 0, 1), repeat=3):
        ix = np.mod(centers[:, 0] + ox, dims[0])
        iy = np.mod(centers[:, 1] + oy, dims[1])
        iz = np.mod(centers[:, 2] + oz, dims[2])
        weight = w[:, 0, ox + 1] * w[:, 1, oy + 1] * w[:, 2, oz + 1]
        np.add.at(rho, (ix, iy, iz), charge * weight)
    return rho


def gather_field(field_components, positions: np.ndarray,
                 grid: Grid3D) -> np.ndarray:
    """Interpolate a vector field to particle positions; returns (N, 3)."""
    centers, w = tsc_weights(positions, grid)
    dims = np.array(grid.shape)
    out = np.zeros_like(positions)
    for ox, oy, oz in itertools.product((-1, 0, 1), repeat=3):
        ix = np.mod(centers[:, 0] + ox, dims[0])
        iy = np.mod(centers[:, 1] + oy, dims[1])
        iz = np.mod(centers[:, 2] + oz, dims[2])
        weight = w[:, 0, ox + 1] * w[:, 1, oy + 1] * w[:, 2, oz + 1]
        for c in range(3):
            out[:, c] += weight * field_components[c][ix, iy, iz]
    return out
