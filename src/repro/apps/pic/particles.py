"""Particle storage and the paper's beam-plasma initial condition."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid import Grid3D

__all__ = ["ParticleSet", "beam_plasma"]


@dataclass
class ParticleSet:
    """N charged particles: positions (cell units), velocities, q/m.

    The paper notes each particle needs 11 data words (3 position,
    3 velocity, charge, mass, plus bookkeeping); ``WORDS_PER_PARTICLE``
    is used by the workload characterisation.
    """

    WORDS_PER_PARTICLE = 11

    positions: np.ndarray    #: (N, 3) float
    velocities: np.ndarray   #: (N, 3) float
    charge: float
    mass: float

    def __post_init__(self):
        if self.positions.shape != self.velocities.shape \
                or self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions/velocities must both be (N, 3)")
        if self.mass <= 0:
            raise ValueError("mass must be positive")

    @property
    def n(self) -> int:
        return len(self.positions)

    @property
    def kinetic_energy(self) -> float:
        return 0.5 * self.mass * float(np.sum(self.velocities ** 2))

    @property
    def momentum(self) -> np.ndarray:
        return self.mass * self.velocities.sum(axis=0)


def beam_plasma(grid: Grid3D, plasma_per_cell: int = 8,
                beam_per_cell: int = 1, thermal_velocity: float = 0.05,
                beam_velocity: float = 0.5,
                seed: int = 12345) -> ParticleSet:
    """The paper's test problem (§5.1.1): a monoenergetic electron beam
    through a Maxwellian background plasma.

    Background electrons: ``plasma_per_cell`` per mesh cell, Maxwellian
    velocities.  Beam electrons: ``beam_per_cell`` per cell (≈1/10 the
    background density for the defaults, as in the paper), all moving at
    ``beam_velocity`` along +x.  A uniform neutralising ion background is
    implied by zeroing the k=0 Fourier mode in the field solve.
    """
    if plasma_per_cell < 1 or beam_per_cell < 0:
        raise ValueError("need at least one plasma particle per cell")
    rng = np.random.default_rng(seed)
    n_plasma = grid.n_cells * plasma_per_cell
    n_beam = grid.n_cells * beam_per_cell
    n = n_plasma + n_beam
    positions = rng.uniform(0.0, 1.0, size=(n, 3)) * grid.dims
    velocities = np.empty((n, 3))
    velocities[:n_plasma] = rng.normal(
        0.0, thermal_velocity, size=(n_plasma, 3))
    velocities[n_plasma:] = [beam_velocity, 0.0, 0.0]
    return ParticleSet(positions=positions, velocities=velocities,
                       charge=-1.0, mass=1.0)
