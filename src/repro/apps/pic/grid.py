"""Periodic 3-D mesh for the PIC field solve."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Grid3D"]


@dataclass(frozen=True)
class Grid3D:
    """A periodic rectangular mesh with unit-cell spacing.

    Positions are measured in cell units: the domain is
    ``[0, nx) x [0, ny) x [0, nz)`` with periodic wrap-around, matching
    the paper's periodic boundary conditions in all three directions.
    """

    nx: int
    ny: int
    nz: int

    def __post_init__(self):
        for n in (self.nx, self.ny, self.nz):
            if n < 4:
                raise ValueError("grid needs at least 4 cells per dimension "
                                 "(TSC support)")

    @property
    def shape(self) -> tuple:
        return (self.nx, self.ny, self.nz)

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def dims(self) -> np.ndarray:
        return np.array([self.nx, self.ny, self.nz], dtype=float)

    def zeros(self) -> np.ndarray:
        return np.zeros(self.shape)

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the periodic domain."""
        return np.mod(positions, self.dims)

    def wavenumbers(self):
        """FFT wavenumber arrays (kx, ky, kz) broadcastable to the grid."""
        kx = 2.0 * np.pi * np.fft.fftfreq(self.nx)
        ky = 2.0 * np.pi * np.fft.fftfreq(self.ny)
        kz = 2.0 * np.pi * np.fft.fftfreq(self.nz)
        return (kx[:, None, None], ky[None, :, None], kz[None, None, :])
