"""3-D electrostatic particle-in-cell plasma code (paper §5.1).

Numerics: :class:`Grid3D`, :func:`beam_plasma`, TSC deposit/gather,
spectral Poisson solve, :class:`PICSimulation`.

Performance: :class:`PICWorkload` with the paper's two problem sizes
(:func:`small_problem`, :func:`large_problem`) and the shared-memory and
PVM execution styles.
"""

from .diagnostics import (
    density_spectrum,
    energy_budget,
    field_energy_growth_rate,
    velocity_histogram,
)
from .grid import Grid3D
from .interpolation import deposit_charge, gather_field, tsc_weights
from .particles import ParticleSet, beam_plasma
from .poisson import fft_flops, solve_fields
from .simulation import PICSimulation
from .workload import (
    C90_PIC_PROFILE,
    PICProblem,
    PICWorkload,
    large_problem,
    small_problem,
)

__all__ = [
    "Grid3D", "ParticleSet", "beam_plasma", "tsc_weights",
    "deposit_charge", "gather_field", "solve_fields", "fft_flops",
    "PICSimulation", "PICProblem", "PICWorkload",
    "small_problem", "large_problem", "C90_PIC_PROFILE",
    "field_energy_growth_rate", "velocity_histogram", "density_spectrum",
    "energy_budget",
]
