"""Spectral Poisson solver for the PIC field solve (paper §5.1.1 step 2).

Solves ``laplacian(phi) = -rho`` with periodic boundaries by FFT — the
paper calls system VECLIB FFT routines; we call NumPy's.  The k=0 mode
is zeroed, which implements the uniform neutralising ion background of
the beam-plasma problem.  The electric field is obtained spectrally:
``E = -grad(phi)  =>  E_k = -i k phi_k``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .grid import Grid3D

__all__ = ["solve_fields", "fft_flops"]


def solve_fields(rho: np.ndarray, grid: Grid3D
                 ) -> Tuple[np.ndarray, list]:
    """Solve for the potential and field from a charge density.

    Returns ``(phi, [Ex, Ey, Ez])``, all real arrays on the mesh.
    """
    if rho.shape != grid.shape:
        raise ValueError(f"rho shape {rho.shape} != grid {grid.shape}")
    rho_k = np.fft.fftn(rho)
    kx, ky, kz = grid.wavenumbers()
    k2 = kx ** 2 + ky ** 2 + kz ** 2
    k2[0, 0, 0] = 1.0                       # avoid divide-by-zero
    phi_k = rho_k / k2
    phi_k[0, 0, 0] = 0.0                    # neutralising background
    phi = np.real(np.fft.ifftn(phi_k))
    fields = []
    for k in (kx, ky, kz):
        e_k = -1j * k * phi_k
        fields.append(np.real(np.fft.ifftn(e_k)))
    return phi, fields


def fft_flops(grid: Grid3D) -> float:
    """Flops of one field solve: 5 FFTs (1 forward + 4 inverse) plus the
    spectral algebra, using the standard ``5 N log2 N`` per FFT."""
    n = grid.n_cells
    per_fft = 5.0 * n * math.log2(n)
    spectral = 10.0 * n   # k^2, divide, three -ik products
    return 5.0 * per_fft + spectral
