"""Performance workload of the PIC code (paper §5.1, Figure 6, Table 1).

This module characterises one PIC timestep as per-thread phases for the
performance model, for both programming styles the paper measured:

* **shared memory** — particles and mesh live in far-shared memory;
  every thread deposits/gathers against the one shared mesh, the FFT
  solve is divided among threads, and four barriers close the phases.
* **PVM** — each task owns a private full-size mesh copy and a fixed
  particle block; after the local deposit the copies are summed by a
  recursive-doubling all-reduce, and *every task redundantly solves the
  full FFT* on its private copy.  This classic replicated-mesh PVM
  structure is what produces the paper's observation that the PVM code
  achieves "almost one half the performance" of the shared-memory code.

The paper's problems store 11 words per particle and were sized so the
small problem "barely fills the cache on the 16 processor machine" —
which pins the word size at 4 bytes (294 912 x 11 x 4 B = 13 MB against
16 x 1 MB of aggregate cache).  The workload therefore uses 4-byte words
even though the numerical reference implementation computes in float64.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ...core.config import MachineConfig
from ...perfmodel import (
    Access,
    C90Model,
    C90Profile,
    LocalityMix,
    Msg,
    PerformanceModel,
    Phase,
    RunResult,
    StepWork,
    TeamSpec,
)
from ...runtime import Placement
from .grid import Grid3D
from .interpolation import (
    DEPOSIT_FLOPS_PER_PARTICLE,
    GATHER_FLOPS_PER_PARTICLE,
)
from .poisson import fft_flops
from .simulation import PUSH_FLOPS_PER_PARTICLE

__all__ = ["PICProblem", "PICWorkload", "small_problem", "large_problem",
           "C90_PIC_PROFILE"]

#: calibrated so the C90 reference sustains the paper's 355-369 MFLOP/s
C90_PIC_PROFILE = C90Profile(vector_fraction=0.97, avg_vector_length=64.0,
                             gather_fraction=0.45)

_WORD = 4                       #: paper's single-precision words
_PARTICLE_WORDS = 11            #: paper §5.1: 11 words per particle


@dataclass(frozen=True)
class PICProblem:
    """One of the paper's two PIC calculations."""

    grid: Grid3D
    particles_per_cell: int = 9    #: 8 plasma + 1 beam electrons per cell
    n_steps: int = 500
    label: str = ""

    @property
    def n_particles(self) -> int:
        return self.grid.n_cells * self.particles_per_cell

    @property
    def particle_bytes(self) -> int:
        return self.n_particles * _PARTICLE_WORDS * _WORD

    @property
    def grid_bytes(self) -> int:
        return self.grid.n_cells * _WORD


def small_problem() -> PICProblem:
    """32 x 32 x 32 mesh, 294 912 particles (Table 1 row 1)."""
    return PICProblem(Grid3D(32, 32, 32), label="32x32x32")


def large_problem() -> PICProblem:
    """64 x 64 x 32 mesh, 1 179 648 particles (Table 1 row 2)."""
    return PICProblem(Grid3D(64, 64, 32), label="64x64x32")


class PICWorkload:
    """Builds StepWork records and runs them through the machine model."""

    def __init__(self, problem: PICProblem, config: MachineConfig):
        self.problem = problem
        self.config = config
        self.model = PerformanceModel(config)

    # -- shared quantities -------------------------------------------------
    def flops_per_step(self) -> float:
        n = self.problem.n_particles
        per_particle = (DEPOSIT_FLOPS_PER_PARTICLE
                        + GATHER_FLOPS_PER_PARTICLE
                        + PUSH_FLOPS_PER_PARTICLE)
        return n * per_particle + fft_flops(self.problem.grid)

    def _far_shared_mix(self, team: TeamSpec) -> LocalityMix:
        """Far-shared data: pages round-robin over the hypernodes in use."""
        hns = team.n_hypernodes_used
        remote = 1.0 - 1.0 / hns
        return LocalityMix(private=0.0, node=1.0 - remote, remote=remote)

    # -- shared-memory version ------------------------------------------------
    def shared_step(self, team: TeamSpec) -> StepWork:
        prob = self.problem
        n = team.n_threads
        chunk = prob.n_particles / n
        mix = self._far_shared_mix(team)
        chunk_bytes = chunk * _PARTICLE_WORDS * _WORD
        grid_b = prob.grid_bytes

        phases = [
            # 1. deposit: stream the particle block, scatter to the mesh.
            # A thread's particle block is only ever touched by its owner,
            # so its remote-homed pages stay resident in the hypernode's
            # global cache buffer between steps.
            Phase("deposit/particles", flops=chunk * 24,
                  traffic_bytes=chunk * 6 * _WORD,
                  working_set_bytes=chunk_bytes,
                  locality=mix, access=Access.STREAM, remote_reuse=0.9),
            # The charge mesh is write-shared by every thread each step:
            # no reuse survives the invalidations.
            Phase("deposit/scatter",
                  flops=chunk * (DEPOSIT_FLOPS_PER_PARTICLE - 24),
                  traffic_bytes=chunk * 27 * 2 * _WORD,
                  working_set_bytes=grid_b,
                  locality=mix, access=Access.RANDOM, remote_reuse=0.0),
            # 2. field solve: FFT work divided among the threads;
            # transposes rewrite the mesh, limited reuse.
            Phase("solve/fft", flops=fft_flops(prob.grid) / n,
                  traffic_bytes=10.0 * grid_b / n,
                  working_set_bytes=4.0 * grid_b,
                  locality=mix, access=Access.STREAM, remote_reuse=0.3),
            # 3. gather: the field arrays are written once by the solve
            # and then read-only; after a hypernode's first touch they are
            # GCB-resident.
            Phase("gather", flops=chunk * GATHER_FLOPS_PER_PARTICLE,
                  traffic_bytes=chunk * (27 * 3 + 6) * _WORD,
                  working_set_bytes=3.0 * grid_b + chunk_bytes,
                  locality=mix, access=Access.RANDOM, remote_reuse=0.8),
            # 4. push: owner-only particle data again
            Phase("push", flops=chunk * PUSH_FLOPS_PER_PARTICLE,
                  traffic_bytes=chunk * 12 * _WORD,
                  working_set_bytes=chunk_bytes,
                  locality=mix, access=Access.STREAM, remote_reuse=0.9),
        ]
        return StepWork([list(phases) for _ in range(n)], barriers=4)

    # -- PVM version ---------------------------------------------------------
    def pvm_step(self, team: TeamSpec) -> StepWork:
        prob = self.problem
        n = team.n_threads
        chunk = prob.n_particles / n
        private = LocalityMix(private=1.0)
        chunk_bytes = chunk * _PARTICLE_WORDS * _WORD
        grid_b = prob.grid_bytes

        thread_phases: List[List[Phase]] = []
        stages = max(0, math.ceil(math.log2(n))) if n > 1 else 0
        for tid in range(n):
            msgs = []
            if stages:
                # recursive doubling: at most one stage crosses hypernodes
                remote_stages = 1 if team.n_hypernodes_used > 1 else 0
                for s in range(stages):
                    remote = s < remote_stages
                    msgs.append(Msg(grid_b, remote=remote, kind="send"))
                    msgs.append(Msg(grid_b, remote=remote, kind="recv"))
            phases = [
                Phase("deposit/particles", flops=chunk * 24,
                      traffic_bytes=chunk * 6 * _WORD,
                      working_set_bytes=chunk_bytes,
                      locality=private, access=Access.STREAM),
                Phase("deposit/scatter",
                      flops=chunk * (DEPOSIT_FLOPS_PER_PARTICLE - 24),
                      traffic_bytes=chunk * 27 * 2 * _WORD,
                      working_set_bytes=grid_b,
                      locality=private, access=Access.RANDOM),
                # all-reduce of the replicated charge mesh
                Phase("allreduce/rho",
                      flops=prob.grid.n_cells * stages,
                      traffic_bytes=2.0 * grid_b * max(stages, 1),
                      working_set_bytes=grid_b,
                      locality=private, access=Access.STREAM,
                      messages=tuple(msgs)),
                # REDUNDANT full-mesh solve on every task
                Phase("solve/fft-redundant", flops=fft_flops(prob.grid),
                      traffic_bytes=10.0 * grid_b,
                      working_set_bytes=4.0 * grid_b,
                      locality=private, access=Access.STREAM),
                Phase("gather", flops=chunk * GATHER_FLOPS_PER_PARTICLE,
                      traffic_bytes=chunk * (27 * 3 + 6) * _WORD,
                      working_set_bytes=3.0 * grid_b + chunk_bytes,
                      locality=private, access=Access.RANDOM),
                Phase("push", flops=chunk * PUSH_FLOPS_PER_PARTICLE,
                      traffic_bytes=chunk * 12 * _WORD,
                      working_set_bytes=chunk_bytes,
                      locality=private, access=Access.STREAM),
            ]
            thread_phases.append(phases)
        # PVM tasks synchronise through the all-reduce, not barriers
        return StepWork(thread_phases, barriers=0)

    # -- runs -------------------------------------------------------------------
    def run_shared(self, n_threads: int,
                   placement: Placement = Placement.HIGH_LOCALITY
                   ) -> RunResult:
        team = TeamSpec(self.config, n_threads, placement)
        return self.model.run([self.shared_step(team)], team,
                              repeat=self.problem.n_steps)

    def run_pvm(self, n_tasks: int,
                placement: Placement = Placement.HIGH_LOCALITY) -> RunResult:
        team = TeamSpec(self.config, n_tasks, placement)
        result = self.model.run([self.pvm_step(team)], team,
                                repeat=self.problem.n_steps)
        # MFLOP/s bookkeeping: the redundant solves do not count as
        # useful work; report useful flops only.
        useful = self.flops_per_step() * self.problem.n_steps
        return RunResult(time_ns=result.time_ns, flops=useful,
                         n_threads=n_tasks)

    def run_c90(self, model: C90Model = C90Model()) -> float:
        """C90 single-head time for the full calculation, in ns."""
        return model.time_ns(
            self.flops_per_step() * self.problem.n_steps, C90_PIC_PROFILE)
