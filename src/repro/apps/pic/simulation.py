"""The complete PIC timestep loop (paper §5.1.1, Figure 5).

Each step performs the four phases of the flow chart:

1. deposit the particle charge on the mesh (scatter-add),
2. solve for phi and E on the mesh (FFT Poisson),
3. interpolate E to the particles (gather) and compute forces,
4. push the particles (second-order leap-frog).

The loop also keeps the flop ledger used by the performance workload and
the diagnostics used by the physics tests (charge conservation, momentum
conservation, field energy for the beam instability).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .grid import Grid3D
from .interpolation import (
    DEPOSIT_FLOPS_PER_PARTICLE,
    GATHER_FLOPS_PER_PARTICLE,
    deposit_charge,
    gather_field,
)
from .particles import ParticleSet
from .poisson import fft_flops, solve_fields

__all__ = ["PICSimulation", "PUSH_FLOPS_PER_PARTICLE"]

#: leap-frog push: 3 x (v += (q/m) E dt: 2 flops) + 3 x (x += v dt: 2)
#: + periodic wrap arithmetic ~ 6
PUSH_FLOPS_PER_PARTICLE = 6 + 6 + 6


class PICSimulation:
    """Driver for the 3-D electrostatic PIC model."""

    def __init__(self, grid: Grid3D, particles: ParticleSet, dt: float = 0.2):
        if dt <= 0:
            raise ValueError("timestep must be positive")
        self.grid = grid
        self.particles = particles
        self.dt = dt
        self.step_count = 0
        self.rho: Optional[np.ndarray] = None
        self.fields: Optional[List[np.ndarray]] = None
        self.history: List[Dict[str, float]] = []

    # -- flop accounting -----------------------------------------------------
    def flops_per_step(self) -> float:
        """Total floating-point operations of one timestep."""
        n = self.particles.n
        per_particle = (DEPOSIT_FLOPS_PER_PARTICLE
                        + GATHER_FLOPS_PER_PARTICLE
                        + PUSH_FLOPS_PER_PARTICLE)
        return n * per_particle + fft_flops(self.grid)

    # -- one timestep ---------------------------------------------------------
    def step(self) -> Dict[str, float]:
        """Advance the system by ``dt``; returns step diagnostics."""
        p = self.particles
        # 1. charge deposit (scatter-add)
        self.rho = deposit_charge(p.positions, p.charge, self.grid)
        # 2. field solve
        phi, self.fields = solve_fields(self.rho, self.grid)
        # 3. gather E to particles, F = qE
        e_at_particles = gather_field(self.fields, p.positions, self.grid)
        # 4. leap-frog push
        p.velocities += (p.charge / p.mass) * e_at_particles * self.dt
        p.positions = self.grid.wrap(p.positions + p.velocities * self.dt)
        self.step_count += 1
        diag = self.diagnostics(phi)
        self.history.append(diag)
        return diag

    def run(self, n_steps: int) -> List[Dict[str, float]]:
        """Advance ``n_steps`` timesteps; returns the diagnostic history."""
        for _ in range(n_steps):
            self.step()
        return self.history

    # -- diagnostics -------------------------------------------------------------
    def diagnostics(self, phi: Optional[np.ndarray] = None) -> Dict[str, float]:
        total_charge = float(self.rho.sum()) if self.rho is not None else 0.0
        field_energy = 0.0
        if self.fields is not None:
            field_energy = 0.5 * float(
                sum(np.sum(f ** 2) for f in self.fields))
        return {
            "step": float(self.step_count),
            "total_charge": total_charge,
            "kinetic_energy": self.particles.kinetic_energy,
            "field_energy": field_energy,
            "momentum_x": float(self.particles.momentum[0]),
        }
