"""Physics diagnostics for the PIC code.

The beam-plasma test problem (§5.1.1) is a two-stream-unstable
configuration; these diagnostics extract the quantities a plasma
physicist would check: field-energy growth rates, velocity
distributions, and charge-density spectra.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

from .particles import ParticleSet

__all__ = ["field_energy_growth_rate", "velocity_histogram",
           "density_spectrum", "energy_budget"]


def field_energy_growth_rate(history: Sequence[Dict[str, float]],
                             dt: float,
                             window: Tuple[int, int]) -> float:
    """Exponential growth rate gamma of the field energy over a step
    window: E(t) ~ exp(2 gamma t) during the linear phase.

    Returns gamma in inverse time units (not per step).
    """
    lo, hi = window
    if not 0 <= lo < hi < len(history):
        raise ValueError("window out of range")
    e_lo = history[lo]["field_energy"]
    e_hi = history[hi]["field_energy"]
    if e_lo <= 0 or e_hi <= 0:
        raise ValueError("field energy must be positive in the window")
    elapsed = (hi - lo) * dt
    return 0.5 * math.log(e_hi / e_lo) / elapsed


def velocity_histogram(particles: ParticleSet, component: int = 0,
                       bins: int = 50) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of one velocity component: returns (centres, counts)."""
    if not 0 <= component < 3:
        raise ValueError("component must be 0..2")
    v = particles.velocities[:, component]
    counts, edges = np.histogram(v, bins=bins)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, counts


def density_spectrum(rho: np.ndarray, axis: int = 0) -> np.ndarray:
    """Power in each Fourier mode of the charge density along one axis.

    The two-stream instability pumps a band of low-k modes along the
    beam; this returns ``|rho_k|^2`` averaged over the other axes.
    """
    rho_k = np.fft.fft(rho, axis=axis)
    power = np.abs(rho_k) ** 2
    other_axes = tuple(a for a in range(rho.ndim) if a != axis)
    return power.mean(axis=other_axes)


def energy_budget(history: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Conservation bookkeeping over a run.

    Electrostatic PIC conserves kinetic + field energy only
    approximately (grid heating); the *relative drift* of the total is
    the interesting number.
    """
    if not history:
        raise ValueError("empty history")
    totals = [h["kinetic_energy"] + h["field_energy"] for h in history]
    first, last = totals[0], totals[-1]
    return {
        "initial_total": first,
        "final_total": last,
        "relative_drift": abs(last - first) / max(abs(first), 1e-300),
        "max_field_energy": max(h["field_energy"] for h in history),
    }
