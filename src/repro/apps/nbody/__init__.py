"""Gravitational N-body tree code (paper §5.3).

Numerics: :func:`plummer_sphere` / :func:`uniform_cube` initial
conditions, Morton-key octree (:func:`build_octree`), Barnes-Hut forces
(:func:`tree_forces`) with a group MAC, direct-summation reference, and
the :class:`NBodySimulation` leapfrog driver.

Performance: :class:`NBodyWorkload` with the paper's 32K/256K/2M sizes
and both programming styles.
"""

from .bodies import Bodies, plummer_sphere, uniform_cube
from .diagnostics import (
    center_of_mass,
    lagrangian_radius,
    plummer_density,
    radial_density_profile,
    virial_ratio,
)
from .force import (
    FLOPS_PER_INTERACTION,
    ForceResult,
    direct_forces,
    tree_forces,
)
from .integrator import NBodySimulation
from .tree import Octree, build_octree, compute_quadrupoles, morton_keys_3d
from .workload import (
    C90_TREE_PROFILE,
    NBodyProblem,
    NBodyWorkload,
    problem_2m,
    problem_32k,
    problem_256k,
)

__all__ = [
    "Bodies", "plummer_sphere", "uniform_cube",
    "radial_density_profile", "lagrangian_radius", "virial_ratio",
    "plummer_density", "center_of_mass",
    "Octree", "build_octree", "compute_quadrupoles", "morton_keys_3d",
    "ForceResult", "tree_forces", "direct_forces", "FLOPS_PER_INTERACTION",
    "NBodySimulation",
    "NBodyProblem", "NBodyWorkload",
    "problem_32k", "problem_256k", "problem_2m", "C90_TREE_PROFILE",
]
