"""Tree-walk force computation (paper §5.3.1).

Forces are evaluated per *leaf group*: each tree leaf's particles walk
the tree together with a group-centred multipole acceptance criterion
(MAC).  Accepted nodes contribute centre-of-mass (monopole)
interactions; opened leaves contribute direct particle-particle
interactions.  The walk prunes subtrees exactly as equation (6)'s
softened force and the paper's description demand, and the interaction
counts are recorded for the flop ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bodies import Bodies, G
from .tree import Octree, build_octree

__all__ = ["ForceResult", "tree_forces", "direct_forces",
           "FLOPS_PER_INTERACTION"]

#: one softened monopole interaction: dx(3), r^2(5), r^-3 via sqrt+div(~20
#: on scalar hardware), scale+accumulate(9) — the conventional ledger is 38
FLOPS_PER_INTERACTION = 38.0


@dataclass
class ForceResult:
    """Accelerations plus the interaction statistics of the walk."""

    accelerations: np.ndarray     #: (N, 3) in original body order
    approx_interactions: int      #: particle-node (monopole) interactions
    direct_interactions: int      #: particle-particle interactions

    @property
    def total_interactions(self) -> int:
        return self.approx_interactions + self.direct_interactions

    @property
    def flops(self) -> float:
        return FLOPS_PER_INTERACTION * self.total_interactions


def _pairwise_acc(targets: np.ndarray, sources: np.ndarray,
                  source_mass: np.ndarray, softening: float) -> np.ndarray:
    """Softened accelerations of ``targets`` due to point ``sources``."""
    d = sources[None, :, :] - targets[:, None, :]          # (T, S, 3)
    r2 = np.sum(d * d, axis=2) + softening ** 2
    # a zero separation (a particle and itself) contributes nothing
    safe = np.where(r2 > 0.0, r2, 1.0)
    inv_r3 = np.where(r2 > 0.0, safe ** -1.5, 0.0)
    return G * np.einsum("ts,s,tsd->td", inv_r3, source_mass, d)


def direct_forces(bodies: Bodies, softening: float = 0.01) -> np.ndarray:
    """O(N^2) reference accelerations (tests and small problems)."""
    return _pairwise_acc(bodies.positions, bodies.positions,
                         bodies.masses, softening)


def _quadrupole_acc(targets: np.ndarray, coms: np.ndarray,
                    quads: np.ndarray) -> np.ndarray:
    """Acceleration from traceless node quadrupoles.

    a = G [ Q r / r^5 - (5/2) (r^T Q r) r / r^7 ],  r = target - com.
    """
    r = targets[:, None, :] - coms[None, :, :]             # (T, A, 3)
    r2 = np.maximum(np.sum(r * r, axis=2), 1e-300)         # (T, A)
    qr = np.einsum("aij,taj->tai", quads, r)               # (T, A, 3)
    rqr = np.einsum("tai,tai->ta", qr, r)                  # (T, A)
    inv_r5 = r2 ** -2.5
    inv_r7 = r2 ** -3.5
    acc = G * (qr * inv_r5[:, :, None]
               - 2.5 * (rqr * inv_r7)[:, :, None] * r)
    return acc.sum(axis=1)


def tree_forces(bodies: Bodies, theta: float = 0.6,
                softening: float = 0.01, leaf_size: int = 16,
                tree: Octree | None = None,
                use_quadrupole: bool = False) -> ForceResult:
    """Barnes-Hut accelerations with opening angle ``theta``.

    ``use_quadrupole`` adds the nodes' traceless quadrupole moments to
    every accepted-node interaction (the paper's "high order moments of
    the mass distribution"), computing them on the tree if absent.
    """
    if theta <= 0:
        raise ValueError("opening angle must be positive")
    if tree is None:
        tree = build_octree(bodies, leaf_size=leaf_size)
    if use_quadrupole and tree.quadrupole is None:
        from .tree import compute_quadrupoles
        compute_quadrupoles(tree)
    acc_sorted = np.zeros_like(tree.positions)
    n_approx = 0
    n_direct = 0

    for group in tree.leaves():
        gs, ge = int(tree.start[group]), int(tree.end[group])
        gpos = tree.positions[gs:ge]
        gcenter = tree.center[group]
        gradius = float(tree.half_size[group]) * np.sqrt(3.0)

        approx_nodes = []
        direct_slices = []
        frontier = np.array([0], dtype=np.int64)
        while len(frontier):
            d = tree.com[frontier] - gcenter
            dist = np.sqrt(np.sum(d * d, axis=1))
            size = 2.0 * tree.half_size[frontier]
            # group MAC: the node must be well separated from the whole
            # group, not just its centre
            ok = size < theta * np.maximum(dist - gradius, 1e-12)
            ok &= dist > gradius  # never approximate an enclosing node
            for node in frontier[ok]:
                approx_nodes.append(node)
            opened = frontier[~ok]
            next_frontier = []
            for node in opened:
                if tree.is_leaf[node]:
                    direct_slices.append(
                        (int(tree.start[node]), int(tree.end[node])))
                else:
                    kids = tree.children[node]
                    next_frontier.extend(kids[kids >= 0])
            frontier = np.array(next_frontier, dtype=np.int64)

        acc = np.zeros_like(gpos)
        if approx_nodes:
            nodes = np.array(approx_nodes, dtype=np.int64)
            acc += _pairwise_acc(gpos, tree.com[nodes], tree.mass[nodes],
                                 softening)
            if use_quadrupole:
                acc += _quadrupole_acc(gpos, tree.com[nodes],
                                       tree.quadrupole[nodes])
            n_approx += len(gpos) * len(nodes)
        if direct_slices:
            src = np.concatenate(
                [tree.positions[s:e] for s, e in direct_slices])
            src_mass = np.concatenate(
                [tree.masses[s:e] for s, e in direct_slices])
            acc += _pairwise_acc(gpos, src, src_mass, softening)
            n_direct += len(gpos) * len(src)
        acc_sorted[gs:ge] = acc

    # un-sort back to the original body order
    accelerations = np.empty_like(acc_sorted)
    accelerations[tree.order] = acc_sorted
    return ForceResult(accelerations, n_approx, n_direct)
