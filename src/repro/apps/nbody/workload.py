"""Performance workload of the tree code (paper §5.3.2, Figure 8).

The shared-memory version mirrors the paper's port: particle work is
divided evenly among threads, intermediate variables are thread private,
and all indirect accesses during the tree search go to tree data "stored
in global shared memory" — fine-grained reads in the innermost loop.
Because the tree is read-only during the force phase, remote lines stay
resident in each hypernode's global cache buffer, which is why the paper
measures only a 2-7% degradation across two hypernodes.

The PVM version follows the paper's observation: its purely private data
gives it the fastest single-processor rate, but exchanging particle data
through messages ("the overheads of packing and sending messages ...
are prohibitive") erodes parallel performance below the shared-memory
version.

Problem sizes are the paper's 32K / 256K / 2M particles; the
single-processor yardstick is 27.5 MFLOP/s and the vectorised C90 tree
code reference is 120 MFLOP/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ...core.config import MachineConfig
from ...perfmodel import (
    Access,
    C90Model,
    C90Profile,
    LocalityMix,
    Msg,
    PerformanceModel,
    Phase,
    RunResult,
    StepWork,
    TeamSpec,
)
from ...runtime import Placement
from .force import FLOPS_PER_INTERACTION

__all__ = ["NBodyProblem", "NBodyWorkload", "problem_32k", "problem_256k",
           "problem_2m", "C90_TREE_PROFILE"]

#: calibrated to the paper's 120 MFLOP/s vectorised tree code [14]
C90_TREE_PROFILE = C90Profile(vector_fraction=0.88, avg_vector_length=24.0,
                              gather_fraction=0.9)

_WORD = 8
_BODY_WORDS = 7          #: position(3) + velocity(3) + mass
_NODE_BYTES = 80.0       #: com, mass, centre, size, children pointer block
_NODES_PER_BODY = 0.125  #: ~N/8 nodes at leaf size 16
_BUILD_FLOPS_PER_BODY = 40.0
_KICK_FLOPS_PER_BODY = 12.0


@dataclass(frozen=True)
class NBodyProblem:
    """One Figure 8 problem size."""

    n_bodies: int
    label: str
    n_steps: int = 10

    @property
    def body_bytes(self) -> float:
        return self.n_bodies * _BODY_WORDS * _WORD

    @property
    def tree_bytes(self) -> float:
        return self.n_bodies * _NODES_PER_BODY * _NODE_BYTES

    def interactions_per_body(self) -> float:
        """Monopole+direct interactions per body per step (theta ~ 0.6)."""
        return 45.0 * math.log2(self.n_bodies)

    def force_flops(self) -> float:
        return (self.n_bodies * self.interactions_per_body()
                * FLOPS_PER_INTERACTION)


def problem_32k() -> NBodyProblem:
    return NBodyProblem(32 * 1024, "32K")


def problem_256k() -> NBodyProblem:
    return NBodyProblem(256 * 1024, "256K")


def problem_2m() -> NBodyProblem:
    return NBodyProblem(2 * 1024 * 1024, "2M")


class NBodyWorkload:
    """Builds StepWork records and runs them through the machine model."""

    def __init__(self, problem: NBodyProblem, config: MachineConfig):
        self.problem = problem
        self.config = config
        self.model = PerformanceModel(config)

    def flops_per_step(self) -> float:
        n = self.problem.n_bodies
        return (self.problem.force_flops()
                + n * (_BUILD_FLOPS_PER_BODY + _KICK_FLOPS_PER_BODY))

    def _mix(self, team: TeamSpec) -> LocalityMix:
        hns = team.n_hypernodes_used
        remote = 1.0 - 1.0 / hns
        return LocalityMix(private=0.0, node=1.0 - remote, remote=remote)

    # -- shared-memory version -------------------------------------------------
    def shared_step(self, team: TeamSpec) -> StepWork:
        prob = self.problem
        n = team.n_threads
        chunk = prob.n_bodies / n
        mix = self._mix(team)
        ipb = prob.interactions_per_body()
        # Static particle decomposition leaves statistical load imbalance
        # in the per-thread interaction counts; the slowest thread carries
        # ~1 + c/sqrt(chunk) of the mean (shrinks with task granularity —
        # the paper's "task granularity changes linearly with the problem
        # size" observation).
        imbalance = 1.0 + 3.0 / math.sqrt(chunk) if n > 1 else 1.0

        def phases_for(tid: int):
            heavy = imbalance if tid == 0 else 1.0
            return [
                # tree build: Morton sort + insertion; the tree arrays
                # are write-shared while building, so no remote reuse
                Phase("tree/build", flops=chunk * _BUILD_FLOPS_PER_BODY,
                      traffic_bytes=chunk * (_BODY_WORDS * _WORD
                                             + _NODES_PER_BODY
                                             * _NODE_BYTES) * 2,
                      working_set_bytes=prob.tree_bytes
                      + chunk * _BODY_WORDS * _WORD,
                      locality=mix, access=Access.RANDOM, remote_reuse=0.0),
                # force walk: indirect reads of read-only tree data in
                # the innermost loop; the walk revisits the tree (its
                # true working set) while particles merely stream by;
                # GCB keeps remote tree lines resident.
                Phase("force/walk",
                      flops=chunk * heavy * ipb * FLOPS_PER_INTERACTION,
                      traffic_bytes=chunk * heavy * ipb * 4 * _WORD,
                      working_set_bytes=prob.tree_bytes,
                      locality=mix, access=Access.RANDOM, remote_reuse=0.95),
                # leapfrog update of the thread's own particles
                Phase("kick-drift", flops=chunk * _KICK_FLOPS_PER_BODY,
                      traffic_bytes=chunk * _BODY_WORDS * _WORD * 2,
                      working_set_bytes=chunk * _BODY_WORDS * _WORD,
                      locality=mix, access=Access.STREAM, remote_reuse=0.9),
            ]

        return StepWork([phases_for(tid) for tid in range(n)], barriers=3)

    # -- PVM version ---------------------------------------------------------------
    def pvm_step(self, team: TeamSpec) -> StepWork:
        prob = self.problem
        n = team.n_threads
        chunk = prob.n_bodies / n
        private = LocalityMix(private=1.0)
        ipb = prob.interactions_per_body()
        chunk_bytes = chunk * _BODY_WORDS * _WORD

        thread_phases: List[List[Phase]] = []
        for tid in range(n):
            msgs = []
            if n > 1:
                # allgather of particle data: every task packs its block
                # for every other task (the "prohibitive" overhead)
                for other in range(n):
                    if other == tid:
                        continue
                    remote = (team.hypernode_of_thread(other)
                              != team.hypernode_of_thread(tid))
                    msgs.append(Msg(int(chunk_bytes), remote, "send"))
                    msgs.append(Msg(int(chunk_bytes), remote, "recv"))
            phases = []
            if n > 1:
                phases.append(
                    Phase("exchange", flops=0.0,
                          traffic_bytes=2.0 * prob.body_bytes,
                          working_set_bytes=prob.body_bytes,
                          locality=private, access=Access.STREAM,
                          messages=tuple(msgs)))
            phases += [
                Phase("tree/build-local", flops=prob.n_bodies
                      * _BUILD_FLOPS_PER_BODY,   # full tree, every task
                      traffic_bytes=prob.n_bodies
                      * (_BODY_WORDS * _WORD
                         + _NODES_PER_BODY * _NODE_BYTES) * 2,
                      working_set_bytes=prob.tree_bytes + prob.body_bytes,
                      locality=private, access=Access.RANDOM),
                Phase("force/walk", flops=chunk * ipb * FLOPS_PER_INTERACTION,
                      traffic_bytes=chunk * ipb * 4 * _WORD,
                      working_set_bytes=prob.tree_bytes,
                      locality=private, access=Access.RANDOM),
                Phase("kick-drift", flops=chunk * _KICK_FLOPS_PER_BODY,
                      traffic_bytes=chunk_bytes * 2,
                      working_set_bytes=chunk_bytes,
                      locality=private, access=Access.STREAM),
            ]
            thread_phases.append(phases)
        return StepWork(thread_phases, barriers=0)

    # -- runs --------------------------------------------------------------------------
    def run_shared(self, n_threads: int,
                   placement: Placement = Placement.HIGH_LOCALITY
                   ) -> RunResult:
        team = TeamSpec(self.config, n_threads, placement)
        result = self.model.run([self.shared_step(team)], team,
                                repeat=self.problem.n_steps)
        useful = self.flops_per_step() * self.problem.n_steps
        return RunResult(result.time_ns, useful, n_threads)

    def run_pvm(self, n_tasks: int,
                placement: Placement = Placement.HIGH_LOCALITY) -> RunResult:
        team = TeamSpec(self.config, n_tasks, placement)
        result = self.model.run([self.pvm_step(team)], team,
                                repeat=self.problem.n_steps)
        useful = self.flops_per_step() * self.problem.n_steps
        return RunResult(result.time_ns, useful, n_tasks)

    def run_c90(self, model: C90Model = C90Model()) -> float:
        return model.time_ns(self.flops_per_step() * self.problem.n_steps,
                             C90_TREE_PROFILE)
