"""Physics diagnostics for the N-body code.

Cluster-structure quantities for validating runs against the analytic
Plummer model and for monitoring relaxation: radial density profiles,
half-mass and Lagrangian radii, and the virial ratio.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .bodies import Bodies

__all__ = ["radial_density_profile", "lagrangian_radius", "virial_ratio",
           "plummer_density", "center_of_mass"]


def center_of_mass(bodies: Bodies) -> np.ndarray:
    return (bodies.masses[:, None] * bodies.positions).sum(axis=0) \
        / bodies.masses.sum()


def radial_density_profile(bodies: Bodies, bins: int = 20,
                           r_max: float = 3.0
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Spherically averaged mass density about the centre of mass.

    Returns ``(bin_centres, density)``.
    """
    if bins < 1 or r_max <= 0:
        raise ValueError("need positive bins and radius")
    com = center_of_mass(bodies)
    r = np.linalg.norm(bodies.positions - com, axis=1)
    edges = np.linspace(0.0, r_max, bins + 1)
    mass, _ = np.histogram(r, bins=edges, weights=bodies.masses)
    volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, mass / volumes


def plummer_density(r: np.ndarray, total_mass: float = 1.0,
                    scale: float = 1.0) -> np.ndarray:
    """The analytic Plummer profile: rho(r) = 3M/(4 pi a^3) (1+r^2/a^2)^-5/2."""
    return (3.0 * total_mass / (4.0 * np.pi * scale ** 3)
            * (1.0 + (r / scale) ** 2) ** -2.5)


def lagrangian_radius(bodies: Bodies, mass_fraction: float = 0.5) -> float:
    """Radius enclosing a given fraction of the total mass (about COM)."""
    if not 0.0 < mass_fraction < 1.0:
        raise ValueError("mass fraction must be in (0, 1)")
    com = center_of_mass(bodies)
    r = np.linalg.norm(bodies.positions - com, axis=1)
    order = np.argsort(r)
    cumulative = np.cumsum(bodies.masses[order])
    target = mass_fraction * bodies.masses.sum()
    idx = int(np.searchsorted(cumulative, target))
    return float(r[order[min(idx, len(r) - 1)]])


def virial_ratio(bodies: Bodies, softening: float = 0.0) -> float:
    """-2K/W; 1.0 for a system in virial equilibrium.

    Uses the direct-sum potential, so intended for test-sized systems.
    """
    kinetic = bodies.kinetic_energy()
    potential = bodies.potential_energy(softening)
    if potential >= 0:
        raise ValueError("potential energy must be negative")
    return -2.0 * kinetic / potential
