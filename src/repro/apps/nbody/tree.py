"""Morton-key octree construction (paper §5.3.1).

Particles are sorted by 63-bit Morton key (the hashed oct-tree of
Warren & Salmon, the paper's reference [27]) and the tree is built
top-down by splitting sorted key ranges on the three octant bits of each
level.  Nodes store centre of mass, total mass, geometric centre and
half-size; leaves reference a contiguous slice of the sorted particle
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .bodies import Bodies

__all__ = ["Octree", "morton_keys_3d", "build_octree",
           "compute_quadrupoles"]

_BITS = 21  # bits per dimension; 63-bit keys


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of x to every third bit position."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_keys_3d(positions: np.ndarray, lo: np.ndarray,
                   span: float) -> np.ndarray:
    """63-bit Morton keys of positions inside the cube (lo, lo+span)."""
    scale = ((1 << _BITS) - 1) / span
    q = np.floor((positions - lo) * scale).astype(np.int64)
    q = np.clip(q, 0, (1 << _BITS) - 1)
    return (_part1by2(q[:, 0])
            | (_part1by2(q[:, 1]) << np.uint64(1))
            | (_part1by2(q[:, 2]) << np.uint64(2))).astype(np.uint64)


@dataclass
class Octree:
    """Array-of-nodes octree over Morton-sorted particles."""

    # particle data, sorted by Morton key
    positions: np.ndarray
    masses: np.ndarray
    order: np.ndarray          #: sorted index -> original body index
    # node arrays (index 0 is the root)
    center: np.ndarray         #: (M, 3) geometric cell centre
    half_size: np.ndarray      #: (M,)
    com: np.ndarray            #: (M, 3) centre of mass
    mass: np.ndarray           #: (M,)
    children: np.ndarray       #: (M, 8) node index or -1
    start: np.ndarray          #: (M,) first particle (sorted order)
    end: np.ndarray            #: (M,) one past the last particle
    is_leaf: np.ndarray        #: (M,) bool
    #: optional traceless quadrupole tensors (M, 3, 3); populated by
    #: :func:`compute_quadrupoles` ("high order moments of the mass
    #: distribution", paper §5.3.1)
    quadrupole: Optional[np.ndarray] = None

    @property
    def n_nodes(self) -> int:
        return len(self.mass)

    @property
    def n_bodies(self) -> int:
        return len(self.masses)

    def leaves(self) -> np.ndarray:
        """Indices of leaf nodes (the force-walk target groups)."""
        return np.flatnonzero(self.is_leaf)

    def check_invariants(self) -> None:
        """Structural checks used by the property tests."""
        if abs(float(self.mass[0] - self.masses.sum())) > 1e-9 * max(
                1.0, float(self.masses.sum())):
            raise AssertionError("root mass != total particle mass")
        for node in range(self.n_nodes):
            s, e = self.start[node], self.end[node]
            if s >= e:
                raise AssertionError(f"node {node} is empty")
            if self.is_leaf[node]:
                if np.any(self.children[node] >= 0):
                    raise AssertionError(f"leaf {node} has children")
                continue
            kids = self.children[node][self.children[node] >= 0]
            if len(kids) == 0:
                raise AssertionError(f"internal node {node} childless")
            if int(sum(self.end[k] - self.start[k] for k in kids)) != e - s:
                raise AssertionError(f"node {node} children do not tile it")
            if abs(float(self.mass[kids].sum() - self.mass[node])) > 1e-9:
                raise AssertionError(f"node {node} mass mismatch")
            # particles inside the cell bounds
        pos = self.positions
        for node in range(self.n_nodes):
            s, e = self.start[node], self.end[node]
            c, h = self.center[node], self.half_size[node]
            if np.any(np.abs(pos[s:e] - c) > h * (1 + 1e-9) + 1e-12):
                raise AssertionError(f"node {node} particles out of bounds")


def build_octree(bodies: Bodies, leaf_size: int = 16) -> Octree:
    """Build the octree (top-down over Morton-sorted keys)."""
    if leaf_size < 1:
        raise ValueError("leaf size must be >= 1")
    pos = bodies.positions
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    span = float((hi - lo).max())
    if span == 0.0:
        span = 1.0
    # pad slightly so max-coordinate particles quantise inside
    span *= 1.0 + 1e-9
    keys = morton_keys_3d(pos, lo, span)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    spos = pos[order]
    smass = bodies.masses[order]

    center0 = lo + 0.5 * span
    half0 = 0.5 * span

    centers: List[np.ndarray] = []
    halves: List[float] = []
    coms: List[np.ndarray] = []
    masses: List[float] = []
    children: List[List[int]] = []
    starts: List[int] = []
    ends: List[int] = []
    leaf_flags: List[bool] = []

    def new_node(s: int, e: int, ctr: np.ndarray, half: float) -> int:
        idx = len(masses)
        centers.append(ctr)
        halves.append(half)
        coms.append(np.zeros(3))
        masses.append(0.0)
        children.append([-1] * 8)
        starts.append(s)
        ends.append(e)
        leaf_flags.append(False)
        return idx

    def build(s: int, e: int, level: int, ctr: np.ndarray,
              half: float) -> int:
        node = new_node(s, e, ctr, half)
        if e - s <= leaf_size or level >= _BITS:
            leaf_flags[node] = True
            m = smass[s:e]
            masses[node] = float(m.sum())
            coms[node] = (m[:, None] * spos[s:e]).sum(axis=0) / masses[node]
            return node
        shift = np.uint64(3 * (_BITS - 1 - level))
        octants = ((keys[s:e] >> shift) & np.uint64(7)).astype(np.int64)
        bounds = np.searchsorted(octants, np.arange(9))
        total_mass = 0.0
        weighted = np.zeros(3)
        for oct_id in range(8):
            cs, ce = s + bounds[oct_id], s + bounds[oct_id + 1]
            if cs == ce:
                continue
            offset = np.array([(oct_id >> 0) & 1, (oct_id >> 1) & 1,
                               (oct_id >> 2) & 1], dtype=float)
            child_ctr = ctr + (offset - 0.5) * half
            child = build(cs, ce, level + 1, child_ctr, 0.5 * half)
            children[node][oct_id] = child
            total_mass += masses[child]
            weighted += masses[child] * coms[child]
        masses[node] = total_mass
        coms[node] = weighted / total_mass
        return node

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        build(0, len(spos), 0, center0, half0)
    finally:
        sys.setrecursionlimit(old_limit)

    return Octree(
        positions=spos, masses=smass, order=order,
        center=np.array(centers), half_size=np.array(halves),
        com=np.array(coms), mass=np.array(masses),
        children=np.array(children, dtype=np.int64),
        start=np.array(starts, dtype=np.int64),
        end=np.array(ends, dtype=np.int64),
        is_leaf=np.array(leaf_flags, dtype=bool),
    )


def _point_quadrupole(delta: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Traceless quadrupole of point masses about an origin:
    sum m (3 x x^T - |x|^2 I)."""
    outer = np.einsum("p,pi,pj->ij", mass, delta, delta)
    r2 = float(np.sum(mass * np.sum(delta * delta, axis=1)))
    return 3.0 * outer - r2 * np.eye(3)


def compute_quadrupoles(tree: Octree) -> np.ndarray:
    """Populate ``tree.quadrupole`` (traceless, about each node's COM).

    Leaves sum their particles directly; internal nodes combine children
    through the parallel-axis shift
    ``Q_parent = sum(Q_child + m_c (3 d d^T - d^2 I))`` with
    ``d = com_child - com_parent``.
    """
    n = tree.n_nodes
    quads = np.zeros((n, 3, 3))
    # children always have larger indices than their parent (the builder
    # appends depth-first), so one reverse pass is bottom-up
    for node in range(n - 1, -1, -1):
        if tree.is_leaf[node]:
            s, e = tree.start[node], tree.end[node]
            delta = tree.positions[s:e] - tree.com[node]
            quads[node] = _point_quadrupole(delta, tree.masses[s:e])
        else:
            total = np.zeros((3, 3))
            for child in tree.children[node]:
                if child < 0:
                    continue
                d = (tree.com[child] - tree.com[node])[None, :]
                total += quads[child] + _point_quadrupole(
                    d, np.array([tree.mass[child]]))
            quads[node] = total
    tree.quadrupole = quads
    return quads
