"""Particle sets and initial conditions for the gravitational N-body code."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Bodies", "plummer_sphere", "uniform_cube"]

G = 1.0  # gravitational constant in code units


@dataclass
class Bodies:
    """N gravitating bodies."""

    positions: np.ndarray    #: (N, 3)
    velocities: np.ndarray   #: (N, 3)
    masses: np.ndarray       #: (N,)

    def __post_init__(self):
        if self.positions.shape != self.velocities.shape \
                or self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions/velocities must be (N, 3)")
        if self.masses.shape != (len(self.positions),):
            raise ValueError("masses must be (N,)")
        if np.any(self.masses <= 0):
            raise ValueError("masses must be positive")

    @property
    def n(self) -> int:
        return len(self.positions)

    def kinetic_energy(self) -> float:
        return 0.5 * float(np.sum(self.masses
                                  * np.sum(self.velocities ** 2, axis=1)))

    def potential_energy(self, softening: float = 0.0) -> float:
        """Direct O(N^2) potential (small N only: used by tests)."""
        pos = self.positions
        m = self.masses
        total = 0.0
        for i in range(self.n - 1):
            d = pos[i + 1:] - pos[i]
            r = np.sqrt(np.sum(d * d, axis=1) + softening ** 2)
            total -= G * m[i] * float(np.sum(m[i + 1:] / r))
        return total

    def total_momentum(self) -> np.ndarray:
        return (self.masses[:, None] * self.velocities).sum(axis=0)


def plummer_sphere(n: int, seed: int = 42, total_mass: float = 1.0) -> Bodies:
    """A Plummer model in virial units (the standard N-body test system)."""
    if n < 1:
        raise ValueError("need at least one body")
    rng = np.random.default_rng(seed)
    # radii from the Plummer cumulative mass profile
    x = rng.uniform(0.0, 1.0, n)
    r = (x ** (-2.0 / 3.0) - 1.0) ** -0.5
    r = np.minimum(r, 10.0)  # truncate the rare far tail
    # isotropic directions
    costh = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    sinth = np.sqrt(1.0 - costh ** 2)
    pos = r[:, None] * np.column_stack(
        [sinth * np.cos(phi), sinth * np.sin(phi), costh])
    # velocities via the standard rejection sampling of the Plummer DF
    g = rng.uniform(0.0, 0.1, n)
    q = rng.uniform(0.0, 1.0, n)
    accept = g < q ** 2 * (1.0 - q ** 2) ** 3.5
    while not np.all(accept):
        redo = ~accept
        q[redo] = rng.uniform(0.0, 1.0, redo.sum())
        g[redo] = rng.uniform(0.0, 0.1, redo.sum())
        accept = g < q ** 2 * (1.0 - q ** 2) ** 3.5
    vesc = np.sqrt(2.0) * (1.0 + r ** 2) ** -0.25
    speed = q * vesc
    costh = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    sinth = np.sqrt(1.0 - costh ** 2)
    vel = speed[:, None] * np.column_stack(
        [sinth * np.cos(phi), sinth * np.sin(phi), costh])
    masses = np.full(n, total_mass / n)
    # move to the centre-of-mass frame
    pos -= pos.mean(axis=0)
    vel -= vel.mean(axis=0)
    return Bodies(pos, vel, masses)


def uniform_cube(n: int, seed: int = 42, total_mass: float = 1.0) -> Bodies:
    """Cold, uniform-density cube (a large-scale-structure style start)."""
    if n < 1:
        raise ValueError("need at least one body")
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-0.5, 0.5, size=(n, 3))
    vel = np.zeros_like(pos)
    masses = np.full(n, total_mass / n)
    return Bodies(pos, vel, masses)
