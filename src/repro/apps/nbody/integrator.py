"""Leapfrog (kick-drift-kick) time integration for the N-body system."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .bodies import Bodies
from .force import ForceResult, tree_forces

__all__ = ["NBodySimulation"]


class NBodySimulation:
    """KDK leapfrog driver around the tree force evaluation."""

    def __init__(self, bodies: Bodies, dt: float = 0.01, theta: float = 0.6,
                 softening: float = 0.01, leaf_size: int = 16,
                 use_quadrupole: bool = False):
        if dt <= 0:
            raise ValueError("timestep must be positive")
        self.bodies = bodies
        self.dt = dt
        self.theta = theta
        self.softening = softening
        self.leaf_size = leaf_size
        self.use_quadrupole = use_quadrupole
        self.step_count = 0
        self.last_result: Optional[ForceResult] = None
        self._acc: Optional[np.ndarray] = None

    def _forces(self) -> np.ndarray:
        result = tree_forces(self.bodies, theta=self.theta,
                             softening=self.softening,
                             leaf_size=self.leaf_size,
                             use_quadrupole=self.use_quadrupole)
        self.last_result = result
        return result.accelerations

    def step(self) -> None:
        """One kick-drift-kick step."""
        b = self.bodies
        if self._acc is None:
            self._acc = self._forces()
        b.velocities += 0.5 * self.dt * self._acc
        b.positions += self.dt * b.velocities
        self._acc = self._forces()
        b.velocities += 0.5 * self.dt * self._acc
        self.step_count += 1

    def run(self, n_steps: int) -> List[Dict[str, float]]:
        """Advance ``n_steps``; returns per-step energy diagnostics."""
        history = []
        for _ in range(n_steps):
            self.step()
            history.append(self.energies())
        return history

    def energies(self) -> Dict[str, float]:
        kinetic = self.bodies.kinetic_energy()
        potential = self.bodies.potential_energy(self.softening)
        return {"kinetic": kinetic, "potential": potential,
                "total": kinetic + potential}
