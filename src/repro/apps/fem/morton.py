"""Morton (Z-order) ordering of mesh points and elements (paper §5.2.1).

The paper Morton-orders both points and elements "to enhance cache
locality for the gathers and scatters" [27].  We provide 2-D Morton
encoding/decoding plus permutations that reorder a mesh in place.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .mesh import TriMesh

__all__ = ["morton_encode", "morton_decode", "morton_order_mesh",
           "point_permutation", "element_permutation"]

_MAX_BITS = 21  # 2 x 21 bits fits comfortably in an int64


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of x so they occupy even bit positions."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by1(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def morton_encode(i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Interleave the bits of non-negative integer coordinates (i, j)."""
    i = np.asarray(i)
    j = np.asarray(j)
    if np.any(i < 0) or np.any(j < 0):
        raise ValueError("Morton coordinates must be non-negative")
    if np.any(i >= 1 << _MAX_BITS) or np.any(j >= 1 << _MAX_BITS):
        raise ValueError(f"Morton coordinates must be < 2^{_MAX_BITS}")
    return (_part1by1(i) | (_part1by1(j) << np.uint64(1))).astype(np.int64)


def morton_decode(code: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode`."""
    code = np.asarray(code).astype(np.uint64)
    i = _compact1by1(code)
    j = _compact1by1(code >> np.uint64(1))
    return i.astype(np.int64), j.astype(np.int64)


def _quantise(coords: np.ndarray, bits: int = 16) -> np.ndarray:
    """Map float coordinates onto a 2^bits integer lattice per axis."""
    lo = coords.min(axis=0)
    span = coords.max(axis=0) - lo
    span[span == 0] = 1.0
    scale = (1 << bits) - 1
    return np.floor((coords - lo) / span * scale).astype(np.int64)


def point_permutation(mesh: TriMesh) -> np.ndarray:
    """Permutation sorting points by the Morton code of their position."""
    q = _quantise(mesh.points)
    return np.argsort(morton_encode(q[:, 0], q[:, 1]), kind="stable")


def element_permutation(mesh: TriMesh) -> np.ndarray:
    """Permutation sorting elements by the Morton code of their centroid."""
    centroids = mesh.points[mesh.triangles].mean(axis=1)
    q = _quantise(centroids)
    return np.argsort(morton_encode(q[:, 0], q[:, 1]), kind="stable")


def morton_order_mesh(mesh: TriMesh) -> TriMesh:
    """A new mesh with points and elements in Morton order."""
    pperm = point_permutation(mesh)
    inverse = np.empty_like(pperm)
    inverse[pperm] = np.arange(len(pperm))
    new_points = mesh.points[pperm]
    new_tris = inverse[mesh.triangles]
    reordered = TriMesh(new_points, new_tris, periodic=mesh.periodic)
    eperm = element_permutation(reordered)
    return TriMesh(new_points, new_tris[eperm], periodic=mesh.periodic)
