"""High-level FEM simulation driver with diagnostics history.

Wraps :class:`GasDynamicsFEM` the way the PIC driver wraps its kernels:
fixed point of the public API for the examples and tests — step loop,
per-step conserved totals, flow diagnostics (Mach number, extrema).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .gasdyn import FEMState, GasDynamicsFEM
from .mesh import TriMesh

__all__ = ["FEMSimulation"]


class FEMSimulation:
    """A gas-dynamics run on one mesh, with history."""

    def __init__(self, mesh: TriMesh, state: FEMState,
                 gamma: float = 1.4, cfl: float = 0.3,
                 dissipation: float = 1.0):
        self.solver = GasDynamicsFEM(mesh, gamma=gamma, cfl=cfl,
                                     dissipation=dissipation)
        self.state = state
        self.time = 0.0
        self.history: List[Dict[str, float]] = []

    @property
    def mesh(self) -> TriMesh:
        return self.solver.mesh

    @property
    def step_count(self) -> int:
        return self.solver.step_count

    def mach_number(self) -> np.ndarray:
        """Local Mach number at every mesh point."""
        rho = self.state.rho
        v = self.state.velocity
        p = np.maximum(self.state.pressure(self.solver.gamma), 1e-12)
        c = np.sqrt(self.solver.gamma * p / rho)
        return np.hypot(v[:, 0], v[:, 1]) / c

    def diagnostics(self) -> Dict[str, float]:
        totals = self.solver.totals(self.state)
        p = self.state.pressure(self.solver.gamma)
        return {
            "time": self.time,
            "step": float(self.step_count),
            **totals,
            "min_density": float(self.state.rho.min()),
            "min_pressure": float(p.min()),
            "max_mach": float(self.mach_number().max()),
        }

    def step(self) -> Dict[str, float]:
        """Advance one CFL-limited step; returns the new diagnostics."""
        self.state, dt = self.solver.step(self.state)
        self.time += dt
        diag = self.diagnostics()
        self.history.append(diag)
        return diag

    def run(self, n_steps: Optional[int] = None,
            until_time: Optional[float] = None) -> List[Dict[str, float]]:
        """Run for a step count or until a physical time (one required)."""
        if (n_steps is None) == (until_time is None):
            raise ValueError("give exactly one of n_steps / until_time")
        if n_steps is not None:
            for _ in range(n_steps):
                self.step()
        else:
            while self.time < until_time:
                self.step()
        return self.history

    def is_physical(self) -> bool:
        """Positivity check on the current state."""
        return bool(self.state.rho.min() > 0
                    and self.state.pressure(self.solver.gamma).min() > 0
                    and np.isfinite(self.state.u).all())
