"""Triangular meshes for the FEM gas-dynamics code (paper §5.2).

The paper's two data sets factor exactly as structured triangulations of
a rectangle:

* small — 46 545 points, 92 160 elements = a 320 x 144 quad grid split
  into triangles (321 x 145 points);
* large — 263 169 points, 524 288 elements = 512 x 512 quads
  (513 x 513 points).

Both have the paper's stated "about two elements to every point" and an
average of six (maximum seven at boundaries handled as fewer) elements
meeting at each point.  A periodic variant (points glued across the
boundary) is provided for conservation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["TriMesh", "rectangle_mesh", "small_mesh", "large_mesh"]


@dataclass(frozen=True)
class TriMesh:
    """An unstructured triangular mesh."""

    points: np.ndarray      #: (P, 2) vertex coordinates
    triangles: np.ndarray   #: (E, 3) vertex indices, counter-clockwise
    periodic: bool = False

    def __post_init__(self):
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError("points must be (P, 2)")
        if self.triangles.ndim != 2 or self.triangles.shape[1] != 3:
            raise ValueError("triangles must be (E, 3)")
        if self.triangles.min() < 0 or \
                self.triangles.max() >= len(self.points):
            raise ValueError("triangle vertex index out of range")

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_elements(self) -> int:
        return len(self.triangles)

    def areas(self) -> np.ndarray:
        """Signed triangle areas (positive for CCW orientation)."""
        p = self.points[self.triangles]          # (E, 3, 2)
        if self.periodic:
            # unwrap vertices that cross the periodic seam
            p = _unwrap(p, self._extent())
        a, b, c = p[:, 0], p[:, 1], p[:, 2]
        return 0.5 * ((b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
                      - (c[:, 0] - a[:, 0]) * (b[:, 1] - a[:, 1]))

    def shape_gradients(self) -> Tuple[np.ndarray, np.ndarray]:
        """Gradients of the linear shape functions.

        Returns ``(bx, by)``, each (E, 3): the x / y derivative of vertex
        i's shape function on each element.
        """
        p = self.points[self.triangles]
        if self.periodic:
            p = _unwrap(p, self._extent())
        a, b, c = p[:, 0], p[:, 1], p[:, 2]
        area2 = ((b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
                 - (c[:, 0] - a[:, 0]) * (b[:, 1] - a[:, 1]))
        bx = np.stack([b[:, 1] - c[:, 1],
                       c[:, 1] - a[:, 1],
                       a[:, 1] - b[:, 1]], axis=1) / area2[:, None]
        by = np.stack([c[:, 0] - b[:, 0],
                       a[:, 0] - c[:, 0],
                       b[:, 0] - a[:, 0]], axis=1) / area2[:, None]
        return bx, by

    def lumped_mass(self) -> np.ndarray:
        """Lumped (diagonal) mass: one third of adjacent element areas."""
        mass = np.zeros(self.n_points)
        np.add.at(mass, self.triangles.ravel(),
                  np.repeat(self.areas() / 3.0, 3))
        return mass

    def elements_per_point(self) -> np.ndarray:
        """How many elements touch each point."""
        counts = np.zeros(self.n_points, dtype=int)
        np.add.at(counts, self.triangles.ravel(), 1)
        return counts

    def _extent(self) -> Tuple[float, float]:
        return (float(self.points[:, 0].max()) + self._dx(),
                float(self.points[:, 1].max()) + self._dy())

    def _dx(self) -> float:
        xs = np.unique(self.points[:, 0])
        return float(xs[1] - xs[0]) if len(xs) > 1 else 1.0

    def _dy(self) -> float:
        ys = np.unique(self.points[:, 1])
        return float(ys[1] - ys[0]) if len(ys) > 1 else 1.0


def _unwrap(p: np.ndarray, extent: Tuple[float, float]) -> np.ndarray:
    """Shift periodic-seam vertices so each triangle is geometrically small."""
    p = p.copy()
    for axis, length in enumerate(extent):
        ref = p[:, 0, axis][:, None]
        delta = p[:, :, axis] - ref
        p[:, :, axis] -= length * np.round(delta / length)
    return p


def rectangle_mesh(nx: int, ny: int, periodic: bool = False,
                   width: float = 1.0, height: float = 1.0) -> TriMesh:
    """A structured triangulation of a rectangle: ``2 nx ny`` triangles.

    Non-periodic: ``(nx+1)(ny+1)`` points.  Periodic: ``nx ny`` points
    with opposite edges identified.
    """
    if nx < 1 or ny < 1:
        raise ValueError("mesh needs at least one quad per dimension")
    px, py = (nx, ny) if periodic else (nx + 1, ny + 1)
    if periodic:
        # the identified right/top edge points are omitted
        xs = np.arange(px) * (width / nx)
        ys = np.arange(py) * (height / ny)
    else:
        xs = np.linspace(0.0, width, px)
        ys = np.linspace(0.0, height, py)
    xg, yg = np.meshgrid(xs, ys, indexing="ij")
    points = np.column_stack([xg.ravel(), yg.ravel()])

    def pid(i: int, j: int) -> int:
        if periodic:
            return (i % nx) * py + (j % ny)
        return i * py + j

    tris = []
    for i in range(nx):
        for j in range(ny):
            p00 = pid(i, j)
            p10 = pid(i + 1, j)
            p01 = pid(i, j + 1)
            p11 = pid(i + 1, j + 1)
            tris.append((p00, p10, p11))
            tris.append((p00, p11, p01))
    return TriMesh(points, np.array(tris, dtype=np.int64), periodic=periodic)


def small_mesh() -> TriMesh:
    """The paper's small data set: 46 545 points, 92 160 elements."""
    return rectangle_mesh(320, 144)


def large_mesh() -> TriMesh:
    """The paper's large data set: 263 169 points, 524 288 elements."""
    return rectangle_mesh(512, 512)
