"""2-D unstructured FEM gas dynamics (paper §5.2).

Numerics: :func:`rectangle_mesh` / :func:`small_mesh` / :func:`large_mesh`
(the paper's exact mesh sizes), Morton ordering, and
:class:`GasDynamicsFEM` — a first-order lumped-mass Galerkin Euler solver.

Performance: :class:`FEMWorkload` with the paper's three Figure-7 curves
(:func:`small1_problem`, :func:`small2_problem`, :func:`large_problem`).
"""

from .driver import FEMSimulation
from .gasdyn import (
    FLOPS_PER_ELEMENT_UPDATE,
    FLOPS_PER_POINT_UPDATE,
    FEMState,
    GasDynamicsFEM,
    sod_tube,
    uniform_flow,
)
from .mesh import TriMesh, large_mesh, rectangle_mesh, small_mesh
from .morton import (
    element_permutation,
    morton_decode,
    morton_encode,
    morton_order_mesh,
    point_permutation,
)
from .workload import (
    C90_FEM_PROFILE,
    FEMProblem,
    FEMWorkload,
    large_problem,
    small1_problem,
    small2_problem,
)

__all__ = [
    "TriMesh", "rectangle_mesh", "small_mesh", "large_mesh",
    "morton_encode", "morton_decode", "morton_order_mesh",
    "point_permutation", "element_permutation",
    "FEMState", "GasDynamicsFEM", "FEMSimulation", "uniform_flow",
    "sod_tube",
    "FLOPS_PER_POINT_UPDATE", "FLOPS_PER_ELEMENT_UPDATE",
    "FEMProblem", "FEMWorkload", "small1_problem", "small2_problem",
    "large_problem", "C90_FEM_PROFILE",
]
