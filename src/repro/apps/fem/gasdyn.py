"""First-order FEM compressible gas dynamics (paper §5.2.1).

A lumped-mass, first-order-in-space-and-time Galerkin scheme for the 2-D
Euler equations on an unstructured triangular mesh, matching the paper's
prototype ("a simple first-order in space (lumped mass matrix) and time,
unstructured, 2D, FEM, gas dynamics code").

Discretisation, per timestep:

1. a global reduction finds the largest permissible timestep (CFL);
2. the *element phase* gathers vertex states, forms element-average
   fluxes and wavespeeds (spatial derivatives via linear shape-function
   gradients);
3. the *point phase* scatter-adds element contributions to the points
   ("the scatter-add problem") and applies the lumped-mass update, with
   Rusanov-type artificial dissipation for stability.

Both the Galerkin term and the dissipation are telescopically
conservative: shape gradients sum to zero on each element and the
dissipation redistributes around the element mean, so total mass,
momentum and energy are conserved exactly on a periodic mesh (up to
rounding) — which the physics tests assert.

Flop accounting uses the paper's own measured conversion factors: 437
flops per point update (220 per element update), quoted in §5.2.2 as the
basis for "useful Mflop/s".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .mesh import TriMesh

__all__ = ["FEMState", "GasDynamicsFEM", "uniform_flow", "sod_tube",
           "FLOPS_PER_POINT_UPDATE", "FLOPS_PER_ELEMENT_UPDATE"]

#: the paper's measured hpm flop counts (§5.2.2)
FLOPS_PER_POINT_UPDATE = 437.0
FLOPS_PER_ELEMENT_UPDATE = 220.0

_NVAR = 4  # rho, rho*u, rho*v, E


@dataclass
class FEMState:
    """Conserved variables at mesh points: (P, 4) = rho, mx, my, E."""

    u: np.ndarray

    def __post_init__(self):
        if self.u.ndim != 2 or self.u.shape[1] != _NVAR:
            raise ValueError("state must be (P, 4)")

    @property
    def rho(self) -> np.ndarray:
        return self.u[:, 0]

    @property
    def velocity(self) -> np.ndarray:
        return self.u[:, 1:3] / self.u[:, 0:1]

    @property
    def energy(self) -> np.ndarray:
        return self.u[:, 3]

    def pressure(self, gamma: float = 1.4) -> np.ndarray:
        kinetic = 0.5 * (self.u[:, 1] ** 2 + self.u[:, 2] ** 2) / self.u[:, 0]
        return (gamma - 1.0) * (self.u[:, 3] - kinetic)

    def copy(self) -> "FEMState":
        return FEMState(self.u.copy())


def uniform_flow(mesh: TriMesh, rho: float = 1.0, u: float = 0.0,
                 v: float = 0.0, pressure: float = 1.0,
                 gamma: float = 1.4) -> FEMState:
    """A spatially uniform state (an exact steady solution)."""
    n = mesh.n_points
    energy = pressure / (gamma - 1.0) + 0.5 * rho * (u * u + v * v)
    state = np.tile([rho, rho * u, rho * v, energy], (n, 1))
    return FEMState(state)


def sod_tube(mesh: TriMesh, gamma: float = 1.4, axis: int = 0) -> FEMState:
    """Sod's shock tube along one axis: (1, 0, 0, 1) | (0.125, 0, 0, 0.1)."""
    coords = mesh.points[:, axis]
    mid = 0.5 * (coords.min() + coords.max())
    left = coords < mid
    u = np.empty((mesh.n_points, _NVAR))
    u[left] = [1.0, 0.0, 0.0, 1.0 / (gamma - 1.0)]
    u[~left] = [0.125, 0.0, 0.0, 0.1 / (gamma - 1.0)]
    return FEMState(u)


def _flux(u: np.ndarray, gamma: float) -> Tuple[np.ndarray, np.ndarray]:
    """Euler fluxes Fx, Fy for states ``u`` of shape (..., 4)."""
    rho = u[..., 0]
    vx = u[..., 1] / rho
    vy = u[..., 2] / rho
    p = (gamma - 1.0) * (u[..., 3] - 0.5 * rho * (vx ** 2 + vy ** 2))
    fx = np.stack([u[..., 1],
                   u[..., 1] * vx + p,
                   u[..., 2] * vx,
                   (u[..., 3] + p) * vx], axis=-1)
    fy = np.stack([u[..., 2],
                   u[..., 1] * vy,
                   u[..., 2] * vy + p,
                   (u[..., 3] + p) * vy], axis=-1)
    return fx, fy


class GasDynamicsFEM:
    """The FEM gas-dynamics solver on one mesh."""

    def __init__(self, mesh: TriMesh, gamma: float = 1.4, cfl: float = 0.3,
                 dissipation: float = 1.0):
        if not 1.0 < gamma < 3.0:
            raise ValueError("gamma out of range")
        if cfl <= 0 or cfl > 1:
            raise ValueError("CFL must be in (0, 1]")
        self.mesh = mesh
        self.gamma = gamma
        self.cfl = cfl
        self.dissipation = dissipation
        self.areas = mesh.areas()
        if np.any(self.areas <= 0):
            raise ValueError("mesh has non-positive element areas")
        self.bx, self.by = mesh.shape_gradients()
        self.mass = mesh.lumped_mass()
        self.h = np.sqrt(self.areas)           # element length scale
        self.step_count = 0

    # -- CFL ---------------------------------------------------------------
    def max_wavespeed(self, state: FEMState) -> float:
        """Global maximum |v| + c (the paper's class-1 global reduction)."""
        rho = state.rho
        v = state.velocity
        p = np.maximum(state.pressure(self.gamma), 1e-12)
        c = np.sqrt(self.gamma * p / rho)
        return float((np.hypot(v[:, 0], v[:, 1]) + c).max())

    def stable_dt(self, state: FEMState) -> float:
        return self.cfl * float(self.h.min()) / self.max_wavespeed(state)

    # -- one step -----------------------------------------------------------
    def step(self, state: FEMState, dt: Optional[float] = None
             ) -> Tuple[FEMState, float]:
        """Advance one timestep; returns (new state, dt used)."""
        if dt is None:
            dt = self.stable_dt(state)
        tris = self.mesh.triangles
        u_elem = state.u[tris]                    # gather: (E, 3, 4)
        u_bar = u_elem.mean(axis=1)               # (E, 4)
        fx, fy = _flux(u_bar, self.gamma)         # (E, 4)

        rho = u_bar[:, 0]
        speed = np.hypot(u_bar[:, 1] / rho, u_bar[:, 2] / rho)
        p_bar = np.maximum(
            (self.gamma - 1.0) * (u_bar[:, 3] - 0.5 * rho * speed ** 2),
            1e-12)
        lam = speed + np.sqrt(self.gamma * p_bar / rho)   # (E,)

        # Galerkin term: m_i dU_i/dt += A_e * grad(N_i) . F_bar
        galerkin = (self.areas[:, None, None]
                    * (self.bx[:, :, None] * fx[:, None, :]
                       + self.by[:, :, None] * fy[:, None, :]))  # (E, 3, 4)
        # Rusanov dissipation about the element mean
        diss = (self.dissipation
                * (self.areas / 3.0 * lam / self.h)[:, None, None]
                * (u_bar[:, None, :] - u_elem))                  # (E, 3, 4)

        residual = np.zeros_like(state.u)
        np.add.at(residual, tris.ravel(),
                  (galerkin + diss).reshape(-1, _NVAR))          # scatter-add

        new_u = state.u + dt * residual / self.mass[:, None]
        self.step_count += 1
        return FEMState(new_u), dt

    def run(self, state: FEMState, n_steps: int
            ) -> Tuple[FEMState, List[float]]:
        """Advance ``n_steps``; returns the final state and the dt history."""
        dts = []
        for _ in range(n_steps):
            state, dt = self.step(state)
            dts.append(dt)
        return state, dts

    # -- diagnostics ---------------------------------------------------------
    def totals(self, state: FEMState) -> Dict[str, float]:
        """Mass-weighted conserved totals (exact invariants when periodic)."""
        w = self.mass[:, None]
        sums = (w * state.u).sum(axis=0)
        return {"mass": float(sums[0]), "momentum_x": float(sums[1]),
                "momentum_y": float(sums[2]), "energy": float(sums[3])}

    def flops_per_step(self) -> float:
        """The paper's conversion: 437 flops per point update."""
        return FLOPS_PER_POINT_UPDATE * self.mesh.n_points
