"""Performance workload of the FEM code (paper §5.2.2, Figure 7).

One timestep of the solver decomposes into a CFL reduction, the element
phase (gather), the point phase (scatter-add) and the nodal update, with
barriers between them.  Points and elements are Morton-ordered (paper
§5.2.1), so the gathers and scatters traverse memory with strong
spatial locality — they are characterised as streaming passes whose
working sets decide the cache behaviour, not as uniformly random access.

The paper runs two codings of the same numerics on the small mesh
("small1"/"small2"): we model the second, vector-style coding as the
same useful flops with a larger traffic/temporary footprint, matching
its lower measured rate (31 vs 18 MFLOP/s serial, §5.2.2).

MFLOP/s uses the paper's own conversion factor of 437 useful flops per
point update.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.config import MachineConfig
from ...perfmodel import (
    Access,
    C90Model,
    C90Profile,
    LocalityMix,
    PerformanceModel,
    Phase,
    RunResult,
    StepWork,
    TeamSpec,
)
from ...runtime import Placement
from .gasdyn import FLOPS_PER_ELEMENT_UPDATE, FLOPS_PER_POINT_UPDATE
from .mesh import large_mesh, small_mesh

__all__ = ["FEMProblem", "FEMWorkload", "small1_problem", "small2_problem",
           "large_problem", "C90_FEM_PROFILE"]

#: calibrated to the paper's 250 MFLOP/s C90 head for this algorithm
C90_FEM_PROFILE = C90Profile(vector_fraction=0.95, avg_vector_length=40.0,
                             gather_fraction=0.85)

_WORD = 8                    #: double-precision Fortran reals
_POINT_WORDS = 11            #: state(4) + residual(4) + coords(2) + mass(1)
_ELEM_WORDS = 11             #: vertices(3) + area + gradients(6) + h


@dataclass(frozen=True)
class FEMProblem:
    """One Figure 7 curve: a mesh size and a coding of the numerics."""

    n_points: int
    n_elements: int
    label: str
    traffic_factor: float = 1.0   #: the vector-style coding materialises
                                  #  extra temporaries
    n_steps: int = 100

    @property
    def point_bytes(self) -> float:
        return self.n_points * _POINT_WORDS * _WORD

    @property
    def element_bytes(self) -> float:
        return self.n_elements * _ELEM_WORDS * _WORD

    @property
    def footprint_bytes(self) -> float:
        return self.point_bytes + self.element_bytes


def small1_problem() -> FEMProblem:
    """Small mesh, tight coding (Fig 7 curve 'small1')."""
    mesh = small_mesh()
    return FEMProblem(mesh.n_points, mesh.n_elements, "small1")


def small2_problem() -> FEMProblem:
    """Small mesh, vector-style coding (Fig 7 curve 'small2')."""
    mesh = small_mesh()
    return FEMProblem(mesh.n_points, mesh.n_elements, "small2",
                      traffic_factor=1.8)


def large_problem() -> FEMProblem:
    """Large mesh (Fig 7 curve 'large')."""
    mesh = large_mesh()
    return FEMProblem(mesh.n_points, mesh.n_elements, "large")


class FEMWorkload:
    """Builds StepWork records and runs them through the machine model.

    ``data_placement`` selects the §3.2 memory class backing the mesh
    data — the knob §6 laments was not yet operational:

    * ``"far_shared"`` (default, what the paper ran): pages round-robin
      over the hypernodes in use;
    * ``"near_shared"``: the whole mesh hosted by hypernode 0 — threads
      on other hypernodes find *all* their shared data remote;
    * ``"block_shared"``: blocks aligned with the partitioning — only
      partition-boundary traffic crosses hypernodes.
    """

    PLACEMENTS = ("far_shared", "near_shared", "block_shared")

    def __init__(self, problem: FEMProblem, config: MachineConfig,
                 data_placement: str = "far_shared"):
        if data_placement not in self.PLACEMENTS:
            raise ValueError(f"unknown data placement {data_placement!r}")
        self.problem = problem
        self.config = config
        self.data_placement = data_placement
        self.model = PerformanceModel(config)

    def flops_per_step(self) -> float:
        """Useful flops: the paper's 437 per point update."""
        return FLOPS_PER_POINT_UPDATE * self.problem.n_points

    def _mix(self, team: TeamSpec, tid: int = 0) -> LocalityMix:
        hns = team.n_hypernodes_used
        if hns == 1:
            return LocalityMix(private=0.0, node=1.0, remote=0.0)
        if self.data_placement == "near_shared":
            remote = 0.0 if team.hypernode_of_thread(tid) == \
                team.hypernodes[0] else 1.0
        elif self.data_placement == "block_shared":
            remote = 0.05    # partition-boundary traffic only
        else:
            remote = 1.0 - 1.0 / hns
        return LocalityMix(private=0.0, node=1.0 - remote, remote=remote)

    def step(self, team: TeamSpec) -> StepWork:
        prob = self.problem
        n = team.n_threads
        tf = prob.traffic_factor
        chunk_p = prob.n_points / n
        chunk_e = prob.n_elements / n
        # per-thread working set: its slice of points and elements
        ws_thread = prob.footprint_bytes / n

        elem_flops = FLOPS_PER_ELEMENT_UPDATE * 150.0 / 220.0
        scatter_flops = FLOPS_PER_ELEMENT_UPDATE - elem_flops

        def phases_for(mix):
            return [
            # global max for the permissible timestep (class-1 reduction)
            Phase("cfl/reduce", flops=chunk_p * 5,
                  traffic_bytes=chunk_p * 3 * _WORD,
                  working_set_bytes=chunk_p * 4 * _WORD,
                  locality=mix, access=Access.STREAM, remote_reuse=0.8),
            # element phase: gather vertex states, evaluate fluxes.
            # Morton ordering makes the indirect reads spatially local.
            Phase("element/gather", flops=chunk_e * elem_flops,
                  traffic_bytes=chunk_e * 18 * _WORD * tf,
                  working_set_bytes=ws_thread,
                  locality=mix, access=Access.STREAM, remote_reuse=0.7),
            # point phase: scatter-add of element contributions; the
            # residual array is write-shared at partition boundaries, so
            # remote reuse is weaker.
            Phase("point/scatter", flops=chunk_e * scatter_flops,
                  traffic_bytes=chunk_e * 24 * _WORD * tf,
                  working_set_bytes=ws_thread,
                  locality=mix, access=Access.STREAM, remote_reuse=0.35),
            # nodal update
            Phase("point/update", flops=chunk_p * 12,
                  traffic_bytes=chunk_p * 10 * _WORD,
                  working_set_bytes=chunk_p * _POINT_WORDS * _WORD,
                  locality=mix, access=Access.STREAM, remote_reuse=0.9),
            ]

        return StepWork([phases_for(self._mix(team, tid))
                         for tid in range(n)], barriers=3)

    def run(self, n_threads: int,
            placement: Placement = Placement.HIGH_LOCALITY) -> RunResult:
        team = TeamSpec(self.config, n_threads, placement)
        result = self.model.run([self.step(team)], team,
                                repeat=self.problem.n_steps)
        useful = self.flops_per_step() * self.problem.n_steps
        return RunResult(result.time_ns, useful, n_threads)

    def run_c90(self, model: C90Model = C90Model()) -> float:
        """One C90 head, in ns (paper: 250 MFLOP/s for this algorithm)."""
        return model.time_ns(self.flops_per_step() * self.problem.n_steps,
                             C90_FEM_PROFILE)
