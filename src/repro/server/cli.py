"""``python -m repro serve`` — run the job server in the foreground.

One line to stdout when the server is listening; SIGINT/SIGTERM trigger
a graceful drain (queued and running jobs finish, clients get ``bye``)
before exit.  All errors follow the CLI's one-line actionable-error
convention on stderr with exit code 2.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from .protocol import DEFAULT_PORT
from .server import ReproServer

__all__ = ["serve_main", "build_serve_parser"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve simulations over TCP: clients (repro.sdk) "
                    "submit sweep jobs, the server runs them through "
                    "the execution fabric and streams per-unit "
                    "telemetry back live. Results are bit-identical "
                    "to the one-shot CLI and share its result cache, "
                    "so a warm-cache job answers without simulating.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="TCP port; 0 picks a free one "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent job slots (default: %(default)s)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache root (default: the CLI's "
                             "shared cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run every job cold (disables warm-cache "
                             "replies)")
    parser.add_argument("--rate", type=float, default=10.0,
                        help="sustained submits/s allowed per client "
                             "(default: %(default)s)")
    parser.add_argument("--burst", type=int, default=20,
                        help="submit burst capacity per client "
                             "(default: %(default)s)")
    parser.add_argument("--max-queue", type=int, default=128,
                        help="max queued jobs before submits are "
                             "rejected (default: %(default)s)")
    parser.add_argument("--send-buffer", type=int, default=256,
                        help="outbound messages buffered per client "
                             "before progress records coalesce "
                             "(default: %(default)s)")
    return parser


def _fail(message: str) -> int:
    print(message, file=sys.stderr)
    return 2


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = build_serve_parser().parse_args(argv)
    if args.workers < 1:
        return _fail(f"--workers must be >= 1, got {args.workers}; "
                     "each worker is one concurrent job slot")
    if args.rate <= 0:
        return _fail(f"--rate must be > 0, got {args.rate:g}; it is "
                     "the sustained submits/s allowed per client")
    if args.burst < 1:
        return _fail(f"--burst must be >= 1, got {args.burst}; it is "
                     "the per-client submit burst capacity")
    if args.max_queue < 1:
        return _fail(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.send_buffer < 4:
        return _fail(f"--send-buffer must be >= 4, got "
                     f"{args.send_buffer}; smaller buffers cannot hold "
                     "a job's terminal messages")
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


async def _serve(args) -> None:
    server = ReproServer(
        args.host, args.port, workers=args.workers,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        rate_per_s=args.rate, burst=args.burst,
        max_queue=args.max_queue, send_buffer=args.send_buffer)
    host, port = await server.start()
    cache_note = "no cache" if args.no_cache else \
        (args.cache_dir or "shared cache")
    print(f"repro.server listening on {host}:{port} "
          f"({args.workers} workers, {cache_note}); Ctrl-C drains "
          "and exits", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop: fall back to KeyboardInterrupt
    serve_task = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    print("repro.server draining (finishing accepted jobs)...",
          flush=True)
    serve_task.cancel()
    try:
        await serve_task
    except (asyncio.CancelledError, Exception):
        pass
    await server.shutdown(drain=True)
    stats = server.stats()
    print(f"repro.server stopped: jobs {stats['jobs']}", flush=True)
