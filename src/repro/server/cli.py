"""``python -m repro serve`` — run the job server in the foreground.

One line to stdout when the server is listening; SIGINT/SIGTERM trigger
a graceful drain (queued and running jobs finish, clients get ``bye``)
before exit.  All errors follow the CLI's one-line actionable-error
convention on stderr with exit code 2.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from .protocol import DEFAULT_PORT
from .server import ReproServer

__all__ = ["serve_main", "build_serve_parser"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve simulations over TCP: clients (repro.sdk) "
                    "submit sweep jobs, the server runs them through "
                    "the execution fabric and streams per-unit "
                    "telemetry back live. Results are bit-identical "
                    "to the one-shot CLI and share its result cache, "
                    "so a warm-cache job answers without simulating.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="TCP port; 0 picks a free one "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent job slots (default: %(default)s)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache root (default: the CLI's "
                             "shared cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run every job cold (disables warm-cache "
                             "replies)")
    parser.add_argument("--rate", type=float, default=10.0,
                        help="sustained submits/s allowed per client "
                             "(default: %(default)s)")
    parser.add_argument("--burst", type=int, default=20,
                        help="submit burst capacity per client "
                             "(default: %(default)s)")
    parser.add_argument("--max-queue", type=int, default=128,
                        help="max queued jobs before submits are "
                             "rejected (default: %(default)s)")
    parser.add_argument("--send-buffer", type=int, default=256,
                        help="outbound messages buffered per client "
                             "before progress records coalesce "
                             "(default: %(default)s)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve Prometheus metrics over HTTP on "
                             "this port (/metrics + /healthz; 0 picks "
                             "a free one; default: off)")
    parser.add_argument("--ledger", nargs="?",
                        const="benchmarks/LEDGER.jsonl", default=None,
                        metavar="PATH",
                        help="attach the longitudinal performance "
                             "ledger: expose its record counts on "
                             "/metrics and append one server-lifetime "
                             "record (per-experiment job-latency "
                             "series, fabric counters) at drain (bare "
                             "--ledger uses benchmarks/LEDGER.jsonl; "
                             "default: off)")
    parser.add_argument("--log", nargs="?", const="-", default=None,
                        metavar="FILE",
                        help="structured JSON log: one line per "
                             "connection/job lifecycle event with "
                             "trace_id/job_id (FILE to append, bare "
                             "--log for stderr; default: off)")
    return parser


def _fail(message: str) -> int:
    print(message, file=sys.stderr)
    return 2


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = build_serve_parser().parse_args(argv)
    if args.workers < 1:
        return _fail(f"--workers must be >= 1, got {args.workers}; "
                     "each worker is one concurrent job slot")
    if args.rate <= 0:
        return _fail(f"--rate must be > 0, got {args.rate:g}; it is "
                     "the sustained submits/s allowed per client")
    if args.burst < 1:
        return _fail(f"--burst must be >= 1, got {args.burst}; it is "
                     "the per-client submit burst capacity")
    if args.max_queue < 1:
        return _fail(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.send_buffer < 4:
        return _fail(f"--send-buffer must be >= 4, got "
                     f"{args.send_buffer}; smaller buffers cannot hold "
                     "a job's terminal messages")
    if args.metrics_port is not None and not 0 <= args.metrics_port <= 65535:
        return _fail(f"--metrics-port must be 0..65535, got "
                     f"{args.metrics_port}; 0 picks a free port")
    from .log import open_log

    log = open_log(args.log)
    try:
        asyncio.run(_serve(args, log))
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        return _fail(f"cannot serve on {args.host}:{args.port}: "
                     f"{exc.strerror or exc}")
    finally:
        log.close()
    return 0


async def _serve(args, log) -> None:
    server = ReproServer(
        args.host, args.port, workers=args.workers,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        rate_per_s=args.rate, burst=args.burst,
        max_queue=args.max_queue, send_buffer=args.send_buffer,
        metrics_port=args.metrics_port, ledger_path=args.ledger,
        log=log)
    host, port = await server.start()
    cache_note = "no cache" if args.no_cache else \
        (args.cache_dir or "shared cache")
    metrics_note = (f", metrics on :{server.metrics_port}"
                    if server.metrics_port is not None else "")
    print(f"repro.server listening on {host}:{port} "
          f"({args.workers} workers, {cache_note}{metrics_note}); "
          "Ctrl-C drains and exits", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop: fall back to KeyboardInterrupt
    serve_task = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    print("repro.server draining (finishing accepted jobs)...",
          flush=True)
    serve_task.cancel()
    try:
        await serve_task
    except (asyncio.CancelledError, Exception):
        pass
    await server.shutdown(drain=True)
    stats = server.stats()
    print(f"repro.server stopped: jobs {stats['jobs']}", flush=True)
