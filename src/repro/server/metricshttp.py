"""The ``--metrics-port`` HTTP endpoint: Prometheus text exposition.

A tiny stdlib HTTP server on its own daemon thread serving two routes:

* ``GET /metrics`` — the job server's :class:`~repro.obs.registry.
  MetricsRegistry` rendered in Prometheus text format 0.0.4 (what
  ``prometheus``/``victoria-metrics`` scrape and ``curl`` shows);
* ``GET /healthz`` — ``ok`` (200) while the server runs, ``draining``
  (503) once a graceful drain started, so load balancers stop routing
  to a server that will refuse submits.

Deliberately separate from the NDJSON job port: scrapers are not
protocol clients, need no handshake, and must keep answering while the
job port drains.  Read-only by construction — the handler only calls
``registry.render_prometheus()`` (a snapshot under the registry lock),
so a scrape can never perturb a running job.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

__all__ = ["MetricsEndpoint", "CONTENT_TYPE"]

#: the Prometheus text exposition content type (format version 0.0.4)
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsEndpoint:
    """Serve ``/metrics`` and ``/healthz`` for one registry.

    ``port=0`` binds a free port (tests); :attr:`port` holds the bound
    value after :meth:`start`.  ``health`` is a zero-argument callable
    returning ``True`` while the job server is healthy (not draining).
    """

    def __init__(self, registry, host: str = "127.0.0.1", port: int = 0,
                 health: Optional[Callable[[], bool]] = None):
        self.registry = registry
        self.host = host
        self.port = port
        self.health = health or (lambda: True)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> Tuple[str, int]:
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 -- http.server API
                if self.path.split("?", 1)[0] == "/metrics":
                    body = endpoint.registry.render_prometheus() \
                        .encode("utf-8")
                    self._reply(200, CONTENT_TYPE, body)
                elif self.path.split("?", 1)[0] == "/healthz":
                    if endpoint.health():
                        self._reply(200, "text/plain", b"ok\n")
                    else:
                        self._reply(503, "text/plain", b"draining\n")
                else:
                    self._reply(404, "text/plain",
                                b"try /metrics or /healthz\n")

            def _reply(self, code, ctype, body):
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # scrapes are not news
                pass

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.2},
            name="repro-metrics", daemon=True)
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
