"""The asyncio job server: multiplexed sweeps with streaming telemetry.

One :class:`ReproServer` owns a TCP listener, a priority job queue, and
a small pool of job workers.  Each accepted connection is a
:class:`ClientConnection` that can submit any number of jobs; the
server runs them through the existing execution fabric
(:func:`repro.exec.execute` — planner, supervised pool,
content-addressed cache, journal-grade event records) and streams every
telemetry record back to the submitting client as it happens.  Because
jobs go through the same fabric as the one-shot CLI, results are
bit-identical to ``python -m repro <exp>`` and a warm cache answers a
repeat submission without re-simulating anything.

Scheduling and fairness:

* **Priority queue** — ``submit`` carries an integer ``priority``
  (higher runs earlier); ties run in submission order.
* **Rate limits** — per-connection token bucket; a rejected ``submit``
  gets an ``error`` with ``error="rate_limited"``, a ``retry_after_s``
  hint, and one actionable line.
* **Backpressure** — every connection's outbound buffer is bounded.  A
  slow consumer never grows server memory: once the buffer is full,
  per-unit progress records *coalesce* (the newest record for the job
  replaces the previous one, carrying a ``coalesced`` count) and
  terminal messages (results, errors) evict progress records instead of
  queueing behind them.  TCP backpressure (``drain()``) throttles the
  writer underneath.
* **Cancellation** — queued jobs cancel instantly; running fabric jobs
  cancel at the next unit boundary (the progress hook raises
  :class:`JobCancelled`, which the pool machinery never swallows).
* **Graceful drain** — ``shutdown(drain=True)`` stops accepting,
  finishes every queued and running job, delivers the results, sends
  ``bye`` and closes.
* **Observability** — every lifecycle transition feeds a
  :class:`~repro.obs.registry.MetricsRegistry` (read it via the
  ``stats`` protocol verb, the optional ``--metrics-port`` Prometheus
  endpoint, or ``python -m repro top``); each job carries an
  end-to-end :class:`~repro.obs.tracectx.TraceContext` whose ID rides
  ``accepted``/``event``/``result`` messages and every unit progress
  record; ``--log`` writes one structured JSON line per lifecycle
  event with ``trace_id``/``job_id`` on job lines.

Thread model: the asyncio loop owns all protocol I/O; jobs execute in a
small thread pool (the fabric's ``--jobs N`` worker *processes* hang
off those threads exactly as they do off the CLI).  The only
thread-to-loop traffic is ``call_soon_threadsafe`` with one telemetry
record at a time.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import spp1000
from ..core.canon import canonical
from ..exec import (
    ResultCache,
    UnitExecutionError,
    code_fingerprint,
    default_cache_root,
    execute,
    has_units,
    unit_count,
)
from ..obs.registry import MetricsRegistry
from ..obs.tracectx import TraceContext, use_tracectx
from .log import NullLog
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    SERVER_NAME,
    ProtocolError,
    decode,
    encode,
    validate_message,
)

__all__ = ["ReproServer", "ServerThread", "JobCancelled", "JobSpec",
           "TokenBucket"]


class JobCancelled(BaseException):
    """Raised inside a job's execution thread to abort it mid-sweep.

    Deliberately a ``BaseException``: the worker pool retries on
    ``Exception`` and degrades to serial on pool-level ``Exception``s,
    and a user's cancel must never be "retried" — this propagates
    through both paths exactly like ``KeyboardInterrupt`` does.
    """


@dataclass
class JobSpec:
    """What one ``submit`` asked for."""

    experiment: str
    quick: bool = False
    jobs: int = 1
    seed: Optional[int] = None
    hypernodes: int = 2
    priority: int = 0
    telemetry: Tuple[str, ...] = ()
    tag: Optional[str] = None
    #: the submit message's ``trace`` field (``{"trace_id": ...}``),
    #: normally minted by the SDK; None mints a server-side ID
    trace: Optional[Dict] = None


_TELEMETRY_KINDS = ("hostscope", "memscope", "critscope", "trace")


@dataclass
class Job:
    """Server-side lifecycle of one submitted job."""

    id: str
    spec: JobSpec
    client: Optional["ClientConnection"]
    seq: int
    status: str = "queued"  # queued | running | done | failed | cancelled
    enqueued_t: float = field(default_factory=time.monotonic)
    enqueued_epoch: float = field(default_factory=time.time)

    def __post_init__(self):
        import threading

        #: set by cancel(); polled by the execution thread's progress hook
        self.cancel_event = threading.Event()
        #: the job's end-to-end trace context (client ID if supplied)
        self.ctx = TraceContext.from_wire(self.spec.trace, origin="server")
        self.ctx.job_id = self.id
        #: last seen sweep progress ``{"done": n, "total": m}`` (stats)
        self.progress: Optional[Dict] = None
        #: wall seconds from acceptance to terminal status
        self.wall_s: Optional[float] = None


class TokenBucket:
    """Per-connection submit rate limiter (capacity + sustained refill)."""

    def __init__(self, rate_per_s: float, burst: int):
        self.rate = max(rate_per_s, 1e-9)
        self.burst = max(burst, 1)
        self.tokens = float(self.burst)
        self._last = time.monotonic()

    def take(self) -> Tuple[bool, float]:
        """``(True, 0.0)`` and spend one token, or ``(False, retry_s)``."""
        now = time.monotonic()
        self.tokens = min(self.burst,
                          self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class ClientConnection:
    """One connected client: reader loop state + bounded outbound buffer."""

    _ids = 0

    def __init__(self, server: "ReproServer", reader, writer):
        ClientConnection._ids += 1
        self.name = f"c{ClientConnection._ids}"
        self.server = server
        self.reader = reader
        self.writer = writer
        self.bucket = TokenBucket(server.rate_per_s, server.burst)
        self.closed = False
        self.coalesced = 0      #: progress records merged/evicted
        self.max_buffered = 0   #: high-water mark of the outbound buffer
        self._buffer: deque = deque()
        self._limit = server.send_buffer
        self._wakeup = asyncio.Event()
        self._writer_task: Optional[asyncio.Task] = None

    # -- outbound ------------------------------------------------------

    @staticmethod
    def _is_progress(message: Dict) -> bool:
        return (message.get("kind") == "event"
                and isinstance(message.get("record"), dict)
                and message["record"].get("event") == "unit")

    def _coalesce(self) -> None:
        """Count one merged/dropped progress record (here + registry)."""
        self.coalesced += 1
        # getattr: unit tests drive ClientConnection with a bare
        # SimpleNamespace in place of a full ReproServer
        metric = getattr(self.server, "m_coalesced", None)
        if metric is not None:
            metric.inc()

    def push(self, message: Dict, *, critical: bool = False) -> None:
        """Enqueue one outbound message under the bounded-buffer policy.

        Progress (``unit``) records coalesce once the buffer is full;
        ``critical`` messages (terminal per job, or protocol-level)
        evict a progress record to make room.  The buffer therefore
        never grows with sweep length — only with the handful of
        terminal messages concurrent jobs can produce.
        """
        if self.closed:
            return
        if len(self._buffer) >= self._limit:
            if not critical and self._is_progress(message):
                job_id = message.get("job")
                for i in range(len(self._buffer) - 1, -1, -1):
                    prior = self._buffer[i]
                    if (self._is_progress(prior)
                            and prior.get("job") == job_id):
                        merged = dict(message)
                        merged["coalesced"] = (prior.get("coalesced", 0)
                                               + 1)
                        self._buffer[i] = merged
                        self._coalesce()
                        self._wakeup.set()
                        return
                self._coalesce()  # nothing to merge into: drop
                return
            for i, prior in enumerate(self._buffer):
                if self._is_progress(prior):
                    del self._buffer[i]
                    self._coalesce()
                    break
        self._buffer.append(message)
        self.max_buffered = max(self.max_buffered, len(self._buffer))
        self._wakeup.set()

    def start_writer(self) -> None:
        self._writer_task = asyncio.get_running_loop().create_task(
            self._write_loop())

    async def _write_loop(self) -> None:
        try:
            while True:
                while not self._buffer:
                    self._wakeup.clear()
                    await self._wakeup.wait()
                message = self._buffer.popleft()
                self.writer.write(encode(message))
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError, OSError):
            self.closed = True

    async def flush(self, timeout: float = 5.0) -> None:
        """Best-effort: wait until the outbound buffer has drained."""
        deadline = time.monotonic() + timeout
        while self._buffer and not self.closed:
            if time.monotonic() > deadline:
                break
            await asyncio.sleep(0.01)

    async def close(self) -> None:
        self.closed = True
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class ReproServer:
    """The simulation-as-a-service front door (see module docstring)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 2, cache_dir: Optional[str] = None,
                 no_cache: bool = False, rate_per_s: float = 10.0,
                 burst: int = 20, max_queue: int = 128,
                 send_buffer: int = 256,
                 metrics_port: Optional[int] = None,
                 ledger_path: Optional[str] = None, log=None):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_dir = cache_dir
        self.no_cache = no_cache
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.max_queue = max_queue
        self.send_buffer = send_buffer
        self.metrics_port = metrics_port
        self.ledger_path = ledger_path
        self._ledger_counts = {"records": 0, "skipped": 0}
        self.log = log if log is not None else NullLog()
        self.draining = False
        self.jobs: Dict[str, Job] = {}
        self.connections: set = set()
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._seq = 0
        self._catalog: Optional[Dict[str, Dict]] = None
        self._started_t = time.monotonic()
        self._metrics_endpoint = None
        self._register_metrics()
        import threading

        #: serialises telemetry-observed jobs: the ambient scope
        #: contexts are process-global, so only one observed job runs
        #: at a time (plain jobs are unaffected)
        self._telemetry_lock = threading.Lock()

    def _register_metrics(self) -> None:
        """Create the registry and pre-register every server series, so
        a scrape of an idle server already shows the full schema."""
        m = self.metrics = MetricsRegistry()
        self.m_submitted = m.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted onto the queue", ("experiment",))
        self.m_completed = m.counter(
            "repro_jobs_completed_total",
            "Jobs reaching a terminal status", ("experiment", "status"))
        self.m_rejected = m.counter(
            "repro_requests_rejected_total",
            "Requests refused before queueing (rate_limited, "
            "queue_full, draining, ...)", ("reason",))
        self.m_queue_depth = m.gauge(
            "repro_queue_depth", "Jobs waiting in the priority queue")
        self.m_running = m.gauge(
            "repro_jobs_running", "Jobs currently executing")
        self.m_connections = m.gauge(
            "repro_connections", "Open client connections")
        self.m_coalesced = m.counter(
            "repro_progress_coalesced_total",
            "Progress records merged or dropped by send-buffer "
            "backpressure")
        self.m_latency = m.histogram(
            "repro_job_latency_seconds",
            "Wall seconds from acceptance to terminal status",
            ("experiment",))
        # fabric counters, folded from each job's ExecutionReport
        self.m_cache_hits = m.counter(
            "repro_cache_hits_total", "Fabric result-cache hits")
        self.m_cache_misses = m.counter(
            "repro_cache_misses_total", "Fabric result-cache misses")
        self.m_units_computed = m.counter(
            "repro_units_computed_total", "Work units simulated")
        self.m_unit_retries = m.counter(
            "repro_unit_retries_total", "Unit attempts after the first")
        self.m_unit_timeouts = m.counter(
            "repro_unit_timeouts_total", "Unit attempts killed by timeout")
        self.m_workers_replaced = m.counter(
            "repro_workers_replaced_total",
            "Pool workers replaced (crash or hang)")
        self.m_quarantined = m.counter(
            "repro_units_quarantined_total",
            "Units quarantined after exhausting retries")
        self.m_serial_fallbacks = m.counter(
            "repro_serial_fallbacks_total",
            "Units degraded to in-process execution")
        # longitudinal ledger visibility (only moves with --ledger):
        # record count and skipped-line count of the attached ledger
        self.m_ledger_records = m.gauge(
            "repro_ledger_records",
            "Intact records in the attached performance ledger")
        self.m_ledger_skipped = m.gauge(
            "repro_ledger_skipped_lines",
            "Corrupt/torn lines skipped reading the attached ledger")

    def _fold_report(self, execution: Dict) -> None:
        """Add one finished job's ExecutionReport onto the lifetime
        counters (the per-run → service-lifetime bridge)."""
        self.m_cache_hits.inc(execution.get("cache_hits", 0) or 0)
        self.m_cache_misses.inc(execution.get("cache_misses", 0) or 0)
        self.m_units_computed.inc(execution.get("computed", 0) or 0)
        resilience = execution.get("resilience") or {}
        self.m_unit_retries.inc(resilience.get("retries", 0) or 0)
        self.m_unit_timeouts.inc(resilience.get("timeouts", 0) or 0)
        self.m_workers_replaced.inc(
            resilience.get("workers_replaced", 0) or 0)
        self.m_quarantined.inc(
            len(resilience.get("quarantined_units") or ()))
        self.m_serial_fallbacks.inc(
            resilience.get("serial_fallbacks", 0) or 0)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, start workers, return ``(host, port)`` actually bound."""
        from .. import experiments  # noqa: F401 -- populate registries

        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue()
        self._executor = ThreadPoolExecutor(
            max_workers=max(self.workers, 1),
            thread_name_prefix="repro-job")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._started_t = time.monotonic()
        if self.metrics_port is not None:
            from .metricshttp import MetricsEndpoint

            self._metrics_endpoint = MetricsEndpoint(
                self.metrics, self.host, self.metrics_port,
                health=lambda: not self.draining)
            _, self.metrics_port = self._metrics_endpoint.start()
        if self.ledger_path:
            self._refresh_ledger_gauges()
        for _ in range(self.workers):
            self.add_worker()
        self.log.emit("listening", host=self.host, port=self.port,
                      workers=self.workers,
                      metrics_port=self.metrics_port)
        return self.host, self.port

    def _refresh_ledger_gauges(self) -> None:
        """Re-read the attached ledger; expose its record and skipped
        counts on ``/metrics`` (and the ``stats`` ledger block)."""
        from ..obs.ledger import Ledger

        records, skipped = Ledger(self.ledger_path).read()
        self._ledger_counts = {"records": len(records),
                               "skipped": skipped}
        self.m_ledger_records.set(len(records))
        self.m_ledger_skipped.set(skipped)

    def _append_ledger_record(self) -> None:
        """Fold this server lifetime (job-latency series per experiment,
        fabric counters) into one ledger record — called at drain, so a
        served session leaves the same longitudinal trace a bench run
        does.  Best-effort: a ledger failure never blocks shutdown."""
        from ..obs.ledger import Ledger, record_from_server_stats

        try:
            record = record_from_server_stats(self.stats())
            Ledger(self.ledger_path).append(record)
            self._refresh_ledger_gauges()
            self.log.emit("ledger_record", path=self.ledger_path,
                          sha256=record["sha256"][:12])
        except Exception as exc:  # noqa: BLE001 - shutdown must proceed
            self.log.emit("ledger_error", path=self.ledger_path,
                          error=str(exc))

    def add_worker(self) -> None:
        """Start one more job-worker task (tests use this to sequence)."""
        self._worker_tasks.append(
            asyncio.get_running_loop().create_task(self._worker()))

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting; optionally finish all accepted jobs first."""
        self.draining = True
        self.log.emit("drain" if drain else "stop",
                      queued=self._queue.qsize() if self._queue else 0)
        if self._server is not None:
            self._server.close()
        if drain and self._queue is not None:
            await self._queue.join()
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        reason = "drain" if drain else "stop"
        for conn in list(self.connections):
            conn.push({"kind": "bye", "reason": reason}, critical=True)
            await conn.flush()
            await conn.close()
        if self._server is not None:
            await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._metrics_endpoint is not None:
            self._metrics_endpoint.stop()
            self._metrics_endpoint = None
        if self.ledger_path:
            self._append_ledger_record()
        self.log.emit("stopped", jobs=self.stats()["jobs"])

    # -- the catalog ---------------------------------------------------

    def catalog(self) -> Dict[str, Dict]:
        """Servable-experiment catalog: title, unit count, servability."""
        if self._catalog is None:
            from ..experiments import list_experiments

            config = spp1000()
            self._catalog = {
                exp_id: {
                    "title": title,
                    "units": unit_count(exp_id, config),
                    "servable_sweep": has_units(exp_id),
                }
                for exp_id, title in list_experiments().items()}
        return self._catalog

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn = ClientConnection(self, reader, writer)
        try:
            ok = await self._handshake(conn)
            if not ok:
                self.log.emit("handshake_failed", connection=conn.name)
                await conn.close()
                return
            conn.start_writer()
            self.connections.add(conn)
            self.m_connections.set(len(self.connections))
            self.log.emit("connect", connection=conn.name)
            await self._read_loop(conn)
        finally:
            self.connections.discard(conn)
            self.m_connections.set(len(self.connections))
            self.log.emit("disconnect", connection=conn.name,
                          coalesced=conn.coalesced or None)
            for job in self.jobs.values():
                if job.client is conn:
                    job.client = None  # results of orphans are dropped
            await conn.close()

    async def _handshake(self, conn: ClientConnection) -> bool:
        """First line must be a protocol-compatible ``hello``."""
        try:
            line = await conn.reader.readline()
        except (ValueError, ConnectionError):
            return False
        if not line:
            return False
        try:
            message = decode(line)
            validate_message(message, side="client")
        except ProtocolError as exc:
            conn.writer.write(encode({"kind": "error",
                                      "error": "bad_message",
                                      "detail": str(exc)}))
            return False
        if message["kind"] != "hello":
            conn.writer.write(encode({
                "kind": "error", "error": "bad_handshake",
                "detail": "first message must be 'hello' with a "
                          f"'protocol' field (got {message['kind']!r})"}))
            return False
        if message["protocol"] != PROTOCOL_VERSION:
            conn.writer.write(encode({
                "kind": "error", "error": "protocol_mismatch",
                "detail": f"server speaks protocol {PROTOCOL_VERSION}, "
                          f"client asked for {message['protocol']!r}; "
                          "upgrade the older side"}))
            return False
        conn.writer.write(encode({
            "kind": "welcome", "protocol": PROTOCOL_VERSION,
            "server": SERVER_NAME, "experiments": self.catalog()}))
        try:
            await conn.writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _read_loop(self, conn: ClientConnection) -> None:
        while True:
            try:
                line = await conn.reader.readline()
            except ValueError:
                conn.push({"kind": "error", "error": "bad_message",
                           "detail": f"line exceeds {MAX_LINE_BYTES} "
                                     "bytes; split the request"},
                          critical=True)
                break
            except (ConnectionError, OSError):
                break
            if not line:
                break
            try:
                message = decode(line)
                kind = validate_message(message, side="client")
            except ProtocolError as exc:
                conn.push({"kind": "error", "error": "bad_message",
                           "detail": str(exc)}, critical=True)
                continue
            if kind == "ping":
                conn.push({"kind": "pong"}, critical=True)
            elif kind == "stats":
                conn.push({"kind": "stats", "stats": self.stats()},
                          critical=True)
            elif kind == "list":
                conn.push({"kind": "experiments",
                           "experiments": self.catalog()}, critical=True)
            elif kind == "submit":
                self._handle_submit(conn, message)
            elif kind == "cancel":
                self._handle_cancel(conn, message)
            elif kind == "hello":
                conn.push({"kind": "error", "error": "bad_message",
                           "detail": "duplicate 'hello'; the handshake "
                                     "already happened"}, critical=True)

    # -- submit / cancel -----------------------------------------------

    def _reject(self, conn: ClientConnection, error: str, detail: str,
                tag=None, **extra) -> None:
        message = {"kind": "error", "error": error, "detail": detail}
        if tag is not None:
            message["tag"] = tag
        message.update(extra)
        self.m_rejected.labels(reason=error).inc()
        self.log.emit("submit_rejected", connection=conn.name,
                      reason=error, tag=tag)
        conn.push(message, critical=True)

    def _handle_submit(self, conn: ClientConnection, message: Dict) -> None:
        tag = message.get("tag")
        if self.draining:
            self._reject(conn, "draining",
                         "server is draining for shutdown and accepts "
                         "no new jobs; retry after it restarts", tag)
            return
        allowed, retry_after = conn.bucket.take()
        if not allowed:
            self._reject(
                conn, "rate_limited",
                f"rate limit exceeded ({self.rate_per_s:g} submits/s, "
                f"burst {self.burst}); retry in {retry_after:.2f}s or "
                "batch points into fewer sweeps", tag,
                retry_after_s=round(retry_after, 3))
            return
        queued = sum(1 for j in self.jobs.values()
                     if j.status == "queued")
        if queued >= self.max_queue:
            self._reject(
                conn, "queue_full",
                f"job queue is full ({self.max_queue} queued); retry "
                "after some jobs finish", tag)
            return
        exp_id = message.get("experiment")
        catalog = self.catalog()
        if exp_id not in catalog:
            servable = ", ".join(e for e, row in catalog.items()
                                 if row["servable_sweep"])
            self._reject(
                conn, "unknown_experiment",
                f"unknown experiment {exp_id!r}; servable sweep "
                f"experiments: {servable}", tag)
            return
        try:
            spec = self._parse_spec(exp_id, message, tag)
        except ValueError as exc:
            self._reject(conn, "bad_submit", str(exc), tag)
            return
        self._seq += 1
        job = Job(id=f"j{self._seq:06d}", spec=spec, client=conn,
                  seq=self._seq)
        self.jobs[job.id] = job
        self._queue.put_nowait((-spec.priority, job.seq, job))
        self.m_submitted.labels(experiment=exp_id).inc()
        self.m_queue_depth.set(self._queue.qsize())
        self.log.emit("job_submitted", connection=conn.name,
                      job_id=job.id, trace_id=job.ctx.trace_id,
                      experiment=exp_id, priority=spec.priority,
                      quick=spec.quick or None, jobs=spec.jobs)
        conn.push({"kind": "accepted", "job": job.id, "tag": tag,
                   "experiment": exp_id, "priority": spec.priority,
                   "queued": queued + 1, "trace": job.ctx.to_wire()},
                  critical=True)

    @staticmethod
    def _parse_spec(exp_id: str, message: Dict, tag) -> JobSpec:
        jobs = message.get("jobs", 1)
        if not isinstance(jobs, int) or jobs < 1:
            raise ValueError(f"'jobs' must be an integer >= 1 (got "
                             f"{jobs!r}); 1 runs the sweep in-process")
        priority = message.get("priority", 0)
        if not isinstance(priority, int):
            raise ValueError(f"'priority' must be an integer (got "
                             f"{priority!r}); higher runs earlier")
        telemetry = tuple(message.get("telemetry") or ())
        unknown = [t for t in telemetry if t not in _TELEMETRY_KINDS]
        if unknown:
            raise ValueError(
                f"unknown telemetry scope(s) {', '.join(map(repr, unknown))}; "
                f"choose from: {', '.join(_TELEMETRY_KINDS)}")
        hypernodes = message.get("hypernodes", 2)
        if not isinstance(hypernodes, int) or hypernodes < 1:
            raise ValueError(f"'hypernodes' must be an integer >= 1 "
                             f"(got {hypernodes!r})")
        seed = message.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ValueError(f"'seed' must be an integer or null (got "
                             f"{seed!r})")
        trace = message.get("trace")
        if trace is not None and not isinstance(trace, dict):
            raise ValueError(f"'trace' must be an object like "
                             f"{{'trace_id': ...}} or null (got "
                             f"{trace!r})")
        return JobSpec(experiment=exp_id,
                       quick=bool(message.get("quick", False)),
                       jobs=jobs, seed=seed, hypernodes=hypernodes,
                       priority=priority, telemetry=telemetry, tag=tag,
                       trace=trace)

    def _handle_cancel(self, conn: ClientConnection, message: Dict) -> None:
        job_id = message.get("job")
        job = self.jobs.get(job_id)
        if job is None or (job.client is not None
                           and job.client is not conn):
            self._reject(conn, "unknown_job",
                         f"no job {job_id!r} on this connection; jobs "
                         "are cancellable only by their submitter",
                         job=job_id)
            return
        if job.status == "queued":
            job.status = "cancelled"
            job.wall_s = round(time.monotonic() - job.enqueued_t, 4)
            self.m_completed.labels(experiment=job.spec.experiment,
                                    status="cancelled").inc()
            self.log.emit("job_cancelled", job_id=job.id,
                          trace_id=job.ctx.trace_id,
                          experiment=job.spec.experiment, where="queue")
            conn.push({"kind": "cancelled", "job": job.id,
                       "where": "queue", "trace": job.ctx.to_wire()},
                      critical=True)
        elif job.status == "running":
            job.cancel_event.set()  # the progress hook aborts the sweep
        else:
            self._reject(conn, "not_cancellable",
                         f"job {job_id} already finished "
                         f"({job.status}); nothing to cancel",
                         job=job_id)

    # -- job execution -------------------------------------------------

    async def _worker(self) -> None:
        while True:
            _, _, job = await self._queue.get()
            self.m_queue_depth.set(self._queue.qsize())
            try:
                if job.status == "cancelled":
                    continue
                job.status = "running"
                job.ctx.add_span("queued", job.enqueued_epoch,
                                 time.time(), cat="server.queue",
                                 priority=job.spec.priority)
                self.m_running.inc()
                self.log.emit("job_started", job_id=job.id,
                              trace_id=job.ctx.trace_id,
                              experiment=job.spec.experiment,
                              queue_s=round(time.monotonic()
                                            - job.enqueued_t, 3))
                bridge = _ProgressBridge(self, job)
                try:
                    outcome = await self._loop.run_in_executor(
                        self._executor, self._run_job_sync, job, bridge)
                finally:
                    self.m_running.dec()
                self._deliver(job, outcome)
            finally:
                self._queue.task_done()

    def _deliver(self, job: Job, outcome: Tuple) -> None:
        status, payload = outcome
        job.status = {"ok": "done", "failed": "failed",
                      "cancelled": "cancelled"}[status]
        job.wall_s = round(time.monotonic() - job.enqueued_t, 4)
        exp_id = job.spec.experiment
        self.m_completed.labels(experiment=exp_id,
                                status=job.status).inc()
        self.m_latency.labels(experiment=exp_id).observe(job.wall_s)
        if status == "ok" and isinstance(payload.get("execution"), dict):
            self._fold_report(payload["execution"])
        self.log.emit({"done": "job_done", "failed": "job_failed",
                       "cancelled": "job_cancelled"}[job.status],
                      job_id=job.id, trace_id=job.ctx.trace_id,
                      experiment=exp_id, wall_s=job.wall_s,
                      error=payload[0] if status == "failed" else None)
        conn = job.client
        if conn is None or conn.closed:
            return  # submitter went away; the cache still kept the work
        trace = job.ctx.to_wire()
        if status == "ok":
            message = {"kind": "result", "job": job.id, "trace": trace,
                       "host_spans": job.ctx.spans_to_wire()}
            message.update(payload)
            conn.push(message, critical=True)
        elif status == "cancelled":
            conn.push({"kind": "cancelled", "job": job.id,
                       "where": "running", "trace": trace},
                      critical=True)
        else:
            error, detail = payload
            conn.push({"kind": "error", "error": error, "detail": detail,
                       "job": job.id, "trace": trace}, critical=True)

    def _make_cache(self) -> Optional[ResultCache]:
        if self.no_cache:
            return None
        return ResultCache(self.cache_dir or default_cache_root(),
                           code_fingerprint())

    def _run_job_sync(self, job: Job, bridge: "_ProgressBridge") -> Tuple:
        """Execute one job in a worker thread; never raises."""
        spec = job.spec
        t0 = time.perf_counter()
        t0_epoch = time.time()
        try:
            if job.cancel_event.is_set():
                return ("cancelled", None)
            config = spp1000(n_hypernodes=spec.hypernodes)
            if has_units(spec.experiment):
                payload = self._run_fabric_job(job, config, bridge)
            else:
                payload = self._run_inprocess_job(job, config)
            payload["experiment"] = spec.experiment
            payload["tag"] = spec.tag
            payload["wall_s"] = round(time.perf_counter() - t0, 4)
            return ("ok", payload)
        except JobCancelled:
            return ("cancelled", None)
        except UnitExecutionError as exc:
            return ("failed", ("units_failed", str(exc)))
        except Exception as exc:  # job failures must not kill the worker
            return ("failed", ("job_failed",
                               f"{type(exc).__name__}: {exc}"))
        finally:
            job.ctx.add_span("run", t0_epoch, time.time(),
                             cat="server.job", experiment=spec.experiment)

    def _run_fabric_job(self, job: Job, config, bridge) -> Dict:
        from contextlib import ExitStack

        spec = job.spec
        cache = self._make_cache()
        blocks: Dict[str, Dict] = {}
        observed = bool(spec.telemetry)
        with ExitStack() as stack:
            stack.enter_context(use_tracectx(job.ctx))
            scopes = {}
            if observed:
                stack.enter_context(self._telemetry_lock)
                scopes = self._enter_scopes(stack, spec.telemetry, config)
            result, report = execute(
                spec.experiment, config, jobs=spec.jobs,
                quick=spec.quick, cache=cache, seed=spec.seed,
                observed=observed, progress=bridge)
            for name, scope in scopes.items():
                block = self._scope_block(name, scope, config)
                if block is not None:
                    blocks[name] = block
        payload = {
            "data": canonical(result.data),
            "execution": report.to_dict(),
            # the Chrome-trace block is payload-only: manifest() takes
            # the named profiler scopes, not arbitrary documents
            "manifest": result.manifest(
                config=config, execution=report.to_dict(),
                **{k: v for k, v in blocks.items() if k != "trace"}),
        }
        if blocks:
            payload["blocks"] = blocks
        return payload

    def _run_inprocess_job(self, job: Job, config) -> Dict:
        """A non-sweep ("simulate") experiment: no planner, no cache."""
        import inspect

        from ..experiments import get_experiment

        spec = job.spec
        fn = get_experiment(spec.experiment)
        accepted = inspect.signature(fn).parameters
        kwargs = {}
        if "config" in accepted:
            kwargs["config"] = config
        if spec.quick and "quick" in accepted:
            kwargs["quick"] = True
        result = fn(**kwargs)
        return {
            "data": canonical(result.data),
            "execution": {"experiment_id": spec.experiment,
                          "in_process": True},
            "manifest": result.manifest(config=config),
        }

    @staticmethod
    def _enter_scopes(stack, telemetry, config) -> Dict[str, object]:
        scopes: Dict[str, object] = {}
        if "hostscope" in telemetry:
            from ..obs.hostscope import HostScope, use_hostscope

            hs = HostScope(config)
            stack.enter_context(use_hostscope(hs))
            stack.enter_context(hs.profile())
            scopes["hostscope"] = hs
        if "memscope" in telemetry:
            from ..obs.memscope import MemScope, use_memscope

            ms = MemScope(config)
            stack.enter_context(use_memscope(ms))
            scopes["memscope"] = ms
        if "critscope" in telemetry:
            from ..obs.critscope import CritScope, use_critscope

            cs = CritScope(config)
            stack.enter_context(use_critscope(cs))
            scopes["critscope"] = cs
        if "trace" in telemetry:
            from ..sim.trace import Tracer, use_tracer

            tr = Tracer(enabled=True)
            stack.enter_context(use_tracer(tr))
            scopes["trace"] = tr
        return scopes

    @staticmethod
    def _scope_block(name: str, scope, config=None) -> Optional[Dict]:
        if name == "critscope":
            if not any(run.threads for run in scope.runs):
                return None
            return scope.to_dict()
        if name == "trace":
            from ..obs.export import chrome_trace

            return chrome_trace(scope, config) if scope.events \
                or scope.records else None
        return scope.to_dict()

    # -- stats ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Live counters (tests, the drain log, the ``stats`` protocol
        verb, and ``repro top`` all read these)."""
        by_status: Dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        recent = []
        for job in list(self.jobs.values())[-20:]:
            row = {"id": job.id, "experiment": job.spec.experiment,
                   "status": job.status, "priority": job.spec.priority,
                   "trace_id": job.ctx.trace_id}
            if job.progress:
                row["done"] = job.progress.get("done")
                row["total"] = job.progress.get("total")
            if job.wall_s is not None:
                row["wall_s"] = job.wall_s
            recent.append(row)
        return {
            "jobs": dict(by_status),
            "connections": len(self.connections),
            "coalesced": sum(c.coalesced for c in self.connections),
            "max_buffered": max(
                (c.max_buffered for c in self.connections), default=0),
            "draining": self.draining,
            "workers": {"total": self.workers,
                        "busy": by_status.get("running", 0)},
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "uptime_s": round(time.monotonic() - self._started_t, 3),
            "recent_jobs": recent,
            "metrics": self.metrics.snapshot(),
            "ledger": ({"path": self.ledger_path,
                        **self._ledger_counts}
                       if self.ledger_path else None),
        }


class _ProgressBridge:
    """ProgressStream-compatible shim carrying fabric telemetry records
    from the execution thread into the asyncio loop (and enforcing
    cancellation at every unit boundary)."""

    def __init__(self, server: ReproServer, job: Job):
        self._server = server
        self._job = job
        self._loop = server._loop
        self._t0 = time.monotonic()

    def emit(self, record: Dict) -> None:
        if self._job.cancel_event.is_set():
            raise JobCancelled(self._job.id)
        payload = {"t_s": round(time.monotonic() - self._t0, 3)}
        payload.update(record)
        self._loop.call_soon_threadsafe(self._dispatch, payload)

    def close(self) -> None:  # ProgressStream API parity
        pass

    def _dispatch(self, payload: Dict) -> None:
        if payload.get("event") == "unit":
            self._job.progress = {"done": payload.get("done"),
                                  "total": payload.get("total")}
        conn = self._job.client
        if conn is not None and not conn.closed:
            conn.push({"kind": "event", "job": self._job.id,
                       "record": payload})


class ServerThread:
    """A :class:`ReproServer` on a background thread with its own loop.

    For synchronous callers — tests, notebooks, the SDK's examples —
    that want a live server in-process::

        with ServerThread(workers=1) as srv:
            client = repro.sdk.Client(srv.host, srv.port)
            ...

    ``call(coro)`` runs a coroutine on the server's loop and returns
    its result (used by tests to drive ``shutdown`` / ``add_worker``).
    """

    def __init__(self, **server_kwargs):
        self._kwargs = server_kwargs
        self.server: Optional[ReproServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        self._started = None

    def start(self) -> "ServerThread":
        import threading

        self._started = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server thread failed to start in 30s")
        return self

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def boot():
            self.server = ReproServer(**self._kwargs)
            self.host, self.port = await self.server.start()
            self._started.set()

        self._loop.run_until_complete(boot())
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def call(self, coro, timeout: float = 60.0):
        """Run ``coro`` on the server loop; return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def stop(self, *, drain: bool = True) -> None:
        if self._loop is None:
            return
        try:
            self.call(self.server.shutdown(drain=drain))
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=False)
