"""The wire protocol: versioned newline-delimited JSON (NDJSON).

One connection = one NDJSON stream each way; every line is a single
JSON object ("message") with a ``kind`` field.  The first client
message must be ``hello`` carrying :data:`PROTOCOL_VERSION`; the server
answers ``welcome`` (or ``error`` + close on a version it cannot
speak).  After the handshake the client may interleave ``submit``,
``cancel``, ``list`` and ``ping`` freely; the server multiplexes
``event`` streams for every job the connection submitted, terminated
per job by exactly one ``result``, ``error`` or ``cancelled``.

Message kinds
=============

Client -> server:

``hello``   ``{"kind", "protocol", "client"?}`` — handshake, first line
``submit``  ``{"kind", "experiment", "tag"?, "quick"?, "jobs"?,
            "seed"?, "hypernodes"?, "priority"?, "telemetry"?,
            "trace"?}`` — ``trace`` is ``{"trace_id": ...}``, normally
            minted by the SDK for end-to-end trace stitching
``cancel``  ``{"kind", "job"}`` — queued or running job
``list``    ``{"kind"}`` — the servable experiment catalog
``stats``   ``{"kind"}`` — live server stats + metrics snapshot
``ping``    ``{"kind"}``

Server -> client:

``welcome``      ``{"kind", "protocol", "server", "experiments"}``
``accepted``     ``{"kind", "job", "tag"?, "experiment", "priority",
                 "queued", "trace"?}`` — ``trace`` echoes the job's
                 trace/job IDs (server-minted when the submit had none)
``event``        ``{"kind", "job", "record", "coalesced"?}`` — the
                 ``record`` is one shared-schema telemetry record
                 (:mod:`repro.exec.events`), exactly what ``--progress``
                 would have written, so one consumer handles both;
                 traced jobs stamp ``trace_id``/``job_id`` into it
``result``       ``{"kind", "job", "experiment", "data", "execution",
                 "blocks"?, "manifest"?, "wall_s", "trace"?,
                 "host_spans"?}`` — ``host_spans`` are the server-side
                 queue/run/unit spans for Chrome-trace stitching
``stats``        ``{"kind", "stats"}`` — reply to ``stats``
``cancelled``    ``{"kind", "job", "where"}`` — ``queue`` or ``running``
``error``        ``{"kind", "error", "detail", "job"?,
                 "retry_after_s"?}`` — ``detail`` is always one
                 actionable line
``experiments``  ``{"kind", "experiments"}`` — reply to ``list``
``pong``         ``{"kind"}``
``bye``          ``{"kind", "reason"}`` — graceful drain; no further
                 messages follow

Anything malformed gets an ``error`` with ``error="bad_message"`` and
one line saying exactly what was wrong; the connection stays usable
(only a failed handshake closes it).
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = ["PROTOCOL_VERSION", "SERVER_NAME", "DEFAULT_PORT",
           "MAX_LINE_BYTES", "CLIENT_KINDS", "SERVER_KINDS",
           "ProtocolError", "encode", "decode", "validate_message"]

PROTOCOL_VERSION = 1

SERVER_NAME = "repro.server/1"

#: default TCP port for ``python -m repro serve``
DEFAULT_PORT = 7995

#: per-line ceiling; a sweep's result document fits comfortably, an
#: accidental binary blob or runaway payload does not
MAX_LINE_BYTES = 32 * 1024 * 1024

#: kind -> required fields (beyond ``kind``), client-to-server side
CLIENT_KINDS: Dict[str, frozenset] = {
    "hello": frozenset({"protocol"}),
    "submit": frozenset({"experiment"}),
    "cancel": frozenset({"job"}),
    "list": frozenset(),
    "stats": frozenset(),
    "ping": frozenset(),
}

#: kind -> required fields (beyond ``kind``), server-to-client side
SERVER_KINDS: Dict[str, frozenset] = {
    "welcome": frozenset({"protocol", "server", "experiments"}),
    "accepted": frozenset({"job", "experiment", "priority", "queued"}),
    "event": frozenset({"job", "record"}),
    "result": frozenset({"job", "experiment", "data", "execution",
                         "wall_s"}),
    "cancelled": frozenset({"job", "where"}),
    "stats": frozenset({"stats"}),
    "error": frozenset({"error", "detail"}),
    "experiments": frozenset({"experiments"}),
    "pong": frozenset(),
    "bye": frozenset({"reason"}),
}


class ProtocolError(ValueError):
    """A line violated the wire protocol; str() is one actionable line."""


def encode(message: Dict) -> bytes:
    """One message as one UTF-8 NDJSON line (compact, trailing newline)."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=False)
            + "\n").encode("utf-8")


def decode(line: bytes) -> Dict:
    """Parse one received line into a message object.

    Raises :class:`ProtocolError` (one actionable line) on non-JSON
    input, a JSON value that is not an object, or a missing ``kind``.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(
            f"not a JSON line ({exc}); every protocol message is one "
            "newline-terminated JSON object") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object per line, got "
            f"{type(message).__name__}")
    if "kind" not in message:
        raise ProtocolError(
            "message has no 'kind' field; every message must name its "
            f"kind (client kinds: {', '.join(sorted(CLIENT_KINDS))})")
    return message


def validate_message(message: Dict, *, side: str) -> str:
    """Check a decoded message against one side's kind table.

    ``side`` is ``"client"`` (messages a server receives) or
    ``"server"`` (messages a client receives).  Returns the kind;
    raises :class:`ProtocolError` on an unknown kind or missing
    required fields.  Extra fields are always allowed.
    """
    kinds = CLIENT_KINDS if side == "client" else SERVER_KINDS
    kind = message.get("kind")
    if kind not in kinds:
        raise ProtocolError(
            f"unknown {side} message kind {kind!r}; valid kinds: "
            f"{', '.join(sorted(kinds))}")
    missing = sorted(kinds[kind] - message.keys())
    if missing:
        raise ProtocolError(
            f"{side} message {kind!r} is missing required field(s) "
            f"{', '.join(missing)}")
    return kind
