"""Simulation-as-a-service: the ``repro.server`` subsystem.

``python -m repro serve`` starts an asyncio TCP server that accepts
simulate/sweep/list jobs over a versioned NDJSON protocol
(:mod:`repro.server.protocol`), runs them through the same execution
fabric as the one-shot CLI (planner, supervised pool, content-addressed
cache, shared event schema), and streams per-unit telemetry back to
each submitting client live.  :mod:`repro.sdk` is the matching typed
client.  Stdlib only — no new runtime dependencies.
"""

from .protocol import (
    CLIENT_KINDS,
    DEFAULT_PORT,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    SERVER_KINDS,
    SERVER_NAME,
    ProtocolError,
    decode,
    encode,
    validate_message,
)
from .log import NullLog, StructuredLog
from .metricshttp import MetricsEndpoint
from .server import (
    JobCancelled,
    JobSpec,
    ReproServer,
    ServerThread,
    TokenBucket,
)

__all__ = [
    "PROTOCOL_VERSION", "SERVER_NAME", "DEFAULT_PORT", "MAX_LINE_BYTES",
    "CLIENT_KINDS", "SERVER_KINDS", "ProtocolError", "encode", "decode",
    "validate_message",
    "ReproServer", "ServerThread", "JobCancelled", "JobSpec",
    "TokenBucket",
    "StructuredLog", "NullLog", "MetricsEndpoint",
    "serve_main",
]


def serve_main(argv=None) -> int:
    """``python -m repro serve`` entry point (lazy import)."""
    from .cli import serve_main as _serve_main

    return _serve_main(argv)
