"""Structured JSON logging for the job server (``repro serve --log``).

One JSON object per line, one line per connection/job lifecycle event —
machine-parseable where the server's stdout lines stay human.  Every
line carries ``ts`` (ISO-8601 UTC) and ``event``; job lines carry
``trace_id`` and ``job_id`` so a grep for either reconstructs one job's
complete server-side story (the log is the flat-file leg of the same
trace the Chrome export visualises).

Events emitted by :class:`~repro.server.server.ReproServer`:

``listening`` · ``connect`` · ``handshake_failed`` · ``disconnect`` ·
``job_submitted`` · ``submit_rejected`` · ``job_started`` ·
``job_done`` · ``job_failed`` · ``job_cancelled`` · ``drain`` ·
``stopped``

The default sink is stderr (``--log`` with no path, or ``--log -``),
keeping stdout for the existing human status lines that scripts and CI
grep for.  Writes are line-buffered and flushed per event; a broken
sink disables further logging rather than killing the server.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Dict, Optional

__all__ = ["StructuredLog", "NullLog"]


def _iso_utc(epoch: float) -> str:
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(epoch))
    return f"{base}.{int((epoch % 1) * 1000):03d}Z"


class StructuredLog:
    """A line-per-event JSON log; ``destination`` is a path or ``-``."""

    def __init__(self, destination: str = "-"):
        self.destination = destination
        self._lock = threading.Lock()
        self._broken = False
        if destination == "-":
            self._fh = sys.stderr
            self._owned = False
        else:
            self._fh = open(destination, "a", encoding="utf-8")
            self._owned = True

    def emit(self, event: str, **fields) -> None:
        """Write one log line; never raises into the server."""
        if self._broken:
            return
        record: Dict = {"ts": _iso_utc(time.time()), "event": event}
        record.update({k: v for k, v in fields.items() if v is not None})
        try:
            with self._lock:
                self._fh.write(json.dumps(record, default=str) + "\n")
                self._fh.flush()
        except (OSError, ValueError):
            self._broken = True

    def close(self) -> None:
        if self._owned:
            try:
                self._fh.close()
            except OSError:
                pass


class NullLog:
    """The no-op sink a server uses when ``--log`` was not given."""

    def emit(self, event: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


def open_log(destination: Optional[str]):
    """``--log`` argument → sink (``None`` → :class:`NullLog`)."""
    return StructuredLog(destination) if destination else NullLog()
