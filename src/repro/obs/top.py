"""``python -m repro top`` — the live operations dashboard.

A curses-free ASCII view of a running :mod:`repro.server`: job counts
by status, worker occupancy, queue depth, cache hit rate, a throughput
sparkline (units simulated per second), send-buffer coalescing, and a
table of recent jobs with their trace IDs.  Two sources:

* **live** (default) — attach to a server over the SDK and poll its
  ``stats`` verb every ``--interval`` seconds, redrawing in place on a
  TTY (ANSI cursor-up; plain frame-per-poll on a pipe);
* **replay** (``--progress FILE``) — reconstruct the final frame from
  a ``--progress`` JSONL telemetry file, no server needed (what CI
  uses to validate a recorded run).

``--once`` renders a single frame and exits 0 — scriptable the way
``top -b -n 1`` is.  Reading stats never perturbs jobs: the server
answers from its metrics registry snapshot, outside every simulated
clock.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

__all__ = ["top_main", "build_frame", "replay_stats", "sparkline"]

#: the house ASCII intensity ramp (shared with memscope's heatmaps)
_RAMP = " .:-=+*#@"

_STATUS_ORDER = ("queued", "running", "done", "failed", "cancelled")


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """``values`` resampled to ``width`` chars of the intensity ramp."""
    if not values:
        return " " * width
    values = list(values)[-width:]
    top = max(values)
    cells = []
    for v in values:
        frac = v / top if top > 0 else 0.0
        cells.append(_RAMP[min(int(frac * (len(_RAMP) - 1) + 0.5),
                               len(_RAMP) - 1)])
    return "".join(cells).rjust(width)


def _metric_total(metrics: Optional[Dict], name: str) -> float:
    """Sum of one metric's series values in a registry snapshot."""
    doc = (metrics or {}).get(name) or {}
    return sum(row.get("value", 0.0) for row in doc.get("series", ()))


def _bar(busy: int, total: int, width: int = 20) -> str:
    total = max(total, 1)
    filled = round(min(busy, total) / total * width)
    return "#" * filled + "-" * (width - filled)


def build_frame(stats: Dict, *, source: str,
                rates: Sequence[float] = ()) -> List[str]:
    """One dashboard frame (list of lines) from a stats document.

    ``stats`` is what the server's ``stats`` verb returns (or
    :func:`replay_stats` synthesizes); ``rates`` is the recent
    units-per-second history for the sparkline.
    """
    metrics = stats.get("metrics")
    jobs = stats.get("jobs") or {}
    workers = stats.get("workers") or {}
    busy = int(workers.get("busy") or 0)
    total_workers = int(workers.get("total") or 0)
    hits = _metric_total(metrics, "repro_cache_hits_total")
    misses = _metric_total(metrics, "repro_cache_misses_total")
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.0%}" if lookups else "n/a"
    units = _metric_total(metrics, "repro_units_computed_total")

    lines = [f"repro top — {source}"]
    counts = "  ".join(f"{status}:{jobs.get(status, 0)}"
                       for status in _STATUS_ORDER)
    lines.append(f"jobs    {counts}   queue depth {stats.get('queue_depth', 0)}"
                 f"   connections {stats.get('connections', 0)}")
    lines.append(f"workers [{_bar(busy, total_workers)}] {busy}/"
                 f"{total_workers} busy")
    lines.append(f"cache   {int(hits)} hits / {int(misses)} misses "
                 f"({hit_rate} hit rate)   units computed {int(units)}"
                 f"   coalesced {stats.get('coalesced', 0)}")
    peak = max(rates, default=0.0)
    lines.append(f"units/s |{sparkline(rates)}| peak {peak:.1f}")
    recent = stats.get("recent_jobs") or []
    if recent:
        lines.append(f"{'job':8s} {'experiment':12s} {'status':9s} "
                     f"{'progress':>9s} {'wall s':>8s}  trace")
        for row in recent[-10:]:
            done, total = row.get("done"), row.get("total")
            progress = (f"{done}/{total}"
                        if done is not None and total is not None else "-")
            wall = (f"{row['wall_s']:.2f}"
                    if row.get("wall_s") is not None else "-")
            lines.append(
                f"{str(row.get('id', '-')):8s} "
                f"{str(row.get('experiment', '-'))[:12]:12s} "
                f"{str(row.get('status', '-')):9s} {progress:>9s} "
                f"{wall:>8s}  {row.get('trace_id', '-')}")
    if stats.get("draining"):
        lines.append("** server is draining — no new submits accepted **")
    return lines


def replay_stats(records: List[Dict]) -> Dict:
    """Synthesize a stats document from ``--progress`` JSONL records.

    One ``start``/``unit``.../``done`` group per run; a record's
    ``job_id``/``trace_id`` (stamped when the run was traced) name the
    job, otherwise the experiment does.  Returns the same shape the
    server's ``stats`` verb produces, plus ``rates`` (units/s binned
    by the records' ``t_s``) for the sparkline.
    """
    jobs: Dict[str, Dict] = {}
    order: List[str] = []
    last_unit: Optional[Dict] = None
    coalesced = 0
    unit_times: List[float] = []

    def row_for(record: Dict) -> Dict:
        key = str(record.get("job_id")
                  or record.get("experiment") or "run")
        if key not in jobs:
            jobs[key] = {"id": key, "experiment": record.get("experiment"),
                         "status": "running",
                         "trace_id": record.get("trace_id", "-")}
            order.append(key)
        row = jobs[key]
        if record.get("experiment"):
            row["experiment"] = record["experiment"]
        if record.get("trace_id"):
            row["trace_id"] = record["trace_id"]
        return row

    current: Optional[Dict] = None
    for record in records:
        event = record.get("event")
        coalesced += record.get("coalesced", 0) or 0
        if event == "start":
            current = row_for(record)
        elif event == "unit":
            last_unit = record
            if record.get("t_s") is not None:
                unit_times.append(float(record["t_s"]))
            row = (row_for(record) if record.get("job_id")
                   else (current or row_for(record)))
            row["done"] = record.get("done")
            row["total"] = record.get("total")
        elif event == "done":
            row = (row_for(record) if record.get("job_id")
                   else (current or row_for(record)))
            row["status"] = "done"
            row["wall_s"] = record.get("wall_s")

    by_status: Dict[str, int] = {}
    for row in jobs.values():
        by_status[row["status"]] = by_status.get(row["status"], 0) + 1
    cache_hits = cache_misses = computed = 0
    for record in records:
        if record.get("event") == "done":
            cache_hits += record.get("cache_hits", 0) or 0
            computed += record.get("computed", 0) or 0
            cache_misses += record.get("computed", 0) or 0
    last = last_unit or {}
    # units/s binned per second of stream time
    rates: List[float] = []
    if unit_times:
        span = int(max(unit_times)) + 1
        bins = [0] * span
        for t in unit_times:
            bins[int(t)] += 1
        rates = [float(b) for b in bins]
    metrics = {
        "repro_cache_hits_total": {"series": [{"value": float(cache_hits)}]},
        "repro_cache_misses_total": {"series":
                                     [{"value": float(cache_misses)}]},
        "repro_units_computed_total": {"series": [{"value": float(computed)}]},
    }
    return {
        "jobs": by_status,
        "connections": 0,
        "coalesced": coalesced,
        "queue_depth": 0,
        "workers": {"total": last.get("jobs", 0) or 0,
                    "busy": last.get("workers_busy", 0) or 0},
        "recent_jobs": [jobs[k] for k in order],
        "metrics": metrics,
        "rates": rates,
    }


def build_top_parser() -> argparse.ArgumentParser:
    from ..server.protocol import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live ASCII dashboard for a running repro server "
                    "(job table, worker occupancy, cache hit rate, "
                    "throughput sparkline), or a replay of a "
                    "--progress JSONL file.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="server to attach to (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="server port (default: %(default)s)")
    parser.add_argument("--progress", metavar="FILE", default=None,
                        help="replay a --progress JSONL telemetry file "
                             "instead of attaching to a server")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls (default: "
                             "%(default)s)")
    parser.add_argument("--duration", type=float, default=None,
                        help="exit after this many seconds (default: "
                             "run until Ctrl-C)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit (scriptable, "
                             "like 'top -b -n 1')")
    return parser


def _replay(path: str, out) -> int:
    from ..sdk.client import read_events_jsonl

    try:
        records = read_events_jsonl(path)
    except OSError as exc:
        print(f"cannot read progress file {path}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"cannot parse progress file {path}: {exc}; expected "
              "the JSONL written by --progress", file=sys.stderr)
        return 2
    if not records:
        print(f"progress file {path} contains no records; re-run with "
              "--progress to capture telemetry", file=sys.stderr)
        return 2
    stats = replay_stats(records)
    frame = build_frame(stats, source=f"replay of {path}",
                        rates=stats.get("rates", ()))
    out.write("\n".join(frame) + "\n")
    return 0


def _live(args, out) -> int:
    from ..sdk.client import Client, ServerError

    try:
        client = Client(args.host, args.port, timeout=30.0)
    except (OSError, ServerError) as exc:
        print(f"cannot attach to {args.host}:{args.port}: {exc}; is "
              "'python -m repro serve' running there?", file=sys.stderr)
        return 2
    source = f"{args.host}:{args.port}"
    redraw = out.isatty() and not args.once
    deadline = (time.monotonic() + args.duration
                if args.duration is not None else None)
    rates: deque = deque(maxlen=60)
    prev_units: Optional[float] = None
    prev_t = time.monotonic()
    drawn = 0
    try:
        while True:
            stats = client.stats()
            source_line = (f"{source} · {client.server} · up "
                           f"{stats.get('uptime_s', 0):.0f}s")
            now = time.monotonic()
            units = _metric_total(stats.get("metrics"),
                                  "repro_units_computed_total")
            if prev_units is not None and now > prev_t:
                rates.append(max(0.0, units - prev_units)
                             / (now - prev_t))
            prev_units, prev_t = units, now
            frame = build_frame(stats, source=source_line, rates=rates)
            if redraw and drawn:
                out.write(f"\x1b[{drawn}F\x1b[J")
            out.write("\n".join(frame) + "\n")
            out.flush()
            drawn = len(frame)
            if args.once:
                return 0
            if deadline is not None and time.monotonic() >= deadline:
                return 0
            time.sleep(args.interval)
            if not redraw:
                out.write("\n")
    except KeyboardInterrupt:
        return 0
    except ServerError as exc:
        print(f"server connection lost: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def top_main(argv: Optional[List[str]] = None) -> int:
    args = build_top_parser().parse_args(argv)
    if args.interval <= 0:
        print(f"--interval must be > 0, got {args.interval:g}",
              file=sys.stderr)
        return 2
    if args.progress is not None:
        return _replay(args.progress, sys.stdout)
    return _live(args, sys.stdout)
