"""Trace exporters: Chrome trace-event JSON and JSONL streams.

The Chrome format is the `trace-event`_ JSON that Perfetto and
``chrome://tracing`` load directly: a ``traceEvents`` array whose
records carry ``ph`` (phase letter), ``ts`` (microseconds), ``pid``,
``tid``, ``name``, ``cat``, ``args``.  We map simulated hypernodes to
processes and simulated CPUs to threads, so a loaded trace shows one
track per CPU grouped by hypernode — the same mental picture as the
paper's per-processor CXpa views.

.. _trace-event: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional

from ..core.config import MachineConfig
from ..sim.trace import TraceEvent, Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "jsonl_lines",
           "write_jsonl", "load_trace", "load_trace_checked"]

_NS_PER_US = 1000.0


def _event_dict(ev: TraceEvent) -> Dict:
    d: Dict = {"name": ev.name, "cat": ev.cat, "ph": ev.ph,
               "ts": ev.ts / _NS_PER_US, "pid": ev.pid, "tid": ev.tid}
    if ev.ph == "X":
        d["dur"] = ev.dur / _NS_PER_US
    if ev.ph == "i":
        d["s"] = "t"  # instant scoped to its thread track
    if ev.args:
        d["args"] = ev.args
    return d


def _metadata(name: str, pid: int, tid: int = 0,
              label: str = "") -> Dict:
    return {"name": name, "ph": "M", "ts": 0.0, "pid": pid, "tid": tid,
            "args": {"name": label}}


def chrome_trace(tracer: Tracer,
                 config: Optional[MachineConfig] = None) -> Dict:
    """The full Chrome trace-event document for one tracer's events.

    With a ``config``, every simulated CPU gets a named thread track
    (even idle ones) so the Perfetto view always shows the machine's
    full width; without one, tracks are created only for CPUs that
    emitted events.
    """
    events: List[Dict] = []
    pids = {ev.pid for ev in tracer.events}
    tids = {(ev.pid, ev.tid) for ev in tracer.events}
    if config is not None:
        per_hn = config.fus_per_hypernode * config.cpus_per_fu
        for hn in range(config.n_hypernodes):
            pids.add(hn)
            for cpu in range(hn * per_hn, (hn + 1) * per_hn):
                tids.add((hn, cpu))
    for pid in sorted(pids):
        events.append(_metadata("process_name", pid,
                                label=f"hypernode {pid}"))
    for pid, tid in sorted(tids):
        events.append(_metadata("thread_name", pid, tid,
                                label=f"cpu {tid}"))
    events.extend(_event_dict(ev) for ev in tracer.events)
    # Legacy TraceRecords (coherence/protocol occurrences) ride along as
    # thread-scoped instants on a dedicated "machine events" process.
    if tracer.records:
        mpid = (config.n_hypernodes if config is not None
                else max(pids, default=-1) + 1)
        events.append(_metadata("process_name", mpid,
                                label="machine events"))
        for rec in tracer.records:
            events.append({"name": rec.category, "cat": "machine",
                           "ph": "i", "s": "t",
                           "ts": rec.time / _NS_PER_US,
                           "pid": mpid, "tid": 0,
                           "args": {"payload": list(rec.payload)}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.obs (simulated Convex SPP-1000)",
            "counters": tracer.counters,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       config: Optional[MachineConfig] = None) -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer, config), fh, indent=None,
                  default=_fallback)


def jsonl_lines(tracer: Tracer) -> Iterator[str]:
    """One compact JSON object per structured event, in emission order."""
    for ev in tracer.events:
        yield json.dumps(_event_dict(ev), default=_fallback)


def write_jsonl(tracer: Tracer, path: str) -> None:
    """Write the JSONL event stream to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        for line in jsonl_lines(tracer):
            fh.write(line + "\n")


def load_trace(path: str) -> List[Dict]:
    """Load event dicts from a Chrome trace JSON *or* a JSONL file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        # JSONL: one event object per line
        return [json.loads(line) for line in text.splitlines()
                if line.strip()]
    if isinstance(doc, list):  # bare traceEvents array
        return doc
    if "traceEvents" not in doc and "ph" in doc:  # single-line JSONL
        return [doc]
    return list(doc.get("traceEvents", []))


def load_trace_checked(path: str) -> Optional[List[Dict]]:
    """Load a trace file for rendering, or print why it cannot be used.

    Returns the event list, or ``None`` after printing one actionable
    line naming the path — shared by the ``timeline``, ``memscope`` and
    ``critscope`` CLI paths so a missing, unreadable, corrupt, or empty
    trace never tracebacks.
    """
    import sys

    try:
        events = load_trace(path)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"cannot read trace file {path}: {reason}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"cannot parse trace file {path}: {exc}; expected a Chrome "
              "trace JSON or JSONL written by --trace", file=sys.stderr)
        return None
    if not events:
        print(f"trace file {path} contains no events; re-run the "
              "experiment with --trace to capture one", file=sys.stderr)
        return None
    return events


def _fallback(obj):
    """JSON serializer of last resort (numpy scalars, sets, enums)."""
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    return str(obj)
