"""Memory-system profiler (the paper's §6 miss-class attribution story).

The paper credits every optimisation win to CXpa/hpm telling the authors
*which* addresses were hot and *which* class of miss was paying for them
— local, remote, hypernode crossings.  :class:`MemScope` is that
instrument for the simulated machine: when installed (via
:func:`use_memscope`, the same ambient-context idiom as
:func:`repro.sim.trace.use_tracer`), every coherence-relevant component
reports into it:

* per-access **miss classification** — cache hit / local miss / GCB hit
  (remote line already in this hypernode's global cache buffer) /
  SCI-remote miss with the ring hop count and observed latency;
* **directory and SCI state transitions**, plus a per-line
  invalidation/sharing-churn detector that flags ping-pong and
  false-sharing lines (alternating writers invalidating each other);
* per-ring and per-crossbar-port **occupancy timelines** (bucketed busy
  time, rendered as ASCII sparklines);
* a per-page / per-hypernode **hotspot heatmap**.

Zero-cost contract (same as the tracer and the fault layer): with no
profiler installed every emission point costs exactly one ``is None``
check, and an installed profiler never advances simulated time —
experiment results and simulated clocks are bit-identical with the
profiler on or off (asserted by tests).

Sampling: aggregate counters, occupancy and the churn detector are
always exact; ``sample=N`` keeps only every Nth per-page heat sample,
bounding detail memory on long runs.

Model-level experiments (the applications of Figs 6-8, driven by
:mod:`repro.perfmodel` rather than the simulated machine) contribute a
model-attributed miss profile per phase; for an address-level breakdown
the CLI additionally runs :func:`placement_probe`, a deterministic
far-shared sweep on a real machine with the configured hypernode count.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["MemScope", "active_memscope", "use_memscope",
           "placement_probe", "memscope_from_trace"]

SCHEMA_VERSION = 1

#: ASCII intensity ramp for occupancy sparklines (space = idle).
_RAMP = " .:-=+*#@"


def _sparkline(buckets: Dict[int, float], bucket_ns: float,
               width: int = 48) -> str:
    """Busy-fraction-per-bucket rendered as one ASCII character each."""
    if not buckets:
        return ""
    last = max(buckets)
    xs = [min(1.0, buckets.get(i, 0.0) / bucket_ns) for i in range(last + 1)]
    if len(xs) > width:
        # resample: mean occupancy of each merged group of buckets
        group = -(-len(xs) // width)
        xs = [sum(xs[i:i + group]) / len(xs[i:i + group])
              for i in range(0, len(xs), group)]
    top = len(_RAMP) - 1
    return "".join(_RAMP[min(top, int(round(v * top)))] for v in xs)


class MemScope:
    """Aggregating sink for memory-system events of one or more machines.

    Components never call into a ``None`` profiler: the
    :class:`~repro.machine.system.Machine` constructor wires the ambient
    instance (if any) into every cache, directory, bank, ring, crossbar
    and SCI list, and each emission point guards with one ``is None``
    check.
    """

    def __init__(self, config=None, *, sample: int = 1,
                 bucket_ns: float = 50_000.0, churn_threshold: int = 4):
        self.config = config
        self.sample = max(1, int(sample))
        self.bucket_ns = float(bucket_ns)
        self.churn_threshold = int(churn_threshold)
        # -- miss classification (always exact) --
        self.hits = 0
        self.miss_local = 0
        self.miss_gcb = 0
        self.miss_remote = 0
        self.hop_counts: Dict[int, int] = {}       # ring distance -> misses
        self.hop_latency_ns: Dict[int, float] = {}  # ring distance -> total
        self.invalidations = 0
        # -- directory / SCI transitions (always exact) --
        self.dir_events: Dict[str, int] = {}
        self.sci_events: Dict[str, int] = {}
        # -- churn detector state, per line (always exact) --
        self._lines: Dict[int, Dict] = {}
        # -- hotspot heatmap (page heat decimated by ``sample``) --
        self._page_heat: Dict[int, int] = {}
        self._page_home: Dict[int, int] = {}
        self._hn_heat: Dict[int, int] = {}          # home hypernode -> serves
        self._decim = 0
        # -- occupancy timelines --
        self._rings: Dict[int, Dict] = {}
        self._xbars: Dict[tuple, Dict] = {}
        self._banks: Dict[tuple, Dict] = {}
        self._t_end = 0.0
        # -- model-attributed miss profile (perfmodel experiments) --
        self._model: Dict[str, Dict] = {}
        self.probe_used = False
        self.machines_attached = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, machine) -> None:
        """Adopt ``machine``'s config (if none yet) and count the hookup."""
        if self.config is None:
            self.config = machine.config
        self.machines_attached += 1

    @property
    def machine_accesses(self) -> int:
        """Total machine-observed accesses (hits + all miss classes)."""
        return (self.hits + self.miss_local + self.miss_gcb
                + self.miss_remote)

    # ------------------------------------------------------------------
    # emission points (called by the machine layers)
    # ------------------------------------------------------------------
    def _page_of(self, line: int) -> int:
        page_bytes = self.config.page_bytes if self.config is not None \
            else 4096
        return line // page_bytes

    def _heat(self, line: int, home_hn: Optional[int]) -> None:
        self._decim += 1
        if self.sample > 1 and self._decim % self.sample:
            return
        page = self._page_of(line)
        self._page_heat[page] = self._page_heat.get(page, 0) + 1
        if home_hn is not None:
            self._page_home[page] = home_hn

    def cache_hit(self, cpu: int, line: int) -> None:
        self.hits += 1
        self._heat(line, None)

    def miss(self, cpu: int, line: int, klass: str, home, hops: int,
             latency_ns: float, now: float) -> None:
        """One classified cache miss, after its fetch path completed.

        ``klass``: ``"local"`` (homed in the accessor's hypernode),
        ``"gcb"`` (remote line served from the local global cache
        buffer), or ``"remote"`` (full SCI round trip; ``hops`` is the
        outbound ring distance ``(home - mine) mod n_hypernodes``).
        ``latency_ns`` spans the fetch path only — cache-tag check and
        TLB handling are excluded, mirroring hpm's miss counters.
        """
        if klass == "local":
            self.miss_local += 1
        elif klass == "gcb":
            self.miss_gcb += 1
        else:
            self.miss_remote += 1
            self.hop_counts[hops] = self.hop_counts.get(hops, 0) + 1
            self.hop_latency_ns[hops] = \
                self.hop_latency_ns.get(hops, 0.0) + latency_ns
        self._hn_heat[home.hypernode] = \
            self._hn_heat.get(home.hypernode, 0) + 1
        self._heat(line, home.hypernode)
        if now > self._t_end:
            self._t_end = now

    def store(self, cpu: int, line: int, word: int) -> None:
        """One store's writer/word observation (feeds the churn detector)."""
        rec = self._lines.get(line)
        if rec is None:
            rec = self._lines[line] = {
                "writers": set(), "words": set(), "alternations": 0,
                "last_writer": None, "invalidations": 0,
            }
        rec["writers"].add(cpu)
        rec["words"].add(word)
        if rec["last_writer"] is not None and rec["last_writer"] != cpu:
            rec["alternations"] += 1
        rec["last_writer"] = cpu

    def cache_invalidated(self, cpu: int, line: int) -> None:
        self.invalidations += 1
        rec = self._lines.get(line)
        if rec is not None:
            rec["invalidations"] += 1

    def dir_event(self, hypernode: int, kind: str) -> None:
        self.dir_events[kind] = self.dir_events.get(kind, 0) + 1

    def sci_event(self, kind: str) -> None:
        self.sci_events[kind] = self.sci_events.get(kind, 0) + 1

    def _occupancy(self, table: Dict, key, start: float, dur: float) -> None:
        st = table.get(key)
        if st is None:
            st = table[key] = {"events": 0, "busy_ns": 0.0, "buckets": {}}
        st["events"] += 1
        st["busy_ns"] += dur
        buckets = st["buckets"]
        b0 = int(start // self.bucket_ns)
        b1 = int((start + dur) // self.bucket_ns)
        if b0 == b1:
            buckets[b0] = buckets.get(b0, 0.0) + dur
        else:
            for b in range(b0, b1 + 1):
                lo = max(start, b * self.bucket_ns)
                hi = min(start + dur, (b + 1) * self.bucket_ns)
                if hi > lo:
                    buckets[b] = buckets.get(b, 0.0) + (hi - lo)
        if start + dur > self._t_end:
            self._t_end = start + dur

    def ring_busy(self, ring_id: int, start: float, dur: float,
                  hops: int) -> None:
        self._occupancy(self._rings, ring_id, start, dur)

    def crossbar_busy(self, hypernode: int, port, start: float,
                      dur: float) -> None:
        self._occupancy(self._xbars, (hypernode, port), start, dur)

    def bank_busy(self, home, start: float, dur: float, lines: int) -> None:
        key = (home.hypernode, home.fu, home.bank)
        st = self._banks.get(key)
        if st is None:
            st = self._banks[key] = {"busy_ns": 0.0, "accesses": 0}
        st["busy_ns"] += dur
        st["accesses"] += lines
        if start + dur > self._t_end:
            self._t_end = start + dur

    def model_phase(self, name: str, misses: float, local: float,
                    remote: float) -> None:
        """One model-attributed phase (perfmodel, not machine-observed)."""
        rec = self._model.get(name)
        if rec is None:
            rec = self._model[name] = {"misses": 0.0, "local_misses": 0.0,
                                       "remote_misses": 0.0, "phases": 0}
        rec["misses"] += misses
        rec["local_misses"] += local
        rec["remote_misses"] += remote
        rec["phases"] += 1

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def flagged_lines(self, threshold: Optional[int] = None) -> List[Dict]:
        """Lines the churn detector flags, most-churned first.

        A line is flagged when at least two distinct CPUs wrote it, the
        writers alternated at least ``threshold`` times, and coherence
        invalidations were observed on it.  All writers hammering the
        *same* word is ``ping-pong`` (true sharing, e.g. a contended
        flag); distinct words is ``false-sharing`` (disjoint data that
        merely cohabits a 32-byte line).
        """
        th = self.churn_threshold if threshold is None else threshold
        out = []
        for line, rec in sorted(self._lines.items()):
            if (rec["alternations"] >= th and len(rec["writers"]) >= 2
                    and rec["invalidations"] > 0):
                out.append({
                    "line": line,
                    "kind": ("false-sharing" if len(rec["words"]) > 1
                             else "ping-pong"),
                    "writers": sorted(rec["writers"]),
                    "distinct_words": len(rec["words"]),
                    "alternations": rec["alternations"],
                    "invalidations": rec["invalidations"],
                })
        out.sort(key=lambda r: -r["alternations"])
        return out

    def _breakdown(self) -> Dict:
        misses = self.miss_local + self.miss_gcb + self.miss_remote
        total = self.hits + misses
        return {
            "total_accesses": total,
            "hits": self.hits,
            "miss_local": self.miss_local,
            "miss_gcb": self.miss_gcb,
            "miss_remote": self.miss_remote,
            "hit_rate": self.hits / total if total else 0.0,
            # fraction of *misses* that crossed hypernodes
            "remote_fraction": self.miss_remote / misses if misses else 0.0,
        }

    def to_dict(self, top: int = 10) -> Dict:
        """The ``memscope`` manifest block (and ``--json`` payload)."""
        span = self._t_end
        source = ("probe" if self.probe_used
                  else "machine" if self.machine_accesses
                  else "model" if self._model
                  else "empty")
        doc: Dict = {
            "schema_version": SCHEMA_VERSION,
            "source": source,
            "sample": self.sample,
            "n_hypernodes": (self.config.n_hypernodes
                             if self.config is not None else None),
            "breakdown": self._breakdown(),
            "hops": {
                str(d): {
                    "count": self.hop_counts[d],
                    "mean_latency_ns":
                        self.hop_latency_ns[d] / self.hop_counts[d],
                } for d in sorted(self.hop_counts)
            },
            "invalidations": self.invalidations,
            "directory": dict(sorted(self.dir_events.items())),
            "sci": dict(sorted(self.sci_events.items())),
            "churn": {
                "threshold": self.churn_threshold,
                "flagged": self.flagged_lines()[:top],
            },
            "rings": {
                str(r): {
                    "transfers": st["events"],
                    "busy_ns": st["busy_ns"],
                    "utilization": st["busy_ns"] / span if span else 0.0,
                } for r, st in sorted(self._rings.items())
            },
            "crossbar_ports": [
                {"hypernode": hn, "port": str(port),
                 "traversals": st["events"], "busy_ns": st["busy_ns"]}
                for (hn, port), st in sorted(
                    self._xbars.items(), key=lambda kv: -kv[1]["busy_ns"]
                )[:top]
            ],
            "banks": [
                {"hypernode": hn, "fu": fu, "bank": bank,
                 "accesses": st["accesses"], "busy_ns": st["busy_ns"]}
                for (hn, fu, bank), st in sorted(
                    self._banks.items(), key=lambda kv: -kv[1]["busy_ns"]
                )[:top]
            ],
            "hot_pages": [
                {"page": page, "accesses": count,
                 "home_hypernode": self._page_home.get(page)}
                for page, count in sorted(
                    self._page_heat.items(), key=lambda kv: (-kv[1], kv[0])
                )[:top]
            ],
            "hypernode_heat": {
                str(hn): count for hn, count in sorted(self._hn_heat.items())
            },
        }
        if self._model:
            local = sum(r["local_misses"] for r in self._model.values())
            remote = sum(r["remote_misses"] for r in self._model.values())
            doc["model"] = {
                "phases": {name: dict(rec) for name, rec in
                           sorted(self._model.items())},
                "local_misses": local,
                "remote_misses": remote,
                "remote_fraction":
                    remote / (local + remote) if local + remote else 0.0,
            }
        return doc

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, title: str = "memscope", top: int = 10) -> str:
        from ..core.tables import Table

        doc = self.to_dict(top=top)
        parts = [f"== {title} (source: {doc['source']}) =="]

        b = doc["breakdown"]
        classes = Table("miss-class breakdown",
                        ["class", "count", "share"])
        total = b["total_accesses"] or 1
        for label, key in (("cache hit", "hits"),
                           ("local miss", "miss_local"),
                           ("GCB hit (remote line)", "miss_gcb"),
                           ("SCI remote miss", "miss_remote")):
            classes.add_row(label, b[key], f"{b[key] / total:.1%}")
        classes.add_row("total", b["total_accesses"],
                        f"remote frac {b['remote_fraction']:.1%}")
        parts.append(classes.render())

        if doc["hops"]:
            hops = Table("SCI hop accounting",
                         ["ring distance", "misses", "mean latency us"])
            for d, row in doc["hops"].items():
                hops.add_row(d, row["count"],
                             f"{row['mean_latency_ns'] / 1e3:.2f}")
            parts.append(hops.render())

        if doc["rings"]:
            rings = Table("ring occupancy",
                          ["ring", "transfers", "busy us", "util",
                           "timeline"])
            for r in sorted(self._rings):
                st = self._rings[r]
                rings.add_row(
                    r, st["events"], f"{st['busy_ns'] / 1e3:.1f}",
                    f"{doc['rings'][str(r)]['utilization']:.1%}",
                    _sparkline(st["buckets"], self.bucket_ns))
            parts.append(rings.render())

        if doc["hot_pages"]:
            pages = Table(f"top-{top} hot pages",
                          ["page", "home hn", "accesses"])
            for row in doc["hot_pages"]:
                home = row["home_hypernode"]
                pages.add_row(f"{row['page']:#x}",
                              "?" if home is None else home,
                              row["accesses"])
            parts.append(pages.render())

        flagged = doc["churn"]["flagged"]
        if flagged:
            churn = Table("sharing-churn detector",
                          ["line", "kind", "writers", "alternations",
                           "invalidations"])
            for row in flagged:
                churn.add_row(f"{row['line']:#x}", row["kind"],
                              ",".join(map(str, row["writers"])),
                              row["alternations"], row["invalidations"])
            parts.append(churn.render())

        if "model" in doc:
            model = Table("model-attributed misses (perfmodel phases)",
                          ["phase", "misses", "local", "remote"])
            for name, rec in doc["model"]["phases"].items():
                model.add_row(name, f"{rec['misses']:.0f}",
                              f"{rec['local_misses']:.0f}",
                              f"{rec['remote_misses']:.0f}")
            model.add_row("TOTAL remote frac",
                          f"{doc['model']['remote_fraction']:.1%}", "", "")
            parts.append(model.render())

        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Ambient-profiler context (same idiom as ``use_tracer``/``use_faults``):
# a Machine built inside the ``with`` block adopts the installed profiler.
# ---------------------------------------------------------------------------

_ACTIVE: List[MemScope] = []


def active_memscope() -> Optional[MemScope]:
    """The innermost profiler installed by :func:`use_memscope`, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_memscope(scope: MemScope):
    """Install ``scope`` as the ambient profiler for the dynamic extent."""
    _ACTIVE.append(scope)
    try:
        yield scope
    finally:
        _ACTIVE.pop()


# ---------------------------------------------------------------------------
# the placement probe
# ---------------------------------------------------------------------------

def placement_probe(config, memscope: Optional[MemScope] = None,
                    pages_per_hypernode: int = 4) -> MemScope:
    """Deterministic far-shared sweep classifying misses on a real machine.

    Model-level experiments (Figs 6-8) never drive the simulated
    machine, so they produce no address-level miss stream.  This probe
    supplies one: a FAR_SHARED region spans
    ``n_hypernodes * pages_per_hypernode`` pages whose homes round-robin
    across hypernodes, and three passes from hypernode 0 exercise every
    miss class — first touch (local + remote misses at every ring
    distance), a sibling CPU's touch (local misses + GCB hits), and a
    re-touch (pure cache hits).  The remote fraction of the resulting
    breakdown grows with the hypernode count, which is exactly the
    locality cliff the paper's Fig 6-8 discussions attribute to
    far-shared data.
    """
    from ..machine import MemClass
    from ..machine.system import Machine

    ms = memscope if memscope is not None else MemScope(config)
    with use_memscope(ms):
        machine = Machine(config)
    npages = config.n_hypernodes * pages_per_hypernode
    region = machine.alloc(npages * config.page_bytes, MemClass.FAR_SHARED,
                           label="memscope probe")
    sibling = 1 if config.n_cpus > 1 else 0

    def prog():
        for cpu in (0, sibling, 0):
            for p in range(npages):
                yield machine.load(cpu, region.addr(p * config.page_bytes))

    machine.sim.run(until=machine.sim.process(prog()))
    ms.probe_used = True
    return ms


# ---------------------------------------------------------------------------
# trace-file summarisation (``python -m repro memscope --trace t.json``)
# ---------------------------------------------------------------------------

_TRACE_CLASSES = {"load.hit": "hits", "load.miss.local": "miss_local",
                  "load.miss.gcb": "miss_gcb",
                  "load.miss.remote": "miss_remote"}


def memscope_from_trace(events: List[Dict]) -> Dict:
    """A miss-class summary from a saved trace's machine-event instants.

    Captured traces carry the legacy coherence records as thread-scoped
    instants with ``cat == "machine"``; this rebuilds the breakdown
    table from them (occupancy and per-page detail are not recoverable
    from a trace — run ``memscope <experiment>`` live for those).
    """
    counts = {"hits": 0, "miss_local": 0, "miss_gcb": 0, "miss_remote": 0}
    invalidations = {"local": 0, "remote": 0}
    ring_round_trips: Dict[str, int] = {}
    for ev in events:
        if ev.get("cat") != "machine":
            continue
        name = ev.get("name", "")
        if name in _TRACE_CLASSES:
            counts[_TRACE_CLASSES[name]] += 1
        elif name == "store.inval.local":
            invalidations["local"] += 1
        elif name == "store.inval.remote":
            invalidations["remote"] += 1
        elif name == "ring.round_trip":
            payload = ev.get("args", {}).get("payload", [None])
            ring = str(payload[0]) if payload else "?"
            ring_round_trips[ring] = ring_round_trips.get(ring, 0) + 1
    misses = (counts["miss_local"] + counts["miss_gcb"]
              + counts["miss_remote"])
    total = counts["hits"] + misses
    return {
        "schema_version": SCHEMA_VERSION,
        "source": "trace",
        "breakdown": {
            "total_accesses": total,
            **counts,
            "hit_rate": counts["hits"] / total if total else 0.0,
            "remote_fraction":
                counts["miss_remote"] / misses if misses else 0.0,
        },
        "invalidations": invalidations,
        "ring_round_trips": ring_round_trips,
    }


def render_trace_summary(doc: Dict, title: str = "memscope") -> str:
    """Human rendering of :func:`memscope_from_trace` output."""
    from ..core.tables import Table

    b = doc["breakdown"]
    table = Table(f"{title}: miss-class breakdown (from trace)",
                  ["class", "count"])
    for label, key in (("cache hit", "hits"), ("local miss", "miss_local"),
                       ("GCB hit (remote line)", "miss_gcb"),
                       ("SCI remote miss", "miss_remote")):
        table.add_row(label, b[key])
    table.add_row("remote fraction", f"{b['remote_fraction']:.1%}")
    parts = [table.render()]
    if doc["ring_round_trips"]:
        rings = Table("ring round trips", ["ring", "count"])
        for ring, count in sorted(doc["ring_round_trips"].items()):
            rings.add_row(ring, count)
        parts.append(rings.render())
    return "\n\n".join(parts)
