"""The operations metrics registry: counters, gauges, histograms.

The profilers in :mod:`repro.obs` measure one *run*; the registry
measures a *service* — monotonically accumulating counters, point-in-
time gauges, and latency histograms that a running ``repro.server``
(or any long-lived process) exposes to operators.  Stdlib only, no
third-party client library:

* :class:`Counter` — monotonic ``inc()``; rates are the reader's job;
* :class:`Gauge` — ``set()``/``inc()``/``dec()`` point-in-time values;
* :class:`Histogram` — ``observe()`` into cumulative buckets with
  ``_sum``/``_count``, Prometheus-shaped (``le`` upper bounds, +Inf);
* every metric takes **labels** (``metric.labels(experiment="fig3")``)
  and each label combination is an independent time series.

Consistency contract: one :class:`MetricsRegistry` owns one lock; every
write and every read of every metric it registered goes through that
lock.  :meth:`MetricsRegistry.snapshot` and
:meth:`MetricsRegistry.render_prometheus` therefore observe a single
point in time — a histogram's bucket counts always sum to its
``_count``, never a torn view mid-``observe`` (asserted under
concurrent writers by ``tests/obs/test_registry.py``).

Perturbation contract: the registry lives entirely in host memory and
host time.  Nothing in :mod:`repro.sim`/:mod:`repro.machine` knows it
exists, so instrumenting a server with it cannot change any simulated
result or clock — the same zero-cost-when-off discipline as the
profilers (there is simply no "on" path inside the simulator).

Exposition: :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text format (version 0.0.4) — ``# HELP``/``# TYPE`` headers
and one ``name{labels} value`` sample per line — which is what the
``repro serve --metrics-port`` HTTP endpoint serves at ``/metrics``.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram",
           "DEFAULT_BUCKETS"]

#: default latency buckets (seconds): sub-ms to minutes, log-ish spaced
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str, what: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(
            f"invalid {what} name {name!r}: Prometheus names match "
            "[a-zA-Z_:][a-zA-Z0-9_:]* (labels may not use ':')")
    return name


def _escape_label(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Metric:
    """Shared machinery: a name, fixed label names, one child per
    label-value combination, all guarded by the registry's lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.RLock):
        self.name = _check_name(name, self.kind)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label, "label")
            if ":" in label:
                raise ValueError(f"label name {label!r} may not contain ':'")
        self._lock = lock
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            # the unlabelled series exists from birth, so a scrape shows
            # explicit zeros instead of absent metrics
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, *values, **kv):
        """The child series for one label-value combination."""
        if values and kv:
            raise ValueError(
                f"{self.name}: pass label values either positionally or "
                "by keyword, not both")
        if kv:
            missing = sorted(set(self.labelnames) - kv.keys())
            extra = sorted(kv.keys() - set(self.labelnames))
            if missing or extra:
                raise ValueError(
                    f"{self.name}: expected labels "
                    f"({', '.join(self.labelnames)}), got "
                    f"({', '.join(sorted(kv))})")
            values = tuple(kv[label] for label in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: takes {len(self.labelnames)} label "
                f"value(s) ({', '.join(self.labelnames)}), got "
                f"{len(values)}")
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    # unlabelled conveniences: counter.inc() == counter.labels().inc()
    def _only(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled by ({', '.join(self.labelnames)}); "
                "use .labels(...) to pick a series")
        return self._children[()]

    def _series(self) -> List[Tuple[Tuple[str, ...], object]]:
        return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("value", "_lock")

    def __init__(self, lock):
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counters only go up (inc({amount})); use a Gauge for "
                "values that fall")
        with self._lock:
            self.value += amount


class Counter(_Metric):
    """A monotonically increasing count (events, jobs, cache hits)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    @property
    def value(self) -> float:
        return self._only().value


class _GaugeChild:
    __slots__ = ("value", "_lock")

    def __init__(self, lock):
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Gauge(_Metric):
    """A point-in-time value (queue depth, busy workers, connections)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._only().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    @property
    def value(self) -> float:
        return self._only().value


class _HistogramChild:
    __slots__ = ("bucket_counts", "sum", "count", "_bounds", "_lock")

    def __init__(self, bounds, lock):
        self._bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1


class Histogram(_Metric):
    """A distribution in cumulative-on-read buckets (job latency)."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"{name}: histogram needs >= 1 bucket bound")
        super().__init__(name, help, labelnames, lock)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets, self._lock)

    def observe(self, value: float) -> None:
        self._only().observe(value)


class MetricsRegistry:
    """One process's metric namespace: get-or-create + consistent reads.

    ``counter()``/``gauge()``/``histogram()`` are idempotent: asking for
    an existing name returns the existing metric (so instrumentation
    sites need no shared globals), but asking with a different type or
    label set raises — a name means one thing.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    # -- registration --------------------------------------------------

    def _get_or_create(self, cls, name, help, labelnames, **kw) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{existing.kind}, not a {cls.kind}")
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"({', '.join(existing.labelnames)}), not "
                        f"({', '.join(labelnames)})")
                return existing
            metric = cls(name, help, labelnames, self._lock, **kw)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # -- consistent reads ----------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Every metric's current state as one point-in-time document.

        Taken under the registry lock, so no metric is mid-update:
        histogram bucket counts always sum to ``count``.  The shape is
        JSON-ready (the ``stats`` protocol verb returns it verbatim).
        """
        with self._lock:
            out: Dict[str, Dict] = {}
            for name, metric in sorted(self._metrics.items()):
                doc: Dict = {"type": metric.kind, "help": metric.help}
                if metric.labelnames:
                    doc["labels"] = list(metric.labelnames)
                series = []
                for key, child in metric._series():
                    row: Dict = {}
                    if metric.labelnames:
                        row["labels"] = dict(zip(metric.labelnames, key))
                    if isinstance(metric, Histogram):
                        row["count"] = child.count
                        row["sum"] = round(child.sum, 9)
                        row["buckets"] = {
                            _format_value(b): c for b, c in zip(
                                metric.buckets, child.bucket_counts)}
                        row["buckets"]["+Inf"] = child.bucket_counts[-1]
                    else:
                        row["value"] = child.value
                    series.append(row)
                doc["series"] = series
                out[name] = doc
            return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        with self._lock:
            lines: List[str] = []
            for name, metric in sorted(self._metrics.items()):
                if metric.help:
                    lines.append(f"# HELP {name} "
                                 + metric.help.replace("\\", "\\\\")
                                 .replace("\n", "\\n"))
                lines.append(f"# TYPE {name} {metric.kind}")
                for key, child in metric._series():
                    label_pairs = list(zip(metric.labelnames, key))
                    if isinstance(metric, Histogram):
                        cumulative = 0
                        for bound, count in zip(metric.buckets,
                                                child.bucket_counts):
                            cumulative += count
                            lines.append(_sample(
                                f"{name}_bucket",
                                label_pairs + [("le", _format_value(bound))],
                                cumulative))
                        cumulative += child.bucket_counts[-1]
                        lines.append(_sample(
                            f"{name}_bucket",
                            label_pairs + [("le", "+Inf")], cumulative))
                        lines.append(_sample(f"{name}_sum", label_pairs,
                                             child.sum))
                        lines.append(_sample(f"{name}_count", label_pairs,
                                             child.count))
                    else:
                        lines.append(_sample(name, label_pairs,
                                             child.value))
            return "\n".join(lines) + "\n" if lines else ""

    def collect_from(self, counters: Dict[str, float], *,
                     prefix: str = "", help_map: Optional[Dict] = None,
                     labels: Optional[Dict[str, str]] = None) -> None:
        """Fold a plain ``{name: delta}`` dict into counters.

        The execution fabric reports per-run counter dicts
        (:meth:`~repro.exec.ResilienceStats.to_dict` and friends);
        this adds each nonzero delta to ``prefix + name`` — the bridge
        from per-run reports to service-lifetime series.
        """
        help_map = help_map or {}
        label_items = labels or {}
        labelnames = tuple(label_items)
        for key, delta in counters.items():
            if not isinstance(delta, (int, float)) or not delta:
                continue
            counter = self.counter(prefix + key, help_map.get(key, ""),
                                   labelnames)
            series = (counter.labels(**label_items) if labelnames
                      else counter._only())
            series.inc(delta)


def _sample(name: str, label_pairs: Iterable[Tuple[str, str]],
            value: float) -> str:
    pairs = [f'{label}="{_escape_label(v)}"' for label, v in label_pairs]
    body = "{" + ",".join(pairs) + "}" if pairs else ""
    return f"{name}{body} {_format_value(value)}"
