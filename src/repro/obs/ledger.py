"""Longitudinal performance-and-fidelity ledger (``repro ledger``).

``bench --compare`` answers "is this run slower than *one* committed
baseline?"; the ledger answers the paper's actual question — what is
the measured *trajectory*?  Every ``bench --ledger`` run (and any
``--metrics`` run or drained server, via ``repro ledger record``)
appends one checksummed JSONL record to ``benchmarks/LEDGER.jsonl``
carrying host calibration, per-experiment timings and throughput,
cache/resilience counters, git provenance (``git_sha`` +
``git_dirty`` + ``code_fingerprint``), and the Fig 2-8 fidelity
residuals from :mod:`repro.obs.fidelity`.

The file contract is the sweep journal's: append-only, one
self-checksummed JSON object per line, fsync'd per append.  Readers
skip torn or corrupt lines (a crash mid-append, a failed checksum)
and report them as ``skipped`` instead of crashing — history survives
anything short of deleting the file.

CLI verbs (``python -m repro ledger <verb>``):

* ``record`` — fold a ``BENCH_exec.json``, ``metrics.json`` manifest,
  or server-stats JSON into one ledger record (shape auto-detected);
* ``show`` — one record in full;
* ``trend`` — per-experiment ASCII sparklines of any timing /
  throughput / fidelity column, calibration-normalized when every
  record carries a host score;
* ``diff`` — any two records through :func:`repro.exec.bench.
  compare_bench` (same thresholds, same noise guards);
* ``gate`` — windowed regression detection: the newest record vs the
  median/MAD of its predecessors, exit 1 on sustained regression or a
  fidelity anchor out of tolerance.

Robust statistics, not single-baseline diffs: the gate's noise band is
``max(threshold * median, 3 * 1.4826 * MAD)`` — a noisy history widens
its own band, a flat history tightens it — and the ``min_abs_s`` raw-
seconds guard from ``compare_bench`` still applies, so timer jitter on
sub-hundredth rows can never fail CI.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from datetime import datetime, timezone
from typing import Dict, List, Optional, Tuple

from ..core.canon import canonical_json
from .fidelity import fidelity_residuals

__all__ = ["LEDGER_SCHEMA", "DEFAULT_LEDGER_PATH", "Ledger",
           "LedgerError", "record_checksum", "record_from_bench",
           "record_from_manifest", "record_from_server_stats",
           "fold_document", "trend", "render_trend", "gate",
           "render_gate", "diff_records", "ledger_main"]

LEDGER_SCHEMA = 1

DEFAULT_LEDGER_PATH = os.path.join("benchmarks", "LEDGER.jsonl")

_SPARK = "▁▂▃▄▅▆▇█"

#: per-experiment columns a bench record carries (and trend can plot)
_TIMING_METRICS = ("serial_s", "parallel_s", "cached_s")
_THROUGHPUT_METRICS = ("units_per_s", "sim_mcycles_per_s", "events_per_s")
TREND_METRICS = _TIMING_METRICS + _THROUGHPUT_METRICS + ("fidelity",)


class LedgerError(ValueError):
    """A document or ledger the CLI cannot act on (actionable message)."""


def record_checksum(record: Dict) -> str:
    """SHA-256 over the record's canonical JSON minus its own ``sha256``
    key — the same integrity tag the result cache stamps on values."""
    body = {k: v for k, v in record.items() if k != "sha256"}
    return hashlib.sha256(
        canonical_json(body).encode("ascii")).hexdigest()


class Ledger:
    """Append-only checksummed JSONL history at ``path``."""

    def __init__(self, path: str = DEFAULT_LEDGER_PATH):
        self.path = path

    def append(self, record: Dict) -> Dict:
        """Stamp schema + checksum and append one line (fsync'd)."""
        record = dict(record)
        record["ledger_schema"] = LEDGER_SCHEMA
        record["sha256"] = record_checksum(record)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # A crash mid-append leaves a torn, newline-less tail; starting
        # the new record on its own line quarantines the torn one (the
        # reader skips it) instead of corrupting both.
        torn_tail = False
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell():
                    fh.seek(-1, os.SEEK_END)
                    torn_tail = fh.read(1) != b"\n"
        except OSError:
            pass
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(("\n" if torn_tail else "") + line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return record

    def read(self) -> Tuple[List[Dict], int]:
        """All intact records plus the count of skipped lines.

        Torn tails (a crash mid-append), corrupt JSON, failed
        checksums, and foreign-schema lines are all *skipped*, never
        raised — the sweep-journal recovery contract.
        """
        try:
            fh = open(self.path, encoding="utf-8")
        except OSError:
            return [], 0
        records: List[Dict] = []
        skipped = 0
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    ok = (isinstance(rec, dict)
                          and rec.get("ledger_schema") == LEDGER_SCHEMA
                          and rec.get("sha256") == record_checksum(rec))
                except (ValueError, TypeError):
                    ok = False
                if not ok:
                    skipped += 1
                    continue
                records.append(rec)
        return records, skipped


# -- record builders -------------------------------------------------------

def _provenance() -> Dict:
    from ..exec.fingerprint import code_fingerprint, git_dirty, git_sha

    return {"git_sha": git_sha(), "git_dirty": git_dirty(),
            "code_fingerprint": code_fingerprint()[:16]}


def _flat_resilience(resil: Dict) -> Dict[str, int]:
    """One bench row's resilience block as comparable integer counts."""
    out = {}
    for key, value in resil.items():
        if key == "quarantined_units":
            out["quarantined"] = len(value or ())
        elif key == "chaos_injected":
            out[key] = sum((value or {}).values())
        elif isinstance(value, (int, float)):
            out[key] = int(value)
    return {k: v for k, v in out.items() if v}


def record_from_bench(doc: Dict, *, source: str = "bench") -> Dict:
    """Fold one ``BENCH_exec.json`` document into a ledger record."""
    host = doc.get("host") or {}
    experiments: Dict[str, Dict] = {}
    for exp_id, row in (doc.get("experiments") or {}).items():
        entry = {key: row.get(key)
                 for key in ("units",) + _TIMING_METRICS
                 + ("speedup", "cached_speedup") + _THROUGHPUT_METRICS
                 + ("cache_hit_rate", "identical")}
        resil = _flat_resilience(row.get("resilience") or {})
        if resil:
            entry["resilience"] = resil
        experiments[exp_id] = entry
    record = {
        "kind": "bench",
        "source": source,
        "created_utc": doc.get("created_utc"),
        "git_sha": doc.get("git_sha"),
        "git_dirty": doc.get("git_dirty"),
        "code_fingerprint": doc.get("code_fingerprint"),
        "calibration_miters_s": host.get("calibration_miters_s"),
        "host": {key: host.get(key)
                 for key in ("cpu_count", "cpu_model", "python",
                             "platform", "loadavg_1m")},
        "jobs": doc.get("jobs"),
        "quick": doc.get("quick"),
        "experiments": experiments,
        "totals": doc.get("totals"),
    }
    if doc.get("fidelity"):
        record["fidelity"] = doc["fidelity"]
    return record


def record_from_manifest(manifest: Dict, *,
                         source: str = "metrics") -> Dict:
    """Fold one ``metrics.json`` manifest (a single experiment run)."""
    prov = manifest.get("provenance") or {}
    exp_id = (manifest.get("experiment") or {}).get("id")
    record = {
        "kind": "metrics",
        "source": source,
        "created_utc": prov.get("created_utc"),
        "git_sha": prov.get("git_sha"),
        "git_dirty": prov.get("git_dirty"),
        "code_fingerprint": prov.get("code_fingerprint"),
        "calibration_miters_s": None,
        "experiment": exp_id,
    }
    hostscope = manifest.get("hostscope") or {}
    regions = hostscope.get("regions") or {}
    if regions:
        record["hostscope_regions"] = {
            name: r.get("self_s") for name, r in regions.items()}
    if hostscope.get("throughput"):
        record["throughput"] = hostscope["throughput"]
    execution = manifest.get("execution") or {}
    if execution:
        record["execution"] = {
            key: execution[key]
            for key in ("jobs", "cache_hits", "cache_misses", "computed",
                        "wall_s", "units_planned")
            if key in execution}
    if exp_id and manifest.get("headline"):
        residuals = fidelity_residuals(exp_id, manifest["headline"])
        if residuals:
            record["fidelity"] = {exp_id: residuals}
    return record


def record_from_server_stats(stats: Dict, *,
                             source: str = "server") -> Dict:
    """Fold a server ``stats`` document: lifetime job-latency series per
    experiment (from the ``repro_job_latency_seconds`` histogram) plus
    the fabric's lifetime cache/unit counters."""
    metrics = stats.get("metrics") or {}

    def _series(name):
        return (metrics.get(name) or {}).get("series") or []

    def _counter_total(name):
        return int(sum(row.get("value", 0) or 0 for row in _series(name)))

    job_latency: Dict[str, Dict] = {}
    for row in _series("repro_job_latency_seconds"):
        exp_id = (row.get("labels") or {}).get("experiment") or "?"
        count = int(row.get("count", 0) or 0)
        if not count:
            continue
        total = float(row.get("sum", 0.0) or 0.0)
        job_latency[exp_id] = {"count": count,
                               "sum_s": round(total, 4),
                               "mean_s": round(total / count, 4)}
    record = {
        "kind": "server",
        "source": source,
        "created_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "calibration_miters_s": None,
        "jobs": stats.get("jobs") or {},
        "uptime_s": stats.get("uptime_s"),
        "job_latency": job_latency,
        "fabric": {"cache_hits": _counter_total("repro_cache_hits_total"),
                   "cache_misses":
                       _counter_total("repro_cache_misses_total"),
                   "units_computed":
                       _counter_total("repro_units_computed_total"),
                   "unit_retries":
                       _counter_total("repro_unit_retries_total")},
    }
    record.update(_provenance())
    return record


def fold_document(doc: Dict, *, source: Optional[str] = None) -> Dict:
    """Auto-detect a document's shape and build the matching record."""
    if not isinstance(doc, dict):
        raise LedgerError(
            "ledger: expected a JSON object (BENCH_exec.json, "
            "metrics.json, or server stats), got "
            f"{type(doc).__name__}")
    if doc.get("generator") == "repro.exec.bench" or (
            "experiments" in doc and "totals" in doc):
        return record_from_bench(doc, source=source or "bench")
    if doc.get("generator") == "repro.obs" or "provenance" in doc:
        return record_from_manifest(doc, source=source or "metrics")
    if "jobs" in doc and "metrics" in doc:
        return record_from_server_stats(doc, source=source or "server")
    raise LedgerError(
        "ledger: unrecognized document shape; foldable inputs are a "
        "bench document (python -m repro bench --bench-out), a metrics "
        "manifest (--metrics), or server stats JSON (repro.sdk stats)")


# -- trajectory analysis ---------------------------------------------------

def _bench_records(records: List[Dict]) -> List[Dict]:
    return [r for r in records if r.get("kind") == "bench"]


def _normalization(records: List[Dict]) -> Optional[Dict[int, float]]:
    """Per-record host-speed factors, or ``None`` when any record lacks
    a calibration score (then raw values are the only honest basis).

    A record's timings are multiplied by ``calibration / median
    calibration``: seconds spent on a fast host count for more work, so
    the series compares code cost, not machine luck — the same
    measured-calibration idea as ``compare_bench``'s preferred mode.
    """
    scores = [r.get("calibration_miters_s") for r in records]
    if not scores or not all(scores):
        return None
    ordered = sorted(scores)
    mid = len(ordered) // 2
    ref = (ordered[mid] if len(ordered) % 2
           else 0.5 * (ordered[mid - 1] + ordered[mid]))
    return {i: score / ref for i, score in enumerate(scores)}


def _metric_value(record: Dict, exp_id: str, metric: str,
                  factor: float) -> Optional[float]:
    if metric == "fidelity":
        entry = (record.get("fidelity") or {}).get(exp_id)
        return entry.get("max_abs_rel_err") if entry else None
    row = (record.get("experiments") or {}).get(exp_id)
    if row is None or row.get(metric) is None:
        return None
    value = float(row[metric])
    if metric in _TIMING_METRICS:
        return value * factor          # slower host -> smaller factor
    if metric in _THROUGHPUT_METRICS:
        return value / factor if factor else value
    return value


def _sparkline(values: List[float]) -> str:
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[int((v - lo) / (hi - lo) * (len(_SPARK) - 1))]
        for v in values)


def trend(records: List[Dict], *, metric: str = "serial_s",
          experiment: Optional[str] = None,
          window: Optional[int] = None) -> Dict:
    """Per-experiment series of ``metric`` across bench records."""
    if metric not in TREND_METRICS:
        raise LedgerError(
            f"ledger: unknown trend metric {metric!r}; one of "
            + ", ".join(TREND_METRICS))
    bench = _bench_records(records)
    if window:
        bench = bench[-window:]
    factors = _normalization(bench)
    exp_ids: List[str] = []
    for rec in bench:
        for exp_id in (rec.get("experiments") or {}):
            if exp_id not in exp_ids:
                exp_ids.append(exp_id)
    if experiment is not None:
        if experiment not in exp_ids:
            raise LedgerError(
                f"ledger: no records for experiment {experiment!r}; "
                "ledger has: " + (", ".join(exp_ids) or "none"))
        exp_ids = [experiment]
    experiments: Dict[str, Dict] = {}
    for exp_id in exp_ids:
        values = []
        for i, rec in enumerate(bench):
            factor = factors[i] if factors else 1.0
            value = _metric_value(rec, exp_id, metric, factor)
            if value is not None:
                values.append(round(value, 4))
        if not values:
            continue
        experiments[exp_id] = {
            "values": values,
            "latest": values[-1],
            "min": min(values),
            "max": max(values),
            "spark": _sparkline(values),
        }
    return {
        "metric": metric,
        "normalized": factors is not None,
        "records": len(bench),
        "experiments": experiments,
    }


def render_trend(report: Dict) -> str:
    note = ("calibration-normalized" if report["normalized"]
            else "raw (some records lack a calibration score)")
    lines = [f"ledger trend: {report['metric']} over "
             f"{report['records']} bench records ({note})"]
    if not report["experiments"]:
        lines.append("  (no data — append bench records first)")
        return "\n".join(lines)
    width = max(len(e) for e in report["experiments"])
    for exp_id, row in report["experiments"].items():
        lines.append(
            f"  {exp_id:<{width}}  {row['spark']}  "
            f"{row['values'][0]:g} -> {row['latest']:g}  "
            f"[min {row['min']:g}, max {row['max']:g}, "
            f"n={len(row['values'])}]")
    return "\n".join(lines)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    return (ordered[mid] if len(ordered) % 2
            else 0.5 * (ordered[mid - 1] + ordered[mid]))


def gate(records: List[Dict], *, window: int = 10,
         threshold: float = 0.25, min_abs_s: float = 0.02,
         metric: str = "serial_s") -> Dict:
    """Windowed regression check: newest bench record vs the robust
    center of its recent history.

    The last ``window`` bench records are considered; the newest is the
    candidate, the rest are history.  Per experiment the noise band
    around the history median is ``max(threshold * median, 3 * 1.4826 *
    MAD)`` — three robust standard deviations or the configured
    threshold, whichever is wider — and a regression additionally
    requires the *raw* slowdown to exceed ``min_abs_s`` (timer noise is
    not a regression at any ratio).  Fewer than 2 history records is a
    trivial pass: one point is a baseline, not a trajectory.  Fidelity
    anchors out of tolerance in the newest record fail the gate
    regardless of speed.
    """
    if metric not in _TIMING_METRICS:
        raise LedgerError(
            f"ledger: gate metric must be a timing column "
            f"({', '.join(_TIMING_METRICS)}), got {metric!r}")
    bench = _bench_records(records)[-window:]
    report: Dict = {
        "window": window, "threshold": threshold,
        "min_abs_s": min_abs_s, "metric": metric,
        "records_considered": len(bench),
        "history": max(len(bench) - 1, 0),
        "normalized": False, "experiments": {},
        "regressions": [], "fidelity_breaches": [],
    }
    if not bench:
        report["pass"] = True
        report["reason"] = "no bench records in ledger"
        return report
    newest, history = bench[-1], bench[:-1]
    factors = _normalization(bench)
    report["normalized"] = factors is not None
    if len(history) >= 2:
        for exp_id, row in (newest.get("experiments") or {}).items():
            factor = factors[len(bench) - 1] if factors else 1.0
            value = _metric_value(newest, exp_id, metric, factor)
            if value is None:
                continue
            hist, hist_raw = [], []
            for i, rec in enumerate(history):
                hfactor = factors[i] if factors else 1.0
                hvalue = _metric_value(rec, exp_id, metric, hfactor)
                if hvalue is None:
                    continue
                hist.append(hvalue)
                hist_raw.append(float(rec["experiments"][exp_id][metric]))
            if len(hist) < 2:
                continue
            med = _median(hist)
            mad = _median([abs(v - med) for v in hist])
            band = max(threshold * med, 3 * 1.4826 * mad)
            raw = float(row.get(metric) or 0.0)
            raw_delta = raw - _median(hist_raw)
            status = "ok"
            if value - med > band and raw_delta > min_abs_s:
                status = "regression"
                report["regressions"].append(f"{exp_id}: {metric}")
            elif med - value > band:
                status = "improved"
            report["experiments"][exp_id] = {
                "median": round(med, 4),
                "mad": round(mad, 4),
                "newest": round(value, 4),
                "ratio": round(value / med, 4) if med > 0 else 1.0,
                "band": round(band, 4),
                "raw_delta_s": round(raw_delta, 4),
                "history_n": len(hist),
                "status": status,
            }
    else:
        report["reason"] = (
            f"insufficient history ({len(history)} prior records, "
            "need 2): trivial pass")
    for exp_id, entry in (newest.get("fidelity") or {}).items():
        for name, anchor in (entry.get("metrics") or {}).items():
            if not anchor.get("within_tolerance", True):
                report["fidelity_breaches"].append(
                    f"{exp_id}: {name} (rel_err {anchor.get('rel_err')}, "
                    f"tolerance {anchor.get('tolerance')})")
    report["pass"] = not report["regressions"] \
        and not report["fidelity_breaches"]
    return report


def render_gate(report: Dict) -> str:
    note = "calibration-normalized" if report["normalized"] else "raw"
    lines = [f"ledger gate: {report['metric']} over last "
             f"{report['records_considered']} records "
             f"(window {report['window']}, threshold "
             f"{report['threshold']:.0%}, {note})"]
    if report.get("reason"):
        lines.append(f"  {report['reason']}")
    if report["experiments"]:
        width = max(len(e) for e in report["experiments"])
        for exp_id, row in report["experiments"].items():
            lines.append(
                f"  {exp_id:<{width}}  median {row['median']:g} "
                f"(MAD {row['mad']:g}, n={row['history_n']})  "
                f"newest {row['newest']:g}  ratio {row['ratio']:.2f}x  "
                + (row["status"].upper()
                   if row["status"] == "regression" else row["status"]))
    for breach in report["fidelity_breaches"]:
        lines.append(f"  FIDELITY BREACH {breach}")
    if report["pass"]:
        lines.append("PASS: no sustained regression, fidelity within "
                     "tolerance")
    else:
        failed = report["regressions"] + report["fidelity_breaches"]
        lines.append("FAIL: " + "; ".join(failed))
    return "\n".join(lines)


def _as_bench_doc(record: Dict) -> Dict:
    """A pseudo bench document from a ledger record, good enough for
    :func:`repro.exec.bench.compare_bench`."""
    return {
        "schema_version": 2,
        "host": {"calibration_miters_s":
                 record.get("calibration_miters_s")},
        "code_fingerprint": record.get("code_fingerprint"),
        "git_sha": record.get("git_sha"),
        "experiments": record.get("experiments") or {},
    }


def diff_records(records: List[Dict], *, a: int = -2, b: int = -1,
                 threshold: float = 0.25,
                 min_abs_s: float = 0.02) -> Dict:
    """Diff two bench records (by index, negatives ok) through
    ``compare_bench`` — same thresholds, same normalization."""
    from ..exec.bench import compare_bench  # avoid import cycle

    bench = _bench_records(records)
    if len(bench) < 2:
        raise LedgerError(
            f"ledger: diff needs >= 2 bench records, have {len(bench)}; "
            "append more with bench --ledger or repro ledger record")
    try:
        baseline, current = bench[a], bench[b]
    except IndexError:
        raise LedgerError(
            f"ledger: record index out of range (a={a}, b={b}, "
            f"{len(bench)} bench records)") from None
    return compare_bench(_as_bench_doc(current), _as_bench_doc(baseline),
                         threshold=threshold, min_abs_s=min_abs_s)


# -- CLI -------------------------------------------------------------------

def _summarize(record: Dict) -> str:
    exps = record.get("experiments") or {}
    fid = record.get("fidelity") or {}
    worst = max((entry.get("max_abs_rel_err", 0.0)
                 for entry in fid.values()), default=None)
    parts = [f"kind={record.get('kind')}",
             f"created={record.get('created_utc')}",
             f"git={str(record.get('git_sha'))[:12]}"
             + ("+dirty" if record.get("git_dirty") else "")]
    if exps:
        parts.append(f"experiments={len(exps)}")
        total = sum(float(r.get("serial_s") or 0) for r in exps.values())
        parts.append(f"serial_s={total:.3f}")
    if worst is not None:
        parts.append(f"max_fidelity_err={worst:g}")
    return " ".join(parts)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ledger",
        description="Longitudinal performance-and-fidelity ledger: "
                    "append-only checksummed JSONL records of bench "
                    "timings, throughput, and Fig 2-8 fidelity "
                    "residuals, with trend sparklines and a windowed "
                    "median/MAD regression gate.")
    sub = parser.add_subparsers(dest="verb", required=True)

    def _common(p):
        p.add_argument("--ledger", default=DEFAULT_LEDGER_PATH,
                       metavar="PATH",
                       help="ledger file (default: %(default)s)")

    p = sub.add_parser("record", help="fold a JSON document into the "
                                      "ledger (shape auto-detected)")
    _common(p)
    p.add_argument("file", help="BENCH_exec.json, metrics.json manifest, "
                                "or server-stats JSON")
    p.add_argument("--source", default=None,
                   help="origin tag stored on the record (default: by "
                        "document kind)")

    p = sub.add_parser("show", help="print one record")
    _common(p)
    p.add_argument("--index", type=int, default=-1,
                   help="record index, negatives from the end "
                        "(default: %(default)s)")
    p.add_argument("--json", action="store_true",
                   help="full record as JSON instead of a summary")

    p = sub.add_parser("trend", help="per-experiment sparklines")
    _common(p)
    p.add_argument("--metric", default="serial_s", choices=TREND_METRICS,
                   help="column to plot (default: %(default)s)")
    p.add_argument("--experiment", default=None,
                   help="restrict to one experiment id")
    p.add_argument("--window", type=int, default=None,
                   help="only the last N bench records (default: all)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")

    p = sub.add_parser("diff", help="compare two records via "
                                    "compare_bench")
    _common(p)
    p.add_argument("--a", type=int, default=-2,
                   help="baseline record index (default: %(default)s)")
    p.add_argument("--b", type=int, default=-1,
                   help="current record index (default: %(default)s)")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="regression threshold (default: %(default)s)")
    p.add_argument("--min-abs-s", type=float, default=0.02,
                   help="noise guard: min absolute slowdown in seconds "
                        "(default: %(default)s)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")

    p = sub.add_parser("gate", help="windowed regression gate "
                                    "(exit 1 on sustained regression "
                                    "or fidelity breach)")
    _common(p)
    p.add_argument("--window", type=int, default=10,
                   help="bench records considered (default: %(default)s)")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="regression threshold vs history median "
                        "(default: %(default)s)")
    p.add_argument("--min-abs-s", type=float, default=0.02,
                   help="noise guard: min absolute slowdown in seconds "
                        "(default: %(default)s)")
    p.add_argument("--metric", default="serial_s",
                   choices=_TIMING_METRICS,
                   help="timing column gated (default: %(default)s)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    return parser


def _load_records(path: str, verb: str) -> Tuple[List[Dict], int]:
    ledger = Ledger(path)
    records, skipped = ledger.read()
    if not records:
        raise LedgerError(
            f"ledger {verb}: no readable records in {path}; append one "
            "with 'python -m repro bench --quick --ledger' or "
            "'python -m repro ledger record BENCH_exec.json'")
    if skipped:
        print(f"ledger: skipped {skipped} corrupt/torn line(s) in "
              f"{path}", file=sys.stderr)
    return records, skipped


def ledger_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.verb == "record":
            try:
                with open(args.file, encoding="utf-8") as fh:
                    doc = json.load(fh)
            except OSError as exc:
                raise LedgerError(
                    f"ledger record: cannot read {args.file}: "
                    f"{exc.strerror or exc}") from None
            except ValueError as exc:
                raise LedgerError(
                    f"ledger record: {args.file} is not JSON "
                    f"({exc})") from None
            record = fold_document(doc, source=args.source)
            stamped = Ledger(args.ledger).append(record)
            total = len(Ledger(args.ledger).read()[0])
            print(f"ledger: appended {stamped['kind']} record "
                  f"(#{total}, sha256 {stamped['sha256'][:12]}…) "
                  f"to {args.ledger}")
            return 0

        records, _ = _load_records(args.ledger, args.verb)
        if args.verb == "show":
            try:
                record = records[args.index]
            except IndexError:
                raise LedgerError(
                    f"ledger show: index {args.index} out of range "
                    f"({len(records)} records)") from None
            if args.json:
                print(json.dumps(record, indent=2, sort_keys=True))
            else:
                print(_summarize(record))
            return 0
        if args.verb == "trend":
            report = trend(records, metric=args.metric,
                           experiment=args.experiment,
                           window=args.window)
            print(json.dumps(report, indent=2) if args.json
                  else render_trend(report))
            return 0
        if args.verb == "diff":
            from ..exec.bench import render_compare

            report = diff_records(records, a=args.a, b=args.b,
                                  threshold=args.threshold,
                                  min_abs_s=args.min_abs_s)
            print(json.dumps(report, indent=2) if args.json
                  else render_compare(report))
            return 1 if report["regressions"] else 0
        # gate
        report = gate(records, window=args.window,
                      threshold=args.threshold,
                      min_abs_s=args.min_abs_s, metric=args.metric)
        print(json.dumps(report, indent=2) if args.json
              else render_gate(report))
        return 0 if report["pass"] else 1
    except LedgerError as exc:
        print(str(exc), file=sys.stderr)
        return 2
