"""End-to-end trace context: one trace ID from SDK client to simulated time.

The profilers trace *inside* a run; :class:`TraceContext` traces *around*
one — the host-side story of a job: the client that submitted it, the
server queue it waited in, the pool workers that computed its units, and
finally the simulated-time spans the run itself produced.  A context is
minted at the outermost edge (normally :meth:`repro.sdk.Client.submit`),
rides the NDJSON protocol as a ``trace`` field on ``submit`` /
``accepted`` / ``event`` / ``result`` messages, is installed ambiently
around the server-side run (:func:`use_tracectx`, same stack discipline
as :func:`repro.sim.trace.use_tracer`), and stamps every unit progress
record the execution fabric emits.  :func:`stitch_chrome_trace` then
merges all of it with the run's simulated-time Chrome trace so one file
answers "where did this job's wall time go" end to end.

Two clocks, one file: host spans carry epoch ``time.time()`` seconds
(comparable across processes on one host, and approximately across
hosts); simulated spans carry simulated nanoseconds from t=0.  The
stitcher keeps them on separate process tracks and leaves simulated
time untranslated — the point is side-by-side attribution with a shared
``trace_id`` in every span's ``args``, not a fictitious unified clock.

Perturbation contract: like every :mod:`repro.obs` tool, a trace
context never touches simulated state.  The execution fabric checks
:func:`active_tracectx` exactly once per run (one None-check when off)
and only annotates host-side progress records — results and final
simulated clocks are bit-identical either way (asserted by
``tests/exec/test_tracectx_exec.py``).
"""

from __future__ import annotations

import json
import secrets
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["TraceContext", "mint_trace_id", "use_tracectx",
           "active_tracectx", "stitch_chrome_trace", "write_chrome_json"]

#: host spans kept per context before further ones are counted, not kept
#: (a 2000-unit sweep should not mail a 2000-span attachment per job)
MAX_SPANS = 1000

_S_PER_US = 1e-6


def mint_trace_id() -> str:
    """A fresh 64-bit trace ID as 16 lowercase hex characters."""
    return secrets.token_hex(8)


@dataclass
class HostSpan:
    """One host-time span: epoch-second bounds plus attribution args."""

    name: str
    t0: float
    t1: float
    cat: str = "host"
    origin: str = "local"      # client | server | pool | local
    args: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        d = {"name": self.name, "t0": self.t0, "t1": self.t1,
             "cat": self.cat, "origin": self.origin}
        if self.args:
            d["args"] = self.args
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "HostSpan":
        return cls(name=str(d.get("name", "?")),
                   t0=float(d.get("t0", 0.0)), t1=float(d.get("t1", 0.0)),
                   cat=str(d.get("cat", "host")),
                   origin=str(d.get("origin", "local")),
                   args=dict(d.get("args", {})))


@dataclass
class TraceContext:
    """The identity and host-span accumulator for one traced operation.

    ``origin`` names which leg of the journey this instance lives on
    (``client``/``server``/``pool``/``local``) and becomes the default
    for spans recorded through it.  Contexts are cheap; the wire carries
    only ``{"trace_id": ..., "job_id": ...}`` (:meth:`to_wire`), and
    each process reconstructs its own local instance.
    """

    trace_id: str = field(default_factory=mint_trace_id)
    job_id: Optional[str] = None
    origin: str = "local"
    spans: List[HostSpan] = field(default_factory=list)
    dropped: int = 0

    # -- recording -----------------------------------------------------

    def add_span(self, name: str, t0: float, t1: float, *,
                 cat: str = "host", origin: Optional[str] = None,
                 **args) -> None:
        """Record a closed host span; silently counts past :data:`MAX_SPANS`."""
        if len(self.spans) >= MAX_SPANS:
            self.dropped += 1
            return
        self.spans.append(HostSpan(name, t0, t1, cat=cat,
                                   origin=origin or self.origin,
                                   args=args))

    @contextmanager
    def span(self, name: str, *, cat: str = "host", **args):
        """Bracket a block of host work as one span."""
        t0 = time.time()
        try:
            yield self
        finally:
            self.add_span(name, t0, time.time(), cat=cat, **args)

    # -- wire helpers --------------------------------------------------

    def to_wire(self) -> Dict:
        """The identity fields a protocol message carries."""
        wire: Dict = {"trace_id": self.trace_id}
        if self.job_id is not None:
            wire["job_id"] = self.job_id
        return wire

    @classmethod
    def from_wire(cls, wire: Optional[Dict], *,
                  origin: str = "local") -> "TraceContext":
        """Rebuild a local context from a message's ``trace`` field.

        Tolerant by design: a missing/malformed field mints a fresh ID
        so an old client never breaks a new server (and vice versa).
        """
        if not isinstance(wire, dict) or not wire.get("trace_id"):
            return cls(origin=origin)
        job_id = wire.get("job_id")
        return cls(trace_id=str(wire["trace_id"]),
                   job_id=str(job_id) if job_id is not None else None,
                   origin=origin)

    def stamp(self, record: Dict) -> Dict:
        """Add ``trace_id`` (and ``job_id``) to a progress/event record."""
        record["trace_id"] = self.trace_id
        if self.job_id is not None:
            record["job_id"] = self.job_id
        return record

    def spans_to_wire(self) -> List[Dict]:
        """The recorded spans as JSON-ready dicts (for ``result`` messages)."""
        return [s.to_dict() for s in self.spans]

    def extend_from_wire(self, spans: Optional[List[Dict]]) -> None:
        """Adopt spans shipped from another process (server → client)."""
        for d in spans or ():
            if isinstance(d, dict):
                if len(self.spans) >= MAX_SPANS:
                    self.dropped += 1
                    continue
                self.spans.append(HostSpan.from_dict(d))


# ---------------------------------------------------------------------------
# Ambient context (mirrors repro.sim.trace.use_tracer, but per-thread:
# the job server runs many jobs concurrently on different threads, each
# under its own context — a process-global stack would cross-stamp them)
# ---------------------------------------------------------------------------

_ACTIVE = threading.local()


def _stack() -> List[TraceContext]:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    return stack


def active_tracectx() -> Optional[TraceContext]:
    """The innermost context installed by :func:`use_tracectx` *on this
    thread*, if any."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def use_tracectx(ctx: TraceContext):
    """Install ``ctx`` as this thread's ambient trace context.

    :func:`repro.exec.execute` adopts it: unit progress records get
    stamped with the trace/job IDs and per-unit pool spans are recorded
    into ``ctx.spans`` — without threading a context through every
    signature.
    """
    stack = _stack()
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


# ---------------------------------------------------------------------------
# Stitching: host spans + simulated Chrome trace -> one Chrome document
# ---------------------------------------------------------------------------

#: fixed pids for the host-side process tracks; simulated pids are
#: shifted above these so hypernode 0 never collides with the client
_HOST_PIDS = {"client": 0, "server": 1, "pool": 2, "local": 3}
_SIM_PID_BASE = 10


def stitch_chrome_trace(trace_id: str,
                        host_spans: List[HostSpan],
                        sim_doc: Optional[Dict] = None,
                        job_id: Optional[str] = None) -> Dict:
    """One Chrome trace-event document covering host and simulated time.

    Host spans become ``X`` (complete) events on per-origin process
    tracks (``client`` / ``server`` / ``pool``), with ``ts`` rebased to
    the earliest host span so the file starts at 0.  ``sim_doc`` — a
    document from :func:`repro.obs.export.chrome_trace` — rides along
    with every pid shifted by :data:`_SIM_PID_BASE` and its process
    names prefixed ``sim:``, timestamps untouched (simulated µs).
    ``trace_id`` lands in every span's ``args`` and in ``otherData``.
    """
    events: List[Dict] = []
    origins = sorted({s.origin for s in host_spans} | {"client"},
                     key=lambda o: _HOST_PIDS.get(o, 9))
    for origin in origins:
        pid = _HOST_PIDS.get(origin, 9)
        events.append({"name": "process_name", "ph": "M", "ts": 0.0,
                       "pid": pid, "tid": 0,
                       "args": {"name": f"host: {origin}"}})
    t_base = min((s.t0 for s in host_spans), default=0.0)
    for s in host_spans:
        args = dict(s.args)
        args["trace_id"] = trace_id
        if job_id is not None:
            args.setdefault("job_id", job_id)
        events.append({
            "name": s.name, "cat": s.cat, "ph": "X",
            "ts": (s.t0 - t_base) / _S_PER_US,
            "dur": max(0.0, s.t1 - s.t0) / _S_PER_US,
            "pid": _HOST_PIDS.get(s.origin, 9), "tid": 0,
            "args": args,
        })
    other: Dict = {"trace_id": trace_id,
                   "source": "repro.obs.tracectx (stitched)"}
    if job_id is not None:
        other["job_id"] = job_id
    if sim_doc:
        for ev in sim_doc.get("traceEvents", ()):
            ev = dict(ev)
            ev["pid"] = int(ev.get("pid", 0)) + _SIM_PID_BASE
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                margs = dict(ev.get("args", {}))
                margs["name"] = "sim: " + str(margs.get("name", "?"))
                ev["args"] = margs
            else:
                args = dict(ev.get("args", {}))
                args["trace_id"] = trace_id
                ev["args"] = args
            events.append(ev)
        sim_other = sim_doc.get("otherData")
        if isinstance(sim_other, dict):
            other["sim"] = sim_other
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": other}


def write_chrome_json(doc: Dict, path: str) -> None:
    """Write a stitched document to ``path`` (Perfetto-loadable)."""
    from .export import _fallback

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, default=_fallback)
