"""ASCII Gantt rendering of traces (``python -m repro timeline``).

Turns a trace — straight from a :class:`~repro.sim.trace.Tracer` or
loaded back from an exported file — into a terminal timeline: one row
per (hypernode, CPU) track, span letters for activities (threads,
sends, receives, modelled phases), markers for instants (barrier
arrivals/releases, message posts).  The quick-look equivalent of
opening the Chrome trace in Perfetto.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["render_timeline", "timeline_from_tracer"]

_SPAN_LETTERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

#: instant-event name -> timeline marker
_MARKERS = {
    "barrier.arrive": "+",
    "barrier.open": "v",
    "barrier.release": "^",
    "pvm.post": "*",
    "thread.spawn": ">",
    "thread.spawn_async": ">",
    "lock.acquire": "!",
    "lock.release": "'",
}
_DEFAULT_MARKER = "."


def timeline_from_tracer(tracer) -> List[Dict]:
    """Event dicts (Chrome-shaped, ts in us) from a live tracer."""
    from .export import _event_dict

    return [_event_dict(ev) for ev in tracer.events]


def render_timeline(events: Iterable[Dict], width: int = 72,
                    title: str = "timeline") -> str:
    """Render Chrome-shaped event dicts as an ASCII Gantt chart.

    Accepts the ``traceEvents`` of an exported file (or
    :func:`timeline_from_tracer` output); metadata and counter events
    are ignored.  Times may be in any consistent unit; the scale line
    reports the observed range verbatim.
    """
    spans: List[Tuple[int, int, str, float, float]] = []
    instants: List[Tuple[int, int, str, float]] = []
    open_stacks: Dict[Tuple[int, int], List[Tuple[str, float]]] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph in ("M", "C", None):
            continue
        pid = int(ev.get("pid", 0))
        tid = int(ev.get("tid", 0))
        ts = float(ev.get("ts", 0.0))
        name = str(ev.get("name", "?"))
        if ph == "B":
            open_stacks.setdefault((pid, tid), []).append((name, ts))
        elif ph == "E":
            stack = open_stacks.get((pid, tid))
            if stack:
                sname, t0 = stack.pop()
                spans.append((pid, tid, sname, t0, ts))
        elif ph == "X":
            spans.append((pid, tid, name, ts,
                          ts + float(ev.get("dur", 0.0))))
        elif ph in ("i", "I"):
            instants.append((pid, tid, name, ts))

    if not spans and not instants:
        return f"{title}: (no events)"

    times = ([t for *_x, t0, t1 in spans for t in (t0, t1)]
             + [t for *_x, t in instants])
    t_lo, t_hi = min(times), max(times)
    extent = max(t_hi - t_lo, 1e-12)

    def col(t: float) -> int:
        return min(width - 1, int((t - t_lo) / extent * width))

    letters: Dict[str, str] = {}
    for _pid, _tid, sname, _t0, _t1 in spans:
        if sname not in letters:
            letters[sname] = (_SPAN_LETTERS[len(letters)]
                              if len(letters) < len(_SPAN_LETTERS) else "#")

    tracks = sorted({(p, t) for p, t, *_r in spans}
                    | {(p, t) for p, t, *_r in instants})
    rows: Dict[Tuple[int, int], List[str]] = {
        key: [" "] * width for key in tracks}
    # Longest spans first so shorter (nested/inner) spans overwrite them
    # and stay visible.
    for pid, tid, sname, t0, t1 in sorted(
            spans, key=lambda s: s[4] - s[3], reverse=True):
        row = rows[(pid, tid)]
        for c in range(col(t0), col(t1) + 1):
            row[c] = letters[sname]
    used_markers: Dict[str, str] = {}
    for pid, tid, iname, t in instants:
        mark = _MARKERS.get(iname, _DEFAULT_MARKER)
        used_markers[iname] = mark
        rows[(pid, tid)][col(t)] = mark

    label_w = max((len(f"hn{p}/cpu{t}") for p, t in tracks), default=0)
    lines = [f"== {title}: {t_lo:.1f} .. {t_hi:.1f} us "
             f"({extent:.1f} us across {width} cols) =="]
    for pid, tid in tracks:
        label = f"hn{pid}/cpu{tid}".ljust(label_w)
        lines.append(f"{label} |{''.join(rows[(pid, tid)])}|")
    if letters:
        lines.append("spans:   " + "  ".join(
            f"{letter}={name}" for name, letter in letters.items()))
    if used_markers:
        lines.append("markers: " + "  ".join(
            f"{mark}={name}" for name, mark in sorted(
                used_markers.items())))
    return "\n".join(lines)
