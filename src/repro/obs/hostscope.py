"""Host-time self-profiler for the simulator (where *wall* time goes).

Every other instrument in :mod:`repro.obs` attributes **simulated**
cycles; :class:`HostScope` attributes the **host** wall-time the
simulator itself burns — the paper's §4 discipline (decompose observed
time into architectural components before optimising) turned onto our
own event loop.  It answers the questions ROADMAP item 1 needs answered
before any kernel optimisation lands:

* which subsystem eats the host time — event-heap push/pop, callback
  dispatch, thread-scheduling bookkeeping, memory/coherence resolution,
  PVM message handling, trace/metrics export, or the workload bodies
  themselves (:data:`REGIONS`);
* how fast the simulator actually is — simulated cycles per host
  second and events per host second;
* how the event heap behaves — pushes, pops, peak and mean depth.

Attribution works on two levels.  Each simulated
:class:`~repro.sim.process.Process` carries a ``region`` tag set at
creation (machine memory ops are ``memory``, runtime-spawned bodies are
``app``, ...) and every generator slice it executes is timed under that
region.  Pure-Python sections that run *inside* another process's slice
— PVM mailbox work, fork/join spawn bookkeeping — bracket themselves
with :meth:`HostScope.enter` / :meth:`HostScope.exit` (via
:func:`host_region`), which nests exactly like a call stack: self-time
goes to the innermost region, so region self-times partition the wall
clock and their sum covers ≥95% of a profiled run (asserted by CI).

Zero-cost contract (same as tracer/memscope/critscope/faults): with no
profiler installed every emission point pays one ``is None`` check, and
an installed profiler reads ``time.perf_counter_ns`` only — it never
advances simulated time, so results and final simulated clocks are
bit-identical with hostscope on or off (asserted by tests).  Install
via :func:`use_hostscope`; :class:`~repro.sim.engine.Simulator`
instances created inside the scope adopt it.

Light mode (``detail=False``) keeps only the integer counters (events,
simulated ns, heap churn) with no clock reads per region transition —
cheap enough that ``bench`` derives its throughput columns from the
timed serial pass without perturbing it.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter_ns
from typing import Dict, List, Optional

from ..core.tables import Table

__all__ = ["REGIONS", "HostScope", "active_hostscope", "use_hostscope",
           "host_region", "hostscope_from_trace", "render_trace_summary"]

SCHEMA_VERSION = 1

#: the host-time region taxonomy (see docs/hostscope.md)
REGIONS = ("event_heap", "dispatch", "app", "sched", "memory", "pvm",
           "export", "run")

#: one-line description per region, used by the renderer and the docs
REGION_HELP = {
    "event_heap": "event-heap pop + queue bookkeeping",
    "dispatch": "event-callback dispatch outside any tagged process",
    "app": "workload thread bodies (generator slices)",
    "sched": "thread scheduling: spawn/fork-join/sync-word bookkeeping",
    "memory": "memory-access / coherence resolution processes",
    "pvm": "PVM message handling (buffers, mailbox insert/match)",
    "export": "trace/metrics export",
    "run": "everything else on the profiled path (planning, assembly)",
}

_NULL_CTX = nullcontext()


class _Region:
    """Re-entrant ``with``-shim over :meth:`HostScope.enter`/``exit``."""

    __slots__ = ("_hs", "_name")

    def __init__(self, hs: "HostScope", name: str):
        self._hs = hs
        self._name = name

    def __enter__(self):
        self._hs.enter(self._name)
        return self._hs

    def __exit__(self, *exc):
        self._hs.exit()
        return False


class HostScope:
    """Region-stack host-time profiler with throughput counters.

    ``detail=True`` (default) times every region transition with
    ``perf_counter_ns``; ``detail=False`` keeps only the counters.
    One instance may observe any number of simulators/machines (an
    experiment's repeats all fold into the same totals).
    """

    def __init__(self, config=None, detail: bool = True):
        self.config = config
        self.detail = detail
        # region accounting (detail mode)
        self._self_ns: Dict[str, int] = {}
        self._cum_ns: Dict[str, int] = {}
        self._enters: Dict[str, int] = {}
        self._active: Dict[str, int] = {}
        self._stack: List[tuple] = []
        self._mark = 0
        self._t_start: Optional[int] = None
        self._t_stop: Optional[int] = None
        # counters (kept in both modes)
        self.events = 0          #: events dispatched (heap pops)
        self.pushes = 0          #: heap pushes
        self.depth_sum = 0       #: sum of heap depth sampled at each pop
        self.max_depth = 0       #: peak heap depth (after a push)
        self.sim_ns = 0.0        #: simulated nanoseconds advanced
        self.processes = 0       #: simulated processes created
        self.simulators = 0      #: Simulator instances that adopted us

    # -- wiring ----------------------------------------------------------
    def adopt_config(self, config) -> None:
        """Learn the machine config (for cycles/sec) from the first Machine."""
        if self.config is None:
            self.config = config

    @property
    def clock_ns(self) -> float:
        return self.config.clock_ns if self.config is not None else 10.0

    # -- region stack (hot path when detail) ------------------------------
    def enter(self, name: str) -> None:
        now = perf_counter_ns()
        stack = self._stack
        if stack:
            top = stack[-1][0]
            self._self_ns[top] = self._self_ns.get(top, 0) \
                + (now - self._mark)
        self._enters[name] = self._enters.get(name, 0) + 1
        self._active[name] = self._active.get(name, 0) + 1
        stack.append((name, now))
        self._mark = now

    def exit(self) -> None:
        stack = self._stack
        if not stack:
            return
        now = perf_counter_ns()
        name, t0 = stack.pop()
        self._self_ns[name] = self._self_ns.get(name, 0) \
            + (now - self._mark)
        remaining = self._active.get(name, 1) - 1
        self._active[name] = remaining
        if remaining == 0:
            # cumulative time counts only the outermost instance of a
            # region, so recursion does not double-count
            self._cum_ns[name] = self._cum_ns.get(name, 0) + (now - t0)
        self._mark = now

    def region(self, name: str) -> _Region:
        """``with hs.region("pvm"): ...`` — a balanced enter/exit pair."""
        return _Region(self, name)

    # -- event-loop counters (hot path in both modes) ---------------------
    def note_push(self, depth: int) -> None:
        """Called by the simulator after each heap push."""
        self.pushes += 1
        if depth > self.max_depth:
            self.max_depth = depth

    # -- wall clock -------------------------------------------------------
    def start(self) -> None:
        self._t_start = perf_counter_ns()
        self._mark = self._t_start

    def stop(self) -> None:
        self._t_stop = perf_counter_ns()

    @contextmanager
    def profile(self, root: str = "run"):
        """Wrap the profiled extent: starts the wall clock and opens the
        ``run`` root region so region self-times partition wall time."""
        self.start()
        self.enter(root)
        try:
            yield self
        finally:
            self.exit()
            self.stop()

    @property
    def wall_ns(self) -> int:
        if self._t_start is None:
            # never profiled: the attributed time is all we know about
            return sum(self._self_ns.values())
        stop = (self._t_stop if self._t_stop is not None
                else perf_counter_ns())
        return stop - self._t_start

    @property
    def wall_s(self) -> float:
        return self.wall_ns / 1e9

    # -- derived ----------------------------------------------------------
    @property
    def sim_cycles(self) -> float:
        return self.sim_ns / self.clock_ns

    @property
    def coverage(self) -> float:
        """Fraction of measured wall-time attributed to some region."""
        wall = self.wall_ns
        if wall <= 0:
            return 1.0
        return min(sum(self._self_ns.values()) / wall, 1.0)

    @property
    def mean_depth(self) -> float:
        return self.depth_sum / self.events if self.events else 0.0

    # -- reporting ---------------------------------------------------------
    def to_dict(self, top: int = 10) -> Dict:
        wall_s = self.wall_s
        regions = {}
        order = [r for r in REGIONS if r in self._self_ns] \
            + [r for r in self._self_ns if r not in REGIONS]
        for name in order:
            self_ns = self._self_ns.get(name, 0)
            regions[name] = {
                "self_s": round(self_ns / 1e9, 6),
                "cumulative_s": round(self._cum_ns.get(name, 0) / 1e9, 6),
                "enters": self._enters.get(name, 0),
                "share": round(self_ns / max(self.wall_ns, 1), 4),
            }
        doc = {
            "schema_version": SCHEMA_VERSION,
            "detail": self.detail,
            "clock_ns": self.clock_ns,
            "wall_s": round(wall_s, 6),
            "regions": regions,
            "coverage": round(self.coverage, 4),
            "throughput": {
                "sim_ns": round(self.sim_ns, 1),
                "sim_mcycles": round(self.sim_cycles / 1e6, 4),
                "events": self.events,
                "sim_mcycles_per_s": round(
                    self.sim_cycles / 1e6 / wall_s, 4) if wall_s > 0 else 0.0,
                "events_per_s": round(
                    self.events / wall_s, 1) if wall_s > 0 else 0.0,
            },
            "event_heap": {
                "pushes": self.pushes,
                "pops": self.events,
                "max_depth": self.max_depth,
                "mean_depth": round(self.mean_depth, 2),
            },
            "processes": self.processes,
            "simulators": self.simulators,
        }
        return doc

    def render(self, title: str = "hostscope", top: int = 10,
               width: int = 36) -> str:
        doc = self.to_dict(top=top)
        parts = [f"== {title} =="]
        if not self.detail:
            parts.append("(light mode: counters only, no region timing)")
        regions = doc["regions"]
        if regions:
            rt = Table(
                f"host-time attribution (wall {doc['wall_s']:.3f} s, "
                f"coverage {doc['coverage']:.1%})",
                ["region", "self s", "cum s", "enters", "share", ""])
            ranked = sorted(regions.items(),
                            key=lambda kv: -kv[1]["self_s"])[:top]
            for name, row in ranked:
                bar = "#" * max(int(round(row["share"] * width)),
                                1 if row["self_s"] > 0 else 0)
                rt.add_row(name, f"{row['self_s']:.4f}",
                           f"{row['cumulative_s']:.4f}", row["enters"],
                           f"{row['share']:.1%}", bar)
            parts.append(rt.render())
        if self.events:
            tp = doc["throughput"]
            heap = doc["event_heap"]
            tt = Table("simulator throughput (host-clock)",
                       ["metric", "value"])
            tt.add_row("simulated Mcycles", f"{tp['sim_mcycles']:.3f}")
            tt.add_row("events dispatched", tp["events"])
            tt.add_row("sim Mcycles / host s", f"{tp['sim_mcycles_per_s']:.3f}")
            tt.add_row("events / host s", f"{tp['events_per_s']:.0f}")
            tt.add_row("heap pushes", heap["pushes"])
            tt.add_row("heap max depth", heap["max_depth"])
            tt.add_row("heap mean depth", f"{heap['mean_depth']:.1f}")
            tt.add_row("processes created", doc["processes"])
            tt.add_row("simulators", doc["simulators"])
            parts.append(tt.render())
        else:
            parts.append(
                "no simulator activity was recorded (analytic model-level "
                "experiment); host time above is the analytic model and "
                "report assembly itself")
        return "\n\n".join(parts)


# -- ambient installation ---------------------------------------------------

_ACTIVE: List[HostScope] = []


def active_hostscope() -> Optional[HostScope]:
    """The innermost installed profiler, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_hostscope(scope: HostScope):
    """Install ``scope`` so simulators built inside the block adopt it."""
    _ACTIVE.append(scope)
    try:
        yield scope
    finally:
        _ACTIVE.pop()


def host_region(hs: Optional[HostScope], name: str):
    """A ``with``-context attributing the block's host time to ``name``.

    Returns a shared null context when ``hs`` is None or in light mode,
    so library code can bracket pure-Python sections unconditionally.
    """
    if hs is None or not hs.detail:
        return _NULL_CTX
    return _Region(hs, name)


# -- trace-based summaries --------------------------------------------------

def hostscope_from_trace(events: List[Dict]) -> Dict:
    """A coarse event-census from a saved ``--trace`` file.

    A Chrome trace records *simulated* time, not host time — host-time
    attribution needs a live run (``python -m repro hostscope <exp>``).
    This summary still answers "what would the profiler see": event
    counts by phase and category, span names, and the simulated span.
    """
    by_phase: Dict[str, int] = {}
    by_cat: Dict[str, int] = {}
    t_min, t_max = None, None
    for ev in events:
        ph = str(ev.get("ph", "?"))
        by_phase[ph] = by_phase.get(ph, 0) + 1
        cat = str(ev.get("cat", "?"))
        by_cat[cat] = by_cat.get(cat, 0) + 1
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            t_min = ts if t_min is None else min(t_min, ts)
            t_max = ts if t_max is None else max(t_max, ts)
    return {
        "schema_version": SCHEMA_VERSION,
        "source": "trace",
        "events": len(events),
        "events_by_phase": dict(sorted(by_phase.items())),
        "events_by_category": dict(sorted(by_cat.items())),
        "simulated_span_us": (round(t_max - t_min, 3)
                              if t_min is not None else 0.0),
    }


def render_trace_summary(doc: Dict, title: str = "hostscope") -> str:
    """Human tables for a :func:`hostscope_from_trace` document."""
    parts = [f"== hostscope (from trace): {title} =="]
    ct = Table("trace event census",
               ["category", "events"])
    for cat, n in sorted(doc["events_by_category"].items(),
                         key=lambda kv: -kv[1]):
        ct.add_row(cat, n)
    ct.add_row("TOTAL", doc["events"])
    parts.append(ct.render())
    parts.append(f"simulated span: {doc['simulated_span_us']:.1f} us "
                 f"({doc['events']} trace events)")
    parts.append("note: a trace records simulated time; host-time "
                 "attribution and throughput need a live run "
                 "(python -m repro hostscope <experiment>)")
    return "\n\n".join(parts)
