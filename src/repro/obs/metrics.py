"""Per-run metrics manifests (``metrics.json``).

A manifest is the machine-readable record of one experiment run:
headline data (the numbers the paper's table/figure reports), per-phase
span statistics with attributed counter deltas, global protocol
counters, imbalance factors, and the instrumentation-overhead
accounting of §4 (how many timestamps were read, what they cost, and
the tracer's own simulated-time cost — zero by construction).

Manifests from two runs diff cleanly with any JSON tool, which is the
workflow the paper's authors used hpm for: "the Fig 7 dip at 9 CPUs is
X extra remote misses".
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..core.config import MachineConfig
from ..sim.trace import Tracer

__all__ = ["SCHEMA_VERSION", "span_summary", "build_manifest",
           "provenance_stamp", "write_metrics"]

SCHEMA_VERSION = 1


def provenance_stamp() -> Dict:
    """Host-side provenance tying a manifest to a commit and a source tree.

    Wall-clock creation time (ISO 8601, UTC), the git HEAD of the tree
    containing the package (None when not in a git checkout), whether
    that checkout was dirty (uncommitted changes — a noisy dev-tree
    run, not a clean CI one), and the package code fingerprint — the
    same hash the result cache keys on — so observatory diffs can say
    *which code* produced *which numbers*.
    """
    from datetime import datetime, timezone

    from ..exec.fingerprint import code_fingerprint, git_dirty, git_sha

    return {
        "created_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "code_fingerprint": code_fingerprint()[:16],
    }


def _jsonable(obj):
    """Recursively coerce ``obj`` into plain JSON-serializable types."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "tolist"):  # numpy scalar or array
        return obj.tolist()
    return str(obj)


def span_summary(tracer: Tracer) -> Dict[str, Dict]:
    """Aggregate closed/complete spans by name.

    Per span name: occurrence count, total/mean/max/min duration, the
    cross-track imbalance factor (max track total / mean track total —
    the CXpa statistic), summed counter deltas, and summed ``*_ns``
    breakdown components (the perfmodel's pipe/stall/message split).
    """
    out: Dict[str, Dict] = {}
    tracks: Dict[str, Dict[tuple, float]] = {}
    for ev in tracer.spans():
        dur = ev.dur if ev.ph == "X" else ev.args.get("dur_ns", 0.0)
        s = out.setdefault(ev.name, {
            "count": 0, "total_ns": 0.0, "max_ns": 0.0,
            "min_ns": float("inf"), "counters": {}, "breakdown_ns": {},
        })
        s["count"] += 1
        s["total_ns"] += dur
        s["max_ns"] = max(s["max_ns"], dur)
        s["min_ns"] = min(s["min_ns"], dur)
        per_track = tracks.setdefault(ev.name, {})
        key = (ev.pid, ev.tid)
        per_track[key] = per_track.get(key, 0.0) + dur
        for k, v in ev.args.get("counters", {}).items():
            s["counters"][k] = s["counters"].get(k, 0) + v
        for k, v in ev.args.items():
            if k.endswith("_ns") and k != "dur_ns" \
                    and isinstance(v, (int, float)):
                s["breakdown_ns"][k] = s["breakdown_ns"].get(k, 0.0) + v
    for name, s in out.items():
        s["mean_ns"] = s["total_ns"] / s["count"]
        if s["min_ns"] == float("inf"):
            s["min_ns"] = 0.0
        totals = list(tracks[name].values())
        mean = sum(totals) / len(totals)
        s["tracks"] = len(totals)
        s["imbalance"] = (max(totals) / mean) if mean > 0 else 1.0
        if not s["counters"]:
            del s["counters"]
        if not s["breakdown_ns"]:
            del s["breakdown_ns"]
    return out


def build_manifest(result=None, *, tracer: Optional[Tracer] = None,
                   config: Optional[MachineConfig] = None,
                   phases: Optional[List[Dict]] = None,
                   execution: Optional[Dict] = None,
                   memscope=None, critscope=None, hostscope=None,
                   extra: Optional[Dict] = None) -> Dict:
    """Assemble a ``metrics.json`` manifest.

    ``result`` is an :class:`~repro.experiments.base.ExperimentResult`
    (or None for ad-hoc runs); ``phases`` is an optional list of
    per-phase hpm rows from :class:`~repro.obs.phases.PhaseAttributor`;
    ``execution`` is an :class:`~repro.exec.ExecutionReport` dict (jobs,
    cache hits, units) recorded when the run went through the execution
    fabric; ``critscope`` (a :class:`~repro.obs.critscope.CritScope` or
    its ``to_dict()``) folds the wait-state / critical-path analysis in;
    ``memscope`` is a :class:`~repro.obs.memscope.MemScope` (or
    its ``to_dict()``) when the memory profiler observed the run;
    ``hostscope`` (a :class:`~repro.obs.hostscope.HostScope` or its
    ``to_dict()``) folds in the host-time attribution and throughput
    accounting.  Every manifest is stamped with
    :func:`provenance_stamp`.
    """
    manifest: Dict = {"schema_version": SCHEMA_VERSION,
                      "generator": "repro.obs",
                      "provenance": provenance_stamp()}
    if result is not None:
        manifest["experiment"] = {"id": result.experiment_id,
                                  "title": result.title}
        manifest["headline"] = _jsonable(result.data)
        if result.notes:
            manifest["notes"] = result.notes
    if config is not None:
        from ..core.canon import config_dict, stable_hash

        manifest["machine"] = {
            "n_hypernodes": config.n_hypernodes,
            "n_cpus": config.n_cpus,
            "clock_ns": config.clock_ns,
            "dcache_bytes": config.dcache_bytes,
            # full canonical parameter set, hashed the same way the
            # result cache keys it (see docs/execution.md)
            "config_hash": stable_hash(config_dict(config), length=16),
            "config": _jsonable(config_dict(config)),
        }
    if tracer is not None:
        manifest["counters"] = _jsonable(tracer.counters)
        manifest["phases"] = _jsonable(span_summary(tracer))
        timer_reads = tracer.count("timer.read")
        overhead_ns = (timer_reads * config.cycles(
            config.timer_overhead_cycles) if config is not None else None)
        manifest["instrumentation"] = {
            # §4 correction: explicit clock reads are the only simulated
            # intrusion; the tracer itself costs zero simulated time.
            "timer_reads": timer_reads,
            "timer_overhead_total_ns": overhead_ns,
            "tracer_simulated_cost_ns": 0.0,
            "events": len(tracer.events),
            "records": len(tracer.records),
        }
    if phases:
        manifest["hpm_phases"] = _jsonable(phases)
    if execution:
        manifest["execution"] = _jsonable(execution)
    if memscope is not None:
        block = memscope if isinstance(memscope, dict) \
            else memscope.to_dict()
        manifest["memscope"] = _jsonable(block)
    if critscope is not None:
        block = critscope if isinstance(critscope, dict) \
            else critscope.to_dict()
        manifest["critscope"] = _jsonable(block)
    if hostscope is not None:
        block = hostscope if isinstance(hostscope, dict) \
            else hostscope.to_dict()
        manifest["hostscope"] = _jsonable(block)
    if extra:
        manifest.update(_jsonable(extra))
    return manifest


def write_metrics(manifest: Dict, path: str) -> None:
    """Write a manifest to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=False)
        fh.write("\n")
