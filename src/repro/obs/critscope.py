"""Critical-path & wait-state analyzer (causal time decomposition).

The paper's central analyses (§4–§5) are wait-time stories: the per-thread
fork-join slope of Figure 2, the linear last-in/last-out barrier-release
term of §4.2, the message-passing knees of Figure 5, and the application
efficiency roll-off of Figures 6–8 all come down to *which waits bound the
run*.  :class:`CritScope` is the instrument that answers that question for
the simulated machine:

* every simulated cycle of every thread is classified into one of
  :data:`CATEGORIES` — compute, fork/join, barrier-arrive-wait,
  barrier-release, lock/contention, message-send, message-recv-wait,
  memory-stall, and idle (the unattributed remainder, so per-thread
  category cycles sum *exactly* to the thread's total simulated cycles);
* cross-thread dependencies are recorded as a graph: fork edges
  (parent → child at spawn time), and wait-resolution edges (the store /
  fetch&add that released a spinning waiter — barrier releases, lock
  hand-offs, PVM mail-flag notifies);
* the **critical path** is extracted by walking that graph backwards from
  the last-finishing thread, attributing each span of the path to its
  category — the decomposition Coz-style causal profilers use;
* **what-if projections** estimate the run-time effect of speeding one
  category up by a factor ("if barrier release were 2× faster, total time
  −X%"), validated against actual re-runs with the corresponding
  :mod:`repro.core.config` cost parameters scaled
  (:func:`scaled_config`).

Zero-cost contract (same as the tracer, fault layer and memscope): with no
analyzer installed every emission point costs exactly one ``is None``
check, and an installed analyzer never advances simulated time — results
and final simulated clocks are bit-identical with the analyzer on or off
(asserted by tests).  Install via :func:`use_critscope`;
:class:`~repro.machine.system.Machine` adopts the ambient instance and
each machine gets its own :class:`CritRun` recorder (experiments that
build several machines — e.g. fig2's repeats — produce several runs; the
analysis picks the longest for the path and aggregates categories over
all of them).
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..core.tables import Table

__all__ = ["CATEGORIES", "CritScope", "CritRun", "active_critscope",
           "use_critscope", "scaled_config", "WHAT_IF_PARAMS",
           "critscope_from_trace", "render_trace_summary"]

SCHEMA_VERSION = 1

#: the wait-state taxonomy; ``idle`` is always the exact remainder
CATEGORIES = ("compute", "forkjoin", "barrier_wait", "barrier_release",
              "lock", "msg_send", "msg_recv", "memory", "idle")

#: one-character glyphs for the per-thread ASCII wait-state timeline
_GLYPHS = {"compute": "#", "forkjoin": "F", "barrier_wait": "b",
           "barrier_release": "B", "lock": "L", "msg_send": "s",
           "msg_recv": "r", "memory": "m", "idle": "."}

#: category -> the MachineConfig cost knobs an actual re-run would scale
#: to realise the projected speedup (the validation protocol of
#: docs/critpath.md)
WHAT_IF_PARAMS = {
    "barrier_release": ("barrier_release_per_thread_cycles",
                        "remote_release_extra_cycles"),
    "barrier_wait": ("barrier_entry_cycles", "spin_wakeup_cycles"),
    "forkjoin": ("spawn_local_cycles", "spawn_remote_extra_cycles",
                 "cross_node_setup_cycles", "join_per_thread_cycles"),
    "msg_send": ("pvm_send_overhead_cycles",),
    "msg_recv": ("pvm_recv_overhead_cycles",),
}

_EPS = 1e-9


def scaled_config(config, category: str, factor: float):
    """``config`` with ``category``'s cost knobs divided by ``factor``.

    This is the re-run half of the what-if validation protocol: project
    with :meth:`CritScope.what_if`, then actually re-run under the scaled
    config and compare totals.
    """
    try:
        fields = WHAT_IF_PARAMS[category]
    except KeyError:
        known = ", ".join(sorted(WHAT_IF_PARAMS))
        raise KeyError(
            f"no config parameters map to category {category!r}; "
            f"scalable categories: {known}") from None
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    return config.with_(**{f: getattr(config, f) / factor for f in fields})


class _ThreadRec:
    """Per-thread record: lifetime, attributed segments, fork parentage."""

    __slots__ = ("tid", "cpu", "hypernode", "start", "end", "segs",
                 "parent")

    def __init__(self, tid: int, cpu: int, hypernode: int, start: float,
                 parent: Optional[int]):
        self.tid = tid
        self.cpu = cpu
        self.hypernode = hypernode
        self.start = start
        self.end: Optional[float] = None
        #: [t0, t1, category, wait_addr|None, resolver (tid, t)|None]
        self.segs: List[list] = []
        self.parent = parent

    def close_time(self) -> float:
        if self.end is not None:
            return self.end
        return self.segs[-1][1] if self.segs else self.start


class CritRun:
    """Recorder for one machine's threads (one :class:`Machine` = one run).

    All methods are emission points on the simulation hot path: they only
    append to lists / update a dict, and never advance simulated time.
    """

    __slots__ = ("index", "threads", "_last_write", "teams")

    def __init__(self, index: int):
        self.index = index
        self.threads: Dict[int, _ThreadRec] = {}
        #: addr -> (writer tid, write start time); looked up when a wait
        #: completes to resolve who released it
        self._last_write: Dict[int, Tuple[int, float]] = {}
        #: fork teams: (parent tid, n_threads, {hn: threads}, placement)
        self.teams: List[Tuple[int, int, Dict[int, int], str]] = []

    # -- thread lifecycle ------------------------------------------------
    def thread_begin(self, tid: int, cpu: int, hypernode: int, t: float,
                     parent: Optional[int] = None) -> None:
        self.threads[tid] = _ThreadRec(tid, cpu, hypernode, t, parent)

    def thread_end(self, tid: int, t: float) -> None:
        rec = self.threads.get(tid)
        if rec is not None:
            rec.end = t

    def team(self, parent_tid: int, n_threads: int,
             geometry: Dict[int, int], placement: str) -> None:
        self.teams.append((parent_tid, n_threads, geometry, placement))

    # -- segments --------------------------------------------------------
    def segment(self, tid: int, t0: float, t1: float, cat: str) -> None:
        if t1 <= t0:
            return
        rec = self.threads.get(tid)
        if rec is not None:
            rec.segs.append([t0, t1, cat, None, None])

    def wait(self, tid: int, t0: float, t1: float, cat: str,
             addr: int) -> None:
        if t1 <= t0:
            return
        rec = self.threads.get(tid)
        if rec is not None:
            rec.segs.append([t0, t1, cat, addr, self._last_write.get(addr)])

    def note_write(self, addr: int, tid: int, t: float) -> None:
        """Record a write *start* — causally before any waiter it wakes."""
        self._last_write[addr] = (tid, t)

    # -- derived ---------------------------------------------------------
    @property
    def makespan(self) -> float:
        if not self.threads:
            return 0.0
        start = min(rec.start for rec in self.threads.values())
        end = max(rec.close_time() for rec in self.threads.values())
        return end - start


class CritScope:
    """Aggregating analyzer over one or more :class:`CritRun` recorders."""

    def __init__(self, config=None):
        self.config = config
        self.runs: List[CritRun] = []

    # -- wiring ----------------------------------------------------------
    def new_run(self, machine=None) -> CritRun:
        """A fresh per-machine recorder (called by ``Machine.__init__``)."""
        run = CritRun(len(self.runs))
        if self.config is None and machine is not None:
            self.config = machine.config
        self.runs.append(run)
        return run

    @property
    def clock_ns(self) -> float:
        return self.config.clock_ns if self.config is not None else 10.0

    def run_of_interest(self) -> Optional[CritRun]:
        """The run with the longest makespan (where the story is)."""
        populated = [r for r in self.runs if r.threads]
        if not populated:
            return None
        return max(populated, key=lambda r: r.makespan)

    # -- per-thread attribution -----------------------------------------
    def thread_totals(self, run: Optional[CritRun] = None) -> List[Dict]:
        """Per-thread category nanoseconds; sums are exact by construction.

        ``idle`` is defined as the thread's lifetime minus every
        attributed segment, so ``sum(categories) == end - start`` holds
        to float identity for every thread.
        """
        run = run or self.run_of_interest()
        if run is None:
            return []
        rows = []
        for tid in sorted(run.threads):
            rec = run.threads[tid]
            end = rec.close_time()
            cats = {c: 0.0 for c in CATEGORIES}
            attributed = 0.0
            for t0, t1, cat, _addr, _res in rec.segs:
                cats[cat] += t1 - t0
                attributed += t1 - t0
            cats["idle"] = (end - rec.start) - attributed
            rows.append({"tid": tid, "cpu": rec.cpu,
                         "hypernode": rec.hypernode,
                         "start_ns": rec.start, "end_ns": end,
                         "total_ns": end - rec.start,
                         "categories_ns": cats})
        return rows

    def aggregate_totals(self) -> Dict[str, float]:
        """Category nanoseconds summed over every thread of every run."""
        totals = {c: 0.0 for c in CATEGORIES}
        for run in self.runs:
            if not run.threads:
                continue
            for row in self.thread_totals(run):
                for cat, ns in row["categories_ns"].items():
                    totals[cat] += ns
        return totals

    # -- the critical path ----------------------------------------------
    def critical_path(self, run: Optional[CritRun] = None) -> Dict:
        """Walk backwards from the last-finishing thread.

        At each point in time the walk sits on one thread.  Inside a
        *wait* segment whose resolver is another thread, the wake
        interval is attributed to the wait's category and the walk jumps
        to the resolving thread at the write's start time (the causal
        dependency).  Inside any other segment the whole span is
        attributed to its category.  Gaps between segments are idle; a
        thread's creation jumps to its forking parent.  The attributed
        spans partition the makespan exactly.
        """
        run = run or self.run_of_interest()
        if run is None or not run.threads:
            return {"total_ns": 0.0, "steps": [],
                    "categories_ns": {c: 0.0 for c in CATEGORIES},
                    "run_index": None, "end_tid": None}
        threads = run.threads
        # per-thread segment start times for bisection (appended in
        # completion order; within one thread segments never overlap)
        seg_t0: Dict[int, List[float]] = {
            tid: [s[0] for s in rec.segs] for tid, rec in threads.items()}
        origin = min(rec.start for rec in threads.values())
        end_tid = max(threads, key=lambda t: threads[t].close_time())
        cursor = threads[end_tid].close_time()
        tid = end_tid
        cats = {c: 0.0 for c in CATEGORIES}
        steps: List[Dict] = []
        budget = sum(len(rec.segs) for rec in threads.values()) * 4 + 64

        def attribute(cat: str, t0: float, t1: float) -> None:
            if t1 - t0 > _EPS:
                cats[cat] += t1 - t0
                steps.append({"tid": tid, "t0_ns": t0, "t1_ns": t1,
                              "category": cat})

        while cursor - origin > _EPS and budget > 0:
            budget -= 1
            rec = threads[tid]
            i = bisect_right(seg_t0[tid], cursor - _EPS) - 1
            seg = rec.segs[i] if i >= 0 else None
            if seg is None:
                # before the thread's first segment: idle back to its
                # start, then follow the fork edge to the parent
                attribute("idle", rec.start, cursor)
                cursor = rec.start
                if rec.parent is not None and rec.parent in threads:
                    tid = rec.parent
                    continue
                break
            t0, t1, cat, addr, resolver = seg
            if t1 < cursor - _EPS:
                # gap after the segment: the thread was idle
                attribute("idle", t1, cursor)
                cursor = t1
                continue
            if addr is not None and resolver is not None:
                r_tid, r_t = resolver
                if r_tid != tid and r_tid in threads:
                    jump_t = max(r_t, t0)
                    if jump_t < cursor - _EPS:
                        # the wake interval belongs to the wait category;
                        # causally, the releaser's write bounds the run
                        attribute(cat, jump_t, cursor)
                        tid, cursor = r_tid, jump_t
                        continue
            attribute(cat, t0, cursor)
            cursor = t0
            if cursor - rec.start <= _EPS and rec.parent is not None \
                    and rec.parent in threads:
                tid = rec.parent
        total = threads[end_tid].close_time() - origin
        return {"total_ns": total, "categories_ns": cats,
                "steps": steps, "run_index": run.index,
                "end_tid": end_tid}

    # -- what-if projections --------------------------------------------
    def what_if(self, category: str, factor: float,
                run: Optional[CritRun] = None) -> Dict:
        """Coz-style projection: ``category`` sped up by ``factor``.

        Every nanosecond of the critical path attributed to the category
        shrinks by ``1 - 1/factor``; time off the critical path is
        (first-order) hidden behind it and does not move the total.
        """
        if category not in CATEGORIES:
            known = ", ".join(CATEGORIES)
            raise KeyError(f"unknown category {category!r}; one of: {known}")
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        cp = self.critical_path(run)
        on_path = cp["categories_ns"].get(category, 0.0)
        saved = on_path * (1.0 - 1.0 / factor)
        projected = cp["total_ns"] - saved
        return {"category": category, "factor": factor,
                "critical_path_ns": on_path,
                "total_ns": cp["total_ns"],
                "savings_ns": saved,
                "projected_total_ns": projected,
                "projected_speedup": (cp["total_ns"] / projected
                                      if projected > _EPS else float("inf"))}

    # -- reporting -------------------------------------------------------
    def to_dict(self, top: int = 10,
                what_if: Optional[List[Tuple[str, float]]] = None) -> Dict:
        run = self.run_of_interest()
        clock = self.clock_ns
        cp = self.critical_path(run)
        threads = self.thread_totals(run)
        aggregate = self.aggregate_totals()
        longest = sorted(cp["steps"],
                         key=lambda s: s["t1_ns"] - s["t0_ns"],
                         reverse=True)[:top]
        projections = []
        targets = what_if if what_if is not None else [
            (cat, 2.0) for cat in CATEGORIES
            if cat != "idle" and cp["categories_ns"].get(cat, 0.0) > 0.0]
        for category, factor in targets:
            projections.append(self.what_if(category, factor, run))
        return {
            "schema_version": SCHEMA_VERSION,
            "clock_ns": clock,
            "runs": len(self.runs),
            "run_of_interest": run.index if run is not None else None,
            "threads": [
                {"tid": row["tid"], "cpu": row["cpu"],
                 "hypernode": row["hypernode"],
                 "total_cycles": row["total_ns"] / clock,
                 "categories_cycles": {
                     c: ns / clock
                     for c, ns in row["categories_ns"].items()}}
                for row in threads],
            "teams": ([{"parent_tid": p, "n_threads": n,
                        "hypernodes": len(g),
                        "threads_per_hypernode": dict(g),
                        "placement": pl}
                       for p, n, g, pl in run.teams]
                      if run is not None else []),
            "aggregate_cycles": {c: ns / clock
                                 for c, ns in aggregate.items()},
            "critical_path": {
                "total_us": cp["total_ns"] / 1e3,
                "end_tid": cp["end_tid"],
                "categories_us": {c: ns / 1e3
                                  for c, ns in cp["categories_ns"].items()},
                "steps": len(cp["steps"]),
                "longest_steps": [
                    {"tid": s["tid"], "category": s["category"],
                     "t0_us": s["t0_ns"] / 1e3,
                     "dur_us": (s["t1_ns"] - s["t0_ns"]) / 1e3}
                    for s in longest],
            },
            "what_if": [
                {"category": p["category"], "factor": p["factor"],
                 "critical_path_us": p["critical_path_ns"] / 1e3,
                 "projected_total_us": p["projected_total_ns"] / 1e3,
                 "savings_us": p["savings_ns"] / 1e3,
                 "projected_speedup": p["projected_speedup"]}
                for p in projections],
        }

    def render_timeline(self, run: Optional[CritRun] = None,
                        width: int = 64) -> str:
        """Per-thread ASCII wait-state timeline (dominant category/bucket)."""
        run = run or self.run_of_interest()
        if run is None or not run.threads:
            return "(no threads recorded)"
        origin = min(rec.start for rec in run.threads.values())
        end = max(rec.close_time() for rec in run.threads.values())
        span = max(end - origin, _EPS)
        bucket = span / width
        lines = [f"wait states, run {run.index} "
                 f"({origin / 1e3:.1f} .. {end / 1e3:.1f} us, "
                 f"one column = {bucket / 1e3:.2f} us)"]
        for tid in sorted(run.threads):
            rec = run.threads[tid]
            weights = [dict() for _ in range(width)]
            for t0, t1, cat, _addr, _res in rec.segs:
                first = int((t0 - origin) / bucket)
                last = min(int((t1 - origin - _EPS) / bucket), width - 1)
                for b in range(max(first, 0), last + 1):
                    b0 = origin + b * bucket
                    overlap = min(t1, b0 + bucket) - max(t0, b0)
                    if overlap > 0:
                        weights[b][cat] = weights[b].get(cat, 0) + overlap
            close = rec.close_time()
            row = []
            for b in range(width):
                b0 = origin + b * bucket
                if b0 + bucket <= rec.start + _EPS or b0 >= close - _EPS:
                    row.append(" ")      # before birth / after death
                elif weights[b]:
                    cat = max(weights[b], key=weights[b].get)
                    row.append(_GLYPHS[cat])
                else:
                    row.append(_GLYPHS["idle"])
            lines.append(f"  t{tid:02d} hn{rec.hypernode}/cpu{rec.cpu:<3d} "
                         f"|{''.join(row)}|")
        legend = "  ".join(f"{_GLYPHS[c]}={c}" for c in CATEGORIES)
        lines.append(f"  legend: {legend}")
        return "\n".join(lines)

    def render(self, title: str = "critscope", top: int = 10,
               what_if: Optional[List[Tuple[str, float]]] = None) -> str:
        doc = self.to_dict(top=top, what_if=what_if)
        parts = [f"== {title} =="]
        if not doc["threads"]:
            parts.append(
                "no machine-level thread activity was recorded; critscope "
                "needs an experiment that runs the simulated machine "
                "(e.g. fig2, fig3, fig4, contention, memclass)")
            return "\n\n".join(parts)
        clock = doc["clock_ns"]
        tt = Table(
            f"per-thread cycle attribution (run {doc['run_of_interest']} "
            f"of {doc['runs']}, us)",
            ["thread", "cpu", "hn", "total"] +
            [c for c in CATEGORIES])
        for row in doc["threads"]:
            cats = row["categories_cycles"]
            tt.add_row(f"t{row['tid']}", row["cpu"], row["hypernode"],
                       f"{row['total_cycles'] * clock / 1e3:.1f}",
                       *(f"{cats[c] * clock / 1e3:.1f}"
                         for c in CATEGORIES))
        parts.append(tt.render())
        parts.append(self.render_timeline())
        cp = doc["critical_path"]
        pt = Table(f"critical path (ends on t{cp['end_tid']}, "
                   f"{cp['steps']} spans)",
                   ["category", "on-path us", "share"])
        total = max(cp["total_us"], _EPS)
        for cat in CATEGORIES:
            us = cp["categories_us"][cat]
            if us > 0:
                pt.add_row(cat, f"{us:.1f}", f"{us / total:.1%}")
        pt.add_row("TOTAL", f"{cp['total_us']:.1f}", "100.0%")
        parts.append(pt.render())
        if doc["what_if"]:
            wt = Table("what-if projections (critical-path scaling)",
                       ["category", "factor", "on-path us",
                        "projected us", "saved us", "speedup"])
            for p in doc["what_if"]:
                wt.add_row(p["category"], f"{p['factor']:g}x",
                           f"{p['critical_path_us']:.1f}",
                           f"{p['projected_total_us']:.1f}",
                           f"{p['savings_us']:.1f}",
                           f"{p['projected_speedup']:.3f}x")
            parts.append(wt.render())
        return "\n\n".join(parts)


# -- ambient installation ---------------------------------------------------

_ACTIVE: List[CritScope] = []


def active_critscope() -> Optional[CritScope]:
    """The innermost installed analyzer, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_critscope(scope: CritScope):
    """Install ``scope`` so machines built inside the block report into it."""
    _ACTIVE.append(scope)
    try:
        yield scope
    finally:
        _ACTIVE.pop()


# -- trace-based summaries --------------------------------------------------

#: structured-span name -> wait-state category (coarse, for saved traces)
_TRACE_SPAN_CATS = {"fork_join": "forkjoin", "pvm.send": "msg_send",
                    "pvm.pack": "msg_send", "pvm.recv": "msg_recv"}

#: instant names that mark synchronisation activity in a saved trace
_TRACE_MARKERS = ("barrier.arrive", "barrier.open", "barrier.release",
                  "lock.acquire", "lock.release", "thread.spawn",
                  "pvm.post", "pvm.retry")


def critscope_from_trace(events: List[Dict]) -> Dict:
    """A coarse wait-state summary from a saved ``--trace`` file.

    Chrome traces carry begin/end spans (``ph`` B/E, ``ts`` in
    microseconds) and instants; the cycle-exact per-thread attribution
    and the dependency graph are not recoverable from a trace — run
    ``critscope <experiment>`` live for those.
    """
    span_us: Dict[str, float] = {}
    span_count: Dict[str, int] = {}
    markers: Dict[str, int] = {}
    open_spans: Dict[Tuple, float] = {}
    for ev in events:
        name = ev.get("name", "")
        ph = ev.get("ph")
        key = (name, ev.get("pid"), ev.get("tid"))
        if ph == "B":
            open_spans[key] = float(ev.get("ts", 0.0))
        elif ph == "E":
            t0 = open_spans.pop(key, None)
            if t0 is not None:
                span_us[name] = span_us.get(name, 0.0) \
                    + float(ev.get("ts", 0.0)) - t0
                span_count[name] = span_count.get(name, 0) + 1
        elif ph == "X":
            span_us[name] = span_us.get(name, 0.0) \
                + float(ev.get("dur", 0.0))
            span_count[name] = span_count.get(name, 0) + 1
        elif ph in ("i", "I") and (name in _TRACE_MARKERS
                                   or name.startswith("pvm.collective.")):
            markers[name] = markers.get(name, 0) + 1
    categories_us = {}
    for name, us in span_us.items():
        cat = _TRACE_SPAN_CATS.get(name)
        if cat is not None:
            categories_us[cat] = categories_us.get(cat, 0.0) + us
    return {
        "schema_version": SCHEMA_VERSION,
        "source": "trace",
        "spans_us": {n: round(us, 3) for n, us in sorted(span_us.items())},
        "span_counts": span_count,
        "categories_us": {c: round(us, 3)
                          for c, us in sorted(categories_us.items())},
        "sync_markers": markers,
    }


def render_trace_summary(doc: Dict, title: str = "critscope") -> str:
    """Human tables for a :func:`critscope_from_trace` document."""
    parts = [f"== critscope (from trace): {title} =="]
    if doc["spans_us"]:
        st = Table("span time by name", ["span", "count", "total us"])
        for name, us in sorted(doc["spans_us"].items(),
                               key=lambda kv: -kv[1]):
            st.add_row(name, doc["span_counts"].get(name, 0), f"{us:.1f}")
        parts.append(st.render())
    if doc["categories_us"]:
        ct = Table("coarse wait-state categories", ["category", "total us"])
        for cat, us in sorted(doc["categories_us"].items(),
                              key=lambda kv: -kv[1]):
            ct.add_row(cat, f"{us:.1f}")
        parts.append(ct.render())
    if doc["sync_markers"]:
        mt = Table("synchronisation markers", ["marker", "count"])
        for name in sorted(doc["sync_markers"]):
            mt.add_row(name, doc["sync_markers"][name])
        parts.append(mt.render())
    if len(parts) == 1:
        parts.append("trace contains no runtime/pvm span or sync events; "
                     "capture one with --trace on a machine-level "
                     "experiment, or run critscope <experiment> live")
    parts.append("note: per-cycle attribution and the cross-thread "
                 "dependency graph need a live run "
                 "(python -m repro critscope <experiment>)")
    return "\n\n".join(parts)
