"""Automatic per-phase hpm counter attribution.

The paper's authors bracketed code regions with hardware-counter reads
and attributed the deltas to phases ("cache miss enumeration and
timing", §6).  :class:`PhaseAttributor` does that mechanically: each
``with attributor.phase("name")`` block snapshots every machine counter
(:func:`repro.tools.hpm.collect`) at entry and exit and keeps the
:func:`repro.tools.hpm.diff` delta, so a report can say *"the Fig 7 dip
at 9 CPUs is N extra remote misses"* instead of guessing.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.tables import Table
from ..sim.trace import Tracer
from ..tools import hpm

__all__ = ["PhaseCounters", "PhaseAttributor"]


@dataclass(frozen=True)
class PhaseCounters:
    """One phase's interval: elapsed time plus every counter delta."""

    name: str
    delta: hpm.HpmSnapshot     #: counter deltas over the phase

    @property
    def elapsed_ns(self) -> float:
        return self.delta.time_ns

    def headline(self) -> Dict[str, float]:
        """The counters optimisation work looks at first."""
        d = self.delta
        return {
            "elapsed_ns": d.time_ns,
            "cache_misses": d.total("cache_misses"),
            "remote_misses": d.events.get("load.miss.remote", 0),
            "gcb_hits": d.events.get("load.miss.gcb", 0),
            "tlb_misses": d.total("tlb_misses"),
            "ring_transfers": sum(d.ring_transfers),
            "bank_accesses": d.bank_accesses,
            "invalidations": d.total("cache_invalidations"),
        }


class PhaseAttributor:
    """Snapshots hpm counters at phase boundaries of one machine."""

    def __init__(self, machine, tracer: Optional[Tracer] = None):
        self.machine = machine
        self.tracer = tracer if tracer is not None else machine.tracer
        self.phases: List[PhaseCounters] = []

    @contextmanager
    def phase(self, name: str):
        """Attribute all machine activity inside the block to ``name``.

        Also mirrors the phase into the tracer as a complete span (with
        the counter headline in its args) so exported traces and the
        manifest agree.
        """
        before = hpm.collect(self.machine)
        try:
            yield self
        finally:
            after = hpm.collect(self.machine)
            rec = PhaseCounters(name, hpm.diff(before, after))
            self.phases.append(rec)
            self.tracer.complete(
                before.time_ns, after.time_ns - before.time_ns,
                name, "phase", args={"counters": rec.headline()})

    def manifest(self) -> List[Dict]:
        """Per-phase rows for :func:`repro.obs.metrics.build_manifest`."""
        return [{"name": p.name, **p.headline()} for p in self.phases]

    def render(self) -> str:
        """An hpm-style per-phase attribution table."""
        table = Table(
            "per-phase counter attribution",
            ["phase", "elapsed us", "cache miss", "remote miss",
             "tlb miss", "ring xfer", "inval"])
        for p in self.phases:
            h = p.headline()
            table.add_row(p.name, f"{h['elapsed_ns'] / 1000.0:.1f}",
                          h["cache_misses"], h["remote_misses"],
                          h["tlb_misses"], h["ring_transfers"],
                          h["invalidations"])
        return table.render()
