"""Paper-fidelity residuals: how far the reproduced curves drift.

The repository's bit-identity suites guarantee that *refactors* cannot
change simulated results, but intentional model changes (a calibration
constant, a coherence-cost fix) legitimately move the Fig 2-8 curves.
This module quantifies each move against **golden expectations** so the
performance ledger (:mod:`repro.obs.ledger`) can track accuracy the
same way it tracks speed: every anchor is one scalar derived from an
experiment's headline data — a slope, a ratio, a rate — compared
against either a number the paper states outright (``source:
"paper"``, e.g. the ~10 us/pair fork-join slope of §4.1) or, where the
paper is only qualitative, the reproduction's own pinned value
(``source: "reproduction"``).

The residual is the signed relative error ``(measured - expected) /
expected``.  Tolerances are deliberately wide for paper-sourced anchors
(a reproduction is not the hardware) and tight for reproduction-pinned
ones (the simulator is deterministic, so any motion there is a real
model change).  ``repro ledger gate`` treats an out-of-tolerance anchor
in the newest record as a regression — speed refactors cannot silently
drift accuracy.

Extractors are defensive: an anchor whose inputs are missing (a
smaller ``--hypernodes`` machine never reaches 16 CPUs, a sweep was
trimmed) is skipped, never an error — fidelity is an observation, not
a gate on what experiments may run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

__all__ = ["FIDELITY_EXPERIMENTS", "GOLDEN_ANCHORS",
           "fidelity_residuals"]


class Anchor(NamedTuple):
    """One golden expectation: a named scalar with provenance."""

    metric: str
    expected: float
    tolerance: float            #: max |relative error| considered faithful
    source: str                 #: "paper" or "reproduction"
    extract: Callable[[Dict], float]


def _curve(data: Dict, xs_key: str, ys_key: str) -> Dict:
    return dict(zip(data[xs_key], data[ys_key]))


# -- per-figure extractors (raise KeyError/ZeroDivisionError to skip) ----

def _fig2_local_pair(data: Dict) -> float:
    high = _curve(data, "thread_counts", "high_locality_us")
    return (high[8] - high[4]) / 2


def _fig2_uniform_ratio(data: Dict) -> float:
    uniform = _curve(data, "thread_counts", "uniform_us")
    return ((uniform[8] - uniform[4]) / 2) / _fig2_local_pair(data)


def _fig2_cross_step(data: Dict) -> float:
    high = _curve(data, "thread_counts", "high_locality_us")
    return (high[10] - high[8]) - _fig2_local_pair(data)


def _fig3_lifo_one_node(data: Dict) -> float:
    return _curve(data, "thread_counts", "lifo_high_locality_us")[8]


def _fig3_lilo_slope(data: Dict) -> float:
    lilo = _curve(data, "thread_counts", "lilo_uniform_us")
    return (lilo[16] - lilo[8]) / 8


def _fig4_ratio(data: Dict) -> float:
    return float(data["small_message_global_local_ratio"])


def _fig6_shared_speedup(data: Dict) -> float:
    return float(data["32x32x32"]["shared_speedup"][-1])


def _fig6_pvm_over_shared(data: Dict) -> float:
    small = data["32x32x32"]
    return small["pvm_seconds"][-1] / small["shared_seconds"][-1]


def _fig7_c90(data: Dict) -> float:
    return float(data["c90_mflops"])


def _fig7_small1_single(data: Dict) -> float:
    return float(data["small1"]["mflops"][0])


def _fig8_single(data: Dict) -> float:
    return float(data["32K"]["single_cpu_mflops"])


def _fig8_sixteen(data: Dict) -> float:
    return float(data["32K"]["mflops_16"])


def _fig8_c90(data: Dict) -> float:
    return float(data["32K"]["c90_mflops"])


#: the golden book: every anchored figure, in paper order.  Paper
#: anchors quote §4/§5 numbers; reproduction anchors pin the simulator's
#: own deterministic output (rounded) so drift shows as nonzero residual.
GOLDEN_ANCHORS: Dict[str, List[Anchor]] = {
    "fig2": [
        Anchor("local_pair_slope_us", 10.0, 0.50, "paper",
               _fig2_local_pair),
        Anchor("uniform_local_slope_ratio", 2.0, 0.50, "paper",
               _fig2_uniform_ratio),
        Anchor("cross_node_step_us", 50.0, 0.80, "paper",
               _fig2_cross_step),
    ],
    "fig3": [
        Anchor("lifo_one_node_us", 3.5, 0.50, "paper",
               _fig3_lifo_one_node),
        Anchor("lilo_uniform_slope_us", 2.0, 0.50, "paper",
               _fig3_lilo_slope),
    ],
    "fig4": [
        Anchor("small_message_global_local_ratio", 2.3, 0.40, "paper",
               _fig4_ratio),
    ],
    "fig6": [
        Anchor("shared_speedup_16_small", 10.0, 0.25, "reproduction",
               _fig6_shared_speedup),
        Anchor("pvm_over_shared_16_small", 1.31, 0.25, "reproduction",
               _fig6_pvm_over_shared),
    ],
    "fig7": [
        Anchor("c90_mflops", 252.2, 0.25, "reproduction", _fig7_c90),
        Anchor("small1_single_cpu_mflops", 21.7, 0.25, "reproduction",
               _fig7_small1_single),
    ],
    "fig8": [
        Anchor("single_cpu_mflops_32k", 27.5, 0.50, "paper",
               _fig8_single),
        Anchor("mflops_16_32k", 384.0, 0.50, "paper", _fig8_sixteen),
        Anchor("c90_mflops_32k", 120.0, 0.60, "paper", _fig8_c90),
    ],
}

#: experiment ids with golden anchors (the "Fig 2-8" suite; there is no
#: fig5 experiment — the paper's Figure 5 is the machine photograph)
FIDELITY_EXPERIMENTS = tuple(GOLDEN_ANCHORS)


def fidelity_residuals(experiment_id: str,
                       data: Dict) -> Optional[Dict]:
    """Residuals of one experiment's headline data vs its anchors.

    Returns ``None`` when the experiment has no golden anchors or none
    of its anchors could be computed from ``data``; otherwise::

        {"metrics": {name: {"measured": ..., "expected": ...,
                            "rel_err": ..., "tolerance": ...,
                            "within_tolerance": bool, "source": ...}},
         "max_abs_rel_err": ..., "within_tolerance": bool}
    """
    anchors = GOLDEN_ANCHORS.get(experiment_id)
    if not anchors:
        return None
    metrics: Dict[str, Dict] = {}
    for anchor in anchors:
        try:
            measured = float(anchor.extract(data))
        except (KeyError, IndexError, TypeError, ValueError,
                ZeroDivisionError):
            continue  # trimmed sweep / smaller machine: anchor inapplicable
        rel_err = (measured - anchor.expected) / anchor.expected
        metrics[anchor.metric] = {
            "measured": round(measured, 4),
            "expected": anchor.expected,
            "rel_err": round(rel_err, 4),
            "tolerance": anchor.tolerance,
            "within_tolerance": abs(rel_err) <= anchor.tolerance,
            "source": anchor.source,
        }
    if not metrics:
        return None
    return {
        "metrics": metrics,
        "max_abs_rel_err": round(
            max(abs(m["rel_err"]) for m in metrics.values()), 4),
        "within_tolerance": all(m["within_tolerance"]
                                for m in metrics.values()),
    }
