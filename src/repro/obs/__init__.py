"""Unified observability layer (the paper's §6 instrumentation story).

The paper credits the CXpa profiler and the hpm hardware counters for
every optimisation win it reports; this package is the analogous
first-class measurement subsystem for the simulated machine:

* :mod:`repro.sim.trace` — the structured, span-capable event bus
  (``Tracer``); every layer (machine, runtime, PVM, perfmodel) emits
  into it with thread/CPU/hypernode attribution;
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto
  or ``chrome://tracing``; one track per simulated CPU) and JSONL
  event streams;
* :mod:`repro.obs.metrics` — per-run ``metrics.json`` manifests:
  headline experiment data, per-phase span times, counter deltas,
  imbalance factors, instrumentation-overhead accounting;
* :mod:`repro.obs.phases` — automatic per-phase hpm counter
  attribution (:class:`PhaseAttributor` drives ``tools.hpm.diff`` at
  phase boundaries);
* :mod:`repro.obs.timeline` — ASCII Gantt rendering of traces
  (``python -m repro timeline``);
* :mod:`repro.obs.memscope` — the memory-system profiler: per-access
  miss classification (local/GCB/SCI-remote with hop counts),
  directory/SCI transition counters, a false-sharing & ping-pong
  detector, ring/crossbar occupancy timelines, and page/hypernode
  hotspot heatmaps (``python -m repro memscope``; see
  ``docs/memscope.md``);
* :mod:`repro.obs.hostscope` — the host-time self-profiler: attributes
  *wall-clock* time to simulator subsystems (event heap, dispatch,
  memory/coherence, scheduling, PVM, application code) and reports
  simulated-cycles/s and events/s throughput (``python -m repro
  hostscope``; see ``docs/hostscope.md``);
* :mod:`repro.obs.registry` — the service metrics registry: stdlib
  counters/gauges/histograms with labels, snapshot-consistent reads,
  and Prometheus text exposition (served by ``repro serve
  --metrics-port``; see ``docs/operations.md``);
* :mod:`repro.obs.tracectx` — end-to-end trace context: one trace ID
  minted in the SDK, carried over the NDJSON protocol, stamped onto
  exec-pool unit progress, and stitched with the simulated Chrome
  trace into a single client → server → worker → simulated-time file;
* :mod:`repro.obs.top` — the live operations dashboard (``python -m
  repro top``): job table, throughput sparkline, cache hit rate, and
  worker occupancy against a running server or a replayed progress
  JSONL;
* :mod:`repro.obs.ledger` — the longitudinal performance-and-fidelity
  ledger (``python -m repro ledger``): append-only checksummed JSONL
  records of bench timings/throughput/provenance plus the Fig 2-8
  fidelity residuals of :mod:`repro.obs.fidelity`, with trend
  sparklines and a windowed median/MAD regression gate (see
  ``docs/ledger.md``).

Zero-cost contract: tracing never advances simulated time, and a fully
disabled tracer (``Tracer(counting=False)``) costs one no-op call per
emission point in host time.  See :mod:`repro.sim.trace` for the
overhead-correction story mirroring the paper's §4 methodology.
"""

from ..sim.trace import TraceEvent, Tracer, active_tracer, use_tracer
from .critscope import (
    CritScope,
    active_critscope,
    critscope_from_trace,
    scaled_config,
    use_critscope,
)
from .export import (
    chrome_trace,
    jsonl_lines,
    load_trace,
    load_trace_checked,
    write_chrome_trace,
    write_jsonl,
)
from .fidelity import FIDELITY_EXPERIMENTS, fidelity_residuals
from .hostscope import (
    HostScope,
    active_hostscope,
    hostscope_from_trace,
    use_hostscope,
)
from .ledger import (
    DEFAULT_LEDGER_PATH,
    Ledger,
    LedgerError,
    fold_document,
    record_checksum,
    record_from_bench,
    record_from_manifest,
    record_from_server_stats,
)
from .memscope import (
    MemScope,
    active_memscope,
    memscope_from_trace,
    placement_probe,
    use_memscope,
)
from .metrics import build_manifest, provenance_stamp, span_summary, \
    write_metrics
from .phases import PhaseAttributor, PhaseCounters
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .timeline import render_timeline, timeline_from_tracer
from .tracectx import (
    TraceContext,
    active_tracectx,
    mint_trace_id,
    stitch_chrome_trace,
    use_tracectx,
    write_chrome_json,
)

__all__ = [
    "Tracer", "TraceEvent", "active_tracer", "use_tracer",
    "chrome_trace", "write_chrome_trace", "jsonl_lines", "write_jsonl",
    "load_trace", "load_trace_checked",
    "CritScope", "active_critscope", "use_critscope", "scaled_config",
    "critscope_from_trace",
    "build_manifest", "provenance_stamp", "span_summary", "write_metrics",
    "PhaseAttributor", "PhaseCounters",
    "render_timeline", "timeline_from_tracer",
    "MemScope", "active_memscope", "use_memscope", "placement_probe",
    "memscope_from_trace",
    "HostScope", "active_hostscope", "use_hostscope",
    "hostscope_from_trace",
    "FIDELITY_EXPERIMENTS", "fidelity_residuals",
    "Ledger", "LedgerError", "DEFAULT_LEDGER_PATH", "record_checksum",
    "record_from_bench", "record_from_manifest",
    "record_from_server_stats", "fold_document",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "TraceContext", "active_tracectx", "use_tracectx", "mint_trace_id",
    "stitch_chrome_trace", "write_chrome_json",
]
