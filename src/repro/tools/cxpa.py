"""CXpa-style parallel profiler (paper §6).

The paper credits Convex's CXpa profiler with exposing "at least coarse
grained imbalances in execution across the parallel resources", and
credits that visibility for rapid optimisation.  This module provides
the analogous view for workloads run through the performance model:
per-phase, per-thread time breakdowns, imbalance factors, and a rendered
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.config import MachineConfig
from ..core.tables import Table
from ..core.units import to_us
from ..perfmodel import PerformanceModel, StepWork, TeamSpec

__all__ = ["PhaseStats", "CxpaReport", "CxpaProfiler"]


@dataclass(frozen=True)
class PhaseStats:
    """Cross-thread statistics of one phase."""

    name: str
    times_ns: tuple          #: per participating thread

    @property
    def mean_ns(self) -> float:
        return sum(self.times_ns) / len(self.times_ns)

    @property
    def max_ns(self) -> float:
        return max(self.times_ns)

    @property
    def min_ns(self) -> float:
        return min(self.times_ns)

    @property
    def imbalance(self) -> float:
        """max/mean — 1.0 is perfectly balanced."""
        mean = self.mean_ns
        return self.max_ns / mean if mean > 0 else 1.0


@dataclass
class CxpaReport:
    """One profiled step."""

    team: TeamSpec
    phases: List[PhaseStats]
    thread_totals_ns: List[float]
    barrier_ns: float
    step_ns: float

    @property
    def critical_path_ns(self) -> float:
        return max(self.thread_totals_ns) if self.thread_totals_ns else 0.0

    @property
    def overall_imbalance(self) -> float:
        total = sum(self.thread_totals_ns)
        if not total:
            return 1.0
        mean = total / len(self.thread_totals_ns)
        return self.critical_path_ns / mean

    def hotspots(self, top: int = 3) -> List[PhaseStats]:
        """The most expensive phases by mean time."""
        return sorted(self.phases, key=lambda p: p.mean_ns,
                      reverse=True)[:top]

    def render(self) -> str:
        table = Table(
            f"CXpa profile: {self.team.n_threads} threads on "
            f"{self.team.n_hypernodes_used} hypernode(s)",
            ["phase", "mean us", "max us", "min us", "imbalance"])
        for phase in self.phases:
            table.add_row(phase.name, to_us(phase.mean_ns),
                          to_us(phase.max_ns), to_us(phase.min_ns),
                          f"{phase.imbalance:.2f}")
        table.add_row("(barriers)", to_us(self.barrier_ns),
                      to_us(self.barrier_ns), to_us(self.barrier_ns), "-")
        lines = [table.render(),
                 f"step time {to_us(self.step_ns):.1f} us, overall "
                 f"imbalance {self.overall_imbalance:.2f}"]
        return "\n".join(lines)


class CxpaProfiler:
    """Profiles StepWork records against one machine configuration."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.model = PerformanceModel(config)

    def profile(self, step: StepWork, team: TeamSpec) -> CxpaReport:
        """Per-phase, per-thread breakdown of one step."""
        from ..perfmodel.comm import barrier_ns

        by_phase: Dict[str, List[float]] = {}
        thread_totals: List[float] = []
        for tid, phases in enumerate(step.thread_phases):
            total = 0.0
            for phase in phases:
                t = self.model.phase_time_ns(phase, team, tid)
                by_phase.setdefault(phase.name, []).append(t)
                total += t
            thread_totals.append(total)
        bar = step.barriers * barrier_ns(
            self.config, team.n_threads, team.n_hypernodes_used)
        return CxpaReport(
            team=team,
            phases=[PhaseStats(name, tuple(times))
                    for name, times in by_phase.items()],
            thread_totals_ns=thread_totals,
            barrier_ns=bar,
            step_ns=self.model.step_time_ns(step, team),
        )
