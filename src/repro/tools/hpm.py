"""Hardware performance monitor (paper §6).

"A valued aid in achieving such optimized codes was the availability of
hardware supported instrumentation including counters for cache miss
enumeration and timing."  This module collects every counter the
simulated machine maintains — cache hits/misses/evictions/invalidations
per CPU, TLB statistics, coherence events, ring and bank activity — and
renders them the way a Convex ``hpm`` report would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.tables import Table
from ..machine import Machine

__all__ = ["HpmSnapshot", "collect", "diff", "render"]


@dataclass(frozen=True)
class HpmSnapshot:
    """All machine counters at one instant."""

    time_ns: float
    per_cpu: tuple        #: dicts of per-CPU counters
    events: Dict[str, int]
    ring_transfers: tuple
    bank_accesses: int

    def total(self, counter: str) -> int:
        return sum(c[counter] for c in self.per_cpu)

    @property
    def cache_miss_rate(self) -> float:
        hits, misses = self.total("cache_hits"), self.total("cache_misses")
        return misses / max(hits + misses, 1)


def collect(machine: Machine) -> HpmSnapshot:
    """Snapshot every counter of the machine."""
    per_cpu = []
    for cpu in range(machine.config.n_cpus):
        cache = machine.caches[cpu]
        tlb = machine.tlbs[cpu]
        per_cpu.append({
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_evictions": cache.evictions,
            "cache_invalidations": cache.invalidations,
            "tlb_hits": tlb.hits,
            "tlb_misses": tlb.misses,
        })
    return HpmSnapshot(
        time_ns=machine.sim.now,
        per_cpu=tuple(per_cpu),
        events=machine.tracer.counters,
        ring_transfers=tuple(r.transfers for r in machine.net.rings),
        bank_accesses=sum(b.accesses for b in machine.mem.banks),
    )


def diff(before: HpmSnapshot, after: HpmSnapshot) -> HpmSnapshot:
    """Counter deltas over an interval (for timing a region)."""
    per_cpu = tuple(
        {k: a[k] - b[k] for k in a}
        for a, b in zip(after.per_cpu, before.per_cpu))
    events = {k: after.events.get(k, 0) - before.events.get(k, 0)
              for k in set(after.events) | set(before.events)}
    return HpmSnapshot(
        time_ns=after.time_ns - before.time_ns,
        per_cpu=per_cpu,
        events={k: v for k, v in events.items() if v},
        ring_transfers=tuple(a - b for a, b in zip(
            after.ring_transfers, before.ring_transfers)),
        bank_accesses=after.bank_accesses - before.bank_accesses,
    )


def render(snapshot: HpmSnapshot, per_cpu: bool = False) -> str:
    """An hpm-style report."""
    summary = Table("hpm summary", ["counter", "value"])
    summary.add_row("elapsed (us)", snapshot.time_ns / 1000.0)
    for counter in ("cache_hits", "cache_misses", "cache_evictions",
                    "cache_invalidations", "tlb_hits", "tlb_misses"):
        summary.add_row(counter, snapshot.total(counter))
    summary.add_row("cache miss rate", f"{snapshot.cache_miss_rate:.2%}")
    summary.add_row("ring transfers", sum(snapshot.ring_transfers))
    summary.add_row("bank line accesses", snapshot.bank_accesses)
    parts = [summary.render()]
    if snapshot.events:
        ev = Table("coherence / protocol events", ["event", "count"])
        for name in sorted(snapshot.events):
            ev.add_row(name, snapshot.events[name])
        parts.append(ev.render())
    if per_cpu:
        t = Table("per-CPU counters",
                  ["cpu", "hits", "misses", "evict", "inval", "tlb miss"])
        for cpu, c in enumerate(snapshot.per_cpu):
            t.add_row(cpu, c["cache_hits"], c["cache_misses"],
                      c["cache_evictions"], c["cache_invalidations"],
                      c["tlb_misses"])
        parts.append(t.render())
    return "\n\n".join(parts)
