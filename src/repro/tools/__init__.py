"""Observability tools mirroring the instrumentation the paper relied on.

* :mod:`repro.tools.cxpa` — CXpa-style per-phase/per-thread profiling
* :mod:`repro.tools.hpm` — hardware-performance-monitor counter reports
* :mod:`repro.tools.validate` — analytic-model-vs-simulation audit
"""

from .cxpa import CxpaProfiler, CxpaReport, PhaseStats
from .hpm import HpmSnapshot, collect, diff, render
from .validate import (ValidationRow, render_validation,
                       validate_fault_plan, validate_primitives)

__all__ = [
    "CxpaProfiler", "CxpaReport", "PhaseStats",
    "HpmSnapshot", "collect", "diff", "render",
    "ValidationRow", "validate_primitives", "render_validation",
    "validate_fault_plan",
]
