"""Consistency audit: analytic primitive costs vs the simulated machine.

The application performance model uses closed-form costs
(:mod:`repro.perfmodel.comm`) derived from the same MachineConfig that
drives the discrete-event simulation.  This tool sweeps both across the
primitives' operating points and reports the ratio, so a configuration
change that breaks their agreement is visible immediately (the test
suite enforces the ratio band; this renders the full table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import MachineConfig, Table, spp1000
from ..core.units import to_us
from ..experiments.fig2_forkjoin import forkjoin_time_us
from ..experiments.fig3_barrier import barrier_metrics_us
from ..experiments.fig4_message import round_trip_us
from ..perfmodel import barrier_ns, forkjoin_ns, pvm_oneway_ns
from ..runtime import Placement

__all__ = ["ValidationRow", "validate_primitives", "render_validation",
           "validate_fault_plan"]


def validate_fault_plan(path: str,
                        config: Optional[MachineConfig] = None
                        ) -> List[str]:
    """Validate a fault-plan JSON file; returns actionable error messages.

    An empty list means the file is a valid plan for ``config`` (defaults
    to the paper's 2-hypernode machine, which bounds the ring/CPU/
    hypernode id ranges).  File-level problems (unreadable, not JSON)
    are reported the same way instead of raising.
    """
    import json

    from ..faults.plan import validate_plan_dict

    config = config or spp1000()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    return validate_plan_dict(data, config)


@dataclass(frozen=True)
class ValidationRow:
    """One operating point of one primitive."""

    primitive: str
    operating_point: str
    simulated_us: float
    analytic_us: float

    @property
    def ratio(self) -> float:
        return self.analytic_us / self.simulated_us

    @property
    def consistent(self) -> bool:
        return 0.4 <= self.ratio <= 2.2


def validate_primitives(config: Optional[MachineConfig] = None
                        ) -> List[ValidationRow]:
    """Sweep barrier / fork-join / PVM round trip; returns all rows."""
    config = config or spp1000()
    rows: List[ValidationRow] = []

    for n, placement, hns in [(4, Placement.HIGH_LOCALITY, 1),
                              (8, Placement.HIGH_LOCALITY, 1),
                              (16, Placement.UNIFORM, 2)]:
        simulated = barrier_metrics_us(n, placement, config, rounds=6)
        rows.append(ValidationRow(
            "barrier (LILO)", f"{n} threads / {hns} hn",
            simulated["last_in_last_out"],
            to_us(barrier_ns(config, n, hns))))

    for n, placement, hns in [(4, Placement.HIGH_LOCALITY, 1),
                              (8, Placement.HIGH_LOCALITY, 1),
                              (16, Placement.UNIFORM, 2)]:
        simulated = forkjoin_time_us(n, placement, config, repeats=2)
        rows.append(ValidationRow(
            "fork-join", f"{n} threads / {hns} hn",
            simulated,
            to_us(forkjoin_ns(config, n, hns, include_setup=True))))

    for nbytes in (64, 8192, 65536):
        for placement, remote in [(Placement.HIGH_LOCALITY, False),
                                  (Placement.UNIFORM, True)]:
            simulated = round_trip_us(nbytes, placement, config, repeats=2)
            rows.append(ValidationRow(
                "pvm round trip",
                f"{nbytes} B / {'global' if remote else 'local'}",
                simulated,
                2 * to_us(pvm_oneway_ns(config, nbytes, remote))))
    return rows


def render_validation(rows: List[ValidationRow]) -> str:
    table = Table("analytic model vs simulated machine",
                  ["primitive", "operating point", "simulated us",
                   "analytic us", "ratio", "ok"])
    for row in rows:
        table.add_row(row.primitive, row.operating_point,
                      row.simulated_us, row.analytic_us,
                      f"{row.ratio:.2f}", "yes" if row.consistent else "NO")
    return table.render()
