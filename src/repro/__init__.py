"""repro — reproduction of the SC'95 Convex SPP-1000 performance evaluation.

The package provides, from the bottom up:

* :mod:`repro.sim` — a discrete-event simulation kernel;
* :mod:`repro.machine` — the SPP-1000 architecture model (caches,
  two-level directory/SCI coherence, crossbars, rings, memory classes);
* :mod:`repro.runtime` — the CPSlib-style thread runtime (fork-join,
  barriers, semaphores) running on the simulated machine;
* :mod:`repro.pvm` — the ConvexPVM-style message-passing layer;
* :mod:`repro.perfmodel` — phase-level application performance model and
  the Cray C90 reference;
* :mod:`repro.apps` — the paper's four applications (PIC, FEM, N-body
  tree code, PPM hydrodynamics) as real numerical codes;
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quickstart::

    from repro import Machine, spp1000
    machine = Machine(spp1000(n_hypernodes=2))
"""

from .core import MachineConfig, spp1000
from .machine import Machine, MemClass

__version__ = "1.0.0"

__all__ = ["Machine", "MachineConfig", "MemClass", "spp1000", "__version__"]
