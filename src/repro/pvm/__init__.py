"""ConvexPVM-style message passing on the simulated SPP-1000 (paper §3.1).

Public surface:

* :class:`PvmSystem` — task registry, buffer pool, ``run_tasks`` driver
* :class:`PvmTask` — per-task ``send`` / ``recv`` / ``probe``
* :data:`ANY_SOURCE`, :data:`ANY_TAG` — receive wildcards
* :class:`BufferPool`, :class:`Message` — internals, exposed for tests
"""

from .buffers import BufferLease, BufferPool
from .collectives import (
    pvm_allreduce,
    pvm_barrier,
    pvm_bcast,
    pvm_gather,
    pvm_reduce,
)
from .message import ANY_SOURCE, ANY_TAG, Message, matches
from .system import PvmSystem, PvmTask, Request, TaskFailedError

__all__ = [
    "PvmSystem", "PvmTask", "Request", "TaskFailedError",
    "ANY_SOURCE", "ANY_TAG",
    "Message", "matches", "BufferPool", "BufferLease",
    "pvm_barrier", "pvm_bcast", "pvm_reduce", "pvm_allreduce",
    "pvm_gather",
]
