"""Shared message-buffer management (ConvexPVM's zero-daemon fast path).

ConvexPVM lets tasks exchange data through shared-memory buffers instead
of private copies relayed by a daemon (paper §3.1).  Each task owns a
small preallocated *fast buffer* (``pvm_fastbuf_pages`` pages, the source
of the 8 KB knee in Figure 4); messages that fit go through it at zero
allocation cost.  Larger messages allocate fresh pages, paying a map +
first-touch cost per page — more when the receiver sits on another
hypernode and the pages stream over an SCI ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..machine import Machine, MemClass

__all__ = ["BufferLease", "BufferPool"]


@dataclass(frozen=True)
class BufferLease:
    """A granted message buffer."""

    addr: int
    nbytes: int
    fresh_pages: int       #: pages newly mapped for this message (0 = fast path)
    home_hypernode: int


class BufferPool:
    """Per-task fast buffers plus page-granular overflow allocation."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.config = machine.config
        self._fastbufs: Dict[int, int] = {}    # task tid -> base address
        self._fast_bytes = (self.config.pvm_fastbuf_pages
                            * self.config.page_bytes)

    @property
    def fastbuf_bytes(self) -> int:
        return self._fast_bytes

    def acquire(self, tid: int, hypernode: int, nbytes: int) -> BufferLease:
        """A buffer for a message of ``nbytes`` sent by task ``tid``.

        Fits the fast buffer -> zero fresh pages.  Otherwise a fresh
        near-shared region on the sender's hypernode, every page of which
        must be mapped and first-touched.
        """
        if nbytes <= 0:
            raise ValueError("message size must be positive")
        if nbytes <= self._fast_bytes:
            base = self._fastbufs.get(tid)
            if base is None:
                region = self.machine.alloc(
                    self._fast_bytes, MemClass.NEAR_SHARED,
                    home_hypernode=hypernode, label=f"pvm-fastbuf-t{tid}")
                base = region.base
                self._fastbufs[tid] = base
            return BufferLease(base, nbytes, 0, hypernode)
        pages = -(-nbytes // self.config.page_bytes)
        region = self.machine.alloc(
            pages * self.config.page_bytes, MemClass.NEAR_SHARED,
            home_hypernode=hypernode, label=f"pvm-buf-t{tid}")
        return BufferLease(region.base, nbytes, pages, hypernode)
