"""The ConvexPVM system: one daemon, shared-buffer message passing.

Unlike network PVM, ConvexPVM runs a **single daemon for the whole
machine** (paper §3.1); tasks hand messages to each other directly
through shared buffers, and the daemon is only involved in task
management.  ``send``/``recv`` therefore cost:

* library overhead (``pvm_send/recv_overhead_cycles``),
* buffer acquisition (free on the ≤8 KB fast path, page map + first
  touch beyond it),
* a pack (streamed ``write_block``) into the shared buffer,
* a notify store to the receiver's mail flag — a plain coherent store,
  so notifying a task on another hypernode pays the SCI round trip,
* on the receive side, matching plus a streamed ``read_block`` of the
  buffer (remote if the buffer lives on the sender's hypernode).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..machine import Machine
from ..runtime import Placement, Runtime, ThreadEnv
from ..runtime.runtime import _host_region
from .buffers import BufferPool
from .message import ANY_SOURCE, ANY_TAG, Message, matches

__all__ = ["PvmTask", "PvmSystem", "Request", "TaskFailedError"]


class TaskFailedError(RuntimeError):
    """A send could not be completed: the peer is unreachable, or every
    retransmission attempt was exhausted under message loss."""


class Request:
    """Handle for a nonblocking receive (ConvexPVM's ``nrecv`` style).

    ``test()`` polls without blocking; ``wait()`` is a generator that
    blocks the task until the message is in and returns the payload.
    """

    def __init__(self, task: "PvmTask", source: int, tag: int):
        self.task = task
        self.source = source
        self.tag = tag
        self._msg = None
        self._unpacked = False

    def test(self) -> bool:
        """True once a matching message has arrived (claims it)."""
        if self._msg is not None:
            return True
        self._msg = self.task._take(self.source, self.tag)
        return self._msg is not None

    def wait(self):
        """Generator: block until complete; returns the payload.

        The unpack (buffer access) cost is charged here, once.
        """
        env = self.task.env
        if self._msg is None:
            yield env.spin(self.task._mail_flag, lambda _v: self.test(),
                           info=f"pvm irecv by task {self.task.tid} "
                                f"(source {self.source}, tag {self.tag})",
                           cat="msg_recv")
        if not self._unpacked:
            yield env.read_block(self._msg.buffer_addr, self._msg.nbytes,
                                 cat="msg_recv")
            self.task.received_messages += 1
            self._unpacked = True
        return self._msg.payload


class PvmTask:
    """A PVM task: a thread with a mailbox and send/recv operations."""

    def __init__(self, system: "PvmSystem", tid: int, env: ThreadEnv):
        self.system = system
        self.tid = tid
        self.env = env
        self.mailbox: List[Message] = []
        self._mail_flag = system.runtime.alloc_sync_word(env.hypernode, 0)
        # Senders serialise on this lock word (homed on the receiver's
        # hypernode) to insert into the mailbox — a remote sender pays an
        # SCI round trip for it.
        self._mail_lock = system.runtime.alloc_sync_word(env.hypernode, 0)
        self._mail_seq = 0
        # Reliability layer (active only under a fault plan): outgoing
        # sequence counter and the (src, send_seq) pairs already delivered
        # here, for duplicate suppression under retransmission.
        self._send_seq = 0
        self._seen_seqs: set = set()
        self.sent_messages = 0
        self.received_messages = 0

    # -- messaging ---------------------------------------------------------
    def send(self, dest_tid: int, payload, nbytes: int, tag: int = 0):
        """Generator: pack ``payload`` into a shared buffer and post it."""
        system, env, cfg = self.system, self.env, self.system.config
        dest = system.task(dest_tid)
        tracer = system.machine.tracer
        if tracer.enabled:
            tracer.begin(env.now, "pvm.send", "pvm",
                         pid=env.hypernode, tid=env.cpu,
                         args={"dest": dest_tid, "tag": tag,
                               "nbytes": nbytes})
        yield env.compute(cfg.pvm_send_overhead_cycles,
                          cat="msg_send")
        with _host_region(env.sim, "pvm"):
            lease = system.buffers.acquire(self.tid, env.hypernode, nbytes)
        if lease.fresh_pages:
            remote_dest = dest.env.hypernode != env.hypernode
            per_page = (cfg.page_touch_remote_cycles if remote_dest
                        else cfg.page_touch_local_cycles)
            yield env.compute(per_page * lease.fresh_pages,
                              cat="msg_send")
        if tracer.enabled:
            tracer.begin(env.now, "pvm.pack", "pvm",
                         pid=env.hypernode, tid=env.cpu)
        yield env.write_block(lease.addr, nbytes,
                              cat="msg_send")      # pack
        if tracer.enabled:
            tracer.end(env.now, "pvm.pack", "pvm",
                       pid=env.hypernode, tid=env.cpu)
        faults = system.machine.faults
        if faults is None:
            yield from self._post(dest, payload, nbytes, tag, lease)
        else:
            yield from self._post_reliable(dest, payload, nbytes, tag,
                                           lease, faults)
        self.sent_messages += 1
        if tracer.enabled:
            tracer.end(env.now, "pvm.send", "pvm",
                       pid=env.hypernode, tid=env.cpu)

    def _post(self, dest: "PvmTask", payload, nbytes: int, tag: int,
              lease, send_seq: int = 0):
        """Generator: the mailbox insert + notify (one delivery attempt)."""
        env = self.env
        tracer = self.system.machine.tracer
        yield env.fetch_add(dest._mail_lock, 1,
                            cat="msg_send")        # mailbox insert lock
        with _host_region(env.sim, "pvm"):
            dest._mail_seq += 1
            msg = Message(self.tid, dest.tid, tag, nbytes, payload,
                          lease.addr, dest._mail_seq, send_seq)
            dest.mailbox.append(msg)
            if tracer.enabled:
                # The shared-buffer hand-off: the message changes hands
                # here.
                tracer.instant(env.now, "pvm.post", "pvm",
                               pid=dest.env.hypernode, tid=dest.env.cpu,
                               args={"source": self.tid, "dest": dest.tid,
                                     "tag": tag, "nbytes": nbytes})
        # the notify store resolves the receiver's mail-flag spin:
        # the message send -> recv edge of the dependency graph
        yield env.store(dest._mail_flag, dest._mail_seq,
                        cat="msg_send")   # notify

    def _post_reliable(self, dest: "PvmTask", payload, nbytes: int,
                       tag: int, lease, faults):
        """Generator: delivery with timeout / bounded exponential backoff.

        Each attempt samples a delivery fate from the (seeded) fault
        state.  A lost or corrupted message still charges the wire work
        of the attempt; the sender then waits out its per-send timeout
        (``pvm.timeout_us``, multiplied by ``backoff`` per retry) and
        retransmits.  Deliveries whose acknowledgement was lost get
        retransmitted too — the receiver suppresses the duplicate via
        the ``(src, send_seq)`` pair.  After ``max_retries``
        retransmissions, :class:`TaskFailedError` is raised; a peer whose
        CPU or hypernode has failed raises it immediately.
        """
        env = self.env
        sim = env.sim
        tracer = self.system.machine.tracer
        policy = faults.plan.pvm
        timeout_ns = policy.timeout_us * 1000.0
        self._send_seq += 1
        send_seq = self._send_seq
        attempts = policy.max_retries + 1
        for attempt in range(attempts):
            if attempt:
                tracer.emit(env.now, "pvm.retry")
                if tracer.enabled:
                    tracer.instant(env.now, "pvm.retry", "pvm",
                                   pid=env.hypernode, tid=env.cpu,
                                   args={"dest": dest.tid,
                                         "attempt": attempt})
            if (not faults.cpu_alive(dest.env.cpu)
                    or not faults.hypernode_alive(dest.env.hypernode)):
                tracer.emit(env.now, "pvm.unreachable")
                raise TaskFailedError(
                    f"task {dest.tid} is unreachable: its CPU "
                    f"{dest.env.cpu} / hypernode {dest.env.hypernode} "
                    "has failed")
            fate = faults.sample_delivery()
            if fate in ("ok", "ack_lost"):
                key = (self.tid, send_seq)
                if key in dest._seen_seqs:
                    # retransmission of an already-delivered message: the
                    # receiver drops it, but the wire work still happens
                    tracer.emit(env.now, "pvm.dup_drop")
                    yield env.fetch_add(dest._mail_lock, 1,
                                        cat="msg_send")
                    yield env.store(dest._mail_flag, dest._mail_seq,
                                    cat="msg_send")
                else:
                    dest._seen_seqs.add(key)
                    yield from self._post(dest, payload, nbytes, tag,
                                          lease, send_seq)
                if fate == "ok":
                    return
                # delivered, but the ack never came back: the sender
                # cannot tell this from loss, so it times out and retries
            else:
                # lost/corrupt: the attempt's wire work is still charged
                tracer.emit(env.now, f"pvm.{fate}")
                yield env.fetch_add(dest._mail_lock, 1,
                                    cat="msg_send")
                yield env.store(dest._mail_flag, dest._mail_seq,
                                cat="msg_send")
            tracer.emit(env.now, "pvm.timeout")
            cr = env.crit
            t_backoff = env.now if cr is not None else 0.0
            yield sim.timeout(timeout_ns * policy.backoff ** attempt)
            if cr is not None:
                # retransmission backoff counts as message-send time
                cr.segment(env.tid, t_backoff, env.now, "msg_send")
        raise TaskFailedError(
            f"send to task {dest.tid} failed after {attempts} attempts "
            f"(tag {tag}, {nbytes} bytes): retransmission budget "
            "exhausted")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: block until a matching message arrives; returns payload."""
        system, env, cfg = self.system, self.env, self.system.config
        tracer = system.machine.tracer
        if tracer.enabled:
            tracer.begin(env.now, "pvm.recv", "pvm",
                         pid=env.hypernode, tid=env.cpu,
                         args={"source": source, "tag": tag})
        yield env.compute(cfg.pvm_recv_overhead_cycles,
                          cat="msg_recv")
        msg = self._take(source, tag)
        if msg is None:
            yield env.spin(self._mail_flag,
                           lambda _v: self._peek(source, tag) is not None,
                           info=f"pvm recv by task {self.tid} "
                                f"(source {source}, tag {tag})",
                           cat="msg_recv")
            msg = self._take(source, tag)
            assert msg is not None
        yield env.read_block(msg.buffer_addr, msg.nbytes,
                             cat="msg_recv")  # access/unpack
        self.received_messages += 1
        if tracer.enabled:
            tracer.end(env.now, "pvm.recv", "pvm",
                       pid=env.hypernode, tid=env.cpu,
                       args={"source": msg.src, "nbytes": msg.nbytes})
        return msg.payload

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking: is a matching message waiting?"""
        return self._peek(source, tag) is not None

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
              ) -> "Request":
        """Nonblocking receive: returns a :class:`Request` immediately.

        Drive completion with ``request.test()`` (poll) or
        ``yield from request.wait()`` (block).
        """
        return Request(self, source, tag)

    def _peek(self, source: int, tag: int) -> Optional[Message]:
        for msg in self.mailbox:
            if matches(msg, source, tag):
                return msg
        return None

    def _take(self, source: int, tag: int) -> Optional[Message]:
        for i, msg in enumerate(self.mailbox):
            if matches(msg, source, tag):
                return self.mailbox.pop(i)
        return None


class PvmSystem:
    """Task registry + buffer pool (the daemon's bookkeeping role)."""

    def __init__(self, runtime: Runtime):
        self.runtime = runtime
        self.machine: Machine = runtime.machine
        self.config = runtime.config
        self.buffers = BufferPool(self.machine)
        self._tasks: Dict[int, PvmTask] = {}

    def task(self, tid: int) -> PvmTask:
        try:
            return self._tasks[tid]
        except KeyError:
            raise KeyError(f"no PVM task with tid {tid}") from None

    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    def run_tasks(self, n_tasks: int, body: Callable,
                  placement: Placement = Placement.HIGH_LOCALITY):
        """Run ``body(task, tid)`` on ``n_tasks`` tasks; returns results.

        ``body`` is a generator function; tasks are placed like threads
        and joined before this returns.  Returns the per-task results in
        tid order.
        """
        self._tasks.clear()

        def thread_body(env: ThreadEnv, tid: int):
            task = self._tasks[tid]
            result = yield from body(task, tid)
            return result

        def main(env: ThreadEnv):
            # Pre-register tasks so early senders can address late starters.
            from ..runtime.scheduler import assign
            cpus = assign(self.config, n_tasks, placement)
            for tid, cpu in enumerate(cpus):
                task_env = ThreadEnv(self.runtime, -1, cpu)
                self._tasks[tid] = PvmTask(self, tid, task_env)
            results = yield from env.fork_join(n_tasks, self._bound(body),
                                               placement)
            return results

        return self.runtime.run(main)

    def _bound(self, body):
        def thread_body(env: ThreadEnv, tid: int):
            task = self._tasks[tid]
            # the task adopts the actual execution environment
            task.env = env
            result = yield from body(task, tid)
            return result
        return thread_body
