"""Collective operations over PVM tasks.

The paper's message-passing applications lean on collective patterns —
the PIC code's charge-mesh all-reduce, the tree code's particle
allgather — built from point-to-point PVM calls.  This module provides
those patterns as generator functions to be driven from task bodies
(``yield from pvm_allreduce(task, ...)``).  Tasks are addressed by their
contiguous tids ``0 .. n_tasks-1``.

Algorithms are the classic logarithmic ones (binomial trees, recursive
doubling with a non-power-of-two fold-in), so collective costs on the
simulated machine scale the way the real library's would.
"""

from __future__ import annotations

from typing import Callable, List

from .system import PvmTask

__all__ = ["pvm_barrier", "pvm_bcast", "pvm_reduce", "pvm_allreduce",
           "pvm_gather"]

# disjoint tag spaces per collective so concurrent phases cannot cross
_TAG_BARRIER = 1 << 20
_TAG_BCAST = 2 << 20
_TAG_REDUCE = 3 << 20
_TAG_ALLREDUCE = 4 << 20
_TAG_GATHER = 5 << 20



def _mark(task: PvmTask, collective: str, n_tasks: int) -> None:
    """One tracer instant per collective entry, so traces (and
    ``critscope --trace``) can count collective phases; the cycle-level
    wait attribution is inherited from the underlying send/recv."""
    tracer = task.system.machine.tracer
    if tracer.enabled:
        env = task.env
        tracer.instant(env.now, f"pvm.collective.{collective}", "pvm",
                       pid=env.hypernode, tid=env.cpu,
                       args={"tid": task.tid, "n_tasks": n_tasks})


def _hypercube_peers(tid: int, n_tasks: int) -> List[int]:
    peers = []
    distance = 1
    while distance < n_tasks:
        peer = tid ^ distance
        if peer < n_tasks:
            peers.append(peer)
        distance <<= 1
    return peers


def pvm_barrier(task: PvmTask, n_tasks: int, sequence: int = 0):
    """Generator: dissemination barrier over ``n_tasks`` tasks."""
    if n_tasks < 2:
        return
    _mark(task, "barrier", n_tasks)
    tag = _TAG_BARRIER + sequence
    distance = 1
    while distance < n_tasks:
        dest = (task.tid + distance) % n_tasks
        src = (task.tid - distance) % n_tasks
        yield from task.send(dest, None, nbytes=8, tag=tag + distance)
        yield from task.recv(src, tag=tag + distance)
        distance <<= 1


def pvm_bcast(task: PvmTask, root: int, n_tasks: int, payload=None,
              nbytes: int = 8, sequence: int = 0):
    """Generator: binomial-tree broadcast; returns the payload everywhere."""
    _mark(task, "bcast", n_tasks)
    tag = _TAG_BCAST + sequence
    # renumber so the root is rank 0
    rank = (task.tid - root) % n_tasks
    value = payload
    # find the highest power of two <= rank: our parent in the tree
    if rank != 0:
        high_bit = 1
        while high_bit * 2 <= rank:
            high_bit <<= 1
        parent = ((rank - high_bit) + root) % n_tasks
        value = yield from task.recv(parent, tag=tag)
    # forward to children
    child_bit = 1 if rank == 0 else high_bit << 1
    while rank + child_bit < n_tasks:
        child = ((rank + child_bit) + root) % n_tasks
        yield from task.send(child, value, nbytes=nbytes, tag=tag)
        child_bit <<= 1
    return value


def pvm_reduce(task: PvmTask, root: int, n_tasks: int, value,
               op: Callable, nbytes: int = 8, sequence: int = 0):
    """Generator: binomial-tree reduction; root returns the result,
    everyone else returns None."""
    _mark(task, "reduce", n_tasks)
    tag = _TAG_REDUCE + sequence
    rank = (task.tid - root) % n_tasks
    acc = value
    bit = 1
    while bit < n_tasks:
        if rank & bit:
            parent = ((rank & ~bit) + root) % n_tasks
            yield from task.send(parent, acc, nbytes=nbytes, tag=tag + bit)
            return None
        peer_rank = rank | bit
        if peer_rank < n_tasks:
            contribution = yield from task.recv(
                ((peer_rank + root) % n_tasks), tag=tag + bit)
            acc = op(acc, contribution)
        bit <<= 1
    return acc


def pvm_allreduce(task: PvmTask, n_tasks: int, value, op: Callable,
                  nbytes: int = 8, sequence: int = 0):
    """Generator: all tasks return ``op``-combined value.

    Recursive doubling over the largest power-of-two subset, with the
    remainder folded in and the result fanned back out.
    """
    _mark(task, "allreduce", n_tasks)
    tag = _TAG_ALLREDUCE + sequence
    pow2 = 1
    while pow2 * 2 <= n_tasks:
        pow2 *= 2
    remainder = n_tasks - pow2
    acc = value

    # fold the tail into the power-of-two group
    if task.tid >= pow2:
        yield from task.send(task.tid - pow2, acc, nbytes, tag=tag)
    elif task.tid < remainder:
        other = yield from task.recv(task.tid + pow2, tag=tag)
        acc = op(acc, other)

    if task.tid < pow2:
        distance = 1
        while distance < pow2:
            peer = task.tid ^ distance
            yield from task.send(peer, acc, nbytes, tag=tag + distance)
            other = yield from task.recv(peer, tag=tag + distance)
            acc = op(acc, other)
            distance <<= 1

    # fan the result back to the tail
    if task.tid < remainder:
        yield from task.send(task.tid + pow2, acc, nbytes, tag=tag + pow2)
    elif task.tid >= pow2:
        acc = yield from task.recv(task.tid - pow2, tag=tag + pow2)
    return acc


def pvm_gather(task: PvmTask, root: int, n_tasks: int, value,
               nbytes: int = 8, sequence: int = 0):
    """Generator: root returns the list of every task's value (tid
    order); everyone else returns None.  Simple linear gather, as early
    PVM applications did."""
    _mark(task, "gather", n_tasks)
    tag = _TAG_GATHER + sequence
    if task.tid == root:
        out = [None] * n_tasks
        out[root] = value
        for other in range(n_tasks):
            if other == root:
                continue
            payload, sender = yield from _recv_with_source(task, tag)
            out[sender] = payload
        return out
    yield from task.send(root, (task.tid, value), nbytes, tag=tag)
    return None


def _recv_with_source(task: PvmTask, tag: int):
    payload = yield from task.recv(tag=tag)
    sender, value = payload
    return value, sender
