"""PVM message representation and matching."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Message", "ANY_SOURCE", "ANY_TAG", "matches"]

#: wildcard source (PVM's -1)
ANY_SOURCE = -1
#: wildcard tag (PVM's -1)
ANY_TAG = -1


@dataclass(frozen=True)
class Message:
    """One in-flight message.

    ``payload`` carries the actual Python/NumPy data; ``buffer_addr`` /
    ``nbytes`` locate the simulated shared-memory buffer that models its
    storage, so transfer costs are charged against real simulated memory.
    """

    src: int
    dst: int
    tag: int
    nbytes: int
    payload: object
    buffer_addr: int
    seq: int
    #: sender-side sequence number for duplicate suppression under
    #: retransmission; 0 when the reliability layer is inactive
    send_seq: int = 0


def matches(msg: Message, source: int, tag: int) -> bool:
    """PVM receive matching: wildcards via ANY_SOURCE / ANY_TAG."""
    if source != ANY_SOURCE and msg.src != source:
        return False
    if tag != ANY_TAG and msg.tag != tag:
        return False
    return True
