"""Command-line entry point: ``python -m repro <experiment> [options]``.

Examples::

    python -m repro list                      # show available experiments
    python -m repro fig4                      # regenerate Figure 4
    python -m repro all                       # regenerate everything (slow)
    python -m repro scale128 --jobs 4         # fan the sweep out to 4 procs
    python -m repro fig7 --cache-stats        # show result-cache hit rates
    python -m repro bench --quick --jobs 2    # serial/parallel/cached bench
    python -m repro fig3 --trace t.json       # capture a Perfetto trace
    python -m repro fig3 --metrics m.json     # write a metrics manifest
    python -m repro fig6 --profile            # print counter/span profile
    python -m repro timeline                  # ASCII Gantt of a demo run
    python -m repro timeline --trace t.json   # ... of a captured trace
    python -m repro memscope fig6             # memory-system profile
    python -m repro memscope fig6 --json      # ... as JSON
    python -m repro fig3 --memscope --metrics m.json   # fold into manifest
    python -m repro critscope fig3            # critical path / wait states
    python -m repro critscope fig2 --what-if forkjoin=2
    python -m repro fig3 --critscope --metrics m.json  # fold into manifest
    python -m repro hostscope fig2            # host-time self-profile
    python -m repro hostscope fig2 --json     # ... as JSON
    python -m repro fig3 --hostscope --metrics m.json  # fold into manifest
    python -m repro fig3 --jobs 4 --progress  # live JSONL sweep telemetry
    python -m repro bench --compare benchmarks/BENCH_baseline.json
    python -m repro fig3 --jobs 4 --journal j.jsonl   # crash-safe journal
    python -m repro fig3 --jobs 4 --journal j.jsonl --resume  # pick up
    python -m repro fig3 --jobs 4 --unit-timeout 60 --retries 3
    python -m repro fig3 --jobs 4 --chaos examples/chaos/kill_and_corrupt.json
    python -m repro bench --quick --ledger     # append to the perf ledger
    python -m repro ledger trend               # sparkline trajectory
    python -m repro ledger gate --window 5     # windowed regression gate
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core import spp1000
from .experiments import list_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduce the tables and figures of 'A Performance "
                     "Evaluation of the Convex SPP-1000' (SC'95) on the "
                     "simulated machine."))
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (fig2, fig3, ...), 'list', 'all', 'bench' "
             "(serial vs parallel vs cached wall-clock benchmark), "
             "'timeline' (ASCII Gantt view of a trace), 'memscope "
             "<experiment>' (memory-system profile: miss classes, hop "
             "counts, ring occupancy, hot pages), 'critscope "
             "<experiment>' (wait-state and critical-path analysis with "
             "what-if speedup projections), or 'hostscope <experiment>' "
             "(host-time self-profile: wall-clock attribution per "
             "simulator subsystem plus cycles/s and events/s throughput)")
    parser.add_argument(
        "--hypernodes", type=int, default=2,
        help="hypernodes in the simulated machine (default: 2, as measured "
             "in the paper)")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced repetitions / problem sizes for a fast run")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed python/numpy RNGs for reproducible workload generation")
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON of the run to PATH (open in "
             "Perfetto or chrome://tracing); with the 'timeline' command, "
             "the trace file to render instead")
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write a metrics.json manifest (headline data, per-phase "
             "counter deltas, imbalance, instrumentation overhead) to PATH")
    parser.add_argument(
        "--profile", action="store_true",
        help="print an hpm/CXpa-style profile (counters + span summary) "
             "after each experiment")
    parser.add_argument(
        "--faults", metavar="PATH", default=None,
        help="fault-plan JSON (see docs/robustness.md): inject SCI ring "
             "failures, CPU/hypernode failures, and PVM message loss at "
             "simulated timestamps")
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="persist each completed sweep point of a long experiment to "
             "PATH (JSON), enabling --resume after a kill")
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help="crash-safe sweep journal: append every unit completion to "
             "PATH (JSONL, fsync-ed) so --resume replays an interrupted "
             "--jobs N sweep exactly where it died; fabric experiments "
             "only")
    parser.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint and/or --journal: skip points already "
             "recorded on disk")
    parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock limit per work-unit attempt; a worker that "
             "neither finishes nor fails in time is terminated, replaced, "
             "and the unit retried (default: no timeout)")
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="worker retries per failed unit (exponential backoff) before "
             "the final in-process attempt and quarantine (default: 2)")
    parser.add_argument(
        "--chaos", metavar="PATH", default=None,
        help="host-chaos plan JSON (see docs/robustness.md): "
             "deterministically kill workers, delay units, corrupt cache "
             "entries, and drop results to exercise the resilience "
             "machinery; $REPRO_CHAOS sets a default")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for unit-aware experiments (default: 1, "
             "serial in-process; 'bench' defaults to 2)")
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR, else "
             "$XDG_CACHE_HOME/repro, else ~/.cache/repro)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed result cache for this run")
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print an execution summary (units, cache hits, workers) "
             "after each experiment")
    parser.add_argument(
        "--bench-out", metavar="PATH", default="BENCH_exec.json",
        help="with 'bench': where to write the benchmark JSON "
             "(default: BENCH_exec.json)")
    parser.add_argument(
        "--bench-experiments", metavar="IDS", default=None,
        help="with 'bench': comma-separated experiment ids to benchmark "
             "(default: every unit-aware experiment)")
    parser.add_argument(
        "--compare", metavar="PATH", default=None,
        help="with 'bench': baseline BENCH_exec.json to diff the fresh "
             "measurements against; exits 1 when any experiment's serial "
             "path regressed past the noise threshold")
    parser.add_argument(
        "--bench-diff-out", metavar="PATH", default=None,
        help="with 'bench --compare': also write a markdown regression "
             "report to PATH")
    parser.add_argument(
        "--ledger", nargs="?", const="benchmarks/LEDGER.jsonl",
        default=None, metavar="PATH",
        help="append one checksummed record (timings, throughput, "
             "fidelity residuals, git provenance) to the longitudinal "
             "performance ledger at PATH (bare --ledger uses "
             "benchmarks/LEDGER.jsonl); works with 'bench' and with "
             "--metrics runs; inspect with 'python -m repro ledger'")
    parser.add_argument(
        "--memscope", action="store_true",
        help="attach the memory-system profiler to the run: print the "
             "miss-class/occupancy profile and fold a 'memscope' block "
             "into --metrics manifests")
    parser.add_argument(
        "--memscope-sample", type=int, default=1, metavar="N",
        help="profile 1-in-N accesses for the per-page heat map (aggregate "
             "miss/hit counters stay exact; default: 1 = every access)")
    parser.add_argument(
        "--critscope", action="store_true",
        help="attach the critical-path analyzer to the run: print the "
             "per-thread wait-state attribution, critical path and "
             "what-if projections, and fold a 'critscope' block into "
             "--metrics manifests")
    parser.add_argument(
        "--hostscope", action="store_true",
        help="attach the host-time self-profiler to the run: print the "
             "per-subsystem wall-clock attribution and throughput "
             "report, and fold a 'hostscope' block into --metrics "
             "manifests")
    parser.add_argument(
        "--progress", nargs="?", const="-", default=None, metavar="PATH",
        help="stream live JSONL sweep telemetry (unit completions with "
             "host timings, ETA, cache hit-rate, worker occupancy) to "
             "PATH, or to stderr when PATH is omitted; fabric "
             "experiments only")
    parser.add_argument(
        "--what-if", action="append", default=None, metavar="CAT=FACTOR",
        help="with 'critscope': project run time with category CAT sped "
             "up FACTOR-fold (e.g. barrier_release=2); repeatable")
    parser.add_argument(
        "--json", action="store_true",
        help="with 'memscope'/'critscope': print the profile as a JSON "
             "document instead of rendered tables")
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="with 'memscope': how many hot pages / flagged cache lines "
             "to report; with 'critscope': how many longest critical-path "
             "spans (default: 10)")
    return parser


def _seed_rngs(seed: int) -> None:
    import random

    random.seed(seed)
    try:
        import numpy

        numpy.random.seed(seed)
    except ImportError:  # pragma: no cover - numpy is a core dependency
        pass


def _unknown_experiment(exp_id: str) -> int:
    print(f"unknown experiment {exp_id!r}", file=sys.stderr)
    print("valid experiments:", file=sys.stderr)
    for known_id, title in list_experiments().items():
        print(f"  {known_id:10s} {title}", file=sys.stderr)
    print("  timeline   ASCII Gantt view of a trace", file=sys.stderr)
    print("  memscope   memory-system profile of an experiment",
          file=sys.stderr)
    print("  critscope  wait-state / critical-path analysis of an "
          "experiment", file=sys.stderr)
    print("  hostscope  host-time self-profile of an experiment",
          file=sys.stderr)
    print("  serve      run the simulation job server (repro.sdk "
          "clients)", file=sys.stderr)
    print("  top        live dashboard for a running job server",
          file=sys.stderr)
    print("  ledger     longitudinal performance-and-fidelity ledger",
          file=sys.stderr)
    return 2


def _suffixed(path: str, exp_id: str, multi: bool) -> str:
    """Per-experiment output path when running more than one target."""
    if not multi:
        return path
    stem, dot, ext = path.rpartition(".")
    return f"{stem}.{exp_id}.{ext}" if dot else f"{path}.{exp_id}"


def _resolve_output(path: str, default_name: str) -> str:
    """Expand a directory-style output path to a file inside it.

    ``--metrics out/`` (or an existing directory) means "write the
    default-named file into that directory", creating it if needed.
    """
    if path.endswith(os.sep) or path.endswith("/") or os.path.isdir(path):
        os.makedirs(path, exist_ok=True)
        return os.path.join(path, default_name)
    return path


def _render_profile(tracer) -> str:
    from .core.tables import Table
    from .obs.metrics import span_summary

    counters = Table("protocol counters", ["counter", "count"])
    for name in sorted(tracer.counters):
        counters.add_row(name, tracer.counters[name])
    parts = [counters.render()]
    summary = span_summary(tracer)
    if summary:
        spans = Table("span summary",
                      ["span", "count", "total us", "mean us", "imbalance"])
        for name, s in sorted(summary.items(),
                              key=lambda kv: -kv[1]["total_ns"]):
            spans.add_row(name, s["count"], f"{s['total_ns'] / 1e3:.1f}",
                          f"{s['mean_ns'] / 1e3:.2f}",
                          f"{s['imbalance']:.2f}")
        parts.append(spans.render())
    return "\n\n".join(parts)


def _timeline(args) -> int:
    from .obs.export import load_trace_checked
    from .obs.timeline import render_timeline

    if args.trace:
        events = load_trace_checked(args.trace)
        if events is None:
            return 2
        print(render_timeline(events, title=args.trace))
        return 0
    # No trace file: capture a small barrier demo live and render it.
    from .obs import timeline_from_tracer, use_tracer
    from .sim import Tracer

    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        from .experiments.fig3_barrier import barrier_metrics_us
        from .runtime import Placement

        barrier_metrics_us(min(8, spp1000(args.hypernodes).n_cpus),
                           Placement.UNIFORM,
                           spp1000(args.hypernodes), rounds=2)
    print(render_timeline(timeline_from_tracer(tracer),
                          title="fig3 barrier demo"))
    return 0


def _memscope(args, config) -> int:
    """``python -m repro memscope`` — the memory-system profiler view."""
    import json as _json

    from .obs.export import load_trace_checked
    from .obs.memscope import (
        MemScope,
        memscope_from_trace,
        placement_probe,
        render_trace_summary,
        use_memscope,
    )

    if args.trace:
        events = load_trace_checked(args.trace)
        if events is None:
            return 2
        doc = memscope_from_trace(events)
        if args.json:
            print(_json.dumps(doc, indent=2))
        else:
            print(render_trace_summary(doc, title=args.trace))
        return 0

    if not args.experiment:
        print("memscope needs an experiment id (e.g. 'python -m repro "
              "memscope fig6') or --trace PATH", file=sys.stderr)
        return 2
    from .experiments import resolve_experiment_id

    try:
        exp_id = resolve_experiment_id(args.experiment)
    except KeyError:
        return _unknown_experiment(args.experiment)

    ms = MemScope(config, sample=args.memscope_sample)
    with use_memscope(ms):
        _run(exp_id, config=config, quick=args.quick)
    if ms.machine_accesses == 0:
        # Model-level experiment: the analytic perfmodel attributed its
        # miss populations (the 'model' block) but no cycle-level machine
        # ran.  Probe the machine's actual page placement under this
        # config so the miss-class breakdown reflects real GCB/SCI paths.
        placement_probe(config, ms)
    if args.json:
        doc = ms.to_dict(top=args.top)
        doc["experiment"] = exp_id
        print(_json.dumps(doc, indent=2))
    else:
        print(ms.render(title=f"memscope: {exp_id}", top=args.top))
    return 0


def _parse_what_if(specs):
    """Parse repeated ``--what-if CAT=FACTOR`` into ``[(cat, factor)]``.

    Returns ``None`` (after one actionable stderr line) on the first
    malformed spec; an empty input list parses to ``[]``.
    """
    from .obs.critscope import WHAT_IF_PARAMS

    scalable = ", ".join(sorted(WHAT_IF_PARAMS)) + ", compute, memory"
    out = []
    for spec in specs or []:
        cat, sep, factor_s = spec.partition("=")
        if not sep:
            print(f"--what-if expects CATEGORY=FACTOR (got {spec!r}); "
                  f"e.g. --what-if barrier_release=2", file=sys.stderr)
            return None
        try:
            factor = float(factor_s)
        except ValueError:
            print(f"--what-if factor must be a number (got {factor_s!r} "
                  f"in {spec!r})", file=sys.stderr)
            return None
        if factor <= 0:
            print(f"--what-if factor must be > 0 (got {factor_s} in "
                  f"{spec!r}); 2 means 'twice as fast'", file=sys.stderr)
            return None
        from .obs.critscope import CATEGORIES

        if cat not in CATEGORIES or cat == "idle":
            print(f"--what-if category {cat!r} is not projectable; "
                  f"choose one of: {scalable}", file=sys.stderr)
            return None
        out.append((cat, factor))
    return out


def _critscope(args, config) -> int:
    """``python -m repro critscope`` — wait-state / critical-path view."""
    import json as _json

    from .obs.critscope import (
        CritScope,
        critscope_from_trace,
        render_trace_summary,
        use_critscope,
    )
    from .obs.export import load_trace_checked

    what_if = _parse_what_if(args.what_if)
    if what_if is None:
        return 2

    if args.trace:
        events = load_trace_checked(args.trace)
        if events is None:
            return 2
        doc = critscope_from_trace(events)
        if args.json:
            print(_json.dumps(doc, indent=2))
        else:
            print(render_trace_summary(doc, title=args.trace))
        return 0

    if not args.experiment:
        print("critscope needs an experiment id (e.g. 'python -m repro "
              "critscope fig3') or --trace PATH", file=sys.stderr)
        return 2
    from .experiments import resolve_experiment_id

    try:
        exp_id = resolve_experiment_id(args.experiment)
    except KeyError:
        return _unknown_experiment(args.experiment)

    cs = CritScope(config)
    with use_critscope(cs):
        _run(exp_id, config=config, quick=args.quick)
    if not any(run.threads for run in cs.runs):
        print(f"experiment {exp_id!r} ran no cycle-level machine (it is "
              "an analytic model-level experiment); critscope needs "
              "simulated threads to attribute — try fig2, fig3, fig4, or "
              "a PVM experiment", file=sys.stderr)
        return 2
    if args.json:
        doc = cs.to_dict(top=args.top, what_if=what_if or None)
        doc["experiment"] = exp_id
        print(_json.dumps(doc, indent=2))
    else:
        print(cs.render(title=f"critscope: {exp_id}", top=args.top,
                        what_if=what_if or None))
    return 0


def _hostscope(args, config) -> int:
    """``python -m repro hostscope`` — the host-time self-profiler view."""
    import json as _json

    from .obs.export import load_trace_checked
    from .obs.hostscope import (
        HostScope,
        hostscope_from_trace,
        render_trace_summary,
        use_hostscope,
    )

    if args.trace:
        events = load_trace_checked(args.trace)
        if events is None:
            return 2
        doc = hostscope_from_trace(events)
        if args.json:
            print(_json.dumps(doc, indent=2))
        else:
            print(render_trace_summary(doc, title=args.trace))
        return 0

    if not args.experiment:
        print("hostscope needs an experiment id (e.g. 'python -m repro "
              "hostscope fig2') or --trace PATH", file=sys.stderr)
        return 2
    from .experiments import resolve_experiment_id

    try:
        exp_id = resolve_experiment_id(args.experiment)
    except KeyError:
        return _unknown_experiment(args.experiment)

    hs = HostScope(config)
    with use_hostscope(hs), hs.profile():
        _run(exp_id, config=config, quick=args.quick)
    if args.json:
        doc = hs.to_dict(top=args.top)
        doc["experiment"] = exp_id
        print(_json.dumps(doc, indent=2))
    else:
        print(hs.render(title=f"hostscope: {exp_id}", top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # ``repro run <experiment>`` reads naturally in scripts/CI; the
    # leading word is optional noise to the parser.  ``repro --list``
    # is a common muscle-memory spelling of ``repro list``.
    if argv and argv[0] == "run":
        argv = argv[1:]
    if argv and argv[0] == "--list":
        argv = ["list"] + argv[1:]
    if argv and argv[0] == "serve":
        # the job server has its own parser (``repro serve --help``)
        from .server import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "top":
        # the live dashboard has its own parser (``repro top --help``)
        from .obs.top import top_main

        return top_main(argv[1:])
    if argv and argv[0] == "ledger":
        # the performance ledger has its own parser
        # (``repro ledger --help``)
        from .obs.ledger import ledger_main

        return ledger_main(argv[1:])
    memscope_cmd = False
    if argv and argv[0] == "memscope":
        memscope_cmd = True
        argv = argv[1:]
    critscope_cmd = False
    if argv and argv[0] == "critscope":
        critscope_cmd = True
        argv = argv[1:]
    hostscope_cmd = False
    if argv and argv[0] == "hostscope":
        hostscope_cmd = True
        argv = argv[1:]
    args = build_parser().parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1 (got {args.jobs}): use --jobs 1 for a "
              "serial run or --jobs N to fan work units out to N worker "
              "processes", file=sys.stderr)
        return 2
    if args.memscope_sample < 1:
        print(f"--memscope-sample must be >= 1 (got "
              f"{args.memscope_sample}): 1 profiles every access, N "
              "profiles one in N", file=sys.stderr)
        return 2
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        print(f"--unit-timeout must be > 0 seconds (got "
              f"{args.unit_timeout}); omit the flag to disable per-unit "
              "timeouts", file=sys.stderr)
        return 2
    if args.retries is not None and args.retries < 0:
        print(f"--retries must be >= 0 (got {args.retries}): 0 disables "
              "worker retries, N allows N retries with exponential "
              "backoff", file=sys.stderr)
        return 2
    if args.seed is not None:
        _seed_rngs(args.seed)
    config = spp1000(n_hypernodes=args.hypernodes)
    if memscope_cmd:
        return _memscope(args, config)
    if critscope_cmd:
        return _critscope(args, config)
    if hostscope_cmd:
        return _hostscope(args, config)
    if args.experiment is None:
        print("an experiment id (or 'list', 'all', 'bench', 'timeline', "
              "'memscope', 'critscope', 'hostscope', 'serve', 'top', "
              "'ledger') is required; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    if args.experiment == "list":
        from .exec import unit_count

        for exp_id, title in list_experiments().items():
            count = unit_count(exp_id, config, quick=args.quick)
            units = (f"{count:3d} units" if count is not None
                     else "in-process")
            print(f"{exp_id:10s} {units:>10s}  {title}")
        print("experiments with units are servable as streaming sweep "
              "jobs via 'python -m repro serve' (repro.sdk clients); "
              "in-process experiments run whole per job")
        return 0
    if args.experiment == "timeline":
        return _timeline(args)
    if args.experiment == "bench":
        return _bench(args, config)

    targets = (list(list_experiments()) if args.experiment == "all"
               else [args.experiment])
    if args.experiment != "all" and args.experiment not in list_experiments():
        return _unknown_experiment(args.experiment)

    fault_plan = None
    if args.faults:
        from .faults import FaultPlanError, load_plan

        try:
            fault_plan = load_plan(args.faults, config)
        except OSError as exc:
            print(f"cannot read fault plan: {exc}", file=sys.stderr)
            return 2
        except FaultPlanError as exc:
            print(f"invalid fault plan {args.faults}:", file=sys.stderr)
            for line in str(exc).splitlines():
                print(f"  {line}", file=sys.stderr)
            return 2

    ok, chaos_plan = _load_chaos(args)
    if not ok:
        return 2

    if args.resume and not (args.checkpoint or args.journal):
        print("--resume requires --checkpoint PATH and/or --journal PATH",
              file=sys.stderr)
        return 2
    checkpoint = None
    if args.checkpoint:
        from .experiments.checkpoint import Checkpoint, CheckpointError

        try:
            checkpoint = Checkpoint(args.checkpoint, resume=args.resume)
        except CheckpointError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    multi = len(targets) > 1
    observing = bool(args.trace or args.metrics or args.profile
                     or args.memscope or args.critscope or args.hostscope)
    if args.ledger and not args.metrics:
        print("note: for experiment runs --ledger folds the --metrics "
              "manifest; add --metrics PATH (or use 'bench --ledger')",
              file=sys.stderr)
    what_if = _parse_what_if(args.what_if)
    if what_if is None:
        return 2
    if args.trace:
        args.trace = _resolve_output(args.trace, "trace.json")
    if args.metrics:
        args.metrics = _resolve_output(args.metrics, "metrics.json")
    # Fail fast on unwritable output paths -- before, not after, the run.
    for path in (args.trace, args.metrics):
        if path:
            parent = os.path.dirname(os.path.abspath(path))
            if not os.path.isdir(parent):
                print(f"output directory does not exist: {parent}",
                      file=sys.stderr)
                return 2
    from .exec import JournalError, UnitExecutionError, has_units

    jobs = args.jobs or 1
    cache = _build_cache(args)
    if cache is not None and any(has_units(t) for t in targets):
        from .exec import CacheRootError

        try:
            cache.check_root()
        except CacheRootError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    policy = None
    if args.unit_timeout is not None or args.retries is not None:
        from .exec import ResiliencePolicy
        from .exec.resilience import DEFAULT_MAX_RETRIES

        policy = ResiliencePolicy(
            unit_timeout_s=args.unit_timeout,
            max_retries=(args.retries if args.retries is not None
                         else DEFAULT_MAX_RETRIES))
    progress = None
    if args.progress:
        from .exec import ProgressStream

        progress = ProgressStream(args.progress)
    for exp_id in targets:
        fabric = has_units(exp_id)
        report = None
        kwargs = {"config": config}
        if args.quick:
            kwargs["quick"] = True
        if checkpoint is not None and not fabric:
            import inspect

            from .experiments import get_experiment

            if "checkpoint" in inspect.signature(
                    get_experiment(exp_id)).parameters:
                kwargs["checkpoint"] = checkpoint
            else:
                print(f"note: experiment {exp_id!r} does not support "
                      "checkpointing; --checkpoint ignored",
                      file=sys.stderr)
        if not fabric and jobs > 1:
            print(f"note: experiment {exp_id!r} has no work-unit planner; "
                  "running in-process (--jobs ignored)", file=sys.stderr)
        if fault_plan is not None:
            from .faults import use_faults

            faults_ctx = use_faults(fault_plan)
        else:
            from contextlib import nullcontext

            faults_ctx = nullcontext()

        if progress is not None and not fabric:
            print(f"note: experiment {exp_id!r} has no work-unit planner; "
                  "--progress emits nothing for in-process runs",
                  file=sys.stderr)
        if not fabric and (args.journal or chaos_plan is not None):
            print(f"note: experiment {exp_id!r} has no work-unit planner; "
                  "--journal/--chaos apply to fabric experiments only",
                  file=sys.stderr)
        journal = None
        if args.journal and fabric:
            from .exec import JournalError, SweepJournal

            journal_path = _suffixed(args.journal, exp_id, multi)
            if not args.resume and os.path.exists(journal_path):
                try:  # like --checkpoint: no --resume means a fresh sweep
                    os.remove(journal_path)
                except OSError as exc:
                    print(f"cannot reset journal {journal_path}: {exc}",
                          file=sys.stderr)
                    return 2
            journal = SweepJournal(journal_path)

        def run_target():
            if fabric:
                from .exec import execute

                result, rep = execute(
                    exp_id, config, jobs=jobs, quick=args.quick,
                    cache=cache, checkpoint=checkpoint,
                    fault_plan=fault_plan, seed=args.seed,
                    observed=observing, progress=progress,
                    policy=policy, chaos=chaos_plan, journal=journal)
                return result, rep
            return _run(exp_id, **kwargs), None

        if observing:
            from .obs import (use_tracer, write_chrome_trace,
                              write_metrics)
            from .sim import Tracer

            tracer = Tracer(enabled=True)
            ms = None
            if args.memscope:
                from .obs.memscope import MemScope, use_memscope

                ms = MemScope(config, sample=args.memscope_sample)
                ms_ctx = use_memscope(ms)
            else:
                from contextlib import nullcontext

                ms_ctx = nullcontext()
            cs = None
            if args.critscope:
                from .obs.critscope import CritScope, use_critscope

                cs = CritScope(config)
                cs_ctx = use_critscope(cs)
            else:
                from contextlib import nullcontext

                cs_ctx = nullcontext()
            hs = None
            if args.hostscope:
                from .obs.hostscope import HostScope, use_hostscope

                hs = HostScope(config)
                hs_ctx = use_hostscope(hs)
                hs_prof = hs.profile()
            else:
                from contextlib import nullcontext

                hs_ctx = nullcontext()
                hs_prof = nullcontext()
            try:
                with use_tracer(tracer), ms_ctx, cs_ctx, hs_ctx, hs_prof, \
                        faults_ctx:
                    result, report = run_target()
            except (JournalError, UnitExecutionError) as exc:
                return _execution_failed(exc, progress)
            print(result.render())
            if args.profile:
                print()
                print(_render_profile(tracer))
            if ms is not None:
                print()
                print(ms.render(title=f"memscope: {exp_id}",
                                top=args.top))
            if cs is not None:
                print()
                if any(run.threads for run in cs.runs):
                    print(cs.render(title=f"critscope: {exp_id}",
                                    top=args.top,
                                    what_if=what_if or None))
                else:
                    print(f"[critscope {exp_id}] no cycle-level machine "
                          "ran (analytic model-level experiment); "
                          "nothing to attribute")
            if hs is not None:
                print()
                print(hs.render(title=f"hostscope: {exp_id}",
                                top=args.top))
            if args.trace:
                path = _suffixed(args.trace, exp_id, multi)
                write_chrome_trace(tracer, path, config)
                print(f"\ntrace written to {path}")
            if args.metrics:
                path = _suffixed(args.metrics, exp_id, multi)
                cs_block = None
                if cs is not None and any(r.threads for r in cs.runs):
                    cs_block = cs.to_dict(top=args.top,
                                          what_if=what_if or None)
                manifest = result.manifest(
                    config=config, tracer=tracer,
                    execution=report.to_dict() if report else None,
                    memscope=ms, critscope=cs_block,
                    hostscope=(hs.to_dict(top=args.top)
                               if hs is not None else None))
                write_metrics(manifest, path)
                print(f"metrics manifest written to {path}")
                if args.ledger:
                    _ledger_append(args.ledger, manifest,
                                   source="metrics")
        else:
            try:
                with faults_ctx:
                    result, report = run_target()
            except (JournalError, UnitExecutionError) as exc:
                return _execution_failed(exc, progress)
            print(result.render())
        if args.cache_stats:
            print()
            print(report.render() if report is not None
                  else f"[exec {exp_id}] ran in-process (no work-unit "
                       "planner); no cache involved")
        print()
    if progress is not None:
        progress.close()
    return 0


def _load_chaos(args):
    """``(ok, plan)`` for ``--chaos``/``$REPRO_CHAOS`` (``(True, None)``
    when no plan is requested); prints every validation problem."""
    chaos_source = args.chaos or os.environ.get("REPRO_CHAOS") or None
    if not chaos_source:
        return True, None
    from .exec import ChaosPlanError, load_chaos_plan

    try:
        return True, load_chaos_plan(chaos_source)
    except OSError as exc:
        print(f"cannot read chaos plan: {exc}", file=sys.stderr)
        return False, None
    except ChaosPlanError as exc:
        print(f"invalid chaos plan {chaos_source}:", file=sys.stderr)
        for line in str(exc).splitlines():
            print(f"  {line}", file=sys.stderr)
        return False, None


def _execution_failed(exc, progress) -> int:
    """Report a sweep that drained with poison units (or a bad journal).

    Quarantined units already have everything else journaled/cached, so
    the message says exactly what failed and a rerun recomputes only
    those units.
    """
    from .exec import JournalError

    print(str(exc), file=sys.stderr)
    if progress is not None:
        progress.close()
    return 2 if isinstance(exc, JournalError) else 1


def _build_cache(args):
    """The result cache implied by ``--cache-dir``/``--no-cache``."""
    if args.no_cache:
        return None
    from .exec import ResultCache, code_fingerprint, default_cache_root

    return ResultCache(args.cache_dir or default_cache_root(),
                       code_fingerprint())


def _ledger_append(path: str, doc, *, source=None) -> None:
    """Best-effort fold of ``doc`` into the ledger at ``path`` — an
    append failure warns but never fails the run that produced the
    measurements (the ledger observes, it does not gate here)."""
    from .obs.ledger import Ledger, LedgerError, fold_document

    try:
        record = Ledger(path).append(fold_document(doc, source=source))
        print(f"ledger record appended to {path} "
              f"(sha256 {record['sha256'][:12]}…)")
    except (LedgerError, OSError) as exc:
        print(f"ledger: could not append to {path}: {exc}",
              file=sys.stderr)


def _warn_stale_artifact(path: str) -> None:
    """One stderr line when an existing bench artifact at ``path`` was
    produced by a different tree (satellite of the ledger issue)."""
    import json as _json

    from .exec.bench import stale_artifact_warning

    try:
        with open(path, "r", encoding="utf-8") as fh:
            artifact = _json.load(fh)
    except (OSError, ValueError):
        return
    warning = stale_artifact_warning(artifact, path)
    if warning:
        print(warning, file=sys.stderr)


def _bench(args, config) -> int:
    """``python -m repro bench``: the serial/parallel/cached trajectory."""
    from .exec import ProgressStream
    from .exec.bench import render_bench, run_bench, write_bench

    jobs = args.jobs if args.jobs is not None else 2
    only = (args.bench_experiments.split(",")
            if args.bench_experiments else None)
    ok, chaos_plan = _load_chaos(args)
    if not ok:
        return 2
    if os.path.exists(args.bench_out):
        _warn_stale_artifact(args.bench_out)
    progress = ProgressStream(args.progress) if args.progress else None
    try:
        doc = run_bench(config, jobs=jobs, quick=args.quick,
                        experiment_ids=only, progress=progress,
                        chaos=chaos_plan)
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    finally:
        if progress is not None:
            progress.close()
    print(render_bench(doc))
    write_bench(doc, args.bench_out)
    print(f"\nbenchmark written to {args.bench_out}")
    if args.ledger:
        _ledger_append(args.ledger, doc, source="bench")
    if not args.compare:
        return 0
    return _bench_compare(doc, args)


def _bench_compare(doc, args) -> int:
    """Diff a fresh bench document against ``--compare BASELINE``."""
    import json as _json

    from .exec.bench import compare_bench, markdown_compare, render_compare

    try:
        with open(args.compare, "r", encoding="utf-8") as fh:
            baseline = _json.load(fh)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"cannot read bench baseline {args.compare}: {reason}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"cannot parse bench baseline {args.compare}: {exc}; "
              "expected a BENCH_exec.json written by 'python -m repro "
              "bench'", file=sys.stderr)
        return 2
    from .exec.bench import stale_artifact_warning

    warning = stale_artifact_warning(baseline, args.compare)
    if warning:
        print(warning, file=sys.stderr)
    report = compare_bench(doc, baseline)
    print()
    print(render_compare(report))
    if args.bench_diff_out:
        with open(args.bench_diff_out, "w", encoding="utf-8") as fh:
            fh.write(markdown_compare(report))
        print(f"\nregression report written to {args.bench_diff_out}")
    return 1 if report["regressions"] else 0


def _run(exp_id: str, **kwargs):
    """Run an experiment, dropping kwargs its signature does not take."""
    import inspect

    from .experiments import get_experiment

    fn = get_experiment(exp_id)
    accepted = inspect.signature(fn).parameters
    usable = {k: v for k, v in kwargs.items() if k in accepted}
    return fn(**usable)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
