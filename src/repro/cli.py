"""Command-line entry point: ``python -m repro <experiment> [options]``.

Examples::

    python -m repro list            # show available experiments
    python -m repro fig4            # regenerate Figure 4
    python -m repro all             # regenerate everything (slow)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import spp1000
from .experiments import list_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduce the tables and figures of 'A Performance "
                     "Evaluation of the Convex SPP-1000' (SC'95) on the "
                     "simulated machine."))
    parser.add_argument(
        "experiment",
        help="experiment id (fig2, fig3, ...), 'list', or 'all'")
    parser.add_argument(
        "--hypernodes", type=int, default=2,
        help="hypernodes in the simulated machine (default: 2, as measured "
             "in the paper)")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced repetitions / problem sizes for a fast run")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for exp_id, title in list_experiments().items():
            print(f"{exp_id:10s} {title}")
        return 0

    config = spp1000(n_hypernodes=args.hypernodes)
    targets = (list(list_experiments()) if args.experiment == "all"
               else [args.experiment])
    for exp_id in targets:
        kwargs = {"config": config}
        if args.quick:
            kwargs["quick"] = True
        try:
            result = _run(exp_id, **kwargs)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(result.render())
        print()
    return 0


def _run(exp_id: str, **kwargs):
    """Run an experiment, dropping kwargs its signature does not take."""
    import inspect

    from .experiments import get_experiment

    fn = get_experiment(exp_id)
    accepted = inspect.signature(fn).parameters
    usable = {k: v for k, v in kwargs.items() if k in accepted}
    return fn(**usable)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
