"""Figure 3: cost of barrier synchronisation.

Reported metrics, per the paper §4.2, from timestamps taken before each
thread enters and after each thread exits the barrier (corrected for
timer intrusion):

* **last in - first out** — min time from the last thread entering to
  the first continuing (~3.5 us on one hypernode, +~1 us across two);
* **last in - last out** — min time from the last thread entering to the
  last continuing (~2 us per thread release slope).

Both are measured under high-locality and uniform placement.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core import MachineConfig, Series, corrected, spp1000
from ..core.units import to_us
from ..exec.units import WorkUnit, register_units
from ..machine import Machine
from ..runtime import Barrier, Placement, Runtime
from .base import ExperimentResult, point_runner, register

__all__ = ["run", "barrier_metrics_us", "plan_units"]

THREAD_COUNTS = [2, 4, 6, 8, 10, 12, 14, 16]
_PLACEMENTS = [(Placement.HIGH_LOCALITY, "high locality"),
               (Placement.UNIFORM, "uniform")]


def barrier_metrics_us(n_threads: int, placement: Placement,
                       config: Optional[MachineConfig] = None,
                       rounds: int = 12) -> Dict[str, float]:
    """Minimum LIFO/LILO barrier times over ``rounds`` rounds, in us."""
    config = config or spp1000()
    machine = Machine(config)
    runtime = Runtime(machine)
    barrier = Barrier(runtime, n_threads)
    entries = [[0.0] * n_threads for _ in range(rounds)]
    exits = [[0.0] * n_threads for _ in range(rounds)]
    timer_ns = config.cycles(config.timer_overhead_cycles)

    def body(env, tid):
        for r in range(rounds):
            # Deterministic stagger so a different thread is last each
            # round, as scheduling noise achieves on the real machine.
            yield env.compute(60 * ((tid * 3 + r) % n_threads))
            entries[r][tid] = yield env.timestamp()
            yield from barrier.wait(env)
            exits[r][tid] = yield env.timestamp()

    def main(env):
        yield from env.fork_join(n_threads, body, placement)

    runtime.run(main)
    lifo_samples = []
    lilo_samples = []
    for en, ex in zip(entries, exits):
        last_in = max(en)
        # one timestamp read (the exit read) falls inside each interval
        lifo_samples.append(corrected(min(ex) - last_in, 1, timer_ns))
        lilo_samples.append(corrected(max(ex) - last_in, 1, timer_ns))
    return {
        "last_in_first_out": to_us(min(lifo_samples)),
        "last_in_last_out": to_us(min(lilo_samples)),
    }


def _unit(params, config):
    """One work unit: both barrier metrics at one (placement, count)."""
    return barrier_metrics_us(params["n_threads"],
                              Placement(params["placement"]), config,
                              params["rounds"])


def _points(thread_counts, rounds):
    return [(f"{tag}:{n}", {"placement": placement.value, "n_threads": n,
                            "rounds": rounds})
            for placement, tag in _PLACEMENTS for n in thread_counts]


def plan_units(config, quick: bool = False):
    counts = [n for n in THREAD_COUNTS if n <= config.n_cpus]
    return [WorkUnit("fig3", key, params)
            for key, params in _points(counts, rounds=12)]


@register("fig3", "Cost of barrier synchronisation")
def run(config: Optional[MachineConfig] = None,
        thread_counts: Optional[Sequence[int]] = None,
        rounds: int = 12, checkpoint=None) -> ExperimentResult:
    """Regenerate Figure 3."""
    config = config or spp1000()
    if thread_counts is None:
        thread_counts = THREAD_COUNTS
    thread_counts = [n for n in thread_counts if n <= config.n_cpus]
    if checkpoint is not None:
        checkpoint.bind("fig3")
    point = point_runner(checkpoint)

    data: Dict[str, list] = {"thread_counts": list(thread_counts)}
    series = []
    for placement, tag in _PLACEMENTS:
        lifo, lilo = [], []
        for n in thread_counts:
            metrics = point(
                f"{tag}:{n}",
                lambda n=n, p=placement: _unit(
                    {"placement": p.value, "n_threads": n,
                     "rounds": rounds}, config))
            lifo.append(metrics["last_in_first_out"])
            lilo.append(metrics["last_in_last_out"])
        series.append(Series(f"LIFO {tag}", list(thread_counts), lifo))
        series.append(Series(f"LILO {tag}", list(thread_counts), lilo))
        data[f"lifo_{tag.replace(' ', '_')}_us"] = lifo
        data[f"lilo_{tag.replace(' ', '_')}_us"] = lilo

    return ExperimentResult(
        "fig3", "Barrier synchronisation cost (us) vs threads",
        series=series,
        series_axes=("threads", "us"),
        data=data,
        notes=("Paper: LIFO ~3.5 us on one hypernode (+~1 us with a second); "
               "LILO grows ~2 us per thread beyond the second."),
    )


register_units("fig3", plan_units, _unit)
