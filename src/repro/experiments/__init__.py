"""Experiments: one module per table/figure of the paper.

Importing this package registers every experiment; use
:func:`run_experiment`/:func:`list_experiments`, or the CLI
(``python -m repro <id>``).
"""

from .base import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
    resolve_experiment_id,
    run_experiment,
)
from . import fig2_forkjoin, fig3_barrier, fig4_message
from . import ablations, contention, degraded, fig6_pic, fig7_fem
from . import fig8_nbody, memclass, scale128, table1_pic_c90, table2_ppm
from .checkpoint import Checkpoint, CheckpointError

__all__ = [
    "ExperimentResult", "register", "get_experiment", "list_experiments",
    "resolve_experiment_id", "run_experiment",
    "Checkpoint", "CheckpointError",
    "fig2_forkjoin", "fig3_barrier", "fig4_message",
    "fig6_pic", "table1_pic_c90", "degraded",
]
