"""Experiments: one module per table/figure of the paper.

Importing this package registers every experiment; use
:func:`run_experiment`/:func:`list_experiments`, or the CLI
(``python -m repro <id>``).
"""

from .base import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)
from . import fig2_forkjoin, fig3_barrier, fig4_message
from . import ablations, contention, fig6_pic, fig7_fem, fig8_nbody
from . import memclass, scale128, table1_pic_c90, table2_ppm

__all__ = [
    "ExperimentResult", "register", "get_experiment", "list_experiments",
    "run_experiment",
    "fig2_forkjoin", "fig3_barrier", "fig4_message",
    "fig6_pic", "table1_pic_c90",
]
