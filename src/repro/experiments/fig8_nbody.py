"""Figure 8: N-body tree-code performance scaling.

Three problem sizes (32K / 256K / 2M particles), each run in the
paper's two configurations: 1, 2, 4, 8 processors on one hypernode, and
2, 4, 8, 16 processors spread across two.  Speed-up is measured against
the single-processor rate (the paper's 27.5 MFLOP/s yardstick).
Expected shapes: 2-7% degradation across hypernodes at equal processor
counts, a 16-processor result near the paper's 384 MFLOP/s (~14x), a
problem-size dependence at 16 processors, and a C90 tree-code reference
of 120 MFLOP/s that the 16-processor run comfortably exceeds.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..apps.nbody import (
    NBodyWorkload,
    problem_2m,
    problem_32k,
    problem_256k,
)
from ..core import MachineConfig, Series, spp1000
from ..core.metrics import mflops
from ..core.units import to_seconds
from ..exec.units import WorkUnit, register_units
from ..runtime import Placement
from .base import ExperimentResult, point_runner, register

__all__ = ["run", "plan_units"]

ONE_NODE_COUNTS = [1, 2, 4, 8]
TWO_NODE_COUNTS = [2, 4, 8, 16]

_PROBLEMS = {"32k": problem_32k, "256k": problem_256k, "2m": problem_2m}
_PLACEMENTS = {"high": Placement.HIGH_LOCALITY,
               "uniform": Placement.UNIFORM}


def _unit(params, config):
    """One work unit: one (problem, placement, count) run, or the C90."""
    problem = _PROBLEMS[params["problem"]]()
    workload = NBodyWorkload(problem, config)
    if params.get("style") == "c90":
        total = workload.flops_per_step() * problem.n_steps
        return total / to_seconds(workload.run_c90()) / 1e6
    result = workload.run_shared(params["p"],
                                 _PLACEMENTS[params["placement"]])
    return [result.time_ns, result.flops]


def plan_units(config, quick: bool = False):
    units = []
    for name in _PROBLEMS:
        for p in ONE_NODE_COUNTS:
            units.append(WorkUnit("fig8", f"{name}:high:{p}",
                                  {"problem": name, "placement": "high",
                                   "p": p}))
        for p in TWO_NODE_COUNTS:
            units.append(WorkUnit("fig8", f"{name}:uniform:{p}",
                                  {"problem": name, "placement": "uniform",
                                   "p": p}))
        units.append(WorkUnit("fig8", f"{name}:c90",
                              {"problem": name, "style": "c90"}))
    return units


@register("fig8", "N-body performance scaling")
def run(config: Optional[MachineConfig] = None,
        include_2m: bool = True, checkpoint=None) -> ExperimentResult:
    """Regenerate Figure 8."""
    config = config or spp1000()
    if checkpoint is not None:
        checkpoint.bind("fig8")
    point = point_runner(checkpoint)

    series = []
    data: Dict = {}
    for name, factory in _PROBLEMS.items():
        if name == "2m" and not include_2m:
            continue
        problem = factory()

        def shared(placement, p, name=name):
            return point(f"{name}:{placement}:{p}",
                         lambda: _unit({"problem": name,
                                        "placement": placement, "p": p},
                                       config))

        base_t, base_f = shared("high", 1)
        one_node = [base_t / shared("high", p)[0] for p in ONE_NODE_COUNTS]
        two_node = [base_t / shared("uniform", p)[0]
                    for p in TWO_NODE_COUNTS]
        series.append(Series(f"{problem.label} 1-hypernode",
                             ONE_NODE_COUNTS, one_node))
        series.append(Series(f"{problem.label} 2-hypernodes",
                             TWO_NODE_COUNTS, two_node))
        t16, f16 = shared("uniform", 16)
        degradation = {}
        for p in (2, 4, 8):
            t1 = shared("high", p)[0]
            t2 = shared("uniform", p)[0]
            degradation[p] = (t2 - t1) / t1
        data[problem.label] = {
            "one_node_speedup": one_node,
            "two_node_speedup": two_node,
            "single_cpu_mflops": mflops(base_f, base_t) if base_f else 0.0,
            "mflops_16": mflops(f16, t16) if f16 else 0.0,
            "degradation": degradation,
            "c90_mflops": point(f"{name}:c90",
                                lambda n=name: _unit(
                                    {"problem": n, "style": "c90"},
                                    config)),
        }

    return ExperimentResult(
        "fig8", "N-body parallel speed-up vs processors",
        series=series, series_axes=("processors", "speed-up"),
        data=data,
        notes=("Paper: single CPU 27.5 MFLOP/s; 16 CPUs 384 MFLOP/s; "
               "2-7% degradation across two hypernodes; vectorised C90 "
               "tree code 120 MFLOP/s."),
    )


register_units("fig8", plan_units, _unit)
